//! Golden-file regression tests: a fixed-seed datagen workload is reduced
//! to committed, human-readable artefacts — the cube sheet, the top-k
//! discovery list, and a query-engine transcript over a snapshot
//! round-trip — compared **verbatim**, so index math, cell enumeration,
//! snapshot encoding, and query routing can never drift silently.
//!
//! To regenerate after an *intentional* change:
//! `GOLDEN_BLESS=1 cargo test -p scube --test golden_cube` and review the
//! diff under `tests/golden/` like any other code change.

use scube::prelude::*;
use scube_cube::ConcurrentCubeEngine;
use scube_data::TransactionDb;

const COMPANIES: usize = 150;
const MIN_SUPPORT: u64 = 20;

fn final_table() -> TransactionDb {
    let dataset = scube_datagen::italy(COMPANIES).to_dataset(vec![]).unwrap();
    scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .unwrap()
        .db
}

fn full_cube(db: &TransactionDb) -> SegregationCube {
    CubeBuilder::new()
        .min_support(MIN_SUPPORT)
        .materialize(Materialize::AllFrequent)
        .parallel(false)
        .build(db)
        .unwrap()
}

fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.6}")).unwrap_or_else(|| "-".into())
}

fn fmt_values(v: &IndexValues) -> String {
    format!(
        "M={} T={} units={} D={} G={} H={} xPx={} xPy={} A={}",
        v.minority,
        v.total,
        v.num_units,
        fmt(v.dissimilarity),
        fmt(v.gini),
        fmt(v.information),
        fmt(v.isolation),
        fmt(v.interaction),
        fmt(v.atkinson),
    )
}

/// Compare against a committed golden file, or regenerate it when blessed.
fn check(name: &str, expected: &str, actual: &str) {
    let path = format!("{}/../../tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    assert_eq!(
        actual, expected,
        "golden file {name} drifted; if the change is intentional, regenerate with \
         GOLDEN_BLESS=1 and review the diff"
    );
}

#[test]
fn cube_sheet_matches_golden() {
    let db = final_table();
    let cube = full_cube(&db);
    check(
        "italy_cube_sheet.csv",
        include_str!("golden/italy_cube_sheet.csv"),
        &scube_cube::to_csv(&cube),
    );
}

#[test]
fn multi_index_sheet_matches_golden() {
    // A Gini + Isolation subset build served through a snapshot-v5 byte
    // round-trip, reduced to the cube sheet: selected columns carry the
    // exact full-suite numbers, unselected columns are uniformly absent.
    let db = final_table();
    let measures = MeasureSet::only(SegIndex::Gini).with(SegIndex::Isolation);
    let closed = CubeBuilder::new()
        .min_support(MIN_SUPPORT)
        .materialize(Materialize::ClosedOnly)
        .parallel(false)
        .measures(measures);
    let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &closed).unwrap();
    let bytes = snap.to_bytes();
    assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 5, "subset saves as v5");
    let loaded: CubeSnapshot = CubeSnapshot::from_bytes(&bytes).unwrap();
    assert_eq!(loaded.measures(), measures);
    check(
        "italy_multi_index_sheet.csv",
        include_str!("golden/italy_multi_index_sheet.csv"),
        &scube_cube::to_csv(loaded.cube()),
    );
}

#[test]
fn top_contexts_match_golden() {
    let db = final_table();
    let cube = full_cube(&db);
    let mut out = String::new();
    for index in [SegIndex::Dissimilarity, SegIndex::Information] {
        out.push_str(&format!("top 10 by {index} (population >= {MIN_SUPPORT}):\n"));
        for (coords, v, x) in top_contexts(&cube, index, 10, MIN_SUPPORT) {
            out.push_str(&format!(
                "  {x:.6}  {}  (M={}, T={})\n",
                cube.labels().describe(coords),
                v.minority,
                v.total
            ));
        }
    }
    check("italy_top_contexts.txt", include_str!("golden/italy_top_contexts.txt"), &out);
}

#[test]
fn query_engine_transcript_matches_golden() {
    let db = final_table();
    let full = full_cube(&db);
    // Serve the closed store through a snapshot byte round-trip — exactly
    // what `scube save` + `scube query` do.
    let closed = CubeBuilder::new()
        .min_support(MIN_SUPPORT)
        .materialize(Materialize::ClosedOnly)
        .parallel(false);
    let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &closed).unwrap();
    let loaded: CubeSnapshot = CubeSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    let mut engine = CubeQueryEngine::new(loaded);

    let mut out = String::new();
    out.push_str(&format!(
        "store: {} closed cells (full cube: {}), {} units, min_support {}\n",
        engine.cube().len(),
        full.len(),
        engine.cube().num_units(),
        engine.cube().min_support()
    ));

    // Every full-cube cell in canonical order, answered through the engine
    // (mixing materialized hits and explorer fallbacks).
    let mut coords: Vec<CellCoords> = full.cells().map(|(c, _)| c.clone()).collect();
    coords.sort();
    for c in &coords {
        let v = engine.query(c).unwrap();
        let tier = if full.get(c).is_some() && engine.cube().get(c).is_some() {
            "store"
        } else {
            "fallback"
        };
        out.push_str(&format!(
            "{tier:<8} {}  {}\n",
            engine.cube().labels().describe(c),
            fmt_values(&v)
        ));
    }
    let stats = engine.stats();
    out.push_str(&format!(
        "stats: materialized={} cached={} explored={}\n",
        stats.materialized, stats.cached, stats.explored
    ));
    check("italy_query_engine.txt", include_str!("golden/italy_query_engine.txt"), &out);
}

/// The concurrent sharded engine over the same snapshot round-trip: a cold
/// multi-threaded pass over the canonical universe, a warm pass, ranking,
/// and the final atomic stats. Everything here is deterministic despite the
/// 4 worker threads: answers are bit-identical by construction, each cell
/// is queried exactly once per pass, and the cache is big enough that no
/// eviction races can shift a query between the cached and explored tiers.
#[test]
fn serve_transcript_matches_golden() {
    const THREADS: usize = 4;
    const SHARDS: usize = 4;
    let db = final_table();
    let full = full_cube(&db);
    let closed = CubeBuilder::new()
        .min_support(MIN_SUPPORT)
        .materialize(Materialize::ClosedOnly)
        .parallel(false);
    let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &closed).unwrap();
    let loaded: CubeSnapshot = CubeSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    let engine =
        ConcurrentCubeEngine::with_config(loaded, SHARDS, scube_cube::DEFAULT_CACHE_CAPACITY);

    let mut out = String::new();
    out.push_str(&format!(
        "store: {} closed cells (full cube: {}), {} units, min_support {}, {} shards\n",
        engine.cube().len(),
        full.len(),
        engine.cube().num_units(),
        engine.cube().min_support(),
        engine.shard_count()
    ));

    let mut coords: Vec<CellCoords> = full.cells().map(|(c, _)| c.clone()).collect();
    coords.sort();
    let cold = engine.query_batch(&coords, THREADS).unwrap();
    let stats = engine.stats();
    out.push_str(&format!(
        "cold pass ({THREADS} threads): materialized={} cached={} explored={}\n",
        stats.materialized, stats.cached, stats.explored
    ));
    let warm = engine.query_batch(&coords, THREADS).unwrap();
    assert_eq!(cold, warm, "warm pass must be bit-identical to cold");
    let stats = engine.stats();
    out.push_str(&format!(
        "warm pass ({THREADS} threads): materialized={} cached={} explored={}\n",
        stats.materialized, stats.cached, stats.explored
    ));
    for (c, v) in coords.iter().zip(&cold) {
        let tier = if engine.cube().get(c).is_some() { "store" } else { "fallback" };
        out.push_str(&format!(
            "{tier:<8} {}  {}\n",
            engine.cube().labels().describe(c),
            fmt_values(v)
        ));
    }
    for (index, ranked) in
        engine.top_k_batch(&[SegIndex::Dissimilarity, SegIndex::Gini], 3, MIN_SUPPORT, 2).unwrap()
    {
        out.push_str(&format!("top 3 by {index} (population >= {MIN_SUPPORT}):\n"));
        for (c, v, x) in ranked {
            out.push_str(&format!(
                "  {x:.6}  {}  (M={}, T={})\n",
                engine.cube().labels().describe(&c),
                v.minority,
                v.total
            ));
        }
    }
    check("italy_serve_transcript.txt", include_str!("golden/italy_serve_transcript.txt"), &out);
}
