//! Loopback integration tests for the `scubed` serving daemon.
//!
//! Everything runs over real TCP on 127.0.0.1 with an ephemeral port (the
//! build environment has no outside network). The reference for every
//! assertion is an in-process engine over the same snapshot: response
//! bodies are built with the daemon's own public render functions and
//! compared **byte-for-byte**, so wire serialization can never silently
//! lose float bits.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use minihttp::{percent_encode, HttpClient};
use scube::daemon::{self, json::Json, Daemon, DaemonConfig};
use scube::prelude::*;
use scube_cube::{ConcurrentCubeEngine, CubeLabels, UpdateBatch};
use scube_data::TransactionDb;
use scube_datagen::BoardsConfig;
use scube_segindex::SegIndex;

const MIN_SUPPORT: u64 = 3;

fn final_table() -> TransactionDb {
    let boards = scube_datagen::generate(BoardsConfig::italy(200).sector_bias(0.7).seed(11));
    let dataset = boards.to_dataset(vec![]).expect("generator output is valid");
    scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .expect("pipeline succeeds")
        .db
}

fn snapshot() -> CubeSnapshot {
    let closed = CubeBuilder::new().min_support(MIN_SUPPORT).materialize(Materialize::ClosedOnly);
    CubeSnapshot::from_db(&final_table(), &closed).expect("snapshot builds")
}

fn test_config() -> DaemonConfig {
    DaemonConfig { workers: 4, ..DaemonConfig::default() }
}

/// Spawn a daemon over `snap`; returns its address and the join handle of
/// the serving thread (which exits after `POST /shutdown`).
fn spawn_daemon(
    snap: CubeSnapshot,
    config: DaemonConfig,
) -> (String, std::thread::JoinHandle<scube_common::Result<()>>) {
    let daemon =
        Daemon::bind("127.0.0.1:0", vec![("main".to_string(), snap)], config).expect("bind");
    let addr = daemon.local_addr().expect("addr").to_string();
    (addr, std::thread::spawn(move || daemon.run()))
}

/// `sa=..&ca=..` query string naming `coords` (empty sides included).
fn coords_query(labels: &CubeLabels, coords: &CellCoords) -> String {
    let side = |items: &[u32]| {
        let pairs: Vec<String> = items
            .iter()
            .map(|&i| format!("{}={}", labels.attr_of(i), labels.value_of(i)))
            .collect();
        pairs.join(",")
    };
    format!("sa={}&ca={}", percent_encode(&side(&coords.sa)), percent_encode(&side(&coords.ca)))
}

/// Every queryable endpoint, bit-identical to the in-process engine.
#[test]
fn responses_are_bit_identical_to_in_process_engine() {
    let snap = snapshot();
    let reference = ConcurrentCubeEngine::new(snap.clone());
    let labels = reference.cube().labels().clone();
    let (addr, server) = spawn_daemon(snap, test_config());
    let mut client = HttpClient::connect(&addr).expect("connect");

    // Point queries: a sample of materialized cells, apex included.
    let mut cells: Vec<CellCoords> = vec![CellCoords::apex()];
    cells.extend(reference.cube().cells().map(|(c, _)| c.clone()).step_by(7).take(20));
    for coords in &cells {
        let resp = client
            .get(&format!("/cubes/main/query?{}", coords_query(&labels, coords)))
            .expect("query");
        assert_eq!(resp.status, 200, "{}", labels.describe(coords));
        let values = reference.query(coords).expect("reference query");
        assert_eq!(
            resp.text().unwrap(),
            daemon::cell_json(&labels, coords, &values),
            "point query must be bit-identical"
        );
        // The alias route (single cube loaded) answers identically.
        let alias = client.get(&format!("/query?{}", coords_query(&labels, coords))).unwrap();
        assert_eq!(alias.body, resp.body, "alias route");
    }

    // Top-k for every index.
    for index in SegIndex::ALL {
        let ranked =
            reference.top_k_batch(&[index], 5, MIN_SUPPORT, 2).expect("reference top-k").remove(0);
        let resp = client
            .get(&format!("/cubes/main/topk?index={}&k=5&min_total={MIN_SUPPORT}", index.name()))
            .expect("topk");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text().unwrap(), daemon::topk_json(&labels, ranked.0, &ranked.1));
    }

    // Slice, dice, and breakdown.
    let sliced = reference.slice(&[("sector", "services")]);
    let resp = client
        .get(&format!("/cubes/main/slice?fixed={}", percent_encode("sector=services")))
        .expect("slice");
    assert_eq!(resp.text().unwrap(), daemon::cells_json(&labels, &sliced));

    let diced = reference.dice(&["gender", "sector"]);
    let resp = client.get("/cubes/main/dice?attrs=gender,sector").expect("dice");
    assert_eq!(resp.text().unwrap(), daemon::cells_json(&labels, &diced));

    let target = cells.last().unwrap();
    let rows = reference.unit_breakdown(target);
    let resp = client
        .get(&format!("/cubes/main/breakdown?{}", coords_query(&labels, target)))
        .expect("breakdown");
    assert_eq!(resp.text().unwrap(), daemon::breakdown_json(&labels, target, &rows));

    // Per-measure projection (`index=`) and the on-demand permutation test
    // (`significance=1`) on the same routes — still byte-exact, with the
    // expected bodies assembled from the daemon's own render helpers and a
    // reference `PermutationTest` run over the same unit breakdown.
    let values = reference.query(target).expect("reference query");
    let cell_prefix = format!(
        "{{\"cell\":{},\"describe\":\"{}\"",
        daemon::coords_json(&labels, target),
        daemon::json::escape(&labels.describe(target)),
    );
    let one = client
        .get(&format!("/cubes/main/query?{}&index=gini", coords_query(&labels, target)))
        .expect("indexed query");
    assert_eq!(one.status, 200);
    assert_eq!(
        one.text().unwrap(),
        format!("{cell_prefix},\"values\":{}}}", daemon::values_json_one(&values, SegIndex::Gini)),
        "indexed point query projects exactly one measure"
    );
    let counts = UnitCounts::from_pairs(rows.iter().map(|&(_, m, t)| (m, t))).expect("valid cell");
    let perm = PermutationTest::default().run(SegIndex::Gini, &counts).expect("gini defined here");
    let sig_path =
        format!("/cubes/main/query?{}&index=gini&significance=1", coords_query(&labels, target));
    let sig = client.get(&sig_path).expect("significance query");
    assert_eq!(
        sig.text().unwrap(),
        format!(
            "{cell_prefix},\"values\":{},\"significance\":[{{\"index\":\"gini\",\
             \"observed\":{},\"null_mean\":{},\"p_value\":{}}}]}}",
            daemon::values_json_one(&values, SegIndex::Gini),
            daemon::json::num(perm.observed),
            daemon::json::num(perm.null_mean),
            daemon::json::num(perm.p_value),
        ),
        "the permutation test is seeded: its wire form is reproducible"
    );
    assert_eq!(client.get(&sig_path).unwrap().body, sig.body, "significance is deterministic");

    // An indexed slice renders one `values_json_one` row per cell.
    let resp = client
        .get(&format!("/cubes/main/slice?fixed={}&index=xpx", percent_encode("sector=services")))
        .expect("indexed slice");
    let sliced_rows: Vec<String> = sliced
        .iter()
        .map(|(c, v)| {
            format!(
                "{{\"cell\":{},\"values\":{}}}",
                daemon::coords_json(&labels, c),
                daemon::values_json_one(v, SegIndex::Isolation)
            )
        })
        .collect();
    assert_eq!(resp.text().unwrap(), format!("{{\"rows\":[{}]}}", sliced_rows.join(",")));

    // Admin endpoints answer and the registry lists the cube.
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    let cubes = client.get("/cubes").unwrap();
    let doc = Json::parse(cubes.text().unwrap()).expect("valid JSON");
    let listed = doc.get("cubes").unwrap().as_arr().unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].get("name").unwrap().as_str(), Some("main"));
    assert_eq!(listed[0].get("cells").unwrap().as_u64(), Some(reference.cube().len() as u64));

    // Client mistakes are 4xx, not failures.
    assert_eq!(client.get("/cubes/nope/query").unwrap().status, 404);
    assert_eq!(client.get("/bogus").unwrap().status, 404);
    assert_eq!(client.get("/cubes/main/query?sa=notanattr%3Dx").unwrap().status, 400);
    assert_eq!(client.get("/cubes/main/query?sa=gender").unwrap().status, 400);
    assert_eq!(client.get("/cubes/main/topk?index=wat").unwrap().status, 400);
    assert_eq!(client.get("/cubes/main/query?sa=&ca=&index=bogus").unwrap().status, 400);
    assert_eq!(client.get("/cubes/main/slice?fixed=&index=bogus").unwrap().status, 400);
    assert_eq!(client.get("/cubes/main/topk?k=minusone").unwrap().status, 400);
    assert_eq!(client.post("/cubes/main/query", b"").unwrap().status, 405);
    assert_eq!(client.post("/cubes/main/update", b"not json").unwrap().status, 400);
    assert_eq!(client.post("/cubes/main/update", b"{\"wat\":1}").unwrap().status, 400);

    // And the daemon still answers perfectly after all those errors.
    let resp = client.get("/cubes/main/query?sa=&ca=").unwrap();
    let apex = reference.query(&CellCoords::apex()).unwrap();
    assert_eq!(resp.text().unwrap(), daemon::cell_json(&labels, &CellCoords::apex(), &apex));

    assert_eq!(client.post("/shutdown", b"").unwrap().status, 200);
    server.join().unwrap().unwrap();
}

/// N concurrent clients hammer a cell while `POST /update` hot-swaps the
/// engine mid-stream: every response must be byte-identical to the pre- or
/// post-update engine (never torn), and the endpoint counters must sum
/// exactly to the requests issued.
#[test]
fn hot_swap_under_concurrent_load_never_tears() {
    const CLIENTS: usize = 4;
    const MIN_PER_CLIENT: usize = 50;

    let snap = snapshot();
    let labels = snap.cube().labels().clone();
    let apex = CellCoords::apex();

    // Pre- and post-update reference bodies for the apex cell (removing
    // transactions definitely changes its head-counts).
    let mut batch = UpdateBatch::new();
    for tid in 0..5 {
        batch.remove_tid(tid);
    }
    let pre_engine = ConcurrentCubeEngine::new(snap.clone());
    let pre_body = daemon::cell_json(&labels, &apex, &pre_engine.query(&apex).unwrap());
    let mut post_snap = snap.clone();
    post_snap.apply_update_threads(&batch, 2).expect("reference update");
    let post_engine = ConcurrentCubeEngine::new(post_snap);
    let post_body = daemon::cell_json(&labels, &apex, &post_engine.query(&apex).unwrap());
    assert_ne!(pre_body, post_body, "the update must change the apex cell");

    // One worker per held-open client connection plus slack for the admin
    // connection: the daemon is thread-per-connection, so keep-alive
    // clients equal to the pool size would starve the update.
    let config = DaemonConfig { workers: CLIENTS + 2, ..DaemonConfig::default() };
    let (addr, server) = spawn_daemon(snap, config);
    let updated = Arc::new(AtomicBool::new(false));
    let (saw_pre, saw_post) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                let updated = Arc::clone(&updated);
                let (pre_body, post_body) = (pre_body.clone(), post_body.clone());
                scope.spawn(move || {
                    let mut client = HttpClient::connect(&addr).expect("connect");
                    let (mut pre, mut post) = (0usize, 0usize);
                    // Keep querying until the swap is visible on this
                    // stream (with a wall-clock bound, so a swap that
                    // never becomes visible still fails fast).
                    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
                    while std::time::Instant::now() < deadline {
                        let resp = client.get("/query?sa=&ca=").expect("query");
                        assert_eq!(resp.status, 200);
                        let body = resp.text().unwrap();
                        if body == pre_body {
                            assert!(
                                !updated.load(Ordering::Acquire) || post == 0,
                                "pre-update answer after post-update answers on one stream"
                            );
                            pre += 1;
                        } else if body == post_body {
                            post += 1;
                        } else {
                            panic!("torn response: {body}");
                        }
                        if post > 0 && pre + post >= MIN_PER_CLIENT {
                            break;
                        }
                    }
                    (pre, post)
                })
            })
            .collect();

        // Fire the hot-swap mid-stream.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut admin = HttpClient::connect(&addr).expect("connect");
        let resp = admin.post("/update", br#"{"remove_tids":[0,1,2,3,4],"threads":2}"#).unwrap();
        assert_eq!(resp.status, 200, "{:?}", resp.text());
        let stats = Json::parse(resp.text().unwrap()).unwrap();
        assert_eq!(stats.get("rows_removed").unwrap().as_u64(), Some(5));
        assert_eq!(stats.get("swaps").unwrap().as_u64(), Some(1));
        updated.store(true, Ordering::Release);

        workers.into_iter().fold((0usize, 0usize), |acc, w| {
            let (pre, post) = w.join().expect("client thread");
            (acc.0 + pre, acc.1 + post)
        })
    });
    let issued = saw_pre + saw_post;
    assert!(issued >= CLIENTS * MIN_PER_CLIENT, "every client made progress");
    assert!(saw_post > 0, "the swap must become visible");

    // After the swap, a fresh request must serve the post-update body.
    let mut client = HttpClient::connect(&addr).expect("connect");
    let resp = client.get("/query?sa=&ca=").unwrap();
    assert_eq!(resp.text().unwrap(), post_body);

    // Counter exactness: queries + 1 update + the probe query; the /stats
    // request itself is counted once finished, so issue two and check the
    // second sees the first.
    let s1 = client.get("/stats").unwrap();
    let s2 = client.get("/stats").unwrap();
    for (label, body) in [("first", &s1), ("second", &s2)] {
        let doc = Json::parse(body.text().unwrap()).expect("valid stats JSON");
        let ep = doc.get("endpoints").unwrap();
        let count =
            |name: &str, field: &str| ep.get(name).unwrap().get(field).unwrap().as_u64().unwrap();
        assert_eq!(
            count("query", "requests"),
            (issued + 1) as u64,
            "{label}: query counter must sum exactly"
        );
        assert_eq!(count("update", "requests"), 1, "{label}");
        assert_eq!(count("query", "errors"), 0, "{label}");
        assert_eq!(count("update", "errors"), 0, "{label}");
        let swaps = doc.get("cubes").unwrap().get("main").unwrap().get("swaps").unwrap();
        assert_eq!(swaps.as_u64(), Some(1), "{label}");
    }
    let doc = Json::parse(s2.text().unwrap()).unwrap();
    let stats_seen =
        doc.get("endpoints").unwrap().get("stats").unwrap().get("requests").unwrap().as_u64();
    assert_eq!(stats_seen, Some(1), "second /stats sees the first");

    let mut admin = HttpClient::connect(&addr).expect("connect");
    assert_eq!(admin.post("/shutdown", b"").unwrap().status, 200);
    server.join().unwrap().unwrap();
}

/// Graceful shutdown: clients with requests in flight either receive a
/// complete, well-formed response or a clean connection close — never a
/// truncated body — and `run()` returns once drained.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let snap = snapshot();
    let (addr, server) = spawn_daemon(snap, test_config());

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut completed = 0usize;
                    'outer: while !stop.load(Ordering::Acquire) {
                        // Reconnect each round: post-shutdown rounds must
                        // fail to connect or close cleanly, not hang.
                        let Ok(mut client) = HttpClient::connect(&addr) else { break };
                        for _ in 0..20 {
                            match client.get("/cubes/main/topk?index=gini&k=3") {
                                Ok(resp) => {
                                    // HttpClient validates framing; a torn
                                    // body would fail there.
                                    assert_eq!(resp.status, 200);
                                    completed += 1;
                                }
                                Err(_) => break 'outer,
                            }
                        }
                    }
                    completed
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_millis(40));
        let mut admin = HttpClient::connect(&addr).expect("connect");
        let resp = admin.post("/shutdown", b"").expect("shutdown responds");
        assert_eq!(resp.status, 200);
        stop.store(true, Ordering::Release);

        let total: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(total > 0, "clients made progress before shutdown");
    });
    // run() returns only after every worker drained its connection.
    server.join().unwrap().unwrap();
}

/// The `--max-body` cap, both sides: a `POST /update` body over the
/// configured limit gets a 413 whose text names the cap, while a daemon
/// with a raised cap accepts the *same* body and applies it.
#[test]
fn oversized_update_bodies_get_413_naming_the_configured_cap() {
    const CAP: usize = 1024;
    // A syntactically valid update comfortably over the small cap.
    let row = r#"{"unit":"u_pad","values":[["gender","F"]]}"#;
    let rows: Vec<&str> = std::iter::repeat_n(row, 40).collect();
    let big_body = format!("{{\"add\":[{}],\"threads\":2}}", rows.join(","));
    assert!(big_body.len() > CAP, "body must exceed the small cap");

    // Side one: the capped daemon refuses it with a self-explaining 413.
    let config = DaemonConfig { max_body: CAP, ..test_config() };
    let (addr, server) = spawn_daemon(snapshot(), config);
    let mut client = HttpClient::connect(&addr).expect("connect");
    let resp = client.post("/update", big_body.as_bytes()).expect("response");
    assert_eq!(resp.status, 413);
    let text = resp.text().unwrap().to_string();
    assert!(text.contains("limit 1024 bytes"), "413 must name the cap: {text:?}");

    // The daemon survives the refusal and still applies in-cap updates.
    let mut client = HttpClient::connect(&addr).expect("reconnect");
    let small = format!("{{\"add\":[{row}],\"threads\":2}}");
    assert!(small.len() <= CAP);
    let resp = client.post("/update", small.as_bytes()).expect("small update");
    assert_eq!(resp.status, 200, "{:?}", resp.text());
    assert_eq!(client.post("/shutdown", b"").unwrap().status, 200);
    server.join().unwrap().unwrap();

    // Side two: raising --max-body admits the identical body.
    let config = DaemonConfig { max_body: 1 << 20, ..test_config() };
    let (addr, server) = spawn_daemon(snapshot(), config);
    let mut client = HttpClient::connect(&addr).expect("connect");
    let resp = client.post("/update", big_body.as_bytes()).expect("big update");
    assert_eq!(resp.status, 200, "{:?}", resp.text());
    let stats = Json::parse(resp.text().unwrap()).expect("valid JSON");
    assert_eq!(stats.get("rows_added").unwrap().as_u64(), Some(40));
    assert_eq!(client.post("/shutdown", b"").unwrap().status, 200);
    server.join().unwrap().unwrap();
}

/// A daemon serving a memory-mapped snapshot answers byte-identically to
/// the in-process heap engine, and `POST /update` still works (the mapped
/// snapshot materializes its deferred maintenance store on first write).
#[test]
fn mmap_served_daemon_matches_heap_daemon() {
    let snap = snapshot();
    let path = std::env::temp_dir().join(format!("scube_daemon_mmap_{}.scube", std::process::id()));
    snap.save(&path).expect("save");
    let mapped: CubeSnapshot = CubeSnapshot::open_mmap(&path).expect("open_mmap");

    let reference = ConcurrentCubeEngine::new(snap);
    let labels = reference.cube().labels().clone();
    let (addr, server) = spawn_daemon(mapped, test_config());
    let mut client = HttpClient::connect(&addr).expect("connect");

    let mut cells: Vec<CellCoords> = vec![CellCoords::apex()];
    cells.extend(reference.cube().cells().map(|(c, _)| c.clone()).step_by(11).take(10));
    for coords in &cells {
        let resp = client
            .get(&format!("/cubes/main/query?{}", coords_query(&labels, coords)))
            .expect("query");
        assert_eq!(resp.status, 200);
        let values = reference.query(coords).expect("reference query");
        assert_eq!(
            resp.text().unwrap(),
            daemon::cell_json(&labels, coords, &values),
            "mapped serving must be bit-identical"
        );
    }

    let resp = client
        .post("/update", br#"{"add":[{"unit":"u_new","values":[["gender","F"]]}],"threads":2}"#)
        .expect("update over mapped snapshot");
    assert_eq!(resp.status, 200, "{:?}", resp.text());
    let stats = Json::parse(resp.text().unwrap()).expect("valid JSON");
    assert_eq!(stats.get("rows_added").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("new_units").unwrap().as_u64(), Some(1));

    assert_eq!(client.post("/shutdown", b"").unwrap().status, 200);
    server.join().unwrap().unwrap();
    std::fs::remove_file(&path).ok();
}

/// Byte-level robustness over a real socket: corrupted or truncated
/// requests must yield a 4xx/5xx or a clean close — and the daemon keeps
/// serving correct answers afterwards.
#[test]
fn malformed_wire_input_never_kills_the_daemon() {
    use std::io::{Read, Write};

    let snap = snapshot();
    let reference = ConcurrentCubeEngine::new(snap.clone());
    let labels = reference.cube().labels().clone();
    let (addr, server) = spawn_daemon(snap, test_config());

    let valid = b"GET /cubes/main/query?sa=&ca= HTTP/1.1\r\nHost: x\r\n\r\n";
    let attacks: Vec<Vec<u8>> = vec![
        b"\x00\x01\x02\x03garbage\r\n\r\n".to_vec(),
        b"GET / HTTP/9.9\r\n\r\n".to_vec(),
        b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
        b"POST /cubes/main/update HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\n"
            .to_vec(),
        b"POST /cubes/main/update HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort".to_vec(),
        vec![b'A'; 64 * 1024], // head far over the cap, no terminator
        b"GET /cubes/main/query?sa=%zz HTTP/1.1\r\n\r\n".to_vec(),
    ];
    // Plus deterministic single-byte corruptions of a valid request.
    let corruptions = (0..valid.len()).step_by(3).map(|i| {
        let mut bytes = valid.to_vec();
        bytes[i] ^= 0x5a;
        bytes
    });

    for (case, bytes) in attacks.into_iter().chain(corruptions).enumerate() {
        let mut sock = std::net::TcpStream::connect(&addr).expect("connect");
        sock.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        sock.write_all(&bytes).expect("write");
        let _ = sock.shutdown(std::net::Shutdown::Write);
        // Drain whatever comes back: either a status line or a clean close.
        let mut out = Vec::new();
        let _ = sock.take(1 << 20).read_to_end(&mut out);
        if !out.is_empty() {
            let text = String::from_utf8_lossy(&out);
            assert!(text.starts_with("HTTP/1.1 "), "case {case}: got {text:?}");
            let status: u16 = text[9..12].parse().unwrap_or(0);
            assert!((200..600).contains(&status), "case {case}: bad status in {text:?}");
        }
    }

    // The daemon survived everything above and still answers bit-identically.
    let mut client = HttpClient::connect(&addr).expect("connect");
    let apex = CellCoords::apex();
    let resp = client.get("/cubes/main/query?sa=&ca=").unwrap();
    assert_eq!(
        resp.text().unwrap(),
        daemon::cell_json(&labels, &apex, &reference.query(&apex).unwrap())
    );

    assert_eq!(client.post("/shutdown", b"").unwrap().status, 200);
    server.join().unwrap().unwrap();
}
