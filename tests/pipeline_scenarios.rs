//! Integration: the three demonstration scenarios end-to-end on the
//! synthetic Italian registry, asserting the planted ground truth.

use std::sync::OnceLock;

use scube::prelude::*;

fn italy() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| scube_datagen::italy(1200).to_dataset(vec![]).unwrap())
}

#[test]
fn scenario1_sector_units_detect_planted_bias() {
    let dataset = italy();
    let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
        .cube(CubeBuilder::new().min_support(10));
    let result = scube::run(dataset, &config).unwrap();

    // Women across sectors must be visibly segregated (planted bias).
    let women = result.cube.get_by_names(&[("gender", "F")], &[]).unwrap();
    let d_biased = women.dissimilarity.unwrap();
    assert!(d_biased > 0.15, "expected planted segregation, D = {d_biased}");

    // The same data without the planted bias scores much lower.
    let flat = scube_datagen::generate(scube_datagen::BoardsConfig::italy(1200).sector_bias(0.0))
        .to_dataset(vec![])
        .unwrap();
    let flat_result = scube::run(&flat, &config).unwrap();
    let d_flat =
        flat_result.cube.get_by_names(&[("gender", "F")], &[]).unwrap().dissimilarity.unwrap();
    assert!(d_biased > 2.0 * d_flat, "biased D {d_biased} should dominate unbiased D {d_flat}");
}

#[test]
fn scenario1_women_isolation_exceeds_share() {
    let dataset = italy();
    let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()));
    let result = scube::run(dataset, &config).unwrap();
    let women = result.cube.get_by_names(&[("gender", "F")], &[]).unwrap();
    // Isolation ≥ P always; with planted clustering it must be strictly
    // above by a margin.
    let p = women.minority_proportion().unwrap();
    let xpx = women.isolation.unwrap();
    assert!(xpx > p + 0.01, "xPx {xpx} should exceed P {p}");
    // Complement law.
    assert!((women.isolation.unwrap() + women.interaction.unwrap() - 1.0).abs() < 1e-9);
}

#[test]
fn scenario2_director_communities() {
    let dataset = italy();
    let config =
        ScubeConfig::new(UnitStrategy::ClusterIndividuals(ClusteringMethod::ConnectedComponents))
            .cube(CubeBuilder::new().min_support(10));
    let result = scube::run(dataset, &config).unwrap();
    let clustering = result.clustering.as_ref().unwrap();

    // Every director is assigned; one final-table row per director.
    assert_eq!(clustering.num_nodes(), dataset.num_individuals());
    assert_eq!(result.stats.n_rows, dataset.num_individuals());
    // Interlocks exist, so communities are fewer than directors.
    assert!(
        (clustering.num_clusters() as usize) < dataset.num_individuals(),
        "no interlocks were generated"
    );
    // The cube has cells and the apex accounts for everyone.
    let apex = result.cube.get(&CellCoords::apex()).unwrap();
    assert_eq!(apex.total as usize, result.stats.n_rows);
}

#[test]
fn scenario3_company_communities() {
    let dataset = italy();
    let config = ScubeConfig::new(UnitStrategy::ClusterGroups(ClusteringMethod::WeightThreshold {
        min_weight: 1,
    }))
    .cube(CubeBuilder::new().min_support(10));
    let result = scube::run(dataset, &config).unwrap();
    let clustering = result.clustering.as_ref().unwrap();

    assert_eq!(clustering.num_nodes(), dataset.num_groups());
    // Isolated companies reported by the projection are singletons.
    for &c in &result.isolated {
        let unit = clustering.of(c);
        assert_eq!(clustering.sizes()[unit as usize], 1, "isolated company {c} not a singleton");
    }
    // Directors sitting in two communities produce one row per community;
    // rows can exceed directors but never memberships.
    assert!(result.stats.n_rows >= dataset.num_individuals());
    assert!(
        result.stats.n_rows <= dataset.bipartite.memberships().len() + dataset.num_individuals()
    );
}

#[test]
fn clustering_methods_produce_different_granularity() {
    let dataset = italy();
    let cc = scube::run(
        dataset,
        &ScubeConfig::new(UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents)),
    )
    .unwrap();
    let cut = scube::run(
        dataset,
        &ScubeConfig::new(UnitStrategy::ClusterGroups(ClusteringMethod::WeightThreshold {
            min_weight: 2,
        })),
    )
    .unwrap();
    let cc_n = cc.clustering.as_ref().unwrap().num_clusters();
    let cut_n = cut.clustering.as_ref().unwrap().num_clusters();
    assert!(cut_n >= cc_n, "thresholding must refine components ({cut_n} vs {cc_n})");
    // The threshold method shrinks the giant component.
    assert!(
        cut.clustering.as_ref().unwrap().giant_size()
            <= cc.clustering.as_ref().unwrap().giant_size()
    );
}

#[test]
fn stoc_respects_attributes_end_to_end() {
    let dataset = italy();
    let config =
        ScubeConfig::new(UnitStrategy::ClusterGroups(ClusteringMethod::Stoc(StocParams {
            tau: 0.4,
            alpha: 0.3,
            horizon: 2,
            seed: 11,
        })));
    let result = scube::run(dataset, &config).unwrap();
    let clustering = result.clustering.as_ref().unwrap();
    assert_eq!(clustering.num_nodes(), dataset.num_groups());
    assert!(clustering.num_clusters() > 1);
    // Deterministic under the same seed.
    let again = scube::run(dataset, &config).unwrap();
    assert_eq!(clustering.assignment(), again.clustering.as_ref().unwrap().assignment());
}

#[test]
fn top_contexts_include_gender_dimensions() {
    let dataset = italy();
    let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
        .cube(CubeBuilder::new().min_support(20));
    let result = scube::run(dataset, &config).unwrap();
    let top = top_contexts(&result.cube, SegIndex::Dissimilarity, 20, 100);
    assert!(!top.is_empty());
    // The planted signal is on gender: some top context mentions it.
    let mentions_gender = top.iter().any(|(coords, _, _)| {
        coords.sa.iter().any(|&i| result.cube.labels().attr_of(i) == "gender")
    });
    assert!(mentions_gender, "no gender context among the top findings");
}
