//! Integration: cube materialization strategies, parallelism, and the
//! explorer agree with each other on realistic pipeline output.

use scube::prelude::*;

fn final_table() -> scube_data::TransactionDb {
    let dataset = scube_datagen::italy(800).to_dataset(vec![]).unwrap();
    let ft = scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .unwrap();
    ft.db
}

#[test]
fn closed_is_restriction_of_full_on_real_data() {
    let db = final_table();
    let full = CubeBuilder::new()
        .min_support(15)
        .materialize(Materialize::AllFrequent)
        .build(&db)
        .unwrap();
    let closed =
        CubeBuilder::new().min_support(15).materialize(Materialize::ClosedOnly).build(&db).unwrap();
    assert!(closed.len() <= full.len());
    assert!(closed.len() > 1, "closed cube should not be trivial");
    for (coords, v) in closed.cells() {
        assert_eq!(full.get(coords), Some(v), "cell {}", closed.labels().describe(coords));
    }
}

#[test]
fn explorer_resolves_all_full_cells_on_real_data() {
    let db = final_table();
    let full = CubeBuilder::new()
        .min_support(40)
        .materialize(Materialize::AllFrequent)
        .build(&db)
        .unwrap();
    let mut explorer: CubeExplorer = CubeExplorer::new(&db);
    for (coords, v) in full.cells() {
        let recomputed = explorer.values_at(coords).unwrap();
        assert_eq!(recomputed.minority, v.minority);
        assert_eq!(recomputed.total, v.total);
        match (recomputed.dissimilarity, v.dissimilarity) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-12),
            (a, b) => assert_eq!(a.is_some(), b.is_some()),
        }
    }
}

#[test]
fn parallel_build_is_identical_on_real_data() {
    let db = final_table();
    let serial = CubeBuilder::new()
        .min_support(10)
        .materialize(Materialize::AllFrequent)
        .parallel(false)
        .build(&db)
        .unwrap();
    let parallel = CubeBuilder::new()
        .min_support(10)
        .materialize(Materialize::AllFrequent)
        .parallel(true)
        .build(&db)
        .unwrap();
    assert_eq!(serial.len(), parallel.len());
    for (coords, v) in serial.cells() {
        assert_eq!(parallel.get(coords), Some(v));
    }
}

#[test]
fn min_support_monotonicity_on_real_data() {
    let db = final_table();
    let strict = CubeBuilder::new().min_support(100).build(&db).unwrap();
    let loose = CubeBuilder::new().min_support(20).build(&db).unwrap();
    assert!(strict.len() < loose.len());
    // Strict cells are a subset with identical values.
    for (coords, v) in strict.cells() {
        assert_eq!(loose.get(coords), Some(v));
    }
}

#[test]
fn cube_csv_sheet_is_well_formed() {
    let db = final_table();
    let cube = CubeBuilder::new().min_support(50).build(&db).unwrap();
    let csv = scube_cube::to_csv(&cube);
    let records = scube_common::csv::parse_str(&csv).unwrap();
    assert_eq!(records.len(), cube.len() + 1);
    let width = records[0].len();
    for r in &records {
        assert_eq!(r.len(), width);
    }
    // M ≤ T on every row.
    let m_col = records[0].iter().position(|c| c == "M").unwrap();
    let t_col = records[0].iter().position(|c| c == "T").unwrap();
    for r in &records[1..] {
        let m: u64 = r[m_col].parse().unwrap();
        let t: u64 = r[t_col].parse().unwrap();
        assert!(m <= t);
    }
}

#[test]
fn ablation_representations_agree_end_to_end() {
    use scube_bitmap::{DenseBitmap, TidVec};
    let db = final_table();
    let builder = CubeBuilder::new().min_support(25).materialize(Materialize::AllFrequent);
    let ewah = builder.build(&db).unwrap();
    let dense = builder.build_with::<DenseBitmap>(&db).unwrap();
    let tidvec = builder.build_with::<TidVec>(&db).unwrap();
    assert_eq!(ewah.len(), dense.len());
    assert_eq!(dense.len(), tidvec.len());
    for (coords, v) in ewah.cells() {
        assert_eq!(dense.get(coords), Some(v));
        assert_eq!(tidvec.get(coords), Some(v));
    }
}
