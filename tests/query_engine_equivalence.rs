//! The query engine's three tiers (materialized store, LRU cache, explorer
//! fallback) must return identical values for arbitrary ⋆-combinations —
//! including empty SA and CA sides — and a cache hit must equal the cold
//! computation it replaced, even under eviction pressure.

use scube::prelude::*;
use scube_data::TransactionDb;

fn final_table() -> TransactionDb {
    let dataset = scube_datagen::italy(400).to_dataset(vec![]).unwrap();
    scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .unwrap()
        .db
}

/// A closed-only engine answering the full frequent universe: cells missing
/// from the store exercise the fallback, and every answer must equal the
/// full cube's materialized value.
#[test]
fn engine_over_closed_store_matches_full_cube() {
    let db = final_table();
    let minsup = (db.len() as u64 / 50).max(1);
    let full = CubeBuilder::new()
        .min_support(minsup)
        .materialize(Materialize::AllFrequent)
        .build(&db)
        .unwrap();
    let mut engine: CubeQueryEngine = CubeQueryEngine::from_db(
        &db,
        &CubeBuilder::new().min_support(minsup).materialize(Materialize::ClosedOnly),
    )
    .unwrap();
    assert!(engine.cube().len() < full.len(), "closed store should compress");
    let mut saw_empty_sa = false;
    let mut saw_empty_ca = false;
    for (coords, v) in full.cells() {
        saw_empty_sa |= coords.sa.is_empty();
        saw_empty_ca |= coords.ca.is_empty();
        assert_eq!(&engine.query(coords).unwrap(), v, "cold: {coords:?}");
    }
    assert!(saw_empty_sa && saw_empty_ca, "workload must cover empty ⋆ sides");
    let cold = engine.stats();
    assert!(cold.explored > 0, "some cells must fall back");

    // Warm pass: every previous fallback is now a cache hit with the exact
    // same value.
    for (coords, v) in full.cells() {
        assert_eq!(&engine.query(coords).unwrap(), v, "warm: {coords:?}");
    }
    let warm = engine.stats();
    assert_eq!(warm.explored, cold.explored, "warm pass must not recompute");
    assert_eq!(warm.cached, cold.explored, "every fallback must hit the cache");
}

/// Non-frequent ⋆-combinations (below min-support, so in *neither* cube)
/// still answer exactly — compared against a fresh explorer over the
/// original database.
#[test]
fn engine_matches_explorer_on_non_materialized_combinations() {
    let db = final_table();
    let minsup = (db.len() as u64 / 10).max(1); // aggressive: few materialized cells
    let mut engine: CubeQueryEngine =
        CubeQueryEngine::from_db(&db, &CubeBuilder::new().min_support(minsup)).unwrap();
    let mut reference: CubeExplorer = CubeExplorer::new(&db);

    // Probe the coordinates of sampled transactions plus their ⋆
    // projections (SA-only, CA-only, apex) — frequent or not.
    let mut probes = vec![CellCoords::apex()];
    for t in (0..db.len()).step_by(37) {
        let items = db.transaction(t).to_vec();
        let coords = CellCoords::from_itemset(&items, &db);
        probes.push(CellCoords::new(coords.sa.clone(), vec![]));
        probes.push(CellCoords::new(vec![], coords.ca.clone()));
        probes.push(coords);
    }
    for coords in &probes {
        let expected = reference.values_at(coords).unwrap();
        assert_eq!(engine.query(coords).unwrap(), expected, "{coords:?}");
        // And the cached re-ask is identical.
        assert_eq!(engine.query(coords).unwrap(), expected, "cached {coords:?}");
        assert_eq!(engine.unit_breakdown(coords), reference.unit_breakdown(coords));
    }
}

/// A tiny cache forces evictions mid-workload; evicted cells recompute to
/// the same values, so capacity is purely a latency knob.
#[test]
fn eviction_pressure_does_not_change_answers() {
    let db = final_table();
    let minsup = (db.len() as u64 / 50).max(1);
    let full = CubeBuilder::new()
        .min_support(minsup)
        .materialize(Materialize::AllFrequent)
        .build(&db)
        .unwrap();
    let closed = CubeBuilder::new().min_support(minsup).materialize(Materialize::ClosedOnly);
    let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &closed).unwrap();
    let mut tiny = scube_cube::CubeQueryEngine::with_cache_capacity(snap.clone(), 3);
    let mut disabled = scube_cube::CubeQueryEngine::with_cache_capacity(snap, 0);
    for round in 0..2 {
        for (coords, v) in full.cells() {
            assert_eq!(&tiny.query(coords).unwrap(), v, "tiny cache, round {round}");
            assert_eq!(&disabled.query(coords).unwrap(), v, "no cache, round {round}");
        }
    }
    // With capacity 0 every fallback recomputes; with capacity 3 at least
    // the most recent cells can hit.
    assert_eq!(disabled.stats().cached, 0);
    assert!(tiny.stats().explored >= disabled.stats().explored / 2);
}

/// Snapshot persistence composes with the engine: load → query equals the
/// in-memory build on every tier.
#[test]
fn loaded_snapshot_serves_identically() {
    let db = final_table();
    let minsup = (db.len() as u64 / 50).max(1);
    let closed = CubeBuilder::new().min_support(minsup).materialize(Materialize::ClosedOnly);
    let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &closed).unwrap();
    let full = CubeBuilder::new()
        .min_support(minsup)
        .materialize(Materialize::AllFrequent)
        .build(&db)
        .unwrap();
    let loaded: CubeSnapshot = CubeSnapshot::from_bytes(&snap.to_bytes()).unwrap();
    let mut from_memory = scube_cube::CubeQueryEngine::new(snap);
    let mut from_disk = scube_cube::CubeQueryEngine::new(loaded);
    for (coords, v) in full.cells() {
        assert_eq!(&from_memory.query(coords).unwrap(), v);
        assert_eq!(&from_disk.query(coords).unwrap(), v);
    }
    assert_eq!(from_memory.stats(), from_disk.stats());
}
