//! Differential proof that the mmap engine is the heap engine: for every
//! posting representation × materialization strategy, a snapshot opened
//! with `open_mmap` must re-save to the exact bytes of the file it was
//! opened from, answer the full query universe identically to the
//! heap-loaded snapshot, and fold updates to bit-identical results. On
//! top of that, truncated and corrupted files must make `open_mmap` error
//! cleanly — never panic, never UB.

use scube::prelude::*;
use scube_bitmap::{AdaptivePosting, DenseBitmap, EwahBitmap, Posting, TidVec};
use scube_data::{Attribute, Schema, TransactionDb, TransactionDbBuilder};

/// A database a bit richer than the compat golden: three attributes, four
/// units, enough rows that every representation exercises real payloads.
fn db() -> TransactionDb {
    let schema =
        Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("sector")])
            .unwrap();
    let mut b = TransactionDbBuilder::new(schema);
    let sexes = ["F", "M"];
    let ages = ["young", "mid", "old"];
    let sectors = ["tech", "retail", "finance"];
    let units = ["u0", "u1", "u2", "u3"];
    for i in 0..200usize {
        b.add_row(
            &[vec![sexes[i % 2]], vec![ages[(i / 2) % 3]], vec![sectors[(i / 7) % 3]]],
            units[(i / 5) % 4],
        )
        .unwrap();
    }
    b.finish()
}

fn save_to(bytes: &[u8], name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, bytes).unwrap();
    path
}

fn check_rep<P>(rep: &str, materialize: Materialize, measures: MeasureSet)
where
    P: Posting + Send + Sync + PartialEq + std::fmt::Debug,
{
    let db = db();
    let snap: CubeSnapshot<P> =
        CubeSnapshot::from_db(&db, &CubeBuilder::new().materialize(materialize).measures(measures))
            .unwrap();
    let tag = measures.bits();
    let path =
        std::env::temp_dir().join(format!("scube_mmap_diff_{rep}_{materialize:?}_{tag}.scube"));
    snap.save(&path).unwrap();
    let file_bytes = std::fs::read(&path).unwrap();

    let heap: CubeSnapshot<P> = CubeSnapshot::load(&path).unwrap();
    let mapped: CubeSnapshot<P> = CubeSnapshot::open_mmap(&path).unwrap();
    let verified: CubeSnapshot<P> = CubeSnapshot::open_mmap_verified(&path).unwrap();

    // Re-save is byte-identical to the opened file, for every open path.
    assert_eq!(heap.to_bytes(), file_bytes, "{rep} heap re-save");
    assert_eq!(mapped.to_bytes(), file_bytes, "{rep} mapped re-save");
    assert_eq!(verified.to_bytes(), file_bytes, "{rep} verified re-save");

    // The cube halves agree exactly.
    assert_eq!(mapped.cube(), heap.cube(), "{rep}");
    assert_eq!(mapped.vertical().units(), heap.vertical().units(), "{rep}");
    assert_eq!(mapped.vertical().postings(), heap.vertical().postings(), "{rep}");

    // The full query universe — every materialized cell plus explorer
    // fallbacks over every single-item coordinate pair — answers
    // bit-identically through both engines.
    let coords: Vec<_> = heap.cube().cells().map(|(c, _)| c.clone()).collect();
    let mut heap_engine = CubeQueryEngine::new(heap);
    let mut mapped_engine = CubeQueryEngine::new(mapped);
    for c in &coords {
        assert_eq!(
            heap_engine.query(c).unwrap(),
            mapped_engine.query(c).unwrap(),
            "{rep} cell {c:?}"
        );
    }
    let n_items = heap_engine.cube().labels().num_items();
    let sa_items: Vec<u32> =
        (0..n_items as u32).filter(|&i| heap_engine.cube().labels().is_sa_item(i)).collect();
    let ca_items: Vec<u32> =
        (0..n_items as u32).filter(|&i| !heap_engine.cube().labels().is_sa_item(i)).collect();
    for &sa in &sa_items {
        for &ca in &ca_items {
            let c = scube_cube::CellCoords { sa: vec![sa], ca: vec![ca] };
            assert_eq!(
                heap_engine.query(&c).unwrap(),
                mapped_engine.query(&c).unwrap(),
                "{rep} fallback {c:?}"
            );
        }
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn mmap_matches_heap_for_every_representation_and_strategy() {
    for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
        check_rep::<EwahBitmap>("ewah", materialize, MeasureSet::FULL);
        check_rep::<DenseBitmap>("dense", materialize, MeasureSet::FULL);
        check_rep::<TidVec>("tidvec", materialize, MeasureSet::FULL);
        check_rep::<AdaptivePosting>("adaptive", materialize, MeasureSet::FULL);
    }
}

#[test]
fn mmap_matches_heap_on_multi_index_snapshots() {
    // A proper measure subset saves as snapshot v5; the mapped open must
    // answer the same universe as the heap load — and the postings behind
    // a v5 file stay zero-copy.
    let subset = MeasureSet::only(SegIndex::Dissimilarity)
        .with(SegIndex::Information)
        .with(SegIndex::Atkinson);
    for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
        check_rep::<EwahBitmap>("ewah", materialize, subset);
        check_rep::<AdaptivePosting>("adaptive", materialize, subset);
    }

    let snap: CubeSnapshot =
        CubeSnapshot::from_db(&db(), &CubeBuilder::new().measures(subset)).unwrap();
    let bytes = snap.to_bytes();
    assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 5, "subset saves as v5");
    let path = save_to(&bytes, "scube_mmap_diff_v5_zero_copy.scube");
    let mapped: CubeSnapshot = CubeSnapshot::open_mmap(&path).unwrap();
    assert_eq!(mapped.measures(), subset, "mapped open carries the measure set");
    let mapped_heap: usize = mapped.vertical().postings().iter().map(|p| p.heap_bytes()).sum();
    assert_eq!(mapped_heap, 0, "v5 postings are zero-copy");
    std::fs::remove_file(&path).ok();
}

#[test]
fn mapped_updates_match_heap_updates_bit_for_bit() {
    let db = db();
    let snap: CubeSnapshot =
        CubeSnapshot::from_db(&db, &CubeBuilder::new().materialize(Materialize::ClosedOnly))
            .unwrap();
    let path = std::env::temp_dir().join("scube_mmap_diff_update.scube");
    snap.save(&path).unwrap();

    let mut heap: CubeSnapshot = CubeSnapshot::load(&path).unwrap();
    let mut mapped: CubeSnapshot = CubeSnapshot::open_mmap(&path).unwrap();

    // An update that appends rows (new unit included) — the mapped
    // snapshot must materialize its deferred maintenance store, copy the
    // touched postings onto the heap, and land bit-identical to the heap
    // path.
    let mut batch = UpdateBatch::new();
    batch.add_row(&[("sex", "F"), ("age", "old"), ("sector", "tech")], "u9");
    batch.add_row(&[("sex", "M"), ("age", "young"), ("sector", "retail")], "u0");
    let heap_stats = heap.apply_update(&batch).unwrap();
    let mapped_stats = mapped.apply_update(&batch).unwrap();
    assert_eq!(heap_stats.rows_added, mapped_stats.rows_added);
    assert_eq!(heap.to_bytes(), mapped.to_bytes(), "post-update bytes");

    // The concurrent engine path materializes the deferred store too.
    let reopened: CubeSnapshot = CubeSnapshot::open_mmap(&path).unwrap();
    let mut engine = ConcurrentCubeEngine::new(reopened);
    engine.apply_update(&batch).unwrap();
    let coords = engine.cube().coords_by_names(&[("sex", "F")], &[]).unwrap();
    assert_eq!(engine.query(&coords).unwrap(), *heap.cube().get(&coords).unwrap());

    std::fs::remove_file(&path).ok();
}

#[test]
fn mapped_postings_live_off_heap_until_mutated() {
    let db = db();
    let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
    let path = std::env::temp_dir().join("scube_mmap_diff_heap_bytes.scube");
    snap.save(&path).unwrap();

    let heap: CubeSnapshot = CubeSnapshot::load(&path).unwrap();
    let mapped: CubeSnapshot = CubeSnapshot::open_mmap(&path).unwrap();
    let heap_bytes = |s: &CubeSnapshot| -> usize {
        s.vertical().postings().iter().map(|p| p.heap_bytes()).sum()
    };
    assert!(heap_bytes(&heap) > 0, "heap postings occupy the heap");
    assert_eq!(heap_bytes(&mapped), 0, "mapped postings are zero-copy");

    std::fs::remove_file(&path).ok();
}

#[test]
fn legacy_versions_are_rejected_by_open_mmap_with_guidance() {
    let golden = include_bytes!("golden/snapshot_v3.scube");
    let path = save_to(golden, "scube_mmap_diff_v3_reject.scube");
    let err = CubeSnapshot::<EwahBitmap>::open_mmap(&path).unwrap_err();
    assert!(err.to_string().contains("re-save"), "points at the conversion path: {err}");
    // The heap loader happily converts it.
    let loaded: CubeSnapshot = CubeSnapshot::load(&path).unwrap();
    let v4_path = save_to(&loaded.to_bytes(), "scube_mmap_diff_v3_converted.scube");
    assert!(CubeSnapshot::<EwahBitmap>::open_mmap(&v4_path).is_ok());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&v4_path).ok();
}

#[test]
fn truncated_and_corrupted_mmap_opens_error_never_panic() {
    let db = db();
    let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
    let good = snap.to_bytes();

    // Every truncation point: open_mmap must error (directory, meta
    // checksum, slot bounds, or store bounds — depending on the cut).
    let path = std::env::temp_dir().join("scube_mmap_diff_trunc.scube");
    for cut in (0..good.len()).step_by(7).chain([good.len() - 1]) {
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(
            CubeSnapshot::<EwahBitmap>::open_mmap(&path).is_err(),
            "truncate at {cut} must error"
        );
    }

    // Flipping any byte of the meta-checksummed prefix (directory, meta
    // region, posting directory) is caught eagerly.
    let slots_off = u64::from_le_bytes(good[24 + 32..24 + 40].try_into().unwrap()) as usize;
    for at in [24, 50, 96, 100, slots_off - 1] {
        let mut bad = good.clone();
        bad[at] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(CubeSnapshot::<EwahBitmap>::open_mmap(&path).is_err(), "flip at {at} must error");
    }

    // A flipped byte *anywhere* is caught by the verified open.
    for at in [30, 99, slots_off + 3, good.len() - 1] {
        let mut bad = good.clone();
        bad[at] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(
            CubeSnapshot::<EwahBitmap>::open_mmap_verified(&path).is_err(),
            "verified flip at {at} must error"
        );
    }

    // Wrong representation tag.
    std::fs::write(&path, &good).unwrap();
    assert!(CubeSnapshot::<TidVec>::open_mmap(&path).is_err(), "tag mismatch");

    std::fs::remove_file(&path).ok();
}
