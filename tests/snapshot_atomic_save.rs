//! Interrupted-save regression: killing a process mid-`save` must never
//! leave an unloadable snapshot at the target path. Before saves went
//! through a temp-file + fsync + rename, a kill mid-`std::fs::write`
//! truncated the target in place — `scube update` could destroy its own
//! input. The test re-executes itself as a child that saves in a tight
//! loop, SIGKILLs it at staggered delays, and asserts the target always
//! loads.

use scube::prelude::*;
use scube_data::{Attribute, Schema, TransactionDb, TransactionDbBuilder};

const CHILD_ENV: &str = "SCUBE_ATOMIC_SAVE_CHILD";

/// A database big enough that one serialized snapshot spans many write
/// syscalls — a kill has a real window to land mid-write.
fn big_db() -> TransactionDb {
    let schema =
        Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("sector")])
            .unwrap();
    let mut b = TransactionDbBuilder::new(schema);
    let sexes = ["F", "M"];
    let ages = ["y", "m", "o", "s", "e"];
    let sectors = ["a", "b", "c", "d", "e", "f", "g"];
    for i in 0..20_000usize {
        b.add_row(
            &[vec![sexes[i % 2]], vec![ages[(i / 2) % 5]], vec![sectors[(i / 11) % 7]]],
            &format!("u{}", (i / 13) % 97),
        )
        .unwrap();
    }
    b.finish()
}

/// Child mode: save snapshots to the target path forever (alternating two
/// builds so the bytes actually change), until killed.
fn writer_loop(target: &str) -> ! {
    let snap: CubeSnapshot = CubeSnapshot::from_db(&big_db(), &CubeBuilder::new()).unwrap();
    let closed: CubeSnapshot =
        CubeSnapshot::from_db(&big_db(), &CubeBuilder::new().materialize(Materialize::ClosedOnly))
            .unwrap();
    // Signal readiness: the parent waits for the first complete save.
    snap.save(target).unwrap();
    std::fs::write(format!("{target}.ready"), b"1").unwrap();
    loop {
        closed.save(target).unwrap();
        snap.save(target).unwrap();
    }
}

#[test]
fn killed_writer_never_leaves_torn_snapshot() {
    if let Ok(target) = std::env::var(CHILD_ENV) {
        writer_loop(&target);
    }

    let dir = std::env::temp_dir().join(format!("scube_atomic_kill_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let target = dir.join("victim.scube");
    let ready = dir.join("victim.scube.ready");
    let exe = std::env::current_exe().unwrap();

    let spawn_writer = || {
        std::process::Command::new(&exe)
            .env(CHILD_ENV, target.to_str().unwrap())
            .arg("killed_writer_never_leaves_torn_snapshot")
            .arg("--exact")
            .arg("--nocapture")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn child writer")
    };

    for round in 0..4u64 {
        std::fs::remove_file(&ready).ok();
        let mut child = spawn_writer();

        // Wait for the child's first complete save (its build takes a
        // moment), then let the save loop churn briefly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        while !ready.exists() {
            assert!(std::time::Instant::now() < deadline, "child never became ready");
            if let Some(status) = child.try_wait().unwrap() {
                panic!("child writer exited early: {status}");
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // Stagger the delay so the SIGKILL lands at varied points of the
        // write / fsync / rename cycle.
        std::thread::sleep(std::time::Duration::from_millis(20 + 17 * round));
        child.kill().unwrap();
        child.wait().unwrap();

        // The invariant: whatever instant the kill hit, the target is a
        // complete, loadable snapshot (the old bytes or the new ones —
        // never a torn mixture).
        let loaded: std::result::Result<CubeSnapshot, _> = CubeSnapshot::load(&target);
        assert!(loaded.is_ok(), "round {round}: target unloadable after kill: {:?}", loaded.err());
    }

    std::fs::remove_dir_all(&dir).ok();
}
