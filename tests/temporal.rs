//! Integration: temporal snapshot analysis on the synthetic Estonian
//! registry (the paper's 20-year dataset with interval-labelled edges).

use scube::prelude::*;

fn estonia() -> (scube_datagen::SyntheticBoards, Dataset) {
    let boards = scube_datagen::estonia(1200);
    let years = boards.snapshot_years(5);
    let dataset = boards.to_dataset(years).unwrap();
    (boards, dataset)
}

#[test]
fn snapshots_are_produced_per_date_in_order() {
    let (_, dataset) = estonia();
    let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
        .cube(CubeBuilder::new().min_support(5));
    let snaps = scube::run_snapshots(&dataset, &config).unwrap();
    assert_eq!(snaps.len(), 5);
    let dates: Vec<i64> = snaps.iter().map(|(d, _)| *d).collect();
    let mut sorted = dates.clone();
    sorted.sort_unstable();
    assert_eq!(dates, sorted);
    for (_, r) in &snaps {
        assert!(!r.cube.is_empty());
    }
}

#[test]
fn snapshot_population_matches_active_memberships() {
    let (_, dataset) = estonia();
    let config =
        ScubeConfig::new(UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents))
            .cube(CubeBuilder::new().min_support(5));
    for &year in &[1997i64, 2005, 2012] {
        let snap = dataset.snapshot(year);
        let result = scube::run(&snap, &config).unwrap();
        // Rows are (individual, unit) pairs of active members only:
        // count distinct active individuals as a lower bound.
        let mut active: std::collections::HashSet<u32> = Default::default();
        for m in snap.bipartite.memberships() {
            active.insert(m.individual);
        }
        assert!(result.stats.n_rows >= active.len());
        // Nobody inactive appears: rows ≤ active memberships.
        assert!(result.stats.n_rows <= snap.bipartite.memberships().len() + active.len());
    }
}

#[test]
fn planted_feminization_drift_is_visible() {
    let (_, dataset) = estonia();
    let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
        .cube(CubeBuilder::new().min_support(5));
    let snaps = scube::run_snapshots(&dataset, &config).unwrap();
    let share = |r: &ScubeResult| {
        r.cube
            .get_by_names(&[("gender", "F")], &[])
            .and_then(|v| v.minority_proportion())
            .unwrap_or(0.0)
    };
    let first = share(&snaps.first().unwrap().1);
    let last = share(&snaps.last().unwrap().1);
    assert!(last > first + 0.02, "female share should drift upward: {first:.3} → {last:.3}");
}

#[test]
fn untimed_run_covers_all_memberships() {
    let (boards, dataset) = estonia();
    // Without snapshot filtering, every membership row contributes.
    let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
        .cube(CubeBuilder::new().min_support(5));
    let result = scube::run(&dataset, &config).unwrap();
    assert!(result.stats.n_rows > 0);
    assert_eq!(result.stats.n_memberships, boards.membership.len());
}

#[test]
fn empty_snapshot_yields_empty_cube_not_error() {
    let (_, dataset) = estonia();
    let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()));
    // Year far outside the registry range: nothing is active.
    let snap = dataset.snapshot(1800);
    let result = scube::run(&snap, &config).unwrap();
    assert_eq!(result.stats.n_rows, 0);
    // The apex cell always exists; it is just empty.
    let apex = result.cube.get(&CellCoords::apex()).unwrap();
    assert_eq!(apex.total, 0);
}
