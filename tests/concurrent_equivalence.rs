//! Property test for the concurrent serving layer: N threads querying the
//! full cell universe through a shared `ConcurrentCubeEngine` (`&self`)
//! must produce results bit-identical to the serial `CubeQueryEngine` over
//! the same snapshot — for every posting representation (EWAH / dense /
//! tid-vector), on datagen registries of varying planted skew, and under
//! eviction pressure (shard capacity far below the fallback set, so shards
//! churn mid-workload).

use proptest::prelude::*;
use scube::prelude::*;
use scube_bitmap::{DenseBitmap, EwahBitmap, Posting, TidVec};
use scube_cube::ConcurrentCubeEngine;
use scube_data::TransactionDb;
use scube_datagen::BoardsConfig;

const THREADS: usize = 4;

fn final_table(sector_bias: f64, seed: u64, n_companies: usize) -> TransactionDb {
    let boards = scube_datagen::generate(
        BoardsConfig::italy(n_companies).sector_bias(sector_bias).seed(seed),
    );
    let dataset = boards.to_dataset(vec![]).expect("generator output is valid");
    scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .expect("pipeline succeeds")
        .db
}

/// Serial vs concurrent over one representation: same snapshot, same
/// universe, bit-identical answers through `query_batch`, interleaved
/// shared-`&self` stripes, and a shard cache under eviction pressure.
fn check_representation<P: Posting + Send + Sync>(db: &TransactionDb, minsup: u64, what: &str) {
    let full = CubeBuilder::new()
        .min_support(minsup)
        .materialize(Materialize::AllFrequent)
        .build_with::<P>(db)
        .expect("full cube builds");
    let closed = CubeBuilder::new().min_support(minsup).materialize(Materialize::ClosedOnly);
    let snap: CubeSnapshot<P> = CubeSnapshot::from_db(db, &closed).expect("snapshot builds");

    let mut universe: Vec<CellCoords> = full.cells().map(|(c, _)| c.clone()).collect();
    universe.sort();
    let fallback = universe.iter().filter(|c| snap.cube().get(c).is_none()).count();

    // The serial engine is the reference; gather its answers first.
    let mut serial = CubeQueryEngine::new(snap.clone());
    let expected: Vec<IndexValues> =
        universe.iter().map(|c| serial.query(c).expect("serial query succeeds")).collect();

    // 1. Batched fan-out over scoped threads, default shard config.
    let engine = ConcurrentCubeEngine::new(snap.clone());
    let batch = engine.query_batch(&universe, THREADS).expect("batch succeeds");
    assert_eq!(batch, expected, "{what}: query_batch vs serial");
    assert_eq!(engine.stats().total(), universe.len() as u64, "{what}: lost stats updates");

    // 2. Raw shared-`&self` access: interleaved stripes so every thread
    //    touches every shard, cold and warm rounds.
    let engine = ConcurrentCubeEngine::new(snap.clone());
    for round in 0..2 {
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (engine, universe, expected) = (&engine, &universe, &expected);
                scope.spawn(move || {
                    for (c, v) in universe.iter().zip(expected).skip(t).step_by(THREADS) {
                        assert_eq!(
                            engine.query(c).expect("query succeeds"),
                            *v,
                            "{what}: round {round}, {c:?}"
                        );
                    }
                });
            }
        });
    }
    assert_eq!(engine.stats().total(), 2 * universe.len() as u64, "{what}: stats after stripes");

    // 3. Eviction pressure: total capacity a quarter of the fallback set
    //    (split over 8 shards), so cells are evicted and recomputed
    //    mid-workload — answers must not change.
    let tiny = ConcurrentCubeEngine::with_config(snap.clone(), 8, (fallback / 4).max(8));
    for _ in 0..2 {
        let batch = tiny.query_batch(&universe, THREADS).expect("tiny-cache batch succeeds");
        assert_eq!(batch, expected, "{what}: eviction pressure changed answers");
    }

    // Cross-check against the materialized full cube too (the ground truth
    // the serial engine was itself validated against).
    for (c, v) in universe.iter().zip(&expected) {
        assert_eq!(full.get(c), Some(v), "{what}: serial reference diverged from full cube");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn concurrent_serving_is_bit_identical_across_representations(
        bias_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        // Planted skew from none (0.0) to the full per-sector propensities
        // (1.0): changes itemset correlation, the closed-cell compression,
        // and therefore how much of the universe is served by fallback.
        let bias = [0.0, 0.5, 1.0][bias_idx];
        let db = final_table(bias, seed, 250);
        let minsup = (db.len() as u64 / 50).max(1);
        check_representation::<EwahBitmap>(&db, minsup, "ewah");
        check_representation::<DenseBitmap>(&db, minsup, "dense");
        check_representation::<TidVec>(&db, minsup, "tidvec");
    }
}
