//! Integration: the file-based path (CSV inputs on disk, wizard, report
//! output) produces the same analysis as the in-memory path.

use scube::prelude::*;

#[test]
fn disk_and_memory_paths_agree() {
    let boards = scube_datagen::italy(400);
    let dir = std::env::temp_dir().join(format!("scube_it_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    boards.individuals.write_csv_path(dir.join("individuals.csv")).unwrap();
    boards.groups.write_csv_path(dir.join("groups.csv")).unwrap();
    boards.membership.write_csv_path(dir.join("membership.csv")).unwrap();

    let from_disk = Wizard::new()
        .individuals_csv(dir.join("individuals.csv"), boards.individuals_spec())
        .groups_csv(dir.join("groups.csv"), boards.groups_spec())
        .membership_csv(dir.join("membership.csv"), boards.membership_spec())
        .units(UnitStrategy::GroupAttribute("sector".into()))
        .min_support(10)
        .run()
        .unwrap();

    let in_memory = Wizard::new()
        .individuals(boards.individuals.clone(), boards.individuals_spec())
        .groups(boards.groups.clone(), boards.groups_spec())
        .membership(boards.membership.clone(), boards.membership_spec())
        .units(UnitStrategy::GroupAttribute("sector".into()))
        .min_support(10)
        .run()
        .unwrap();

    assert_eq!(from_disk.cube.len(), in_memory.cube.len());
    for (coords, v) in in_memory.cube.cells() {
        assert_eq!(from_disk.cube.get(coords), Some(v));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn visualizer_reports_parse_back() {
    let boards = scube_datagen::italy(300);
    let dataset = boards.to_dataset(vec![]).unwrap();
    let result = scube::run(
        &dataset,
        &ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
            .cube(CubeBuilder::new().min_support(10)),
    )
    .unwrap();

    let dir = std::env::temp_dir().join(format!("scube_it_viz_{}", std::process::id()));
    let written = Visualizer::new(&dir).min_total(10).write_all(&result).unwrap();
    assert_eq!(written.len(), 4);

    // cube.csv parses and has one row per cell.
    let cube_csv = std::fs::read_to_string(dir.join("cube.csv")).unwrap();
    let records = scube_common::csv::parse_str(&cube_csv).unwrap();
    assert_eq!(records.len(), result.cube.len() + 1);

    // final_table.csv parses back into a relation of the right shape.
    let ft = Relation::read_csv_path(dir.join("final_table.csv")).unwrap();
    assert_eq!(ft.len(), result.final_table.len());
    assert!(ft.columns().contains(&"unitID".to_string()));

    // top_contexts.csv is ranked descending.
    let top_csv = std::fs::read_to_string(dir.join("top_contexts.csv")).unwrap();
    let top = scube_common::csv::parse_str(&top_csv).unwrap();
    let values: Vec<f64> = top[1..].iter().map(|r| r[1].parse().unwrap()).collect();
    for w in values.windows(2) {
        assert!(w[0] >= w[1]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn final_table_csv_reencodes_identically() {
    // finalTable.csv written by the Visualizer can be re-ingested through
    // the tabular shortcut and yields the same cube.
    let boards = scube_datagen::italy(300);
    let dataset = boards.to_dataset(vec![]).unwrap();
    let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
        .cube(CubeBuilder::new().min_support(10));
    let original = scube::run(&dataset, &config).unwrap();

    let rel = scube::final_table_relation(&original.final_table);
    let spec = FinalTableSpec::new("unitID")
        .sa("gender")
        .sa("age")
        .sa("birthplace")
        .ca("residence")
        .ca_multi("region")
        .ca_multi("area");
    let reencoded =
        scube::run_final_table(&rel, &spec, &CubeBuilder::new().min_support(10)).unwrap();

    assert_eq!(original.cube.len(), reencoded.cube.len());
    // Compare a meaningful cell.
    let a = original.cube.get_by_names(&[("gender", "F")], &[]).unwrap();
    let b = reencoded.cube.get_by_names(&[("gender", "F")], &[]).unwrap();
    assert_eq!(a.minority, b.minority);
    assert_eq!(a.total, b.total);
    assert_eq!(a.dissimilarity, b.dissimilarity);
}
