//! Bounded-memory chunked-build regression (harness = false so the
//! counting global allocator owns the whole process).
//!
//! On a ≥10⁵-row wide table, the chunked path (`run_final_table_csv_chunked`:
//! tid-order chunks tail-appended into the vertical postings, horizontal
//! table never materialized) must peak well under the resident path
//! (`FinalTableSpec::load_csv` + `CubeSnapshot::from_db`), while producing
//! a byte-identical snapshot. The resident peak necessarily covers the
//! whole horizontal `TransactionDb` *plus* the build output; the chunked
//! peak holds only the output (postings + cube) and one staged chunk, so
//! it must stay under half the resident peak here — the fixed fraction
//! this test pins.

use scube::prelude::*;
use scube_bench::alloc::{measure, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const ROWS: usize = 120_000;
const ATTRS: usize = 12;
/// Smaller than `DEFAULT_CHUNK_ROWS`: at 64 Ki rows the staged chunk
/// itself (one `Vec<ItemId>` per row) would be a sizable slice of this
/// table, muddying the output-bounded-vs-input-bounded contrast the test
/// exists to pin. 8 Ki rows keeps staging a rounding error while still
/// flushing only ~15 times.
const CHUNK_ROWS: usize = 8_192;

/// The synthetic wide table from `tests/streaming_ingest.rs`, scaled to
/// 1.2×10⁵ rows: 12 attribute columns + unitID, five distinct values per
/// column, so the horizontal items/offsets — what the chunked path never
/// allocates — dominate the resident build's peak.
fn write_table(path: &std::path::Path) -> u64 {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).unwrap());
    let header: Vec<String> = (0..ATTRS).map(|a| format!("attr{a:02}")).collect();
    writeln!(f, "{},unitID", header.join(",")).unwrap();
    for r in 0..ROWS {
        for a in 0..ATTRS {
            write!(f, "value_{a:02}_{},", (r / (a + 1)) % 5).unwrap();
        }
        writeln!(f, "unit{}", r % 97).unwrap();
    }
    f.into_inner().unwrap().sync_all().unwrap();
    std::fs::metadata(path).unwrap().len()
}

fn spec() -> FinalTableSpec {
    let mut spec = FinalTableSpec::new("unitID");
    for a in 0..ATTRS {
        if a % 2 == 0 {
            spec = spec.sa(format!("attr{a:02}"));
        } else {
            spec = spec.ca(format!("attr{a:02}"));
        }
    }
    spec
}

fn main() {
    let dir = std::env::temp_dir().join(format!("scube_chunked_mem_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("wide.csv");
    write_table(&csv);

    let spec = spec();
    // High min support keeps mining transients (candidate tidsets) small
    // relative to the table, so the peaks contrast what the test is about:
    // the horizontal table the chunked path never allocates.
    let builder = CubeBuilder::new()
        .min_support(ROWS as u64 / 8)
        .materialize(Materialize::ClosedOnly)
        .parallel(false); // single-threaded for byte-stable peaks

    // Chunked first (the colder cache hurts it, not the resident path).
    // The snapshot is assembled by move — `snapshot_chunked` clones, which
    // would double-count the output in the peak.
    let (chunked, peak_chunked) = measure(|| {
        let build = run_final_table_csv_chunked(&csv, &spec, &builder, CHUNK_ROWS).unwrap();
        assert_eq!(build.stats.n_rows, ROWS);
        assert!(build.chunk_stats.peak_chunk_rows <= CHUNK_ROWS);
        let ChunkedBuild { cube, vertical, .. } = build;
        let cfg = builder.config();
        CubeSnapshot::new(cube, vertical).unwrap().with_build_config(
            cfg.materialize,
            cfg.atkinson_b,
            cfg.measures,
        )
    });

    let (resident, peak_resident) = measure(|| {
        let db = spec.load_csv(&csv).unwrap();
        assert_eq!(db.len(), ROWS);
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &builder).unwrap();
        snap
    });

    // Identity first: a low peak means nothing if the build diverged.
    assert_eq!(
        chunked.to_bytes(),
        resident.to_bytes(),
        "chunked snapshot must be byte-identical to the resident one"
    );

    println!("peak alloc: resident {peak_resident} B, chunked {peak_chunked} B");
    assert!(
        peak_chunked < peak_resident / 2,
        "chunked build must peak under half the resident build \
         ({peak_chunked} vs {peak_resident})"
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("chunked_build_memory: ok");
}
