//! Integration: the Italy-vs-Estonia cross-comparison harness (the paper's
//! demonstration closes with exactly this comparison).

use scube::prelude::*;

fn analyse(boards: &scube_datagen::SyntheticBoards) -> ScubeResult {
    let dataset = boards.to_dataset(vec![]).unwrap();
    scube::run(
        &dataset,
        &ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
            .cube(CubeBuilder::new().min_support(10)),
    )
    .unwrap()
}

#[test]
fn both_countries_run_under_identical_configuration() {
    let italy = analyse(&scube_datagen::italy(800));
    let estonia = analyse(&scube_datagen::estonia(800));

    for (name, r) in [("italy", &italy), ("estonia", &estonia)] {
        let women = r.cube.get_by_names(&[("gender", "F")], &[]).unwrap();
        assert!(women.dissimilarity.is_some(), "{name}: D undefined");
        assert!(women.total > 0);
        assert!(r.stats.n_units >= 10, "{name}: too few sector units");
    }
}

#[test]
fn comparison_table_is_constructible() {
    let italy = analyse(&scube_datagen::italy(600));
    let estonia = analyse(&scube_datagen::estonia(600));
    // Build the side-by-side table the demo shows: one row per index.
    let mut rows = Vec::new();
    for idx in SegIndex::ALL {
        let i = italy.cube.get_by_names(&[("gender", "F")], &[]).unwrap().get(idx);
        let e = estonia.cube.get_by_names(&[("gender", "F")], &[]).unwrap().get(idx);
        rows.push((idx.name(), i, e));
    }
    assert_eq!(rows.len(), 6);
    // Every evenness/exposure index is defined for both countries.
    for (name, i, e) in &rows {
        assert!(i.is_some(), "italy {name} undefined");
        assert!(e.is_some(), "estonia {name} undefined");
    }
}

#[test]
fn shared_sector_universe_allows_cell_level_comparison() {
    let italy = analyse(&scube_datagen::italy(800));
    let estonia = analyse(&scube_datagen::estonia(800));
    // Sector names are shared between the generators, so per-sector
    // comparisons (e.g. women in education, Italy vs Estonia) are direct.
    let coords = [("gender", "F")];
    let it = italy.cube.get_by_names(&coords, &[]).unwrap();
    let ee = estonia.cube.get_by_names(&coords, &[]).unwrap();
    // Both planted with the same sector propensities: directionally, both
    // countries show non-trivial gender segregation.
    assert!(it.dissimilarity.unwrap() > 0.1);
    assert!(ee.dissimilarity.unwrap() > 0.1);
}
