//! Property tests for incremental cube maintenance: folding an
//! `UpdateBatch` of appended rows into a built snapshot must be
//! **bit-identical** to a full rebuild on the concatenated data — snapshot
//! bytes and all — for every posting representation (EWAH / dense /
//! tid-vector) and both materializations, on datagen registries of varying
//! planted skew and delta sizes. The concurrent serving engine must answer
//! the post-update universe identically too, which exercises the surgical
//! cache invalidation: values cached before the update must either survive
//! (clean contexts) or be dropped (dirty contexts), never served stale.

use proptest::prelude::*;
use scube::prelude::*;
use scube_bitmap::{DenseBitmap, EwahBitmap, Posting, TidVec};
use scube_data::{FinalTableSpec, TransactionDb};
use scube_datagen::BoardsConfig;

fn final_table(sector_bias: f64, seed: u64, n_companies: usize) -> TransactionDb {
    let boards = scube_datagen::generate(
        BoardsConfig::italy(n_companies).sector_bias(sector_bias).seed(seed),
    );
    let dataset = boards.to_dataset(vec![]).expect("generator output is valid");
    scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .expect("pipeline succeeds")
        .db
}

fn spec_of(db: &TransactionDb) -> FinalTableSpec {
    FinalTableSpec::from_schema(db.schema(), "unitID")
}

fn check_update_equals_rebuild<P: Posting + Send + Sync + PartialEq + std::fmt::Debug>(
    full_rel: &Relation,
    spec: &FinalTableSpec,
    base_rows: usize,
    min_support: u64,
    materialize: Materialize,
    what: &str,
) {
    let base_rel = full_rel.slice_rows(0..base_rows);
    let delta_rel = full_rel.slice_rows(base_rows..full_rel.len());
    let base_db = spec.encode(&base_rel).expect("base rows encode");
    let full_db = spec.encode(full_rel).expect("all rows encode");

    let builder = CubeBuilder::new().min_support(min_support).materialize(materialize);
    let mut updated: CubeSnapshot<P> =
        CubeSnapshot::from_db(&base_db, &builder).expect("base snapshot builds");
    let batch =
        scube_cube::UpdateBatch::from_relation(&delta_rel, updated.cube().labels(), "unitID")
            .expect("delta rows resolve");
    let stats = updated.apply_update(&batch).expect("update applies");
    assert_eq!(stats.rows_added, delta_rel.len(), "{what}");
    assert_eq!(
        stats.dirty_cells + stats.promoted_cells + stats.clean_cells,
        updated.cube().len(),
        "{what}: stats partition the cell store"
    );

    let rebuilt: CubeSnapshot<P> =
        CubeSnapshot::from_db(&full_db, &builder).expect("full snapshot builds");
    assert_eq!(updated.cube(), rebuilt.cube(), "{what}: cube diverged");
    assert_eq!(updated.to_bytes(), rebuilt.to_bytes(), "{what}: snapshot bytes diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn update_is_bit_identical_to_rebuild(
        bias_idx in 0usize..3,
        seed in any::<u64>(),
        delta_pct in 1usize..=30,
    ) {
        let bias = [0.0, 0.5, 1.0][bias_idx];
        let db = final_table(bias, seed, 200);
        let full_rel = scube::final_table_relation(&db);
        let spec = spec_of(&db);
        let minsup = (db.len() as u64 / 50).max(1);
        let base_rows = full_rel.len() - (full_rel.len() * delta_pct / 100).max(1);
        for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
            check_update_equals_rebuild::<EwahBitmap>(
                &full_rel, &spec, base_rows, minsup, materialize, "ewah",
            );
            check_update_equals_rebuild::<DenseBitmap>(
                &full_rel, &spec, base_rows, minsup, materialize, "dense",
            );
            check_update_equals_rebuild::<TidVec>(
                &full_rel, &spec, base_rows, minsup, materialize, "tidvec",
            );
        }
    }

    #[test]
    fn concurrent_engine_update_answers_match_rebuild(
        seed in any::<u64>(),
        delta_pct in 1usize..=20,
    ) {
        let db = final_table(0.7, seed, 150);
        let full_rel = scube::final_table_relation(&db);
        let spec = spec_of(&db);
        let minsup = (db.len() as u64 / 50).max(1);
        let base_rows = full_rel.len() - (full_rel.len() * delta_pct / 100).max(1);
        let base_rel = full_rel.slice_rows(0..base_rows);
        let delta_rel = full_rel.slice_rows(base_rows..full_rel.len());
        let base_db = spec.encode(&base_rel).expect("base rows encode");
        let full_db = spec.encode(&full_rel).expect("all rows encode");

        // Serve the closed store (so fallback cells exercise the caches),
        // reference everything against AllFrequent rebuilds.
        let closed = CubeBuilder::new().min_support(minsup).materialize(Materialize::ClosedOnly);
        let base_full = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::AllFrequent)
            .build(&base_db)
            .expect("base full cube");
        let after_full = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::AllFrequent)
            .build(&full_db)
            .expect("post-update full cube");

        let snap: CubeSnapshot = CubeSnapshot::from_db(&base_db, &closed).expect("snapshot");
        let mut engine = ConcurrentCubeEngine::new(snap);
        // Warm every tier — and a few breakdowns — *before* the update, so
        // stale entries exist and must be invalidated (or proven clean).
        for (coords, v) in base_full.cells() {
            prop_assert_eq!(&engine.query(coords).expect("pre-update query"), v);
        }
        for (coords, _) in base_full.cells().take(32) {
            engine.unit_breakdown(coords);
        }

        let batch = scube_cube::UpdateBatch::from_relation(
            &delta_rel,
            engine.cube().labels(),
            "unitID",
        )
        .expect("delta rows resolve");
        engine.apply_update(&batch).expect("engine update applies");

        // Every post-update universe cell — cached before or not — must
        // now answer with the rebuilt values, through shared references.
        let mut explorer: CubeExplorer = CubeExplorer::new(&full_db);
        std::thread::scope(|scope| {
            for t in 0..3 {
                let engine = &engine;
                let after_full = &after_full;
                scope.spawn(move || {
                    for (coords, v) in after_full.cells().skip(t) {
                        assert_eq!(
                            &engine.query(coords).expect("post-update query"),
                            v,
                            "stale answer at {coords:?}"
                        );
                    }
                });
            }
        });
        for (coords, _) in after_full.cells().take(32) {
            prop_assert_eq!(
                engine.unit_breakdown(coords),
                explorer.unit_breakdown(coords),
                "stale breakdown at {:?}", coords
            );
        }
    }
}
