//! Property tests for incremental cube maintenance: folding an
//! `UpdateBatch` of appended rows *and retractions* into a built snapshot
//! must be **bit-identical** to a full rebuild on the edited data —
//! snapshot bytes and all — for every posting representation (EWAH /
//! dense / tid-vector) and both materializations, on datagen registries of
//! varying planted skew, delta sizes, and churn shapes (append-only,
//! delete-only, mixed; suffix and scattered removals; removals that drain
//! whole contexts or re-add identical rows). The concurrent serving engine
//! must answer the post-update universe identically too, which exercises
//! the cache invalidation: values cached before the update must either
//! survive (clean contexts) or be dropped (dirty contexts, and *all*
//! entries when a demoting update relabels the id space), never served
//! stale.

use proptest::prelude::*;
use scube::prelude::*;
use scube_bitmap::{DenseBitmap, EwahBitmap, Posting, TidVec};
use scube_data::{FinalTableSpec, TransactionDb};
use scube_datagen::BoardsConfig;

fn final_table(sector_bias: f64, seed: u64, n_companies: usize) -> TransactionDb {
    let boards = scube_datagen::generate(
        BoardsConfig::italy(n_companies).sector_bias(sector_bias).seed(seed),
    );
    let dataset = boards.to_dataset(vec![]).expect("generator output is valid");
    scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .expect("pipeline succeeds")
        .db
}

fn spec_of(db: &TransactionDb) -> FinalTableSpec {
    FinalTableSpec::from_schema(db.schema(), "unitID")
}

fn check_update_equals_rebuild<P: Posting + Send + Sync + PartialEq + std::fmt::Debug>(
    full_rel: &Relation,
    spec: &FinalTableSpec,
    base_rows: usize,
    min_support: u64,
    materialize: Materialize,
    what: &str,
) {
    let base_rel = full_rel.slice_rows(0..base_rows);
    let delta_rel = full_rel.slice_rows(base_rows..full_rel.len());
    let base_db = spec.encode(&base_rel).expect("base rows encode");
    let full_db = spec.encode(full_rel).expect("all rows encode");

    let builder = CubeBuilder::new().min_support(min_support).materialize(materialize);
    let mut updated: CubeSnapshot<P> =
        CubeSnapshot::from_db(&base_db, &builder).expect("base snapshot builds");
    let batch =
        scube_cube::UpdateBatch::from_relation(&delta_rel, updated.cube().labels(), "unitID")
            .expect("delta rows resolve");
    let stats = updated.apply_update(&batch).expect("update applies");
    assert_eq!(stats.rows_added, delta_rel.len(), "{what}");
    assert_eq!(
        stats.dirty_cells + stats.promoted_cells + stats.clean_cells,
        updated.cube().len(),
        "{what}: stats partition the cell store"
    );

    let rebuilt: CubeSnapshot<P> =
        CubeSnapshot::from_db(&full_db, &builder).expect("full snapshot builds");
    assert_eq!(updated.cube(), rebuilt.cube(), "{what}: cube diverged");
    assert_eq!(updated.to_bytes(), rebuilt.to_bytes(), "{what}: snapshot bytes diverged");
}

/// Keep only the rows of `rel` whose index passes `keep`.
fn filter_rows(rel: &Relation, keep: impl Fn(usize) -> bool) -> Relation {
    let mut out = Relation::new(rel.columns().to_vec()).expect("columns are valid");
    for (i, row) in rel.rows().iter().enumerate() {
        if keep(i) {
            out.push_row(row.to_vec()).expect("row shapes match");
        }
    }
    out
}

/// Apply `remove` (base tids) + appends to a base snapshot and require
/// byte-identity with a from-scratch snapshot on the edited table, with
/// the dirty-cell phase fanned over worker threads.
#[allow(clippy::too_many_arguments)]
fn check_churn_equals_rebuild<P: Posting + Send + Sync + PartialEq + std::fmt::Debug>(
    full_rel: &Relation,
    spec: &FinalTableSpec,
    base_rows: usize,
    remove: &[u32],
    min_support: u64,
    materialize: Materialize,
    threads: usize,
    what: &str,
) {
    let base_rel = full_rel.slice_rows(0..base_rows);
    let delta_rel = full_rel.slice_rows(base_rows..full_rel.len());
    let base_db = spec.encode(&base_rel).expect("base rows encode");

    let builder = CubeBuilder::new().min_support(min_support).materialize(materialize);
    let mut updated: CubeSnapshot<P> =
        CubeSnapshot::from_db(&base_db, &builder).expect("base snapshot builds");
    let mut batch =
        scube_cube::UpdateBatch::from_relation(&delta_rel, updated.cube().labels(), "unitID")
            .expect("delta rows resolve");
    for &t in remove {
        batch.remove_tid(t);
    }
    let stats = updated.apply_update_threads(&batch, threads).expect("churn applies");
    assert_eq!(stats.rows_added, delta_rel.len(), "{what}");
    assert_eq!(stats.rows_removed, remove.len(), "{what}");
    assert_eq!(
        stats.dirty_cells + stats.promoted_cells + stats.clean_cells,
        updated.cube().len(),
        "{what}: stats partition the surviving store"
    );

    let mut edited_rel = filter_rows(&base_rel, |i| !remove.contains(&(i as u32)));
    for row in delta_rel.rows() {
        edited_rel.push_row(row.to_vec()).expect("row shapes match");
    }
    let edited_db = spec.encode(&edited_rel).expect("edited rows encode");
    let rebuilt: CubeSnapshot<P> =
        CubeSnapshot::from_db(&edited_db, &builder).expect("edited snapshot builds");
    assert_eq!(updated.cube(), rebuilt.cube(), "{what}: cube diverged");
    assert_eq!(updated.to_bytes(), rebuilt.to_bytes(), "{what}: snapshot bytes diverged");
}

/// As [`check_churn_equals_rebuild`], but on a build restricted to a
/// measure subset: the churned snapshot must stay byte-identical to a
/// rebuild of the same subset — which for a proper subset means both
/// sides serialize as snapshot v5, value tables and all.
#[allow(clippy::too_many_arguments)]
fn check_measured_churn_equals_rebuild<P: Posting + Send + Sync + PartialEq + std::fmt::Debug>(
    full_rel: &Relation,
    spec: &FinalTableSpec,
    measures: MeasureSet,
    base_rows: usize,
    remove: &[u32],
    min_support: u64,
    materialize: Materialize,
    threads: usize,
    what: &str,
) {
    let base_rel = full_rel.slice_rows(0..base_rows);
    let delta_rel = full_rel.slice_rows(base_rows..full_rel.len());
    let base_db = spec.encode(&base_rel).expect("base rows encode");

    let builder =
        CubeBuilder::new().min_support(min_support).materialize(materialize).measures(measures);
    let mut updated: CubeSnapshot<P> =
        CubeSnapshot::from_db(&base_db, &builder).expect("base snapshot builds");
    let mut batch =
        scube_cube::UpdateBatch::from_relation(&delta_rel, updated.cube().labels(), "unitID")
            .expect("delta rows resolve");
    for &t in remove {
        batch.remove_tid(t);
    }
    updated.apply_update_threads(&batch, threads).expect("churn applies");
    assert_eq!(updated.measures(), measures, "{what}: update must not alter the measure set");

    let mut edited_rel = filter_rows(&base_rel, |i| !remove.contains(&(i as u32)));
    for row in delta_rel.rows() {
        edited_rel.push_row(row.to_vec()).expect("row shapes match");
    }
    let edited_db = spec.encode(&edited_rel).expect("edited rows encode");
    let rebuilt: CubeSnapshot<P> =
        CubeSnapshot::from_db(&edited_db, &builder).expect("edited snapshot builds");
    assert_eq!(updated.cube(), rebuilt.cube(), "{what}: cube diverged");
    assert_eq!(updated.to_bytes(), rebuilt.to_bytes(), "{what}: snapshot bytes diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn churn_is_bit_identical_to_rebuild(
        seed in any::<u64>(),
        remove_every in 2usize..=6,
        delta_pct in 0usize..=12,
        suffix in any::<bool>(),
        threads in 1usize..=6,
    ) {
        let db = final_table(0.6, seed, 160);
        let full_rel = scube::final_table_relation(&db);
        let spec = spec_of(&db);
        let minsup = (db.len() as u64 / 50).max(1);
        let base_rows = full_rel.len() - (full_rel.len() * delta_pct / 100).max(1);
        // Delete-only when delta_pct rounds the appended tail to one row
        // and remove_every is small, mixed otherwise; suffix retractions
        // exercise the in-place fast path, scattered ones the relabeling
        // rebuild.
        let n_remove = (base_rows / remove_every).max(1);
        let remove: Vec<u32> = if suffix {
            ((base_rows - n_remove) as u32..base_rows as u32).collect()
        } else {
            (0..base_rows as u32).step_by(remove_every).collect()
        };
        for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
            check_churn_equals_rebuild::<EwahBitmap>(
                &full_rel, &spec, base_rows, &remove, minsup, materialize, threads, "ewah",
            );
            check_churn_equals_rebuild::<DenseBitmap>(
                &full_rel, &spec, base_rows, &remove, minsup, materialize, threads, "dense",
            );
            check_churn_equals_rebuild::<TidVec>(
                &full_rel, &spec, base_rows, &remove, minsup, materialize, threads, "tidvec",
            );
        }
    }

    #[test]
    fn measured_churn_is_bit_identical_to_rebuild(
        seed in any::<u64>(),
        measure_bits in 1u8..=63,
        remove_every in 2usize..=6,
        delta_pct in 0usize..=12,
        suffix in any::<bool>(),
        threads in 1usize..=6,
    ) {
        // The multi-index layer under churn: random measure subsets (any
        // of the 63 non-empty sets, incl. the full suite) must survive
        // random append/retract/mixed splits byte-identically — whole
        // snapshot, so a proper subset round-trips its v5 value tables.
        let measures = MeasureSet::from_bits(measure_bits).expect("1..=63 is a valid set");
        let db = final_table(0.6, seed, 140);
        let full_rel = scube::final_table_relation(&db);
        let spec = spec_of(&db);
        let minsup = (db.len() as u64 / 50).max(1);
        let base_rows = full_rel.len() - (full_rel.len() * delta_pct / 100).max(1);
        let n_remove = (base_rows / remove_every).max(1);
        let remove: Vec<u32> = if suffix {
            ((base_rows - n_remove) as u32..base_rows as u32).collect()
        } else {
            (0..base_rows as u32).step_by(remove_every).collect()
        };
        for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
            check_measured_churn_equals_rebuild::<EwahBitmap>(
                &full_rel, &spec, measures, base_rows, &remove, minsup, materialize, threads,
                "ewah",
            );
            check_measured_churn_equals_rebuild::<TidVec>(
                &full_rel, &spec, measures, base_rows, &remove, minsup, materialize, threads,
                "tidvec",
            );
        }
    }

    #[test]
    fn draining_a_whole_context_matches_rebuild(seed in any::<u64>()) {
        // Retract every row of one organizational unit: all of its cells
        // demote, the unit leaves the dictionary, and the survivors
        // renumber — still byte-identical to the rebuild.
        let db = final_table(0.8, seed, 120);
        let full_rel = scube::final_table_relation(&db);
        let spec = spec_of(&db);
        let minsup = (db.len() as u64 / 50).max(1);
        let unit_col = full_rel.column_index("unitID").expect("unit column present");
        let first_unit = full_rel.rows().first().expect("nonempty table")[unit_col].clone();
        let remove: Vec<u32> = full_rel
            .rows()
            .iter()
            .enumerate()
            .filter(|(_, row)| row[unit_col] == first_unit)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert!(!remove.is_empty());
        for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
            check_churn_equals_rebuild::<EwahBitmap>(
                &full_rel, &spec, full_rel.len(), &remove, minsup, materialize, 2, "drain",
            );
        }
    }

    #[test]
    fn remove_then_readd_is_byte_identical_to_base(
        seed in any::<u64>(),
        tail_pct in 1usize..=10,
    ) {
        // Retract the table's tail, then re-append the identical rows in
        // one later batch: the snapshot must return to the base bytes.
        let db = final_table(0.5, seed, 120);
        let full_rel = scube::final_table_relation(&db);
        let spec = spec_of(&db);
        let minsup = (db.len() as u64 / 50).max(1);
        let full_db = spec.encode(&full_rel).expect("rows encode");
        let n_tail = (full_rel.len() * tail_pct / 100).max(1);
        let tail_rel = full_rel.slice_rows(full_rel.len() - n_tail..full_rel.len());
        for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
            let builder = CubeBuilder::new().min_support(minsup).materialize(materialize);
            let base: CubeSnapshot = CubeSnapshot::from_db(&full_db, &builder).expect("builds");
            let bytes = base.to_bytes();
            let mut snap = base;
            let mut retract = scube_cube::UpdateBatch::new();
            for t in full_rel.len() - n_tail..full_rel.len() {
                retract.remove_tid(t as u32);
            }
            snap.apply_update(&retract).expect("retraction applies");
            let readd =
                scube_cube::UpdateBatch::from_relation(&tail_rel, snap.cube().labels(), "unitID")
                    .expect("tail rows resolve");
            snap.apply_update(&readd).expect("re-append applies");
            prop_assert_eq!(
                snap.to_bytes(),
                bytes,
                "{:?}: retract + identical re-append must be a byte-level no-op",
                materialize
            );
        }
    }

    #[test]
    fn update_is_bit_identical_to_rebuild(
        bias_idx in 0usize..3,
        seed in any::<u64>(),
        delta_pct in 1usize..=30,
    ) {
        let bias = [0.0, 0.5, 1.0][bias_idx];
        let db = final_table(bias, seed, 200);
        let full_rel = scube::final_table_relation(&db);
        let spec = spec_of(&db);
        let minsup = (db.len() as u64 / 50).max(1);
        let base_rows = full_rel.len() - (full_rel.len() * delta_pct / 100).max(1);
        for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
            check_update_equals_rebuild::<EwahBitmap>(
                &full_rel, &spec, base_rows, minsup, materialize, "ewah",
            );
            check_update_equals_rebuild::<DenseBitmap>(
                &full_rel, &spec, base_rows, minsup, materialize, "dense",
            );
            check_update_equals_rebuild::<TidVec>(
                &full_rel, &spec, base_rows, minsup, materialize, "tidvec",
            );
        }
    }

    #[test]
    fn concurrent_engine_update_answers_match_rebuild(
        seed in any::<u64>(),
        delta_pct in 1usize..=20,
    ) {
        let db = final_table(0.7, seed, 150);
        let full_rel = scube::final_table_relation(&db);
        let spec = spec_of(&db);
        let minsup = (db.len() as u64 / 50).max(1);
        let base_rows = full_rel.len() - (full_rel.len() * delta_pct / 100).max(1);
        let base_rel = full_rel.slice_rows(0..base_rows);
        let delta_rel = full_rel.slice_rows(base_rows..full_rel.len());
        let base_db = spec.encode(&base_rel).expect("base rows encode");
        let full_db = spec.encode(&full_rel).expect("all rows encode");

        // Serve the closed store (so fallback cells exercise the caches),
        // reference everything against AllFrequent rebuilds.
        let closed = CubeBuilder::new().min_support(minsup).materialize(Materialize::ClosedOnly);
        let base_full = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::AllFrequent)
            .build(&base_db)
            .expect("base full cube");
        let after_full = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::AllFrequent)
            .build(&full_db)
            .expect("post-update full cube");

        let snap: CubeSnapshot = CubeSnapshot::from_db(&base_db, &closed).expect("snapshot");
        let mut engine = ConcurrentCubeEngine::new(snap);
        // Warm every tier — and a few breakdowns — *before* the update, so
        // stale entries exist and must be invalidated (or proven clean).
        for (coords, v) in base_full.cells() {
            prop_assert_eq!(&engine.query(coords).expect("pre-update query"), v);
        }
        for (coords, _) in base_full.cells().take(32) {
            engine.unit_breakdown(coords);
        }

        let batch = scube_cube::UpdateBatch::from_relation(
            &delta_rel,
            engine.cube().labels(),
            "unitID",
        )
        .expect("delta rows resolve");
        engine.apply_update(&batch).expect("engine update applies");

        // Every post-update universe cell — cached before or not — must
        // now answer with the rebuilt values, through shared references.
        let mut explorer: CubeExplorer = CubeExplorer::new(&full_db);
        std::thread::scope(|scope| {
            for t in 0..3 {
                let engine = &engine;
                let after_full = &after_full;
                scope.spawn(move || {
                    for (coords, v) in after_full.cells().skip(t) {
                        assert_eq!(
                            &engine.query(coords).expect("post-update query"),
                            v,
                            "stale answer at {coords:?}"
                        );
                    }
                });
            }
        });
        for (coords, _) in after_full.cells().take(32) {
            prop_assert_eq!(
                engine.unit_breakdown(coords),
                explorer.unit_breakdown(coords),
                "stale breakdown at {:?}", coords
            );
        }
    }

    #[test]
    fn concurrent_engine_demoting_update_answers_match_rebuild(
        seed in any::<u64>(),
        remove_every in 2usize..=5,
    ) {
        // A mixed churn batch — scattered retractions (demotions, possible
        // relabeling) plus a small appended tail — applied to a warm
        // concurrent engine: every post-update answer, asked from several
        // threads, must match a rebuild on the edited table; nothing
        // cached pre-update may leak through the invalidation.
        let db = final_table(0.7, seed, 120);
        let full_rel = scube::final_table_relation(&db);
        let spec = spec_of(&db);
        let minsup = (db.len() as u64 / 50).max(1);
        let base_rows = full_rel.len() - (full_rel.len() / 50).max(1);
        let base_rel = full_rel.slice_rows(0..base_rows);
        let delta_rel = full_rel.slice_rows(base_rows..full_rel.len());
        let base_db = spec.encode(&base_rel).expect("base rows encode");
        let remove: Vec<u32> = (0..base_rows as u32).step_by(remove_every).collect();

        let closed = CubeBuilder::new().min_support(minsup).materialize(Materialize::ClosedOnly);
        let base_full = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::AllFrequent)
            .build(&base_db)
            .expect("base full cube");
        let mut edited_rel = filter_rows(&base_rel, |i| !remove.contains(&(i as u32)));
        for row in delta_rel.rows() {
            edited_rel.push_row(row.to_vec()).expect("row shapes match");
        }
        let edited_db = spec.encode(&edited_rel).expect("edited rows encode");
        let after_full = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::AllFrequent)
            .build(&edited_db)
            .expect("post-churn full cube");

        let snap: CubeSnapshot = CubeSnapshot::from_db(&base_db, &closed).expect("snapshot");
        let mut engine = ConcurrentCubeEngine::new(snap);
        // Warm every tier — and a few breakdowns — before the churn.
        for (coords, v) in base_full.cells() {
            prop_assert_eq!(&engine.query(coords).expect("pre-churn query"), v);
        }
        for (coords, _) in base_full.cells().take(32) {
            engine.unit_breakdown(coords);
        }

        let mut batch = scube_cube::UpdateBatch::from_relation(
            &delta_rel,
            engine.cube().labels(),
            "unitID",
        )
        .expect("delta rows resolve");
        for &t in &remove {
            batch.remove_tid(t);
        }
        let stats = engine.apply_update(&batch).expect("engine churn applies");
        prop_assert_eq!(stats.rows_removed, remove.len());

        let mut explorer: CubeExplorer = CubeExplorer::new(&edited_db);
        std::thread::scope(|scope| {
            for t in 0..3 {
                let engine = &engine;
                let after_full = &after_full;
                scope.spawn(move || {
                    for (coords, v) in after_full.cells().skip(t) {
                        assert_eq!(
                            &engine.query(coords).expect("post-churn query"),
                            v,
                            "stale answer at {coords:?}"
                        );
                    }
                });
            }
        });
        for (coords, _) in after_full.cells().take(32) {
            prop_assert_eq!(
                engine.unit_breakdown(coords),
                explorer.unit_breakdown(coords),
                "stale breakdown at {:?}", coords
            );
        }
    }
}
