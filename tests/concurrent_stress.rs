//! Stress test for the concurrent serving layer: 8 threads hammer one
//! `ConcurrentCubeEngine` with repeated mixed point / breakdown / top-k
//! queries through a deliberately tiny cache (2 entries per shard), so
//! every shard churns through evictions the whole run. Afterwards the
//! atomic `QueryStats` counters must sum *exactly* to the number of issued
//! queries — a lost update anywhere would break the equality — and every
//! query must have completed (the shard locks are poison-free by
//! construction: a `SpinLock` releases on unwind and has no poisoned
//! state, so no thread can inherit a dead shard).

use scube::prelude::*;
use scube_cube::ConcurrentCubeEngine;
use scube_data::TransactionDb;

const THREADS: usize = 8;
const ROUNDS: usize = 4;
const SHARDS: usize = 8;
/// Total capacity 16 over 8 shards = 2 entries per shard.
const CAPACITY: usize = 16;

fn final_table() -> TransactionDb {
    let dataset = scube_datagen::italy(300).to_dataset(vec![]).unwrap();
    scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .unwrap()
        .db
}

#[test]
fn stress_counters_are_exact_and_no_query_is_lost() {
    let db = final_table();
    let minsup = (db.len() as u64 / 50).max(1);
    let full = CubeBuilder::new()
        .min_support(minsup)
        .materialize(Materialize::AllFrequent)
        .build(&db)
        .unwrap();
    let closed = CubeBuilder::new().min_support(minsup).materialize(Materialize::ClosedOnly);
    let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &closed).unwrap();

    let mut universe: Vec<CellCoords> = full.cells().map(|(c, _)| c.clone()).collect();
    universe.sort();
    let fallback = universe.iter().filter(|c| snap.cube().get(c).is_none()).count();
    assert!(
        fallback > CAPACITY,
        "workload must overflow the cache for the stress to mean anything \
         ({fallback} fallback cells vs capacity {CAPACITY})"
    );

    let engine = ConcurrentCubeEngine::with_config(snap, SHARDS, CAPACITY);
    assert_eq!(engine.shard_count(), SHARDS);

    // Every thread walks the universe `ROUNDS` times from its own offset
    // (so threads permanently disagree about which cells are hot), issuing
    // a breakdown every 7th cell and a top-k every 100th, and returns its
    // own issue counts for the exactness check.
    let per_thread: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (engine, universe, full) = (&engine, &universe, &full);
                scope.spawn(move || {
                    let mut points = 0u64;
                    let mut breakdowns = 0u64;
                    for round in 0..ROUNDS {
                        for i in 0..universe.len() {
                            let c = &universe[(i + t * universe.len() / THREADS) % universe.len()];
                            let v = engine.query(c).expect("point query succeeds");
                            points += 1;
                            assert_eq!(
                                Some(&v),
                                full.get(c),
                                "thread {t} round {round} diverged at {c:?}"
                            );
                            if i % 7 == 0 {
                                let b = engine.unit_breakdown(c);
                                breakdowns += 1;
                                let m: u64 = b.iter().map(|&(_, m, _)| m).sum();
                                let tt: u64 = b.iter().map(|&(_, _, t)| t).sum();
                                assert_eq!((m, tt), (v.minority, v.total), "breakdown sums");
                            }
                            if i % 100 == 0 {
                                let top = engine.top_k(SegIndex::Dissimilarity, 5, minsup);
                                assert!(top.len() <= 5);
                            }
                        }
                    }
                    (points, breakdowns)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no thread may die")).collect()
    });

    let issued_points: u64 = per_thread.iter().map(|&(p, _)| p).sum();
    let issued_breakdowns: u64 = per_thread.iter().map(|&(_, b)| b).sum();
    assert_eq!(issued_points, (THREADS * ROUNDS * universe.len()) as u64);

    // The exactness check: every issued query is counted in exactly one
    // tier — any lost atomic update breaks these equalities.
    let stats = engine.stats();
    assert_eq!(stats.total(), issued_points, "point counters must sum to issued queries");
    assert_eq!(
        stats.breakdowns(),
        issued_breakdowns,
        "breakdown counters must sum to issued breakdowns"
    );
    assert!(stats.explored > 0, "the tiny cache must force recomputation");
    assert!(stats.materialized > 0);

    // And the engine is still healthy after the storm: a fresh query on
    // every shard answers correctly (no shard was left locked or corrupt).
    for c in universe.iter().take(SHARDS * 4) {
        assert_eq!(Some(&engine.query(c).unwrap()), full.get(c));
    }
}
