//! Property tests at the pipeline level: on arbitrary small registries the
//! full pipeline is deterministic, scenario-invariant where it must be, and
//! never panics on odd-but-valid input shapes.

use proptest::prelude::*;
use scube::prelude::*;

const N_IND: u32 = 10;
const N_GRP: u32 = 6;

fn relation(cols: &[&str], rows: Vec<Vec<String>>) -> Relation {
    let mut r = Relation::new(cols.iter().map(|s| s.to_string()).collect()).unwrap();
    for row in rows {
        r.push_row(row).unwrap();
    }
    r
}

/// Random small registry: individuals with gender, groups with one of two
/// sectors, random membership pairs.
fn registry() -> impl Strategy<Value = (Vec<bool>, Vec<u8>, Vec<(u32, u32)>)> {
    (
        proptest::collection::vec(any::<bool>(), N_IND as usize),
        proptest::collection::vec(0u8..3, N_GRP as usize),
        proptest::collection::btree_set((0..N_IND, 0..N_GRP), 0..25)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
    )
}

fn build_dataset(genders: &[bool], sectors: &[u8], pairs: &[(u32, u32)]) -> Dataset {
    let individuals = relation(
        &["id", "gender"],
        genders
            .iter()
            .enumerate()
            .map(|(i, &f)| vec![format!("d{i}"), if f { "F" } else { "M" }.to_string()])
            .collect(),
    );
    let groups = relation(
        &["id", "sector"],
        sectors.iter().enumerate().map(|(i, &s)| vec![format!("c{i}"), format!("s{s}")]).collect(),
    );
    let membership = relation(
        &["dir", "comp"],
        pairs.iter().map(|&(d, c)| vec![format!("d{d}"), format!("c{c}")]).collect(),
    );
    Dataset::new(
        individuals,
        IndividualsSpec::new("id").sa("gender"),
        groups,
        GroupsSpec::new("id").ca("sector"),
        &membership,
        &MembershipSpec::new("dir", "comp"),
        vec![],
    )
    .unwrap()
}

fn cubes_equal(a: &SegregationCube, b: &SegregationCube) -> bool {
    a.len() == b.len() && a.cells().all(|(coords, v)| b.get(coords) == Some(v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_scenario_is_deterministic((genders, sectors, pairs) in registry()) {
        let dataset = build_dataset(&genders, &sectors, &pairs);
        for units in [
            UnitStrategy::GroupAttribute("sector".into()),
            UnitStrategy::ClusterIndividuals(ClusteringMethod::ConnectedComponents),
            UnitStrategy::ClusterGroups(ClusteringMethod::Stoc(StocParams::default())),
        ] {
            let config = ScubeConfig::new(units);
            let a = scube::run(&dataset, &config).unwrap();
            let b = scube::run(&dataset, &config).unwrap();
            prop_assert!(cubes_equal(&a.cube, &b.cube));
            prop_assert_eq!(a.stats.n_rows, b.stats.n_rows);
            prop_assert_eq!(a.stats.n_units, b.stats.n_units);
        }
    }

    #[test]
    fn apex_accounts_for_every_row((genders, sectors, pairs) in registry()) {
        let dataset = build_dataset(&genders, &sectors, &pairs);
        let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()));
        let result = scube::run(&dataset, &config).unwrap();
        let apex = result.cube.get(&CellCoords::apex()).unwrap();
        prop_assert_eq!(apex.total as usize, result.stats.n_rows);
        prop_assert_eq!(apex.minority, apex.total);
    }

    #[test]
    fn cell_populations_never_exceed_context((genders, sectors, pairs) in registry()) {
        let dataset = build_dataset(&genders, &sectors, &pairs);
        let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()));
        let result = scube::run(&dataset, &config).unwrap();
        for (_, v) in result.cube.cells() {
            prop_assert!(v.minority <= v.total);
            if let Some(p) = v.minority_proportion() {
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn membership_order_is_irrelevant((genders, sectors, pairs) in registry(), seed in any::<u64>()) {
        let a = build_dataset(&genders, &sectors, &pairs);
        // Deterministically shuffle the membership rows.
        let mut shuffled = pairs.clone();
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let b = build_dataset(&genders, &sectors, &shuffled);
        let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()));
        let ra = scube::run(&a, &config).unwrap();
        let rb = scube::run(&b, &config).unwrap();
        prop_assert!(cubes_equal(&ra.cube, &rb.cube));
    }
}
