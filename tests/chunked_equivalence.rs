//! Property test for the chunked bounded-memory build: for any table, the
//! snapshot produced by the streaming path (`VerticalDbBuilder` staging
//! tid-order chunks + `CubeBuilder::build_streaming`) must be
//! **byte-identical** to the resident path's (`TransactionDbBuilder` +
//! `CubeSnapshot::from_db`) — across every posting representation
//! (EWAH / dense / tid-vector / adaptive), both materializations, and
//! adversarial chunk sizes: 1 (a flush per row), a prime that never
//! divides the row count evenly, and one larger than the whole table
//! (a single flush at `finish`). Whole-snapshot identity covers the cube
//! cells, the canonical posting encodings, the dictionary/unit intern
//! order, and the recorded build config in one comparison.

use proptest::prelude::*;
use scube_bitmap::{AdaptivePosting, DenseBitmap, EwahBitmap, Posting, TidVec};
use scube_cube::{CubeBuilder, CubeSnapshot, Materialize};
use scube_data::{Attribute, Schema, TransactionDbBuilder, VerticalDbBuilder};

/// One individual: single-valued SA, single-valued CA, a set of
/// multi-attribute values (bitmask over 3 sectors), and a unit.
type Row = (u8, u8, u8, u8);

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::sa("gender"),
        Attribute::ca("region"),
        Attribute::ca("sector").multi(),
    ])
    .expect("schema is valid")
}

/// Expand a generated row into the `add_row` shape shared by both builders.
fn values(row: &Row) -> (Vec<Vec<String>>, String) {
    let (sa, ca, multi, unit) = *row;
    let sectors: Vec<String> =
        (0..3).filter(|b| multi & (1 << b) != 0).map(|b| format!("s{b}")).collect();
    (vec![vec![format!("g{sa}")], vec![format!("r{ca}")], sectors], format!("u{unit}"))
}

fn resident_bytes<P>(rows: &[Row], builder: &CubeBuilder) -> Vec<u8>
where
    P: Posting + Send + Sync,
{
    let mut b = TransactionDbBuilder::new(schema());
    for row in rows {
        let (vals, unit) = values(row);
        b.add_row(&vals, &unit).expect("row encodes");
    }
    let db = b.finish();
    CubeSnapshot::<P>::from_db(&db, builder).expect("resident snapshot builds").to_bytes()
}

fn chunked_bytes<P>(rows: &[Row], builder: &CubeBuilder, chunk_rows: usize) -> Vec<u8>
where
    P: Posting + Send + Sync,
{
    let mut b: VerticalDbBuilder<P> = VerticalDbBuilder::new(schema(), chunk_rows);
    for row in rows {
        let (vals, unit) = values(row);
        b.add_row(&vals, &unit).expect("row encodes");
    }
    let (vertical, meta, stats) = b.finish().expect("chunked build finishes");
    assert_eq!(stats.rows, rows.len());
    assert!(stats.peak_chunk_rows <= chunk_rows.max(1));
    let cube = builder.build_streaming(&meta, &vertical).expect("streaming build");
    let cfg = builder.config();
    CubeSnapshot::new(cube, vertical)
        .expect("snapshot assembles")
        .with_build_config(cfg.materialize, cfg.atkinson_b, cfg.measures)
        .to_bytes()
}

fn check<P>(rows: &[Row], materialize: Materialize)
where
    P: Posting + Send + Sync,
{
    let builder = CubeBuilder::new().min_support(1).materialize(materialize);
    let want = resident_bytes::<P>(rows, &builder);
    // Chunk sizes: one flush per row, a prime that leaves a ragged final
    // chunk, and one big enough that `finish` does the only flush.
    for chunk_rows in [1, 7, rows.len() + 1] {
        let got = chunked_bytes::<P>(rows, &builder, chunk_rows);
        assert_eq!(
            got,
            want,
            "chunked snapshot diverged (chunk_rows {chunk_rows}, {materialize:?}, {} rows)",
            rows.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chunked_build_is_byte_identical_to_resident(
        rows in proptest::collection::vec((0u8..3, 0u8..3, 0u8..8, 0u8..5), 1..40),
    ) {
        for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
            check::<EwahBitmap>(&rows, materialize);
            check::<DenseBitmap>(&rows, materialize);
            check::<TidVec>(&rows, materialize);
            check::<AdaptivePosting>(&rows, materialize);
        }
    }
}
