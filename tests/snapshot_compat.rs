//! Snapshot format compatibility: the v3 reader must load checked-in v1
//! files exactly (the golden under `tests/golden/snapshot_v1.scube` was
//! written by the PR-2 era v1 writer) *and* v2 files (the PR-4 era layout,
//! identical to v3 apart from the version number), must re-save both as
//! canonical v3, and must reject corrupt or unknown-version headers with
//! an error — never a panic.

use scube::prelude::*;
use scube_data::{Attribute, Schema, TransactionDb, TransactionDbBuilder};

const V1_GOLDEN: &[u8] = include_bytes!("golden/snapshot_v1.scube");

/// The exact database the v1 golden snapshot was built from.
fn golden_db() -> TransactionDb {
    let schema =
        Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
            .unwrap();
    let mut b = TransactionDbBuilder::new(schema);
    let rows = [
        ("F", "young", "north", "u0"),
        ("F", "young", "north", "u0"),
        ("M", "old", "north", "u0"),
        ("F", "old", "south", "u1"),
        ("M", "young", "south", "u1"),
        ("M", "old", "south", "u1"),
        ("F", "young", "south", "u0"),
        ("M", "young", "north", "u1"),
    ];
    for (s, a, r, u) in rows {
        b.add_row(&[vec![s], vec![a], vec![r]], u).unwrap();
    }
    b.finish()
}

#[test]
fn v1_golden_loads_byte_for_byte() {
    // The file self-identifies as format version 1.
    assert_eq!(&V1_GOLDEN[..8], b"SCUBESNP");
    assert_eq!(u32::from_le_bytes(V1_GOLDEN[8..12].try_into().unwrap()), 1);

    let loaded: CubeSnapshot = CubeSnapshot::from_bytes(V1_GOLDEN).expect("v1 must keep loading");
    // Its contents equal a fresh build of the same data (the golden was
    // written from exactly this db with the ClosedOnly builder).
    let rebuilt: CubeSnapshot = CubeSnapshot::from_db(
        &golden_db(),
        &CubeBuilder::new().materialize(Materialize::ClosedOnly),
    )
    .unwrap();
    assert_eq!(loaded.cube(), rebuilt.cube());
    assert_eq!(loaded.vertical().units(), rebuilt.vertical().units());
    assert_eq!(loaded.vertical().postings(), rebuilt.vertical().postings());
    // v1 predates the recorded build config, so it loads with the builder
    // defaults (AllFrequent / default Atkinson b).
    assert_eq!(loaded.materialize(), Materialize::AllFrequent);

    // Serving a v1 snapshot works end to end.
    let mut engine = CubeQueryEngine::new(loaded);
    let coords = engine.cube().coords_by_names(&[("sex", "F")], &[]).unwrap();
    assert_eq!(engine.query(&coords).unwrap(), *rebuilt.cube().get(&coords).unwrap());
}

#[test]
fn v1_resaves_as_canonical_v3() {
    let loaded: CubeSnapshot = CubeSnapshot::from_bytes(V1_GOLDEN).unwrap();
    let v3 = loaded.to_bytes();
    assert_eq!(u32::from_le_bytes(v3[8..12].try_into().unwrap()), 3, "writer emits v3");
    // Canonical: load → save → load → save is a fixed point.
    let again: CubeSnapshot = CubeSnapshot::from_bytes(&v3).unwrap();
    assert_eq!(again.to_bytes(), v3);
    assert_eq!(again.cube(), loaded.cube());
}

#[test]
fn v2_files_still_load() {
    // v2 and v3 share the payload layout byte for byte (the checksum
    // covers the payload only), so a v2 file is exactly a v3 image with
    // the version field rewound — which is what PR-4 era writers produced.
    let snap: CubeSnapshot = CubeSnapshot::from_db(
        &golden_db(),
        &CubeBuilder::new().materialize(Materialize::ClosedOnly),
    )
    .unwrap();
    let v3 = snap.to_bytes();
    let mut v2 = v3.clone();
    v2[8..12].copy_from_slice(&2u32.to_le_bytes());
    let loaded: CubeSnapshot = CubeSnapshot::from_bytes(&v2).expect("v2 must keep loading");
    assert_eq!(loaded.cube(), snap.cube());
    assert_eq!(loaded.materialize(), Materialize::ClosedOnly, "v2 carries the build config");
    // And it re-saves as canonical v3.
    assert_eq!(loaded.to_bytes(), v3);
}

#[test]
fn unknown_version_errors_never_panics() {
    for version in [0u32, 4, 99, u32::MAX] {
        let mut bytes = V1_GOLDEN.to_vec();
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        let err = CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&bytes)
            .expect_err("unknown version must error");
        assert!(err.to_string().contains("version"), "{err}");
    }
}

#[test]
fn corrupt_headers_and_payloads_error_never_panic() {
    // Bad magic.
    let mut bytes = V1_GOLDEN.to_vec();
    bytes[0] = b'X';
    assert!(CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&bytes).is_err());

    // Every truncation point of the golden file.
    for cut in 0..V1_GOLDEN.len() {
        assert!(
            CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&V1_GOLDEN[..cut]).is_err(),
            "truncate at {cut}"
        );
    }

    // A flipped payload byte fails the checksum.
    let mut bytes = V1_GOLDEN.to_vec();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    assert!(CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&bytes).is_err());

    // A current-format file with a nonsense materialization tag errors too.
    let rebuilt: CubeSnapshot = CubeSnapshot::from_db(&golden_db(), &CubeBuilder::new()).unwrap();
    let good = rebuilt.to_bytes();
    let payload_start = 8 + 4 + 1 + 8;
    let mut bad = good[..payload_start].to_vec();
    let mut payload = good[payload_start..].to_vec();
    payload[0] = 7; // materialization tag ∉ {0, 1}
                    // Re-checksum so the corruption reaches the config parser.
    use std::hash::Hasher;
    let mut h = scube_common::hash::FxHasher::default();
    h.write(&payload);
    h.write_u64(payload.len() as u64);
    bad[13..21].copy_from_slice(&h.finish().to_le_bytes());
    bad.extend_from_slice(&payload);
    let err = CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&bad)
        .expect_err("bad materialization tag must error");
    assert!(err.to_string().contains("materialization"), "{err}");
}
