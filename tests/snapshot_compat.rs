//! Snapshot format compatibility: the reader must load the checked-in
//! v1 golden (`tests/golden/snapshot_v1.scube`, written by the PR-2 era v1
//! writer) and v3 golden (`tests/golden/snapshot_v3.scube`, written by the
//! last v3-era writer) exactly, must load v2 files (identical to v3 apart
//! from the version number), must re-save every legacy file as canonical
//! v4, must round-trip the v5 partial-measure golden
//! (`tests/golden/snapshot_v5.scube`, a Gini + Isolation subset build)
//! bit for bit, and must reject corrupt or unknown-version headers with
//! an error — never a panic.
//!
//! To regenerate the v5 golden after an *intentional* format change:
//! `GOLDEN_BLESS=1 cargo test -p scube --test snapshot_compat` and review
//! the binary diff like any other code change.

use scube::prelude::*;
use scube_data::{Attribute, Schema, TransactionDb, TransactionDbBuilder};

const V1_GOLDEN: &[u8] = include_bytes!("golden/snapshot_v1.scube");
const V3_GOLDEN: &[u8] = include_bytes!("golden/snapshot_v3.scube");
const V5_GOLDEN: &[u8] = include_bytes!("golden/snapshot_v5.scube");

/// The exact database both golden snapshots were built from.
fn golden_db() -> TransactionDb {
    let schema =
        Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
            .unwrap();
    let mut b = TransactionDbBuilder::new(schema);
    let rows = [
        ("F", "young", "north", "u0"),
        ("F", "young", "north", "u0"),
        ("M", "old", "north", "u0"),
        ("F", "old", "south", "u1"),
        ("M", "young", "south", "u1"),
        ("M", "old", "south", "u1"),
        ("F", "young", "south", "u0"),
        ("M", "young", "north", "u1"),
    ];
    for (s, a, r, u) in rows {
        b.add_row(&[vec![s], vec![a], vec![r]], u).unwrap();
    }
    b.finish()
}

/// The ClosedOnly build both goldens were written from.
fn golden_rebuild() -> CubeSnapshot {
    CubeSnapshot::from_db(&golden_db(), &CubeBuilder::new().materialize(Materialize::ClosedOnly))
        .unwrap()
}

/// The measure subset the v5 golden was built with.
fn golden_v5_measures() -> MeasureSet {
    MeasureSet::only(SegIndex::Gini).with(SegIndex::Isolation)
}

/// The ClosedOnly Gini + Isolation build the v5 golden was written from.
fn golden_v5_rebuild() -> CubeSnapshot {
    CubeSnapshot::from_db(
        &golden_db(),
        &CubeBuilder::new().materialize(Materialize::ClosedOnly).measures(golden_v5_measures()),
    )
    .unwrap()
}

#[test]
fn v1_golden_loads_byte_for_byte() {
    // The file self-identifies as format version 1.
    assert_eq!(&V1_GOLDEN[..8], b"SCUBESNP");
    assert_eq!(u32::from_le_bytes(V1_GOLDEN[8..12].try_into().unwrap()), 1);

    let loaded: CubeSnapshot = CubeSnapshot::from_bytes(V1_GOLDEN).expect("v1 must keep loading");
    // Its contents equal a fresh build of the same data (the golden was
    // written from exactly this db with the ClosedOnly builder).
    let rebuilt = golden_rebuild();
    assert_eq!(loaded.cube(), rebuilt.cube());
    assert_eq!(loaded.vertical().units(), rebuilt.vertical().units());
    assert_eq!(loaded.vertical().postings(), rebuilt.vertical().postings());
    // v1 predates the recorded build config, so it loads with the builder
    // defaults (AllFrequent / default Atkinson b).
    assert_eq!(loaded.materialize(), Materialize::AllFrequent);

    // Serving a v1 snapshot works end to end.
    let mut engine = CubeQueryEngine::new(loaded);
    let coords = engine.cube().coords_by_names(&[("sex", "F")], &[]).unwrap();
    assert_eq!(engine.query(&coords).unwrap(), *rebuilt.cube().get(&coords).unwrap());
}

#[test]
fn v3_golden_loads_byte_for_byte() {
    // The file self-identifies as format version 3 — the last pre-mmap
    // layout, pinned so the legacy decoder can never drift.
    assert_eq!(&V3_GOLDEN[..8], b"SCUBESNP");
    assert_eq!(u32::from_le_bytes(V3_GOLDEN[8..12].try_into().unwrap()), 3);

    let loaded: CubeSnapshot = CubeSnapshot::from_bytes(V3_GOLDEN).expect("v3 must keep loading");
    let rebuilt = golden_rebuild();
    assert_eq!(loaded.cube(), rebuilt.cube());
    assert_eq!(loaded.vertical().units(), rebuilt.vertical().units());
    assert_eq!(loaded.vertical().postings(), rebuilt.vertical().postings());
    assert_eq!(loaded.materialize(), Materialize::ClosedOnly, "v3 carries the build config");
}

#[test]
fn legacy_files_resave_as_canonical_v4() {
    // Whatever legacy version loads, the writer emits v4, and load → save
    // is a fixed point from there.
    let expected = golden_rebuild().to_bytes();
    assert_eq!(u32::from_le_bytes(expected[8..12].try_into().unwrap()), 4, "writer emits v4");
    for (name, golden) in [("v1", V1_GOLDEN), ("v3", V3_GOLDEN)] {
        let loaded: CubeSnapshot = CubeSnapshot::from_bytes(golden).unwrap();
        let v4 = loaded.to_bytes();
        assert_eq!(u32::from_le_bytes(v4[8..12].try_into().unwrap()), 4, "{name} resaves as v4");
        // Canonical: load → save → load → save is a fixed point.
        let again: CubeSnapshot = CubeSnapshot::from_bytes(&v4).unwrap();
        assert_eq!(again.to_bytes(), v4, "{name}");
        assert_eq!(again.cube(), loaded.cube(), "{name}");
    }
    // The v3 golden was built ClosedOnly like `expected`, so its v4 image
    // is bit-identical to a fresh build's.
    let v3_loaded: CubeSnapshot = CubeSnapshot::from_bytes(V3_GOLDEN).unwrap();
    assert_eq!(v3_loaded.to_bytes(), expected);
}

#[test]
fn v2_files_still_load() {
    // v2 and v3 share the payload layout byte for byte (the checksum
    // covers the payload only), so a v2 file is exactly the v3 golden with
    // the version field rewound — which is what PR-4 era writers produced.
    let mut v2 = V3_GOLDEN.to_vec();
    v2[8..12].copy_from_slice(&2u32.to_le_bytes());
    let loaded: CubeSnapshot = CubeSnapshot::from_bytes(&v2).expect("v2 must keep loading");
    let rebuilt = golden_rebuild();
    assert_eq!(loaded.cube(), rebuilt.cube());
    assert_eq!(loaded.materialize(), Materialize::ClosedOnly, "v2 carries the build config");
    // And it re-saves as canonical v4.
    assert_eq!(loaded.to_bytes(), rebuilt.to_bytes());
}

#[test]
fn v5_golden_round_trips_byte_for_byte() {
    let fresh = golden_v5_rebuild().to_bytes();
    if std::env::var("GOLDEN_BLESS").is_ok() {
        let path = format!("{}/../../tests/golden/snapshot_v5.scube", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, &fresh).unwrap();
        return;
    }
    // The file self-identifies as format version 5, and the writer is
    // deterministic: a fresh subset build emits the golden bytes exactly.
    assert_eq!(&V5_GOLDEN[..8], b"SCUBESNP");
    assert_eq!(u32::from_le_bytes(V5_GOLDEN[8..12].try_into().unwrap()), 5);
    assert_eq!(
        fresh, V5_GOLDEN,
        "v5 golden drifted; if the format change is intentional, regenerate with \
         GOLDEN_BLESS=1 and review the diff"
    );

    let loaded: CubeSnapshot = CubeSnapshot::from_bytes(V5_GOLDEN).expect("v5 must keep loading");
    assert_eq!(loaded.measures(), golden_v5_measures(), "v5 carries the measure set");
    assert_eq!(loaded.materialize(), Materialize::ClosedOnly, "v5 carries the build config");
    let rebuilt = golden_v5_rebuild();
    assert_eq!(loaded.cube(), rebuilt.cube());
    assert_eq!(loaded.vertical().units(), rebuilt.vertical().units());
    assert_eq!(loaded.vertical().postings(), rebuilt.vertical().postings());
    // Unselected measures are absent from every cell.
    for (coords, v) in loaded.cube().cells() {
        for index in [
            SegIndex::Dissimilarity,
            SegIndex::Information,
            SegIndex::Interaction,
            SegIndex::Atkinson,
        ] {
            assert_eq!(v.get(index), None, "unselected {index} present at {coords:?}");
        }
    }
    // Resave is a fixed point: a subset build stays v5, bit for bit.
    assert_eq!(loaded.to_bytes(), V5_GOLDEN, "v5 resave is a fixed point");
}

#[test]
fn v5_golden_truncations_and_corruptions_error_never_panic() {
    for cut in 0..V5_GOLDEN.len() {
        assert!(
            CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&V5_GOLDEN[..cut]).is_err(),
            "truncate at {cut}"
        );
    }
    // A flipped byte anywhere fails a checksum or a bounds check.
    for at in [0, 9, 14, 40, 97, V5_GOLDEN.len() / 2, V5_GOLDEN.len() - 1] {
        let mut bad = V5_GOLDEN.to_vec();
        bad[at] ^= 0xFF;
        assert!(
            CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&bad).is_err(),
            "flip at {at}"
        );
    }
}

#[test]
fn unknown_version_errors_never_panics() {
    for version in [0u32, 6, 99, u32::MAX] {
        let mut bytes = V1_GOLDEN.to_vec();
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        let err = CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&bytes)
            .expect_err("unknown version must error");
        assert!(err.to_string().contains("version"), "{err}");
    }
}

#[test]
fn corrupt_headers_and_payloads_error_never_panic() {
    // Bad magic.
    let mut bytes = V1_GOLDEN.to_vec();
    bytes[0] = b'X';
    assert!(CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&bytes).is_err());

    // Every truncation point of both golden files.
    for golden in [V1_GOLDEN, V3_GOLDEN] {
        for cut in 0..golden.len() {
            assert!(
                CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&golden[..cut]).is_err(),
                "truncate at {cut}"
            );
        }
    }

    // A flipped payload byte fails the checksum.
    for golden in [V1_GOLDEN, V3_GOLDEN] {
        let mut bytes = golden.to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&bytes).is_err());
    }

    // A current-format (v4) file with a nonsense materialization tag —
    // the first byte of the meta region — errors too. Both checksums are
    // recomputed so the corruption reaches the config parser.
    let rebuilt: CubeSnapshot = CubeSnapshot::from_db(&golden_db(), &CubeBuilder::new()).unwrap();
    let mut bad = rebuilt.to_bytes();
    const DIR_OFF: usize = 24;
    const META_OFF: usize = 96;
    bad[META_OFF] = 7; // materialization tag ∉ {0, 1}
    let slots_off =
        u64::from_le_bytes(bad[DIR_OFF + 32..DIR_OFF + 40].try_into().unwrap()) as usize;
    use std::hash::Hasher;
    let mut h = scube_common::hash::FxHasher::default();
    h.write(&bad[DIR_OFF..DIR_OFF + 64]);
    h.write(&bad[META_OFF..slots_off]);
    h.write_u64((64 + slots_off - META_OFF) as u64);
    let meta_sum = h.finish();
    bad[DIR_OFF + 64..META_OFF].copy_from_slice(&meta_sum.to_le_bytes());
    let mut h = scube_common::hash::FxHasher::default();
    h.write(&bad[DIR_OFF..]);
    h.write_u64((bad.len() - DIR_OFF) as u64);
    let full = h.finish();
    bad[13..21].copy_from_slice(&full.to_le_bytes());
    let err = CubeSnapshot::<scube_bitmap::EwahBitmap>::from_bytes(&bad)
        .expect_err("bad materialization tag must error");
    assert!(err.to_string().contains("materialization"), "{err}");
}
