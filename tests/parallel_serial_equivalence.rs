//! Property test for the parallel build pipeline: parallel mining plus
//! parallel cube evaluation must produce *identical* cells to the serial
//! path, for every posting representation (EWAH / dense / tid-vector), on
//! datagen registries of varying planted skew.

use proptest::prelude::*;
use scube::prelude::*;
use scube_bitmap::{DenseBitmap, EwahBitmap, Posting, TidVec};
use scube_data::TransactionDb;
use scube_datagen::BoardsConfig;

fn final_table(sector_bias: f64, seed: u64, n_companies: usize) -> TransactionDb {
    let boards = scube_datagen::generate(
        BoardsConfig::italy(n_companies).sector_bias(sector_bias).seed(seed),
    );
    let dataset = boards.to_dataset(vec![]).expect("generator output is valid");
    scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .expect("pipeline succeeds")
        .db
}

fn assert_identical(a: &SegregationCube, b: &SegregationCube, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: cell count");
    for (coords, v) in a.cells() {
        assert_eq!(b.get(coords), Some(v), "{what}: cell {coords:?}");
    }
}

fn build<P: Posting + Send + Sync>(
    db: &TransactionDb,
    min_support: u64,
    materialize: Materialize,
    parallel: bool,
) -> SegregationCube {
    CubeBuilder::new()
        .min_support(min_support)
        .materialize(materialize)
        .parallel(parallel)
        .build_with::<P>(db)
        .expect("cube builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn parallel_build_is_bit_identical_across_representations(
        bias_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        // Planted skew from none (0.0) to the full per-sector propensities
        // (1.0): changes itemset correlation, hence tree shapes and the
        // closed-cell compression the builder sees.
        let bias = [0.0, 0.5, 1.0][bias_idx];
        let db = final_table(bias, seed, 250);
        let minsup = (db.len() as u64 / 50).max(1);
        for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
            let serial = build::<EwahBitmap>(&db, minsup, materialize, false);
            let parallel = build::<EwahBitmap>(&db, minsup, materialize, true);
            assert_identical(&serial, &parallel, "ewah serial vs parallel");

            let dense_serial = build::<DenseBitmap>(&db, minsup, materialize, false);
            let dense_parallel = build::<DenseBitmap>(&db, minsup, materialize, true);
            assert_identical(&dense_serial, &dense_parallel, "dense serial vs parallel");

            let tid_serial = build::<TidVec>(&db, minsup, materialize, false);
            let tid_parallel = build::<TidVec>(&db, minsup, materialize, true);
            assert_identical(&tid_serial, &tid_parallel, "tidvec serial vs parallel");

            // Cross-representation: all three agree with each other too.
            assert_identical(&serial, &dense_serial, "ewah vs dense");
            assert_identical(&serial, &tid_serial, "ewah vs tidvec");
        }
    }
}
