//! Property test for cube snapshot persistence: `save → load` must be
//! bit-identical for every posting representation (EWAH / dense /
//! tid-vector) on datagen registries of varying planted skew — mirroring
//! `tests/parallel_serial_equivalence.rs` for the serving layer.

use proptest::prelude::*;
use scube::prelude::*;
use scube_bitmap::{DenseBitmap, EwahBitmap, Posting, TidVec};
use scube_data::TransactionDb;
use scube_datagen::BoardsConfig;

fn final_table(sector_bias: f64, seed: u64, n_companies: usize) -> TransactionDb {
    let boards = scube_datagen::generate(
        BoardsConfig::italy(n_companies).sector_bias(sector_bias).seed(seed),
    );
    let dataset = boards.to_dataset(vec![]).expect("generator output is valid");
    scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .expect("pipeline succeeds")
        .db
}

fn roundtrip<P>(db: &TransactionDb, min_support: u64, materialize: Materialize)
where
    P: Posting + Send + Sync + PartialEq + std::fmt::Debug,
{
    let builder = CubeBuilder::new().min_support(min_support).materialize(materialize);
    let snap = scube_cube::CubeSnapshot::<P>::from_db(db, &builder).expect("snapshot builds");
    let bytes = snap.to_bytes();
    let loaded = scube_cube::CubeSnapshot::<P>::from_bytes(&bytes).expect("snapshot loads");

    // The cube half: cells, labels, metadata — all bit-identical.
    assert_eq!(loaded.cube(), snap.cube(), "cube halves differ");
    // The vertical half: postings and the tid → unit map.
    assert_eq!(loaded.vertical().num_transactions(), snap.vertical().num_transactions());
    assert_eq!(loaded.vertical().num_units(), snap.vertical().num_units());
    assert_eq!(loaded.vertical().units(), snap.vertical().units());
    assert_eq!(loaded.vertical().postings(), snap.vertical().postings());
    // Canonical encoding: re-saving the loaded snapshot reproduces the
    // exact bytes, so snapshots can be compared and deduplicated by hash.
    assert_eq!(loaded.to_bytes(), bytes, "encoding is not canonical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn snapshot_roundtrip_is_bit_identical_across_representations(
        bias_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        // Planted skew from none (0.0) to the full per-sector propensities
        // (1.0): changes itemset correlation, hence cell counts, posting
        // shapes, and the closed-cell compression the snapshot stores.
        let bias = [0.0, 0.5, 1.0][bias_idx];
        let db = final_table(bias, seed, 250);
        let minsup = (db.len() as u64 / 50).max(1);
        for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
            roundtrip::<EwahBitmap>(&db, minsup, materialize);
            roundtrip::<DenseBitmap>(&db, minsup, materialize);
            roundtrip::<TidVec>(&db, minsup, materialize);
        }
    }
}
