//! Bounded-memory ingest regression (harness = false so the counting
//! global allocator owns the whole process).
//!
//! The streaming CSV path (`FinalTableSpec::load_csv` via `CsvRows` +
//! `FinalTableEncoder`) must hold O(one record) of string staging: its
//! peak allocation over a synthetic wide table has to stay a small
//! fraction of what the materializing path (`Relation::read_csv_path` +
//! `encode`) peaks at, while producing an identical encoding. Before the
//! visitor existed, `scube save` staged the entire string table — the
//! ingest that this PR's million-row datasets would have made impossible.

use scube_bench::alloc::{measure, CountingAlloc};
use scube_data::{FinalTableSpec, Relation, TransactionDb};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const ROWS: usize = 30_000;
const ATTRS: usize = 12;

/// Write the synthetic wide table: 12 attribute columns + unitID, five
/// distinct values per column (so the dictionary stays tiny and staging
/// memory, not encoded output, dominates any non-streaming peak).
fn write_table(path: &std::path::Path) -> u64 {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).unwrap());
    let header: Vec<String> = (0..ATTRS).map(|a| format!("attr{a:02}")).collect();
    writeln!(f, "{},unitID", header.join(",")).unwrap();
    for r in 0..ROWS {
        for a in 0..ATTRS {
            write!(f, "value_{a:02}_{},", (r / (a + 1)) % 5).unwrap();
        }
        writeln!(f, "unit{}", r % 97).unwrap();
    }
    f.into_inner().unwrap().sync_all().unwrap();
    std::fs::metadata(path).unwrap().len()
}

fn spec() -> FinalTableSpec {
    let mut spec = FinalTableSpec::new("unitID");
    for a in 0..ATTRS {
        if a % 2 == 0 {
            spec = spec.sa(format!("attr{a:02}"));
        } else {
            spec = spec.ca(format!("attr{a:02}"));
        }
    }
    spec
}

fn check_same(a: &TransactionDb, b: &TransactionDb) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.num_units(), b.num_units());
    assert_eq!(a.units(), b.units());
    assert_eq!(a.unit_names(), b.unit_names());
    for t in 0..a.len() {
        assert_eq!(a.transaction(t), b.transaction(t), "transaction {t}");
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("scube_stream_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("wide.csv");
    let file_bytes = write_table(&csv) as usize;

    let spec = spec();
    // Materializing path first: whole string table resident, then encode.
    let (via_relation, peak_materialized) = measure(|| {
        let rel = Relation::read_csv_path(&csv).unwrap();
        spec.encode(&rel).unwrap()
    });
    // Streaming path: records visit the encoder one at a time.
    let (via_stream, peak_streaming) = measure(|| spec.load_csv(&csv).unwrap());

    check_same(&via_stream, &via_relation);
    assert_eq!(via_stream.len(), ROWS);
    assert_eq!(via_stream.num_units(), 97);

    println!(
        "file {file_bytes} B; peak alloc: materialized {peak_materialized} B, \
         streaming {peak_streaming} B"
    );
    // The materialized peak necessarily covers the whole string table; the
    // streaming peak must not — bound it by a third of the materialized
    // one AND below the raw file size (it held only the encoded output,
    // the dictionary, and one record of staging).
    assert!(
        peak_materialized > file_bytes,
        "sanity: materializing must stage at least the file's strings"
    );
    assert!(
        peak_streaming < peak_materialized / 3,
        "streaming ingest must stay a small fraction of the materializing peak \
         ({peak_streaming} vs {peak_materialized})"
    );
    assert!(
        peak_streaming < file_bytes,
        "streaming ingest must peak below the raw file size \
         ({peak_streaming} vs {file_bytes})"
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("streaming_ingest: ok");
}
