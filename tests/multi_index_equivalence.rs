//! Differential gate for the pluggable measure layer: every index a cube
//! cell carries — whatever [`MeasureSet`] the build selected — must be
//! **f64-bit-exact** against computing that index directly from the cell's
//! [`UnitCounts`], reassembled here from the raw transactions (an
//! independent reference path that never touches the cube's fold code).
//! Property-tested across posting representations (EWAH / dense /
//! tid-vector / adaptive) × materializations × skew-varying datagen
//! registries, plus a renumbering regression: after a retraction relabels
//! the unit space, order-sensitive folds must re-derive from histograms in
//! *post-relabel* unit order for every index (the PR 5 1-ULP class — `D`,
//! `H`, `xPx`, `xPy` accumulate f64 in unit-visit order and Gini
//! prefix-scans a sort of it, so a stale visit order is a silent
//! last-bit divergence, not an obviously wrong number).

use proptest::prelude::*;
use scube::prelude::*;
use scube_bitmap::{AdaptivePosting, DenseBitmap, EwahBitmap, Posting, TidVec};
use scube_data::TransactionDb;
use scube_datagen::BoardsConfig;

fn final_table(sector_bias: f64, seed: u64, n_companies: usize) -> TransactionDb {
    let boards = scube_datagen::generate(
        BoardsConfig::italy(n_companies).sector_bias(sector_bias).seed(seed),
    );
    let dataset = boards.to_dataset(vec![]).expect("generator output is valid");
    scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .expect("pipeline succeeds")
        .db
}

/// Reassemble one cell's per-unit histogram straight from the raw
/// transactions: a transaction is in the context iff it carries every CA
/// item, and in the minority iff it also carries every SA item. Units with
/// a populated context total enter in ascending unit order — the same
/// histogram the builder derives through postings and scratch counters,
/// reached without sharing any of that code.
fn reference_counts(db: &TransactionDb, coords: &CellCoords) -> UnitCounts {
    let n_units = db.num_units();
    let mut totals = vec![0u64; n_units];
    let mut minorities = vec![0u64; n_units];
    for (items, unit) in db.iter() {
        let carries = |ids: &[u32]| ids.iter().all(|id| items.contains(id));
        if carries(&coords.ca) {
            totals[unit as usize] += 1;
            if carries(&coords.sa) {
                minorities[unit as usize] += 1;
            }
        }
    }
    UnitCounts::from_triples(
        (0..n_units).filter(|&u| totals[u] > 0).map(|u| (u as u32, minorities[u], totals[u])),
    )
    .expect("raw transactions form a valid histogram")
}

/// Every cell of `cube`, checked per selected index against the reference
/// histogram: same definedness, and defined values identical to the bit.
fn check_cells_match_reference(
    cube: &SegregationCube,
    db: &TransactionDb,
    measures: MeasureSet,
    atkinson_b: f64,
    what: &str,
) {
    assert!(!cube.is_empty(), "{what}: cube built no cells");
    for (coords, values) in cube.cells() {
        let counts = reference_counts(db, coords);
        assert_eq!(values.minority, counts.minority(), "{what}: minority at {coords:?}");
        assert_eq!(values.total, counts.total(), "{what}: total at {coords:?}");
        assert_eq!(values.num_units, counts.num_units() as u32, "{what}: units at {coords:?}");
        for index in SegIndex::ALL {
            let got = values.get(index);
            if !measures.contains(index) {
                assert_eq!(got, None, "{what}: unselected {index} folded at {coords:?}");
                continue;
            }
            let want = match index {
                SegIndex::Atkinson => scube_segindex::atkinson(&counts, atkinson_b),
                _ => index.compute(&counts),
            };
            assert_eq!(
                got.map(f64::to_bits),
                want.map(f64::to_bits),
                "{what}: {index} diverged at {coords:?} (got {got:?}, want {want:?})"
            );
        }
    }
}

fn check_representation<P: Posting + Send + Sync>(
    db: &TransactionDb,
    measures: MeasureSet,
    min_support: u64,
    materialize: Materialize,
    what: &str,
) {
    let builder =
        CubeBuilder::new().min_support(min_support).materialize(materialize).measures(measures);
    let snap: CubeSnapshot<P> = CubeSnapshot::from_db(db, &builder).expect("snapshot builds");
    check_cells_match_reference(snap.cube(), db, measures, snap.atkinson_b(), what);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn every_selected_index_is_bit_exact_against_raw_histograms(
        bias_idx in 0usize..3,
        seed in any::<u64>(),
        measure_bits in 1u8..=63,
    ) {
        let bias = [0.0, 0.5, 1.0][bias_idx];
        let measures = MeasureSet::from_bits(measure_bits).expect("1..=63 is a valid set");
        let db = final_table(bias, seed, 120);
        let minsup = (db.len() as u64 / 50).max(1);
        for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
            check_representation::<EwahBitmap>(&db, measures, minsup, materialize, "ewah");
            check_representation::<DenseBitmap>(&db, measures, minsup, materialize, "dense");
            check_representation::<TidVec>(&db, measures, minsup, materialize, "tidvec");
            check_representation::<AdaptivePosting>(&db, measures, minsup, materialize, "adaptive");
        }
    }

    #[test]
    fn explorer_fallback_matches_raw_histograms_per_measure(
        seed in any::<u64>(),
        measure_bits in 1u8..=63,
    ) {
        // The fallback tier folds the same masked measure vector as the
        // store: ask the explorer for cells the ClosedOnly store left out.
        let measures = MeasureSet::from_bits(measure_bits).expect("valid set");
        let db = final_table(0.7, seed, 100);
        let minsup = (db.len() as u64 / 50).max(1);
        let all = CubeBuilder::new().min_support(minsup).measures(measures).build(&db)
            .expect("full store builds");
        let mut explorer: CubeExplorer = CubeExplorer::new(&db).with_measures(measures);
        for (coords, _) in all.cells().take(64) {
            let folded = explorer.values_at(coords).expect("fallback fold succeeds");
            let counts = reference_counts(&db, coords);
            for index in measures.iter() {
                let want = match index {
                    SegIndex::Atkinson => {
                        scube_segindex::atkinson(&counts, scube_segindex::DEFAULT_ATKINSON_B)
                    }
                    _ => index.compute(&counts),
                };
                prop_assert_eq!(
                    folded.get(index).map(f64::to_bits),
                    want.map(f64::to_bits),
                    "explorer {} diverged at {:?}", index, coords
                );
            }
        }
    }

    #[test]
    fn relabeling_update_re_derives_every_index_in_new_unit_order(
        seed in any::<u64>(),
        measure_bits in 1u8..=63,
        threads in 1usize..=4,
    ) {
        // Retract every row of the first unit: survivors renumber, and the
        // incremental path must re-fold each selected index over histograms
        // in the *new* unit order. A fold that walks stale order differs in
        // the last ULP — the bit-exact reference comparison catches it.
        let measures = MeasureSet::from_bits(measure_bits).expect("valid set");
        let db = final_table(0.8, seed, 100);
        let full_rel = scube::final_table_relation(&db);
        let spec = scube_data::FinalTableSpec::from_schema(db.schema(), "unitID");
        let minsup = (db.len() as u64 / 50).max(1);
        let unit_col = full_rel.column_index("unitID").expect("unit column present");
        let first_unit = full_rel.rows().first().expect("nonempty table")[unit_col].clone();

        let builder = CubeBuilder::new().min_support(minsup).measures(measures);
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db, &builder).expect("base builds");
        let mut batch = scube_cube::UpdateBatch::new();
        let mut kept = Relation::new(full_rel.columns().to_vec()).expect("columns are valid");
        for (i, row) in full_rel.rows().iter().enumerate() {
            if row[unit_col] == first_unit {
                batch.remove_tid(i as u32);
            } else {
                kept.push_row(row.to_vec()).expect("row shapes match");
            }
        }
        let stats = scube::update_threads(&mut snap, &batch, threads).expect("relabel applies");
        prop_assert!(stats.dropped_units >= 1, "the drained unit must leave the dictionary");

        // Reference: reassemble histograms from the *edited* table, whose
        // encoder assigns the post-relabel unit numbering.
        let edited_db = spec.encode(&kept).expect("edited rows encode");
        check_cells_match_reference(snap.cube(), &edited_db, measures, snap.atkinson_b(), "relabel");

        // And the whole snapshot still equals a rebuild, byte for byte.
        let rebuilt: CubeSnapshot =
            CubeSnapshot::from_db(&edited_db, &builder).expect("rebuild succeeds");
        prop_assert_eq!(snap.to_bytes(), rebuilt.to_bytes(), "snapshot bytes diverged");
    }
}

#[test]
fn non_default_atkinson_subset_is_bit_exact() {
    let measures = MeasureSet::only(SegIndex::Atkinson).with(SegIndex::Gini);
    let db = final_table(0.6, 0xA7C1, 80);
    let minsup = (db.len() as u64 / 50).max(1);
    let builder = CubeBuilder::new().min_support(minsup).measures(measures).atkinson_b(0.25);
    let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &builder).expect("snapshot builds");
    assert_eq!(snap.atkinson_b(), 0.25);
    check_cells_match_reference(snap.cube(), &db, measures, 0.25, "atkinson 0.25");
}
