//! Scenario 2 (graph): *how much are women segregated in communities of
//! connected directors?*
//!
//! Run with: `cargo run --release --example director_communities`
//!
//! Directors are linked when they sit on a common board; communities found
//! by clustering become the organizational units. The example compares the
//! three clustering methods SCube ships (connected components, weight
//! threshold, SToC) on the same data — both the unit structure they
//! produce and the segregation verdicts they lead to.

use scube::prelude::*;

fn main() -> Result<()> {
    let boards = scube_datagen::italy(3000);
    let dataset = boards.to_dataset(vec![])?;
    println!(
        "Synthetic Italy: {} directors, {} companies",
        dataset.num_individuals(),
        dataset.num_groups()
    );

    let methods: Vec<(&str, ClusteringMethod)> = vec![
        ("connected components", ClusteringMethod::ConnectedComponents),
        ("weight threshold ≥ 2", ClusteringMethod::WeightThreshold { min_weight: 2 }),
        (
            "SToC (τ=0.5, α=0.5)",
            ClusteringMethod::Stoc(StocParams { tau: 0.5, alpha: 0.5, horizon: 2, seed: 42 }),
        ),
    ];

    for (name, method) in methods {
        let config = ScubeConfig::new(UnitStrategy::ClusterIndividuals(method))
            .cube(CubeBuilder::new().min_support(25).parallel(true));
        let result = run(&dataset, &config)?;
        let clustering = result.clustering.as_ref().expect("graph scenario clusters");
        println!("\n=== {name} ===");
        println!(
            "  {} communities (giant: {} directors), {} isolated, clustering took {:?}",
            clustering.num_clusters(),
            clustering.giant_size(),
            result.isolated.len(),
            result.timings.clustering
        );
        match result.cube.get_by_names(&[("gender", "F")], &[]) {
            Some(v) if v.dissimilarity.is_some() => println!(
                "  women vs director communities: D={:.3} H={:.3} xPx={:.3} (M={}, T={})",
                v.dissimilarity.unwrap(),
                v.information.unwrap(),
                v.isolation.unwrap(),
                v.minority,
                v.total
            ),
            _ => println!("  women vs director communities: undefined (degenerate units)"),
        }
        println!("  strongest contexts:");
        for (coords, _, d) in top_contexts(&result.cube, SegIndex::Dissimilarity, 3, 50) {
            println!("    D={d:.3}  {}", result.cube.labels().describe(coords));
        }
    }
    Ok(())
}
