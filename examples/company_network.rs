//! Scenario 3 (bipartite): *how much are women segregated in communities
//! of connected companies?*
//!
//! Run with: `cargo run --release --example company_network`
//!
//! The bipartite director×company graph is projected onto companies
//! (edges weighted by shared directors — the paper's GraphBuilder), the
//! projection is clustered into company communities, and the cube measures
//! segregation of directors across those communities. Reports are written
//! to `target/company_network.scube/` by the Visualizer.

use scube::prelude::*;

fn main() -> Result<()> {
    let boards = scube_datagen::italy(3000);
    let dataset = boards.to_dataset(vec![])?;
    println!(
        "Synthetic Italy: {} directors, {} companies, {} seats",
        dataset.num_individuals(),
        dataset.num_groups(),
        dataset.bipartite.memberships().len()
    );

    // Break the giant component with the weight-threshold method designed
    // in the companion journal paper.
    let config = ScubeConfig::new(UnitStrategy::ClusterGroups(ClusteringMethod::WeightThreshold {
        min_weight: 1,
    }))
    .min_shared(1)
    .cube(CubeBuilder::new().min_support(25).parallel(true));
    let result = run(&dataset, &config)?;

    let clustering = result.clustering.as_ref().expect("graph scenario clusters");
    println!(
        "projection: {:?}; clustering: {:?} → {} company communities (giant: {}), {} isolated companies",
        result.timings.projection,
        result.timings.clustering,
        clustering.num_clusters(),
        clustering.giant_size(),
        result.isolated.len()
    );
    println!(
        "final table: {} rows; cube: {} cells in {:?}",
        result.stats.n_rows, result.stats.n_cells, result.timings.cube
    );

    match result.cube.get_by_names(&[("gender", "F")], &[]) {
        Some(v) if v.dissimilarity.is_some() => println!(
            "\nwomen vs company communities: D={:.3} G={:.3} H={:.3}",
            v.dissimilarity.unwrap(),
            v.gini.unwrap(),
            v.information.unwrap()
        ),
        _ => println!("\nwomen vs company communities: undefined"),
    }

    println!("\nstrongest segregation contexts (population ≥ 60):");
    for (coords, v, d) in top_contexts(&result.cube, SegIndex::Dissimilarity, 8, 60) {
        println!(
            "  D={d:.3}  {}  (M={}, T={})",
            result.cube.labels().describe(coords),
            v.minority,
            v.total
        );
    }

    let out = std::path::Path::new("target").join("company_network.scube");
    let written = Visualizer::new(&out).min_total(25).write_all(&result)?;
    println!("\nreports written:");
    for p in written {
        println!("  {}", p.display());
    }
    Ok(())
}
