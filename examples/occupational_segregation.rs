//! Scenario 1 (tabular): *how much are women segregated in company
//! sectors?* — on the synthetic Italian registry.
//!
//! Run with: `cargo run --release --example occupational_segregation`
//!
//! Company sector is the organizational unit (no graph pre-processing);
//! the example prints the ranked segregation contexts and the per-sector
//! one-vs-rest index profiles behind the paper's Fig. 5 radial plot.

use scube::prelude::*;
use scube_cube::CubeExplorer;

fn main() -> Result<()> {
    let boards = scube_datagen::italy(4000);
    let dataset = boards.to_dataset(vec![])?;
    println!(
        "Synthetic Italy: {} directors, {} companies, {} board seats",
        dataset.num_individuals(),
        dataset.num_groups(),
        dataset.bipartite.memberships().len()
    );

    let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
        .cube(CubeBuilder::new().min_support(30).parallel(true));
    let result = run(&dataset, &config)?;
    println!(
        "{} final-table rows, {} sector units, {} cube cells ({:?} total)\n",
        result.stats.n_rows,
        result.stats.n_units,
        result.stats.n_cells,
        result.timings.total()
    );

    // Question of the scenario: women across sectors.
    let women = result.cube.get_by_names(&[("gender", "F")], &[]).expect("cell exists");
    println!(
        "Women vs sector units: D={:.3} G={:.3} H={:.3} xPx={:.3}",
        women.dissimilarity.unwrap(),
        women.gini.unwrap(),
        women.information.unwrap(),
        women.isolation.unwrap(),
    );

    println!("\nTop segregation contexts (D, population ≥ 100):");
    for (coords, v, d) in top_contexts(&result.cube, SegIndex::Dissimilarity, 10, 100) {
        println!(
            "  D={d:.3}  {}  (M={}, T={})",
            result.cube.labels().describe(coords),
            v.minority,
            v.total
        );
    }

    // Per-sector one-vs-rest profiles (Fig. 5 bottom's radial series).
    let mut explorer: CubeExplorer = CubeExplorer::new(&result.final_table);
    let women_coords =
        result.cube.coords_by_names(&[("gender", "F")], &[]).expect("gender=F item exists");
    let breakdown = explorer.unit_breakdown(&women_coords);
    let mut series = radial_series(&breakdown, result.final_table.unit_names());
    series.sort_by(|a, b| {
        b.1.dissimilarity.unwrap_or(0.0).total_cmp(&a.1.dissimilarity.unwrap_or(0.0))
    });
    println!("\nPer-sector one-vs-rest profiles (most male/female-skewed first):");
    println!(
        "  {:<18} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "sector", "D", "G", "H", "xPx", "xPy", "A"
    );
    for (sector, v) in series.iter().take(8) {
        println!(
            "  {:<18} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            sector,
            fmt(v.dissimilarity),
            fmt(v.gini),
            fmt(v.information),
            fmt(v.isolation),
            fmt(v.interaction),
            fmt(v.atkinson),
        );
    }
    Ok(())
}

fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into())
}
