//! Quickstart: build a segregation data cube from a dozen in-memory rows.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Walks the whole SCube flow on data small enough to check by eye:
//! individuals with gender/age, companies with a sector, memberships, a
//! cube over sector units, and the two discovery views (ranked contexts
//! and the Fig. 1-style grid).

use scube::prelude::*;

fn relation(cols: &[&str], rows: &[&[&str]]) -> Relation {
    let mut r = Relation::new(cols.iter().map(|s| s.to_string()).collect()).unwrap();
    for row in rows {
        r.push_row(row.iter().map(|s| s.to_string()).collect()).unwrap();
    }
    r
}

fn main() -> Result<()> {
    // Individuals: gender and age are segregation attributes.
    let individuals = relation(
        &["id", "gender", "age"],
        &[
            &["d01", "F", "young"],
            &["d02", "F", "young"],
            &["d03", "F", "old"],
            &["d04", "F", "old"],
            &["d05", "F", "young"],
            &["d06", "M", "old"],
            &["d07", "M", "old"],
            &["d08", "M", "young"],
            &["d09", "M", "old"],
            &["d10", "M", "old"],
            &["d11", "M", "young"],
            &["d12", "F", "young"],
        ],
    );
    // Companies: the sector is a context attribute (and our unit).
    let groups = relation(
        &["id", "sector"],
        &[
            &["c1", "education"],
            &["c2", "education"],
            &["c3", "construction"],
            &["c4", "construction"],
        ],
    );
    // Who sits on which board. Women cluster in education boards.
    let membership = relation(
        &["director", "company"],
        &[
            &["d01", "c1"],
            &["d02", "c1"],
            &["d03", "c2"],
            &["d04", "c2"],
            &["d05", "c2"],
            &["d12", "c1"],
            &["d06", "c3"],
            &["d07", "c3"],
            &["d08", "c4"],
            &["d09", "c4"],
            &["d10", "c4"],
            &["d11", "c3"],
            // One man in education, one woman in construction: not total.
            &["d06", "c1"],
            &["d12", "c4"],
        ],
    );

    let result = Wizard::new()
        .individuals(individuals, IndividualsSpec::new("id").sa("gender").sa("age"))
        .groups(groups, GroupsSpec::new("id").ca("sector"))
        .membership(membership, MembershipSpec::new("director", "company"))
        .units(UnitStrategy::GroupAttribute("sector".into()))
        .run()?;

    println!("=== SCube quickstart ===");
    println!(
        "{} individuals, {} units, {} cube cells\n",
        result.stats.n_individuals, result.stats.n_units, result.stats.n_cells
    );

    println!("Most segregated contexts (dissimilarity):");
    for (coords, values, d) in top_contexts(&result.cube, SegIndex::Dissimilarity, 5, 4) {
        println!(
            "  D={d:.2}  {}  (M={}, T={})",
            result.cube.labels().describe(coords),
            values.minority,
            values.total
        );
    }

    println!("\nFig. 1-style grid (rows gender, columns age, D index):");
    print!("{}", fig1_grid(&result.cube, "gender", "age", "sector", SegIndex::Dissimilarity));

    // Direct cell lookups.
    let women = result.cube.get_by_names(&[("gender", "F")], &[]).expect("cell exists");
    println!("\nWomen across sector units: D = {:.3}", women.dissimilarity.unwrap());
    Ok(())
}
