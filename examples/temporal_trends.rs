//! Temporal analysis on the synthetic Estonian registry: segregation
//! trends over 20 years of board appointments.
//!
//! Run with: `cargo run --release --example temporal_trends`
//!
//! Memberships carry validity intervals; the `dates` input turns them into
//! yearly snapshots (Fig. 2), each analysed independently. The generator
//! plants a gradual feminization of boards, so exposure indexes drift
//! while the evenness ranking of sectors stays recognizable.

use scube::prelude::*;

fn main() -> Result<()> {
    let boards = scube_datagen::estonia(3000);
    let years = boards.snapshot_years(8);
    let dataset = boards.to_dataset(years)?;
    println!(
        "Synthetic Estonia: {} directors, {} companies, {} interval-labelled seats",
        dataset.num_individuals(),
        dataset.num_groups(),
        dataset.bipartite.memberships().len()
    );

    let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
        .cube(CubeBuilder::new().min_support(20).parallel(true));
    let snapshots = run_snapshots(&dataset, &config)?;

    println!("\nyear  rows   P(F)     D       H     xPx");
    for (year, result) in &snapshots {
        let Some(v) = result.cube.get_by_names(&[("gender", "F")], &[]) else {
            println!("{year}  (no data)");
            continue;
        };
        println!(
            "{year}  {:>5}  {:>5.3}  {:>6}  {:>6}  {:>6}",
            result.stats.n_rows,
            v.minority_proportion().unwrap_or(f64::NAN),
            fmt(v.dissimilarity),
            fmt(v.information),
            fmt(v.isolation),
        );
    }

    // The planted drift: female share of active directors rises.
    let first = snapshots.first().and_then(|(_, r)| {
        r.cube.get_by_names(&[("gender", "F")], &[]).and_then(|v| v.minority_proportion())
    });
    let last = snapshots.last().and_then(|(_, r)| {
        r.cube.get_by_names(&[("gender", "F")], &[]).and_then(|v| v.minority_proportion())
    });
    if let (Some(first), Some(last)) = (first, last) {
        println!(
            "\nfemale share drifted from {first:.3} to {last:.3} across the period \
             (planted drift is positive)"
        );
    }
    Ok(())
}

fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into())
}
