#![warn(missing_docs)]
//! Offline, in-tree substitute for the `rand` crate.
//!
//! The build environment has no network access, so this vendor crate
//! reimplements the small subset of the rand 0.9 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`],
//! [`Rng::random_range`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `SmallRng`, but the workspace only requires
//! determinism under a fixed seed, which this provides.

pub mod rngs;
pub mod seq;

mod distr;

pub use distr::{SampleRange, StandardUniform};

/// A random number generator yielding 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods for producing typed values (the user-facing trait).
pub trait Rng: RngCore + Sized {
    /// A uniformly random value of `T` (full range for integers, `[0, 1)`
    /// for floats).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(0..10);
            assert!(x < 10);
            let y: u64 = rng.random_range(5..=9);
            assert!((5..=9).contains(&y));
            let z: i64 = rng.random_range(-3..=3);
            assert!((-3..=3).contains(&z));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u32 = rng.random_range(5..5);
    }
}
