//! Uniform sampling of typed values and ranges.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Types with a canonical uniform distribution.
pub trait StandardUniform: Sized {
    /// Sample one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by widening multiply (Lemire's method,
/// without the rejection step — the bias is ≤ 2⁻⁶⁴·bound, irrelevant for
/// test data generation).
#[inline]
fn below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, width) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u128::from(u64::MAX) {
                    // Full-width integer range: any word is uniform.
                    return rng.next_u64() as $t;
                }
                (start as i128 + below(rng, width as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_in<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}
