//! Sequence helpers.

use crate::{Rng, RngCore};

/// Slice extension: in-place random shuffling.
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
