//! Offline in-tree substitute for an HTTP crate: a minimal, dependency-free
//! HTTP/1.1 layer for loopback serving.
//!
//! The build environment has no network access, so — like `vendor/rand` and
//! `vendor/proptest` — this crate vendors just enough of the protocol for the
//! `scubed` daemon and its tests: a blocking threaded server, a blocking
//! client, and a hardened request parser. It is deliberately *not* a general
//! HTTP implementation: no TLS, no chunked transfer encoding (rejected with
//! `501`), no HTTP/2.
//!
//! # Hardening discipline
//!
//! Every byte that arrives over the wire is untrusted. The parser follows the
//! same discipline as the snapshot loader's `PREALLOC_CAP`: declared lengths
//! are *claims*, so preallocation from them is capped, every limit violation
//! becomes a structured [`RequestError`] (mapped to a 4xx/5xx response by the
//! caller), and no input — truncated, oversized, or corrupt — may panic or
//! over-allocate. See [`Limits`] for the caps.
//!
//! # Example (loopback round trip)
//!
//! ```
//! use minihttp::{HttpClient, HttpResponse, HttpServer, RequestOutcome};
//!
//! let server = HttpServer::bind("127.0.0.1:0").unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = std::thread::spawn(move || {
//!     if let Ok(Some(mut conn)) = server.accept() {
//!         if let Ok(RequestOutcome::Request(req)) = conn.next_request() {
//!             assert_eq!(req.path, "/ping");
//!             conn.respond(&HttpResponse::text(200, "pong")).unwrap();
//!         }
//!     }
//! });
//! let mut client = HttpClient::connect(&addr.to_string()).unwrap();
//! let resp = client.get("/ping").unwrap();
//! assert_eq!(resp.status, 200);
//! assert_eq!(resp.body, b"pong");
//! drop(client);
//! handle.join().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
mod parse;
mod server;

pub use client::{ClientResponse, HttpClient};
pub use parse::{Limits, RequestError};
pub use server::{HttpConn, HttpRequest, HttpResponse, HttpServer, RequestOutcome};

/// Percent-encode a string for use inside a URL query component.
///
/// Unreserved characters (`A-Z a-z 0-9 - _ . ~`) pass through; everything
/// else (including `+`, `=`, `&`, and spaces) is emitted as `%XX`.
///
/// ```
/// assert_eq!(minihttp::percent_encode("a b&c=1"), "a%20b%26c%3D1");
/// ```
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push(char::from_digit((b >> 4) as u32, 16).unwrap().to_ascii_uppercase());
                out.push(char::from_digit((b & 0xf) as u32, 16).unwrap().to_ascii_uppercase());
            }
        }
    }
    out
}

/// Percent-decode a URL query component. `+` decodes to a space.
///
/// Returns `None` on malformed escapes (`%` not followed by two hex digits)
/// or when the decoded bytes are not valid UTF-8 — callers must treat that
/// as a client error, never a panic.
///
/// ```
/// assert_eq!(minihttp::percent_decode("a%20b%26c"), Some("a b&c".to_string()));
/// assert_eq!(minihttp::percent_decode("bad%2"), None);
/// ```
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = (bytes.get(i + 1).copied()? as char).to_digit(16)?;
                let lo = (bytes.get(i + 2).copied()? as char).to_digit(16)?;
                out.push(((hi << 4) | lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod roundtrip_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_ascii() {
        for s in ["", "plain", "a b", "x=y&z", "100%", "~._-"] {
            assert_eq!(percent_decode(&percent_encode(s)).as_deref(), Some(s));
        }
    }

    #[test]
    fn decode_rejects_truncated_escape() {
        assert_eq!(percent_decode("%"), None);
        assert_eq!(percent_decode("%4"), None);
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("ok%"), None);
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(s in ".{0,64}") {
            prop_assert_eq!(percent_decode(&percent_encode(&s)), Some(s));
        }

        #[test]
        fn decode_never_panics(s in ".{0,64}") {
            let _ = percent_decode(&s);
        }
    }
}
