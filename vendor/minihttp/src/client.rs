//! Blocking HTTP/1.1 client for loopback testing and load generation.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::parse::{parse_head, read_head, read_until, HeadRead, Limits};

/// How long [`HttpClient::request`] waits for a complete response before
/// giving up with `TimedOut`.
const RESPONSE_DEADLINE: Duration = Duration::from_secs(30);

/// Socket read timeout; bounds each poll of a pending response.
const READ_TIMEOUT: Duration = Duration::from_millis(5);

/// A parsed response as seen by the client.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Lowercased header `(name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8, or `None` if it is not valid UTF-8.
    pub fn text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// A keep-alive connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
    limits: Limits,
}

impl HttpClient {
    /// Connect to `addr` (e.g. `"127.0.0.1:8080"`).
    pub fn connect(addr: &str) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(HttpClient { stream, buf: Vec::new(), limits: Limits::default() })
    }

    /// Issue a `GET` and wait for the response.
    pub fn get(&mut self, target: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", target, None)
    }

    /// Issue a `POST` with a body and wait for the response.
    pub fn post(&mut self, target: &str, body: &[u8]) -> std::io::Result<ClientResponse> {
        self.request("POST", target, Some(body))
    }

    /// Issue a request and block until the full response arrives (bounded by
    /// an internal deadline). Malformed responses surface as
    /// `InvalidData` I/O errors — the client never panics on wire bytes.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or(&[]);
        let mut msg = format!(
            "{method} {target} HTTP/1.1\r\nHost: scubed\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        msg.extend_from_slice(body);
        self.stream.write_all(&msg)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let started = Instant::now();
        let head_len = loop {
            match read_head(&mut self.stream, &mut self.buf, &self.limits)? {
                HeadRead::Head(n) => break n,
                HeadRead::Idle => {
                    if started.elapsed() > RESPONSE_DEADLINE {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "no response before deadline",
                        ));
                    }
                }
                HeadRead::Closed => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed connection before responding",
                    ));
                }
                HeadRead::Failed(e) => return Err(invalid(&format!("bad response head: {e}"))),
            }
        };
        let head = parse_head(&self.buf[..head_len], &self.limits)
            .map_err(|e| invalid(&format!("bad response head: {e}")))?;
        let status = parse_status_line(&head.start_line)
            .ok_or_else(|| invalid(&format!("bad status line {:?}", head.start_line)))?;
        let content_length: usize = match head.header("content-length") {
            Some(v) => {
                let n: u64 =
                    v.parse().map_err(|_| invalid(&format!("bad Content-Length {v:?}")))?;
                if n > self.limits.max_body as u64 {
                    return Err(invalid("response body too large"));
                }
                n as usize
            }
            None => return Err(invalid("response missing Content-Length")),
        };
        let total = head_len + content_length;
        read_until(&mut self.stream, &mut self.buf, total, &self.limits)?
            .map_err(|e| invalid(&format!("truncated response body: {e}")))?;
        let body = self.buf[head_len..total].to_vec();
        self.buf.drain(..total);
        Ok(ClientResponse { status, headers: head.headers, body })
    }
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Parse `HTTP/1.x NNN reason` into the status code.
fn parse_status_line(line: &str) -> Option<u16> {
    let rest = line.strip_prefix("HTTP/1.")?;
    let rest = rest.split_once(' ')?.1;
    let code = rest.split(' ').next()?;
    if code.len() != 3 {
        return None;
    }
    code.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HttpResponse, HttpServer, RequestOutcome};

    #[test]
    fn status_line_parsing() {
        assert_eq!(parse_status_line("HTTP/1.1 200 OK"), Some(200));
        assert_eq!(parse_status_line("HTTP/1.0 404 Not Found"), Some(404));
        assert_eq!(parse_status_line("HTTP/1.1 200"), Some(200));
        assert_eq!(parse_status_line("SMTP 200 OK"), None);
        assert_eq!(parse_status_line("HTTP/1.1 2000 OK"), None);
    }

    #[test]
    fn keep_alive_round_trips_and_shutdown() {
        let server = HttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let server = std::sync::Arc::new(server);
        let srv = std::sync::Arc::clone(&server);
        let handle = std::thread::spawn(move || {
            let mut served = 0u32;
            while let Ok(Some(mut conn)) = srv.accept() {
                loop {
                    match conn.next_request() {
                        Ok(RequestOutcome::Request(req)) => {
                            served += 1;
                            let body = format!("echo:{}?{}", req.path, req.query);
                            conn.respond(&HttpResponse::text(200, body)).unwrap();
                            if !req.keep_alive {
                                break;
                            }
                        }
                        Ok(RequestOutcome::Idle) => {
                            if srv.is_shutting_down() {
                                break;
                            }
                        }
                        _ => break,
                    }
                }
            }
            served
        });
        let mut client = HttpClient::connect(&addr).unwrap();
        for i in 0..5 {
            let resp = client.get(&format!("/p{i}?n={i}")).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.text().unwrap(), format!("echo:/p{i}?n={i}"));
        }
        let resp = client.post("/body", b"12345").unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
        drop(client);
        assert_eq!(handle.join().unwrap(), 6);
    }
}
