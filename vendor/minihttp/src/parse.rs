//! Hardened byte-level reading and parsing of HTTP/1.1 message heads.
//!
//! Everything here treats the peer as untrusted: declared lengths are claims,
//! preallocation from them is capped at [`PREALLOC_FLOOR`], all caps are
//! enforced before allocation, and every violation is a [`RequestError`]
//! carrying the status code the peer should see — never a panic.

use std::io::{ErrorKind, Read};
use std::time::{Duration, Instant};

/// Preallocation cap for length-driven buffers, mirroring the snapshot
/// loader's `PREALLOC_CAP`: a peer may *claim* any Content-Length up to
/// [`Limits::max_body`], but we only pre-reserve up to this many bytes and
/// let the buffer grow as real bytes actually arrive.
pub(crate) const PREALLOC_FLOOR: usize = 1 << 16;

/// Size of the fixed stack chunk used for socket reads.
const READ_CHUNK: usize = 4096;

/// Caps applied to every inbound HTTP message.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers, terminator included.
    pub max_head: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum accepted body length in bytes.
    pub max_body: usize,
    /// Wall-clock budget for receiving one complete message once its first
    /// byte has arrived. Idle keep-alive waiting is not counted.
    pub message_deadline: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 16 * 1024,
            max_headers: 64,
            max_body: 16 * 1024 * 1024,
            message_deadline: Duration::from_secs(10),
        }
    }
}

/// A malformed or over-limit message, with the HTTP status the peer should
/// see and a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Suggested response status (400, 408, 413, 431, 501, or 505).
    pub status: u16,
    /// What was wrong with the message.
    pub reason: String,
}

impl RequestError {
    pub(crate) fn new(status: u16, reason: impl Into<String>) -> Self {
        RequestError { status, reason: reason.into() }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.reason)
    }
}

impl std::error::Error for RequestError {}

/// Result of trying to read one complete message head from a connection.
pub(crate) enum HeadRead {
    /// A full head terminated by `\r\n\r\n`; the value is the byte length of
    /// the head *including* the terminator (the head occupies `buf[..len]`).
    Head(usize),
    /// The peer closed the connection cleanly before sending anything.
    Closed,
    /// No bytes arrived within one read-timeout window and none are pending;
    /// the caller decides whether to keep waiting or give up.
    Idle,
    /// The bytes received so far cannot be a valid message head.
    Failed(RequestError),
}

fn is_timeout(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Read from `stream` into `buf` until `buf` contains a full `\r\n\r\n`
/// terminated head, honouring [`Limits::max_head`] and the message deadline.
///
/// `buf` may already hold bytes from a previous read (keep-alive
/// pipelining); those count toward the head. The deadline starts at the
/// first byte of *this* message, so an idle keep-alive connection is
/// reported as [`HeadRead::Idle`], not an error.
pub(crate) fn read_head<S: Read>(
    stream: &mut S,
    buf: &mut Vec<u8>,
    limits: &Limits,
) -> std::io::Result<HeadRead> {
    let mut started: Option<Instant> = if buf.is_empty() { None } else { Some(Instant::now()) };
    let mut scanned = 0usize;
    loop {
        if let Some(end) = find_terminator(&buf[..], &mut scanned) {
            return Ok(HeadRead::Head(end));
        }
        if buf.len() > limits.max_head {
            return Ok(HeadRead::Failed(RequestError::new(431, "request head too large")));
        }
        if let Some(t0) = started {
            if t0.elapsed() > limits.message_deadline {
                return Ok(HeadRead::Failed(RequestError::new(408, "request head timed out")));
            }
        }
        let mut chunk = [0u8; READ_CHUNK];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Ok(if buf.is_empty() {
                    HeadRead::Closed
                } else {
                    HeadRead::Failed(RequestError::new(400, "connection closed mid-head"))
                });
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                started.get_or_insert_with(Instant::now);
            }
            Err(e) if is_timeout(e.kind()) => {
                if started.is_none() {
                    return Ok(HeadRead::Idle);
                }
                // Partial head pending: keep polling until the deadline.
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Incrementally scan for `\r\n\r\n`, resuming from `*scanned` so repeated
/// calls over a growing buffer stay linear overall.
fn find_terminator(buf: &[u8], scanned: &mut usize) -> Option<usize> {
    let start = scanned.saturating_sub(3);
    for i in start..buf.len().saturating_sub(3) {
        if &buf[i..i + 4] == b"\r\n\r\n" {
            return Some(i + 4);
        }
    }
    *scanned = buf.len();
    None
}

/// Read from `stream` until `buf` holds at least `want` bytes.
///
/// `want` has already been validated against [`Limits::max_body`]; this only
/// enforces the message deadline and detects truncation. Preallocation is
/// capped at [`PREALLOC_FLOOR`] — the buffer grows with real bytes, so a
/// crafted huge Content-Length cannot balloon memory before data arrives.
pub(crate) fn read_until(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    want: usize,
    limits: &Limits,
) -> std::io::Result<Result<(), RequestError>> {
    let started = Instant::now();
    if want > buf.len() {
        buf.reserve((want - buf.len()).min(PREALLOC_FLOOR));
    }
    while buf.len() < want {
        if started.elapsed() > limits.message_deadline {
            return Ok(Err(RequestError::new(408, "request body timed out")));
        }
        let mut chunk = [0u8; READ_CHUNK];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Ok(Err(RequestError::new(400, "connection closed mid-body")));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(e.kind()) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Ok(()))
}

/// A parsed message head: the start line plus lowercased header pairs.
pub(crate) struct Head {
    pub start_line: String,
    /// Header `(name, value)` pairs; names are lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
}

impl Head {
    /// First value of header `name` (already lowercase), if present.
    pub(crate) fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Parse the bytes of a head (terminator included) into start line + headers.
pub(crate) fn parse_head(bytes: &[u8], limits: &Limits) -> Result<Head, RequestError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| RequestError::new(400, "head is not valid UTF-8"))?;
    let text = text
        .strip_suffix("\r\n\r\n")
        .ok_or_else(|| RequestError::new(400, "head missing CRLF terminator"))?;
    let mut lines = text.split("\r\n");
    let start_line = lines.next().unwrap_or("").to_string();
    if start_line.is_empty() {
        return Err(RequestError::new(400, "empty start line"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= limits.max_headers {
            return Err(RequestError::new(431, "too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::new(400, "header line missing colon"))?;
        if name.is_empty()
            || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(RequestError::new(400, "invalid header name"));
        }
        let value = value.trim();
        if value.bytes().any(|b| b < 0x20 && b != b'\t') {
            return Err(RequestError::new(400, "control byte in header value"));
        }
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }
    Ok(Head { start_line: start_line.to_string(), headers })
}

/// The validated pieces of a request head the server acts on.
#[derive(Debug)]
pub(crate) struct RequestHead {
    pub method: String,
    pub target: String,
    pub keep_alive: bool,
    pub content_length: usize,
}

/// Validate a request start line + headers against the limits.
pub(crate) fn parse_request_head(
    head: &Head,
    limits: &Limits,
) -> Result<RequestHead, RequestError> {
    let mut parts = head.start_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(RequestError::new(400, "malformed request line")),
    };
    if method.is_empty() || method.len() > 16 || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(RequestError::new(400, "invalid method"));
    }
    if !target.starts_with('/') || !target.bytes().all(|b| (0x21..=0x7e).contains(&b)) {
        return Err(RequestError::new(400, "invalid request target"));
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(RequestError::new(505, "unsupported HTTP version")),
    };
    if head.header("transfer-encoding").is_some() {
        return Err(RequestError::new(501, "transfer encoding not supported"));
    }
    if head.headers.iter().filter(|(n, _)| n == "content-length").count() > 1 {
        return Err(RequestError::new(400, "duplicate Content-Length"));
    }
    let content_length = match head.header("content-length") {
        None => 0,
        Some(v) => {
            let n: u64 = v.parse().map_err(|_| RequestError::new(400, "invalid Content-Length"))?;
            if n > limits.max_body as u64 {
                return Err(RequestError::new(
                    413,
                    format!("body too large (limit {} bytes)", limits.max_body),
                ));
            }
            n as usize
        }
    };
    let keep_alive = match head.header("connection").map(|v| v.to_ascii_lowercase()) {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => keep_alive_default,
    };
    Ok(RequestHead {
        method: method.to_string(),
        target: target.to_string(),
        keep_alive,
        content_length,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lim() -> Limits {
        Limits::default()
    }

    fn head_of(raw: &str) -> Result<RequestHead, RequestError> {
        let h = parse_head(raw.as_bytes(), &lim())?;
        parse_request_head(&h, &lim())
    }

    #[test]
    fn parses_minimal_get() {
        let h = head_of("GET /x?a=1 HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(h.method, "GET");
        assert_eq!(h.target, "/x?a=1");
        assert!(h.keep_alive);
        assert_eq!(h.content_length, 0);
    }

    #[test]
    fn http10_defaults_to_close() {
        assert!(!head_of("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(head_of("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().keep_alive);
        assert!(!head_of("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().keep_alive);
    }

    #[test]
    fn rejects_bad_request_lines() {
        for (raw, status) in [
            ("GET /\r\n\r\n", 400),
            ("GET / HTTP/1.1 extra\r\n\r\n", 400),
            ("get / HTTP/1.1\r\n\r\n", 400),
            ("GET x HTTP/1.1\r\n\r\n", 400),
            ("GET /a b HTTP/1.1\r\n\r\n", 400),
            ("GET / HTTP/2.0\r\n\r\n", 505),
            ("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            ("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\n: novalue\r\n\r\n", 400),
        ] {
            assert_eq!(head_of(raw).unwrap_err().status, status, "input {raw:?}");
        }
    }

    #[test]
    fn content_length_is_validated() {
        assert_eq!(
            head_of("POST / HTTP/1.1\r\nContent-Length: 12\r\n\r\n").unwrap().content_length,
            12
        );
        for raw in [
            "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: twelve\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",
        ] {
            assert_eq!(head_of(raw).unwrap_err().status, 400, "input {raw:?}");
        }
        assert_eq!(
            head_of("POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n").unwrap_err().status,
            413
        );
    }

    #[test]
    fn header_count_is_capped() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..100 {
            raw.push_str(&format!("H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(head_of(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn read_head_detects_truncation_and_oversize() {
        let mut buf = Vec::new();
        // Closed mid-head (reader yields some bytes then EOF).
        let mut stream: &[u8] = b"GET / HT";
        match read_head(&mut stream, &mut buf, &lim()).unwrap() {
            HeadRead::Failed(e) => assert_eq!(e.status, 400),
            _ => panic!("expected failure"),
        }
        // Clean close before any bytes.
        let mut empty: &[u8] = b"";
        buf.clear();
        match read_head(&mut empty, &mut buf, &lim()).unwrap() {
            HeadRead::Closed => {}
            _ => panic!("expected Closed"),
        }
        // Head larger than the cap.
        let big = vec![b'a'; 20 * 1024];
        let mut stream: &[u8] = &big;
        buf.clear();
        match read_head(&mut stream, &mut buf, &lim()).unwrap() {
            HeadRead::Failed(e) => assert_eq!(e.status, 431),
            _ => panic!("expected failure"),
        }
    }

    #[test]
    fn read_until_reports_truncated_body() {
        let mut stream: &[u8] = b"abc";
        let mut buf = Vec::new();
        let err = read_until(&mut stream, &mut buf, 10, &lim()).unwrap().unwrap_err();
        assert_eq!(err.status, 400);
    }
}
