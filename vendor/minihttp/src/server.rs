//! Blocking HTTP/1.1 server side: listener with graceful shutdown, and a
//! per-connection request/response loop over any `Read + Write` transport.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::parse::{
    parse_head, parse_request_head, read_head, read_until, HeadRead, Limits, RequestError,
};

/// How long a blocked `accept` or socket read sleeps before re-checking the
/// shutdown flag. Short enough that shutdown feels instant, long enough to
/// stay off the profiler.
const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// A listening socket with cooperative shutdown.
///
/// `accept` never blocks indefinitely: the listener runs in non-blocking
/// mode and polls a shutdown flag, so any thread can call [`HttpServer::shutdown`]
/// and every acceptor unblocks within one poll interval.
pub struct HttpServer {
    listener: TcpListener,
    closing: AtomicBool,
    limits: Limits,
}

impl HttpServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port).
    pub fn bind(addr: &str) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(HttpServer { listener, closing: AtomicBool::new(false), limits: Limits::default() })
    }

    /// Replace the default parser [`Limits`].
    pub fn with_limits(mut self, limits: Limits) -> HttpServer {
        self.limits = limits;
        self
    }

    /// The bound socket address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept the next connection, or `None` once [`HttpServer::shutdown`]
    /// has been called. Safe to call from many worker threads at once.
    pub fn accept(&self) -> std::io::Result<Option<HttpConn<TcpStream>>> {
        loop {
            if self.closing.load(Ordering::Acquire) {
                return Ok(None);
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(Some(POLL_INTERVAL))?;
                    return Ok(Some(HttpConn::new(stream, self.limits.clone())));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Ask every acceptor to stop. In-flight connections are unaffected;
    /// each worker drains its current connection before exiting.
    pub fn shutdown(&self) {
        self.closing.store(true, Ordering::Release);
    }

    /// Whether [`HttpServer::shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.closing.load(Ordering::Acquire)
    }
}

/// One parsed inbound request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, before any `?`.
    pub path: String,
    /// Raw query string after `?` (empty when absent); still percent-encoded.
    pub query: String,
    /// Lowercased header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless Content-Length was sent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// What [`HttpConn::next_request`] produced.
pub enum RequestOutcome {
    /// A complete, well-formed request.
    Request(HttpRequest),
    /// Peer closed the connection cleanly between requests.
    Closed,
    /// Nothing arrived within one poll interval; the caller decides whether
    /// to keep waiting (and can check its shutdown flag in between).
    Idle,
    /// The peer sent bytes that cannot be a valid request. The caller should
    /// send an error response ([`HttpResponse::from_error`]) and drop the
    /// connection.
    Malformed(RequestError),
}

/// An accepted connection. Generic over the transport so parser behaviour is
/// testable against in-memory streams; production use is `TcpStream`.
pub struct HttpConn<S> {
    stream: S,
    buf: Vec<u8>,
    limits: Limits,
}

impl<S: std::io::Read + Write> HttpConn<S> {
    /// Wrap a transport. For `TcpStream` prefer [`HttpServer::accept`],
    /// which also configures the read timeout that drives `Idle`.
    pub fn new(stream: S, limits: Limits) -> HttpConn<S> {
        HttpConn { stream, buf: Vec::new(), limits }
    }

    /// Read the next request off the connection.
    ///
    /// Handles keep-alive and pipelining: bytes beyond the current message
    /// are kept for the next call. All parse failures are returned as
    /// [`RequestOutcome::Malformed`] — this never panics on wire input.
    pub fn next_request(&mut self) -> std::io::Result<RequestOutcome> {
        let head_len = match read_head(&mut self.stream, &mut self.buf, &self.limits)? {
            HeadRead::Head(n) => n,
            HeadRead::Closed => return Ok(RequestOutcome::Closed),
            HeadRead::Idle => return Ok(RequestOutcome::Idle),
            HeadRead::Failed(e) => return Ok(RequestOutcome::Malformed(e)),
        };
        let parsed = parse_head(&self.buf[..head_len], &self.limits)
            .and_then(|h| parse_request_head(&h, &self.limits).map(|r| (h, r)));
        let (head, req) = match parsed {
            Ok(p) => p,
            Err(e) => return Ok(RequestOutcome::Malformed(e)),
        };
        let total = head_len + req.content_length;
        if req.content_length > 0 {
            match read_until(&mut self.stream, &mut self.buf, total, &self.limits)? {
                Ok(()) => {}
                Err(e) => return Ok(RequestOutcome::Malformed(e)),
            }
        }
        let body = self.buf[head_len..total].to_vec();
        self.buf.drain(..total);
        let (path, query) = match req.target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (req.target.clone(), String::new()),
        };
        Ok(RequestOutcome::Request(HttpRequest {
            method: req.method,
            path,
            query,
            headers: head.headers,
            body,
            keep_alive: req.keep_alive,
        }))
    }

    /// Write a response. Errors are plain I/O errors (peer went away).
    pub fn respond(&mut self, resp: &HttpResponse) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            resp.status,
            reason_phrase(resp.status),
            resp.content_type,
            resp.body.len(),
            if resp.close { "close" } else { "keep-alive" },
        )
        .into_bytes();
        head.extend_from_slice(&resp.body);
        self.stream.write_all(&head)?;
        self.stream.flush()
    }
}

/// An outbound response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Value for the `Content-Type` header.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Send `Connection: close` and let the caller drop the connection.
    pub close: bool,
}

impl HttpResponse {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain",
            body: body.into().into_bytes(),
            close: false,
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            close: false,
        }
    }

    /// The error response for a malformed request; marks the connection for
    /// closing since framing can no longer be trusted.
    pub fn from_error(err: &RequestError) -> HttpResponse {
        let mut r = HttpResponse::text(err.status, format!("{}\n", err.reason));
        r.close = true;
        r
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Status",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// In-memory transport: reads from a canned script, discards writes.
    struct Script {
        input: std::io::Cursor<Vec<u8>>,
        out: Vec<u8>,
    }

    impl Script {
        fn new(input: &[u8]) -> Script {
            Script { input: std::io::Cursor::new(input.to_vec()), out: Vec::new() }
        }
    }

    impl std::io::Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Script {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.out.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn conn(input: &[u8]) -> HttpConn<Script> {
        HttpConn::new(Script::new(input), Limits::default())
    }

    #[test]
    fn parses_pipelined_requests() {
        let mut c = conn(
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET /c?k=v HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        match c.next_request().unwrap() {
            RequestOutcome::Request(r) => {
                assert_eq!((r.method.as_str(), r.path.as_str()), ("GET", "/a"));
                assert!(r.keep_alive);
            }
            _ => panic!("want request"),
        }
        match c.next_request().unwrap() {
            RequestOutcome::Request(r) => {
                assert_eq!((r.method.as_str(), r.path.as_str()), ("POST", "/b"));
                assert_eq!(r.body, b"xyz");
            }
            _ => panic!("want request"),
        }
        match c.next_request().unwrap() {
            RequestOutcome::Request(r) => {
                assert_eq!(r.query, "k=v");
                assert!(!r.keep_alive);
            }
            _ => panic!("want request"),
        }
        match c.next_request().unwrap() {
            RequestOutcome::Closed => {}
            _ => panic!("want closed"),
        }
    }

    #[test]
    fn truncated_body_is_malformed_not_panic() {
        let mut c = conn(b"POST /u HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort");
        match c.next_request().unwrap() {
            RequestOutcome::Malformed(e) => assert_eq!(e.status, 400),
            _ => panic!("want malformed"),
        }
    }

    #[test]
    fn huge_content_length_is_rejected_without_allocating() {
        // Larger than u64: unparseable, 400.
        let mut c = conn(b"POST /u HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n");
        match c.next_request().unwrap() {
            RequestOutcome::Malformed(e) => assert_eq!(e.status, 400),
            _ => panic!("want malformed"),
        }
        // Fits in u64 but over the body cap: 413, with no allocation made.
        let mut c = conn(b"POST /u HTTP/1.1\r\nContent-Length: 18446744073709551615\r\n\r\n");
        match c.next_request().unwrap() {
            RequestOutcome::Malformed(e) => assert_eq!(e.status, 413),
            _ => panic!("want malformed"),
        }
        let mut c = conn(b"POST /u HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
        match c.next_request().unwrap() {
            RequestOutcome::Malformed(e) => assert_eq!(e.status, 413),
            _ => panic!("want malformed"),
        }
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let mut c = conn(b"GET / HTTP/1.1\r\n\r\n");
        let _ = c.next_request().unwrap();
        c.respond(&HttpResponse::json(200, "{\"ok\":true}")).unwrap();
        let out = String::from_utf8(c.stream.out.clone()).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("Content-Length: 11\r\n"), "{out}");
        assert!(out.ends_with("\r\n\r\n{\"ok\":true}"), "{out}");
    }

    /// A canonical valid request to mutate.
    const SEED: &[u8] = b"POST /cubes/main/update HTTP/1.1\r\nHost: x\r\nContent-Length: 14\r\n\r\n{\"remove\":[]}\n";

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Satellite-2 property: any byte-level corruption of a valid
        /// request either still parses (harmless mutation), reads as
        /// closed/idle, or yields a structured Malformed with a 4xx/5xx
        /// status — never a panic, never an over-read.
        #[test]
        fn mutated_requests_never_panic(
            muts in proptest::collection::vec((0usize..SEED.len(), any::<u8>()), 1..8),
            cut in 0usize..SEED.len(),
        ) {
            let mut bytes = SEED.to_vec();
            for (pos, val) in muts {
                bytes[pos] = val;
            }
            bytes.truncate(SEED.len() - cut);
            let mut c = conn(&bytes);
            // Drain every outcome the connection can produce; success is
            // simply "no panic and termination".
            for _ in 0..4 {
                match c.next_request() {
                    Ok(RequestOutcome::Request(_)) => continue,
                    Ok(RequestOutcome::Closed) | Ok(RequestOutcome::Idle) => break,
                    Ok(RequestOutcome::Malformed(e)) => {
                        prop_assert!((400..600).contains(&e.status));
                        break;
                    }
                    Err(_) => break,
                }
            }
        }

        /// Random garbage (not derived from a valid request) must likewise
        /// produce only structured outcomes.
        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut c = conn(&bytes);
            for _ in 0..4 {
                match c.next_request() {
                    Ok(RequestOutcome::Request(_)) => continue,
                    _ => break,
                }
            }
        }
    }
}
