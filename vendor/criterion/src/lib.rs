#![warn(missing_docs)]
//! Offline, in-tree substitute for the `criterion` crate.
//!
//! The build environment has no network access, so this vendor crate
//! provides the subset of the criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! adaptive timing loop instead of criterion's statistical machinery.
//! Results are printed as `group/name: median time/iter` lines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        BenchmarkGroup { _c: self, name: name.to_string() }
    }
}

/// A named benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Use a bare parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the timing loop is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Run one benchmark with an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Finish the group (no-op; printed incrementally).
    pub fn finish(&mut self) {}
}

/// Runs the measured closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `f`, adapting the iteration count to the target time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration run.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / first.as_nanos()).clamp(1, 10_000) as u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
        self.iters = iters;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no measurement");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        println!("{group}/{id}: {} ({} iters)", fmt_time(per_iter), self.iters);
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_without_panicking() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        let mut runs = 0u64;
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
