//! `any::<T>()` for primitives.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (b' ' + rng.below(95) as u8) as char
    }
}
