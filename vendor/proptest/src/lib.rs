#![warn(missing_docs)]
//! Offline, in-tree substitute for the `proptest` crate.
//!
//! The build environment has no network access, so this vendor crate
//! reimplements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges, tuples, and regex-literal `&str` patterns,
//! * [`collection::vec`] / [`collection::btree_set`],
//! * [`string::string_regex`] over a practical regex subset,
//! * [`arbitrary::any`] for primitives.
//!
//! No shrinking is performed: a failing case panics with the generating
//! seed printed, which is reproducible because generation is deterministic
//! per test name.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]` that
/// evaluates its strategies once, then runs `body` for `config.cases`
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ( $( $strat, )+ );
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let __case_seed = __rng.state();
                let ( $( $pat, )+ ) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                // As in upstream proptest, the body may `return Ok(())`
                // early; a body falling off the end yields `Ok(())` too.
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                match __result {
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} failed (rng state {:#x}) in {}",
                            __case + 1,
                            __config.cases,
                            __case_seed,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        panic!("proptest case rejected: {e}");
                    }
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                }
            }
        }
    )*};
}

/// Property assertion (no shrinking; equivalent to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion (equivalent to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion (equivalent to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, (a, b) in (0u8..3, 5u64..9)) {
            prop_assert!(x < 10);
            prop_assert!(a < 3);
            prop_assert!((5..9).contains(&b));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn btree_sets_are_bounded(s in crate::collection::btree_set(0u32..50, 0..10)) {
            prop_assert!(s.len() < 10);
            prop_assert!(s.iter().all(|&x| x < 50));
        }

        #[test]
        fn mapped(v in crate::collection::vec(1u64..5, 2..4).prop_map(|v| v.len())) {
            prop_assert!((2..4).contains(&v));
        }

        #[test]
        fn regex_literal(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn any_bool_and_u64(b in any::<bool>(), x in any::<u64>()) {
            let _ = (b, x);
        }
    }

    #[test]
    fn fixed_size_vec() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_test("fixed");
        let v = crate::collection::vec(0u8..2, 5usize).generate(&mut rng);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u32..1000, 10usize);
        let a = strat.generate(&mut crate::test_runner::TestRng::for_test("t"));
        let b = strat.generate(&mut crate::test_runner::TestRng::for_test("t"));
        assert_eq!(a, b);
    }
}
