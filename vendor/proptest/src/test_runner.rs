//! Test configuration and the deterministic generation RNG.

/// Configuration of one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generation RNG (SplitMix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded deterministically from a test's full path.
    pub fn for_test(name: &str) -> Self {
        // FxHash-style mixing of the name bytes.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h = (h.rotate_left(5) ^ u64::from(b)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
        TestRng { state: h }
    }

    /// The current internal state (printed on failure for reproduction).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi]`.
    #[inline]
    pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}
