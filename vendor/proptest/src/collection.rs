//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.size_in(self.min, self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
///
/// As in upstream proptest, the size is a *target*: when the element domain
/// is smaller than the requested size the set saturates below it.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Cap the attempts so small domains terminate below the target.
        for _ in 0..target.saturating_mul(4) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}
