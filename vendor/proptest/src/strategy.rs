//! The [`Strategy`] trait and its core implementations.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: `generate` produces a
/// value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategies behind references generate what the referent generates.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(width as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String literals are regex strategies (subset; see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}
