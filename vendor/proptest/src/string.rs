//! String generation from a practical regex subset.
//!
//! Supported syntax: literal characters, `.` (printable ASCII), character
//! classes `[a-z0-9,;-]` (ranges, literals, escapes; no negation), and the
//! quantifiers `*`, `+`, `?`, `{n}`, `{m,n}`. A quantifier directly
//! following a quantified atom composes multiplicatively (so `.*{0,15}`
//! behaves like a bounded `(.*){0,15}`), which covers the patterns the
//! workspace's fuzz tests use.

use std::fmt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Error for unsupported or malformed patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(String);

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RegexError {}

/// Generator for one atom of the pattern.
#[derive(Debug, Clone)]
enum Atom {
    /// `.`: any printable ASCII character.
    Any,
    /// `[...]`: inclusive character ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

impl Atom {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Any => (b' ' + rng.below(95) as u8) as char,
            Atom::Class(ranges) => {
                let total: u64 = ranges.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
                let mut x = rng.below(total);
                for &(lo, hi) in ranges {
                    let span = hi as u64 - lo as u64 + 1;
                    if x < span {
                        return char::from_u32(lo as u32 + x as u32).unwrap_or(lo);
                    }
                    x -= span;
                }
                unreachable!("class sampling is exhaustive")
            }
            Atom::Lit(c) => *c,
        }
    }
}

/// One quantified atom.
#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// The strategy returned by [`string_regex`].
#[derive(Debug, Clone)]
pub struct RegexStrategy {
    pieces: Vec<Piece>,
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = rng.size_in(piece.min, piece.max);
            for _ in 0..n {
                out.push(piece.atom.generate(rng));
            }
        }
        out
    }
}

/// Unbounded quantifiers (`*`, `+`) generate at most this many repetitions.
const UNBOUNDED_MAX: usize = 16;

/// Composed quantifiers are capped at this expansion.
const COMPOSED_MAX: usize = 256;

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

/// Compile `pattern` into a string strategy.
pub fn string_regex(pattern: &str) -> Result<RegexStrategy, RegexError> {
    let mut chars = pattern.chars().peekable();
    let mut pieces: Vec<Piece> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '[' => {
                if chars.peek() == Some(&'^') {
                    return Err(RegexError("negated classes are unsupported".into()));
                }
                let mut items: Vec<char> = Vec::new();
                let mut closed = false;
                for cc in chars.by_ref() {
                    if cc == ']' && !items.is_empty() {
                        closed = true;
                        break;
                    }
                    items.push(cc);
                }
                if !closed {
                    return Err(RegexError("unterminated character class".into()));
                }
                let mut ranges: Vec<(char, char)> = Vec::new();
                let mut i = 0;
                while i < items.len() {
                    let lo = if items[i] == '\\' && i + 1 < items.len() {
                        i += 1;
                        unescape(items[i])
                    } else {
                        items[i]
                    };
                    // `a-z` range (a trailing `-` is a literal).
                    if i + 2 < items.len() && items[i + 1] == '-' {
                        let hi = if items[i + 2] == '\\' && i + 3 < items.len() {
                            i += 1;
                            unescape(items[i + 2])
                        } else {
                            items[i + 2]
                        };
                        if hi < lo {
                            return Err(RegexError(format!("invalid range {lo}-{hi}")));
                        }
                        ranges.push((lo, hi));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => match chars.next() {
                Some(esc) => Atom::Lit(unescape(esc)),
                None => return Err(RegexError("dangling escape".into())),
            },
            '(' | ')' | '|' => {
                return Err(RegexError(format!("unsupported regex construct {c:?}")));
            }
            lit => Atom::Lit(lit),
        };
        let mut piece = Piece { atom, min: 1, max: 1 };
        // Consume any run of quantifiers, composing multiplicatively.
        loop {
            let (min, max) = match chars.peek() {
                Some('*') => {
                    chars.next();
                    (0, UNBOUNDED_MAX)
                }
                Some('+') => {
                    chars.next();
                    (1, UNBOUNDED_MAX)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    let mut closed = false;
                    for cc in chars.by_ref() {
                        if cc == '}' {
                            closed = true;
                            break;
                        }
                        spec.push(cc);
                    }
                    if !closed {
                        return Err(RegexError("unterminated {} quantifier".into()));
                    }
                    let parse = |s: &str| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| RegexError(format!("bad repeat count {s:?}")))
                    };
                    match spec.split_once(',') {
                        Some((m, n)) => {
                            let m = parse(m)?;
                            let n = if n.trim().is_empty() { m + UNBOUNDED_MAX } else { parse(n)? };
                            if n < m {
                                return Err(RegexError(format!("bad repeat {{{spec}}}")));
                            }
                            (m, n)
                        }
                        None => {
                            let m = parse(&spec)?;
                            (m, m)
                        }
                    }
                }
                _ => break,
            };
            piece.min = piece.min.saturating_mul(min).min(COMPOSED_MAX);
            piece.max = piece.max.saturating_mul(max).clamp(piece.min, COMPOSED_MAX);
        }
        pieces.push(piece);
    }
    Ok(RegexStrategy { pieces })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_one(pattern: &str, seed_name: &str) -> String {
        let mut rng = TestRng::for_test(seed_name);
        string_regex(pattern).unwrap().generate(&mut rng)
    }

    #[test]
    fn class_with_escapes_and_trailing_dash() {
        let s = string_regex("[a-zA-Z0-9 ,;\"'\n\r|=*&-]{0,20}").unwrap();
        let mut rng = TestRng::for_test("class");
        for _ in 0..200 {
            let out = s.generate(&mut rng);
            assert!(out.len() <= 20);
            for c in out.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || " ,;\"'\n\r|=*&-".contains(c),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn printable_range_class() {
        let s = string_regex("[ -~\n\r\"]{0,200}").unwrap();
        let mut rng = TestRng::for_test("printable");
        for _ in 0..50 {
            let out = s.generate(&mut rng);
            assert!(out.len() <= 200);
            assert!(out.chars().all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\r'));
        }
    }

    #[test]
    fn composed_quantifier() {
        let s = string_regex(".*{0,15}").unwrap();
        let mut rng = TestRng::for_test("composed");
        for _ in 0..50 {
            let out = s.generate(&mut rng);
            assert!(out.len() <= COMPOSED_MAX);
            assert!(out.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn exact_repeat_and_literals() {
        assert_eq!(gen_one("abc", "lit"), "abc");
        assert_eq!(gen_one("a{3}", "rep"), "aaa");
    }

    #[test]
    fn errors_are_reported() {
        assert!(string_regex("[abc").is_err());
        assert!(string_regex("(a|b)").is_err());
        assert!(string_regex("a{2,1}").is_err());
    }
}
