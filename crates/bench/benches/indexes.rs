//! E5 support: cost of the six segregation indexes vs unit count.
//!
//! The Gini index is the only super-linear one (sorting); this bench shows
//! the `O(n log n)` formulation stays negligible next to cube mining even
//! at 100k units.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scube_segindex::{IndexValues, SegIndex, UnitCounts};
use std::hint::black_box;

fn histogram(n_units: usize, seed: u64) -> UnitCounts {
    let mut rng = SmallRng::seed_from_u64(seed);
    UnitCounts::from_pairs((0..n_units).map(|_| {
        let t = rng.random_range(1..200u64);
        let m = rng.random_range(0..=t);
        (m, t)
    }))
    .expect("valid histogram")
}

fn bench_indexes(c: &mut Criterion) {
    let mut group = c.benchmark_group("segindex");
    group.sample_size(30);
    for &n in &[10usize, 1_000, 100_000] {
        let counts = histogram(n, 42);
        for idx in SegIndex::ALL {
            group.bench_with_input(BenchmarkId::new(idx.name(), n), &counts, |b, counts| {
                b.iter(|| black_box(idx.compute(counts)))
            });
        }
        group.bench_with_input(BenchmarkId::new("all-six", n), &counts, |b, counts| {
            b.iter(|| black_box(IndexValues::compute(counts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_indexes);
criterion_main!(benches);
