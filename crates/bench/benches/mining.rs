//! E11: frequent-itemset miner comparison on the scenario-1 final table.
//!
//! FP-Growth vs Eclat (per tidset representation) vs Apriori, across
//! min-support levels — the "who wins" shape expected from the literature:
//! Apriori trails by an order of magnitude at low support, FP-Growth and
//! Eclat stay close.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scube_bench::italy_final_table;
use scube_bitmap::{DenseBitmap, EwahBitmap, TidVec};
use scube_fpm::{Apriori, Eclat, FpGrowth, Miner};
use std::hint::black_box;

fn bench_miners(c: &mut Criterion) {
    let db = italy_final_table(1500);
    let mut group = c.benchmark_group("mining");
    group.sample_size(10);
    for rel_minsup in [0.02f64, 0.005] {
        let minsup = ((db.len() as f64 * rel_minsup) as u64).max(1);
        group.bench_with_input(BenchmarkId::new("fpgrowth", minsup), &minsup, |b, &m| {
            b.iter(|| black_box(FpGrowth.mine(&db, m).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("eclat-ewah", minsup), &minsup, |b, &m| {
            b.iter(|| black_box(Eclat::<EwahBitmap>::new().mine(&db, m).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("eclat-dense", minsup), &minsup, |b, &m| {
            b.iter(|| black_box(Eclat::<DenseBitmap>::new().mine(&db, m).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("eclat-tidvec", minsup), &minsup, |b, &m| {
            b.iter(|| black_box(Eclat::<TidVec>::new().mine(&db, m).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("apriori", minsup), &minsup, |b, &m| {
            b.iter(|| black_box(Apriori.mine(&db, m).unwrap().len()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("mining_closed");
    group.sample_size(10);
    let minsup = (db.len() as u64 / 100).max(1);
    group.bench_function("fpgrowth-closed", |b| {
        b.iter(|| black_box(FpGrowth.mine_closed(&db, minsup).unwrap().len()))
    });
    group.bench_function("fpgrowth-all", |b| {
        b.iter(|| black_box(FpGrowth.mine(&db, minsup).unwrap().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_miners);
criterion_main!(benches);
