//! E1/E11: SegregationDataCubeBuilder cost — materialization strategy,
//! parallelism, min-support, and tidset-representation ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scube_bench::italy_final_table;
use scube_bitmap::{DenseBitmap, EwahBitmap, TidVec};
use scube_cube::{CubeBuilder, Materialize};
use std::hint::black_box;

fn bench_cube(c: &mut Criterion) {
    let db = italy_final_table(1500);
    let minsup = (db.len() as u64 / 200).max(1);

    let mut group = c.benchmark_group("cube_build");
    group.sample_size(10);
    group.bench_function("all-frequent", |b| {
        b.iter(|| {
            let cube = CubeBuilder::new()
                .min_support(minsup)
                .materialize(Materialize::AllFrequent)
                .build(&db)
                .unwrap();
            black_box(cube.len())
        })
    });
    group.bench_function("closed-only", |b| {
        b.iter(|| {
            let cube = CubeBuilder::new()
                .min_support(minsup)
                .materialize(Materialize::ClosedOnly)
                .build(&db)
                .unwrap();
            black_box(cube.len())
        })
    });
    group.bench_function("all-frequent-parallel", |b| {
        b.iter(|| {
            let cube = CubeBuilder::new()
                .min_support(minsup)
                .materialize(Materialize::AllFrequent)
                .parallel(true)
                .build(&db)
                .unwrap();
            black_box(cube.len())
        })
    });
    group.finish();

    let mut group = c.benchmark_group("cube_build_minsup");
    group.sample_size(10);
    for divisor in [50u64, 200, 1000] {
        let minsup = (db.len() as u64 / divisor).max(1);
        group.bench_with_input(BenchmarkId::new("all-frequent", minsup), &minsup, |b, &m| {
            b.iter(|| black_box(CubeBuilder::new().min_support(m).build(&db).unwrap().len()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cube_build_representation");
    group.sample_size(10);
    group.bench_function("ewah", |b| {
        b.iter(|| {
            black_box(
                CubeBuilder::new().min_support(minsup).build_with::<EwahBitmap>(&db).unwrap().len(),
            )
        })
    });
    group.bench_function("dense", |b| {
        b.iter(|| {
            black_box(
                CubeBuilder::new()
                    .min_support(minsup)
                    .build_with::<DenseBitmap>(&db)
                    .unwrap()
                    .len(),
            )
        })
    });
    group.bench_function("tidvec", |b| {
        b.iter(|| {
            black_box(
                CubeBuilder::new().min_support(minsup).build_with::<TidVec>(&db).unwrap().len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cube);
criterion_main!(benches);
