//! E11 ablation: tidset representation (EWAH vs dense vs sorted vector).
//!
//! Measures the posting operations the cube builder is built from — AND,
//! AND-cardinality, construction, iteration — on three density regimes:
//! sparse uniform, dense runs, and clustered (the regime real dictionary-
//! encoded attributes produce, where EWAH is designed to win on space).
//! The `bitmap_kernels` group covers the batched-AND path (`intersect_many`
//! vs the pairwise fold), the buffer-reusing `and_into`, and the galloping
//! skewed tidvec intersection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scube_bitmap::{AdaptivePosting, DenseBitmap, EwahBitmap, Posting, TidVec};
use std::hint::black_box;

const UNIVERSE: u32 = 1_000_000;

fn sparse_ids(rng: &mut SmallRng, n: usize) -> Vec<u32> {
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n {
        set.insert(rng.random_range(0..UNIVERSE));
    }
    set.into_iter().collect()
}

fn clustered_ids(rng: &mut SmallRng, clusters: usize, span: u32) -> Vec<u32> {
    let mut set = std::collections::BTreeSet::new();
    for _ in 0..clusters {
        let start = rng.random_range(0..UNIVERSE - span);
        let fill = rng.random_range(span / 4..span);
        for _ in 0..fill {
            set.insert(start + rng.random_range(0..span));
        }
    }
    set.into_iter().collect()
}

fn bench_ops(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let shapes: Vec<(&str, Vec<u32>, Vec<u32>)> = vec![
        ("sparse", sparse_ids(&mut rng, 20_000), sparse_ids(&mut rng, 20_000)),
        ("clustered", clustered_ids(&mut rng, 50, 4000), clustered_ids(&mut rng, 50, 4000)),
        (
            "dense-runs",
            (0..400_000).collect::<Vec<u32>>(),
            (200_000..600_000).collect::<Vec<u32>>(),
        ),
    ];

    let mut group = c.benchmark_group("bitmap_and");
    group.sample_size(20);
    for (shape, a_ids, b_ids) in &shapes {
        let ea = EwahBitmap::from_sorted(a_ids);
        let eb = EwahBitmap::from_sorted(b_ids);
        let da = DenseBitmap::from_sorted(a_ids);
        let db = DenseBitmap::from_sorted(b_ids);
        let ta = TidVec::from_sorted(a_ids);
        let tb = TidVec::from_sorted(b_ids);
        group.bench_with_input(BenchmarkId::new("ewah", shape), &(), |bench, ()| {
            bench.iter(|| black_box(ea.and(&eb).cardinality()))
        });
        group.bench_with_input(BenchmarkId::new("dense", shape), &(), |bench, ()| {
            bench.iter(|| black_box(da.and(&db).cardinality()))
        });
        group.bench_with_input(BenchmarkId::new("tidvec", shape), &(), |bench, ()| {
            bench.iter(|| black_box(ta.and(&tb).cardinality()))
        });
        group.bench_with_input(BenchmarkId::new("ewah_and_card", shape), &(), |bench, ()| {
            bench.iter(|| black_box(ea.and_cardinality(&eb)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bitmap_build");
    group.sample_size(20);
    let ids = clustered_ids(&mut SmallRng::seed_from_u64(9), 100, 3000);
    group.bench_function("ewah", |b| b.iter(|| black_box(EwahBitmap::from_sorted(&ids))));
    group.bench_function("dense", |b| b.iter(|| black_box(DenseBitmap::from_sorted(&ids))));
    group.bench_function("tidvec", |b| b.iter(|| black_box(TidVec::from_sorted(&ids))));
    group.finish();

    let mut group = c.benchmark_group("bitmap_iterate");
    group.sample_size(20);
    let e = EwahBitmap::from_sorted(&ids);
    let d = DenseBitmap::from_sorted(&ids);
    group.bench_function("ewah", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            e.for_each(|id| acc += u64::from(id));
            black_box(acc)
        })
    });
    group.bench_function("dense", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            d.for_each(|id| acc += u64::from(id));
            black_box(acc)
        })
    });
    group.finish();
}

/// The kernel paths this PR's consumers run on: batched k-way AND vs the
/// old pairwise fold, allocation-free `and_into`, and galloping skewed
/// intersections, per representation.
fn bench_kernels(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(21);
    // Eight overlapping clustered postings (the Eclat/minority workload).
    let lists: Vec<Vec<u32>> = (0..8).map(|_| clustered_ids(&mut rng, 60, 4000)).collect();

    fn kway<P: Posting>(group: &mut criterion::BenchmarkGroup<'_>, name: &str, lists: &[Vec<u32>]) {
        let postings: Vec<P> = lists.iter().map(|ids| P::from_sorted(ids)).collect();
        let refs: Vec<&P> = postings.iter().collect();
        group.bench_with_input(BenchmarkId::new("batched", name), &(), |bench, ()| {
            bench.iter(|| black_box(P::intersect_many(&refs).unwrap().cardinality()))
        });
        group.bench_with_input(BenchmarkId::new("pairwise_fold", name), &(), |bench, ()| {
            bench.iter(|| {
                let mut acc = postings[0].clone();
                for p in &postings[1..] {
                    acc = acc.and(p);
                }
                black_box(acc.cardinality())
            })
        });
        let (a, b) = (&postings[0], &postings[1]);
        let mut out = P::from_sorted(&[]);
        group.bench_with_input(BenchmarkId::new("and_into", name), &(), |bench, ()| {
            bench.iter(|| {
                a.and_into(b, &mut out);
                black_box(out.cardinality())
            })
        });
    }

    let mut group = c.benchmark_group("bitmap_kernels");
    group.sample_size(20);
    kway::<EwahBitmap>(&mut group, "ewah", &lists);
    kway::<DenseBitmap>(&mut group, "dense", &lists);
    kway::<TidVec>(&mut group, "tidvec", &lists);
    kway::<AdaptivePosting>(&mut group, "adaptive", &lists);

    // Skewed pair: 100 ids probing 100_000 — the galloping case.
    let small = sparse_ids(&mut rng, 100);
    let large = sparse_ids(&mut rng, 100_000);
    let ts = TidVec::from_sorted(&small);
    let tl = TidVec::from_sorted(&large);
    group.bench_function("tidvec_gallop_and", |b| b.iter(|| black_box(ts.and(&tl).cardinality())));
    group.bench_function("tidvec_gallop_and_card", |b| {
        b.iter(|| black_box(ts.and_cardinality(&tl)))
    });
    group.finish();
}

criterion_group!(benches, bench_ops, bench_kernels);
criterion_main!(benches);
