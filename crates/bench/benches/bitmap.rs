//! E11 ablation: tidset representation (EWAH vs dense vs sorted vector).
//!
//! Measures the posting operations the cube builder is built from — AND,
//! AND-cardinality, construction, iteration — on three density regimes:
//! sparse uniform, dense runs, and clustered (the regime real dictionary-
//! encoded attributes produce, where EWAH is designed to win on space).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scube_bitmap::{DenseBitmap, EwahBitmap, Posting, TidVec};
use std::hint::black_box;

const UNIVERSE: u32 = 1_000_000;

fn sparse_ids(rng: &mut SmallRng, n: usize) -> Vec<u32> {
    let mut set = std::collections::BTreeSet::new();
    while set.len() < n {
        set.insert(rng.random_range(0..UNIVERSE));
    }
    set.into_iter().collect()
}

fn clustered_ids(rng: &mut SmallRng, clusters: usize, span: u32) -> Vec<u32> {
    let mut set = std::collections::BTreeSet::new();
    for _ in 0..clusters {
        let start = rng.random_range(0..UNIVERSE - span);
        let fill = rng.random_range(span / 4..span);
        for _ in 0..fill {
            set.insert(start + rng.random_range(0..span));
        }
    }
    set.into_iter().collect()
}

fn bench_ops(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(7);
    let shapes: Vec<(&str, Vec<u32>, Vec<u32>)> = vec![
        ("sparse", sparse_ids(&mut rng, 20_000), sparse_ids(&mut rng, 20_000)),
        ("clustered", clustered_ids(&mut rng, 50, 4000), clustered_ids(&mut rng, 50, 4000)),
        (
            "dense-runs",
            (0..400_000).collect::<Vec<u32>>(),
            (200_000..600_000).collect::<Vec<u32>>(),
        ),
    ];

    let mut group = c.benchmark_group("bitmap_and");
    group.sample_size(20);
    for (shape, a_ids, b_ids) in &shapes {
        let ea = EwahBitmap::from_sorted(a_ids);
        let eb = EwahBitmap::from_sorted(b_ids);
        let da = DenseBitmap::from_sorted(a_ids);
        let db = DenseBitmap::from_sorted(b_ids);
        let ta = TidVec::from_sorted(a_ids);
        let tb = TidVec::from_sorted(b_ids);
        group.bench_with_input(BenchmarkId::new("ewah", shape), &(), |bench, ()| {
            bench.iter(|| black_box(ea.and(&eb).cardinality()))
        });
        group.bench_with_input(BenchmarkId::new("dense", shape), &(), |bench, ()| {
            bench.iter(|| black_box(da.and(&db).cardinality()))
        });
        group.bench_with_input(BenchmarkId::new("tidvec", shape), &(), |bench, ()| {
            bench.iter(|| black_box(ta.and(&tb).cardinality()))
        });
        group.bench_with_input(BenchmarkId::new("ewah_and_card", shape), &(), |bench, ()| {
            bench.iter(|| black_box(ea.and_cardinality(&eb)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bitmap_build");
    group.sample_size(20);
    let ids = clustered_ids(&mut SmallRng::seed_from_u64(9), 100, 3000);
    group.bench_function("ewah", |b| b.iter(|| black_box(EwahBitmap::from_sorted(&ids))));
    group.bench_function("dense", |b| b.iter(|| black_box(DenseBitmap::from_sorted(&ids))));
    group.bench_function("tidvec", |b| b.iter(|| black_box(TidVec::from_sorted(&ids))));
    group.finish();

    let mut group = c.benchmark_group("bitmap_iterate");
    group.sample_size(20);
    let e = EwahBitmap::from_sorted(&ids);
    let d = DenseBitmap::from_sorted(&ids);
    group.bench_function("ewah", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            e.for_each(|id| acc += u64::from(id));
            black_box(acc)
        })
    });
    group.bench_function("dense", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            d.for_each(|id| acc += u64::from(id));
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
