//! E3/E6–E8: end-to-end pipeline cost per demonstration scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scube::prelude::*;
use scube_bench::italy_dataset;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let dataset = italy_dataset(1500);
    let cube = CubeBuilder::new().min_support(15);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("scenario1-sector-units", |b| {
        let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into())).cube(cube);
        b.iter(|| black_box(scube::run(&dataset, &config).unwrap().stats.n_cells))
    });
    group.bench_function("scenario2-director-communities", |b| {
        let config = ScubeConfig::new(UnitStrategy::ClusterIndividuals(
            ClusteringMethod::ConnectedComponents,
        ))
        .cube(cube);
        b.iter(|| black_box(scube::run(&dataset, &config).unwrap().stats.n_cells))
    });
    group.bench_function("scenario3-company-communities", |b| {
        let config =
            ScubeConfig::new(UnitStrategy::ClusterGroups(ClusteringMethod::WeightThreshold {
                min_weight: 1,
            }))
            .cube(cube);
        b.iter(|| black_box(scube::run(&dataset, &config).unwrap().stats.n_cells))
    });
    group.finish();

    let mut group = c.benchmark_group("pipeline_scaling");
    group.sample_size(10);
    for &n in &[500usize, 1000, 2000] {
        let dataset = italy_dataset(n);
        group.bench_with_input(BenchmarkId::new("scenario1", n), &dataset, |b, d| {
            let config = ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into())).cube(cube);
            b.iter(|| black_box(scube::run(d, &config).unwrap().stats.n_cells))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
