//! E7: clustering-method ablation on the projected company graph —
//! connected components vs weight thresholding vs SToC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scube_bench::italy_dataset;
use scube_graph::{connected_components, stoc, NodeAttributes, StocParams};
use std::hint::black_box;

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);
    for &n in &[1000usize, 4000] {
        let dataset = italy_dataset(n);
        let projection = dataset.bipartite.project_groups(1);
        let graph = projection.graph;
        // Attribute rows: sector+region codes per company.
        let sector_col = dataset.groups.column_index("sector").unwrap();
        let region_col = dataset.groups.column_index("region").unwrap();
        let mut dict: std::collections::HashMap<String, u32> = Default::default();
        let rows: Vec<Vec<u32>> = dataset
            .groups
            .rows()
            .iter()
            .map(|r| {
                [&r[sector_col], &r[region_col]]
                    .iter()
                    .map(|v| {
                        let next = dict.len() as u32;
                        *dict.entry((*v).clone()).or_insert(next)
                    })
                    .collect()
            })
            .collect();
        let attrs = NodeAttributes::from_rows(rows);

        group.bench_with_input(BenchmarkId::new("connected-components", n), &graph, |b, g| {
            b.iter(|| black_box(connected_components(g, 0).num_clusters()))
        });
        group.bench_with_input(BenchmarkId::new("weight-threshold-2", n), &graph, |b, g| {
            b.iter(|| black_box(connected_components(g, 2).num_clusters()))
        });
        group.bench_with_input(BenchmarkId::new("stoc", n), &graph, |b, g| {
            b.iter(|| {
                black_box(
                    stoc(g, &attrs, StocParams { tau: 0.5, alpha: 0.5, horizon: 2, seed: 1 })
                        .num_clusters(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
