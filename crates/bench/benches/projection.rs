//! E8/E11: bipartite projection (GraphBuilder) cost vs registry size, for
//! both projection sides and weight thresholds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scube_bench::italy_dataset;
use std::hint::black_box;

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("projection");
    group.sample_size(10);
    for &n in &[1000usize, 4000] {
        let dataset = italy_dataset(n);
        group.bench_with_input(BenchmarkId::new("groups", n), &dataset, |b, d| {
            b.iter(|| {
                let p = d.bipartite.project_groups(1);
                black_box((p.graph.num_edges(), p.isolated.len()))
            })
        });
        group.bench_with_input(BenchmarkId::new("individuals", n), &dataset, |b, d| {
            b.iter(|| {
                let p = d.bipartite.project_individuals(1);
                black_box((p.graph.num_edges(), p.isolated.len()))
            })
        });
        group.bench_with_input(BenchmarkId::new("groups-min-shared-2", n), &dataset, |b, d| {
            b.iter(|| {
                let p = d.bipartite.project_groups(2);
                black_box(p.graph.num_edges())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("snapshot");
    group.sample_size(20);
    let dataset = scube_bench::estonia_dataset(4000, 2);
    group.bench_function("estonia-snapshot-filter", |b| {
        b.iter(|| black_box(dataset.bipartite.snapshot(2005).memberships().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_projection);
criterion_main!(benches);
