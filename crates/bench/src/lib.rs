//! Shared fixtures for the SCube benchmark harness and the `exp`
//! experiment-reproduction binary.

pub mod alloc;

use scube::prelude::*;
use scube_data::TransactionDb;

/// Synthetic-Italy dataset at a given company count.
pub fn italy_dataset(n_companies: usize) -> Dataset {
    scube_datagen::italy(n_companies).to_dataset(vec![]).expect("generator output is valid")
}

/// Synthetic-Estonia dataset with `n_snapshots` evenly spaced years.
pub fn estonia_dataset(n_companies: usize, n_snapshots: usize) -> Dataset {
    let boards = scube_datagen::estonia(n_companies);
    let years = boards.snapshot_years(n_snapshots);
    boards.to_dataset(years).expect("generator output is valid")
}

/// The scenario-1 final table (sector units) for synthetic Italy.
pub fn italy_final_table(n_companies: usize) -> TransactionDb {
    let dataset = italy_dataset(n_companies);
    scube::build_final_table(&dataset, &UnitStrategy::GroupAttribute("sector".into()), 1)
        .expect("pipeline succeeds")
        .db
}

/// Format an optional index value for report tables.
pub fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into())
}

/// Best-effort host fingerprint as `(cpu_model, arch-os)` — e.g.
/// `("AMD EPYC 7B13", "x86_64-linux")`. The CPU model comes from
/// `/proc/cpuinfo` on Linux and degrades to `"unknown"` elsewhere.
/// Recorded in every `BENCH_*.json` so perf trajectories accumulated
/// across PRs can be grouped by the machine that produced them.
pub fn host_fingerprint() -> (String, String) {
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name") || l.starts_with("Hardware"))
                .and_then(|l| l.split(':').nth(1).map(|v| v.trim().to_string()))
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into());
    (cpu, format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_fingerprint_is_populated() {
        let (cpu, arch) = host_fingerprint();
        assert!(!cpu.is_empty());
        assert!(arch.contains('-'), "arch-os pair: {arch}");
    }

    #[test]
    fn fixtures_build() {
        let db = italy_final_table(120);
        assert!(db.len() > 100);
        assert!(db.num_units() >= 10);
        let d = estonia_dataset(100, 3);
        assert_eq!(d.dates.len(), 3);
    }
}
