//! A byte-exact high-water-mark counting allocator.
//!
//! Register it as the process-wide allocator in a `harness = false` test
//! or a binary — the counters are global, so the registering binary owns
//! every allocation in the process:
//!
//! ```ignore
//! use scube_bench::alloc::{measure, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc;
//!
//! let (db, peak) = measure(|| expensive_build());
//! println!("peak allocation growth: {peak} bytes");
//! ```
//!
//! [`measure`] reports *growth over the live heap at entry*, so separate
//! measurements in one process do not contaminate each other through
//! allocations that outlive an earlier closure. The counters cost two
//! relaxed atomic ops per allocation — cheap enough to leave on for a
//! whole benchmark binary, but they do serialize allocation-heavy
//! multi-threaded code slightly; prefer single-threaded measurement for
//! byte-stable numbers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The counting allocator. Zero-sized; all state lives in process-global
/// counters, so `measure` works whichever instance was registered.
pub struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(n: usize) {
    let live = LIVE.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = System.realloc(p, layout, new_size);
        if !q.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        q
    }
}

/// Bytes currently allocated and not yet freed. Zero unless a
/// [`CountingAlloc`] is registered as the global allocator.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Run `f`, returning its result and the peak allocation growth (bytes
/// above the live heap at entry) it caused. Resets the high-water mark at
/// entry, so back-to-back measurements are independent.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let start = LIVE.load(Ordering::Relaxed);
    PEAK.store(start, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(start))
}
