//! Experiment reproduction binary: one subcommand per paper artefact.
//!
//! ```text
//! cargo run -p scube-bench --release --bin exp -- <experiment> [scale]
//!
//! fig1         E1  — the Fig. 1 segregation cube grid (dissimilarity)
//! final-table  E2  — the Fig. 3 finalTable sample rows
//! provinces    E3  — Fig. 3 (right): per-region dissimilarity map rows
//! cube-sheet   E4  — Fig. 5 (top): the cube sheet (CSV head)
//! radial       E5  — Fig. 5 (bottom): 6 indexes × 20 sectors
//! scenario1    E6  — tabular: women across company sectors
//! scenario2    E7  — director-graph communities (3 clustering methods)
//! scenario3    E8  — bipartite company communities
//! compare      E9  — Italy vs Estonia cross-comparison
//! temporal     E10 — Estonian 20-year snapshot trend
//! scale        E11 — efficiency: cube build scaling and ablations
//! simpson      E12 — the wrong-granularity (Simpson's paradox) warning
//! significance E13 — permutation tests on discovered contexts (extension)
//! cube-build   E14 — build-pipeline throughput; writes BENCH_cube_build.json
//! cube-query   E15 — snapshot load + query serving; writes BENCH_cube_query.json
//! cube-serve   E16 — concurrent sharded serving; writes BENCH_cube_serve.json
//! cube-update  E17 — incremental delta ingest vs full rebuild; writes
//!                    BENCH_cube_update.json
//! bitmap-kernels E18 — posting kernels vs the scalar reference over a
//!                    kernel × representation × density grid; writes
//!                    BENCH_bitmap_kernels.json (pass --smoke for a quick
//!                    correctness-gated pass that skips the file write)
//! cube-daemon  E19 — scubed loopback serving: closed-loop client sweep
//!                    against a live daemon, gated on bit-identity with the
//!                    in-process engine; writes BENCH_cube_serve_daemon.json
//!                    (pass --smoke for a quick gate-only pass that skips
//!                    the file write)
//! cube-scale   E20 — the data-scale axis: datagen streams up to ~4×10⁶
//!                    final-table rows to CSV, the cube builds both
//!                    resident and chunked (bounded-memory) under the
//!                    counting allocator — gated on whole-snapshot
//!                    byte-identity — and the saved snapshot is served
//!                    heap-loaded vs mmap-opened, every number gated on
//!                    bit-identity between the two paths; writes
//!                    BENCH_cube_scale.json (pass --smoke for a quick
//!                    gate-only pass that skips the file write)
//! cube-indexes E21 — the measure axis: single-index vs full-suite fold
//!                    cost, snapshot-v5 round-trip, and the permutation
//!                    significance pass — gated on the differential
//!                    harness (subset builds bit-equal the masked full
//!                    build *and* direct segindex recomputation); writes
//!                    BENCH_cube_indexes.json (pass --smoke for a quick
//!                    gate-only pass that skips the file write)
//! all              — run everything
//! ```
//!
//! `scale` (default 3000) is the synthetic company count for the data-sized
//! experiments; the `scale` experiment uses its own sweep.

use std::time::Instant;

use scube::prelude::*;
use scube_bench::{estonia_dataset, fmt, italy_dataset, italy_final_table};
use scube_common::table::{Align, TextTable};
use scube_cube::CubeExplorer;
use scube_fpm::{Apriori, Eclat, FpGrowth, Miner};

/// The counting allocator owns the whole process so E20 can report peak
/// build allocation for the resident vs chunked construction paths. It
/// costs two relaxed atomics per allocation — noise for the wall-clock
/// numbers the other experiments report.
#[global_allocator]
static ALLOC: scube_bench::alloc::CountingAlloc = scube_bench::alloc::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exp = args.first().map(String::as_str).unwrap_or("all");
    let scale: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3000);

    let run = |name: &str| exp == "all" || exp == name;
    let mut matched = false;
    if run("fig1") {
        fig1(scale);
        matched = true;
    }
    if run("final-table") {
        final_table(scale);
        matched = true;
    }
    if run("provinces") {
        provinces(scale);
        matched = true;
    }
    if run("cube-sheet") {
        cube_sheet(scale);
        matched = true;
    }
    if run("radial") {
        radial(scale);
        matched = true;
    }
    if run("scenario1") {
        scenario1(scale);
        matched = true;
    }
    if run("scenario2") {
        scenario2(scale);
        matched = true;
    }
    if run("scenario3") {
        scenario3(scale);
        matched = true;
    }
    if run("compare") {
        compare(scale);
        matched = true;
    }
    if run("temporal") {
        temporal(scale);
        matched = true;
    }
    if run("scale") {
        scale_experiment();
        matched = true;
    }
    if run("simpson") {
        simpson();
        matched = true;
    }
    if run("significance") {
        significance(scale);
        matched = true;
    }
    if run("cube-build") {
        cube_build_experiment();
        matched = true;
    }
    if run("cube-query") {
        cube_query_experiment();
        matched = true;
    }
    if run("cube-serve") {
        cube_serve_experiment();
        matched = true;
    }
    if run("cube-update") {
        cube_update_experiment();
        matched = true;
    }
    if run("bitmap-kernels") {
        bitmap_kernels_experiment(args.iter().any(|a| a == "--smoke"));
        matched = true;
    }
    if run("cube-daemon") {
        cube_daemon_experiment(args.iter().any(|a| a == "--smoke"));
        matched = true;
    }
    if run("cube-scale") {
        cube_scale_experiment(args.iter().any(|a| a == "--smoke"));
        matched = true;
    }
    if run("cube-indexes") {
        cube_indexes_experiment(args.iter().any(|a| a == "--smoke"));
        matched = true;
    }
    if !matched {
        eprintln!("unknown experiment '{exp}'; see the module docs for the list");
        std::process::exit(2);
    }
}

/// The host-fingerprint fields shared by every `BENCH_*.json` writer, as a
/// ready-to-splice JSON fragment (values escaped).
fn host_json() -> String {
    let (cpu, arch) = scube_bench::host_fingerprint();
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    format!("\"host_cpu\": \"{}\",\n  \"host_arch\": \"{}\"", esc(&cpu), esc(&arch))
}

fn banner(id: &str, title: &str) {
    println!("\n==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

/// E1 — Fig. 1: the segregation data cube grid with the dissimilarity
/// index over SA = (gender, age) and CA = macro-area.
fn fig1(scale: usize) {
    banner("E1 (Fig. 1)", "segregation data cube with dissimilarity index");
    let dataset = italy_dataset(scale);
    let result = scube::run(
        &dataset,
        &ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
            .cube(CubeBuilder::new().min_support(20).parallel(true)),
    )
    .expect("pipeline succeeds");
    print!("{}", fig1_grid(&result.cube, "gender", "age", "area", SegIndex::Dissimilarity));
    println!("(units = 20 company sectors; '-' = undefined or below min-support)");
}

/// E2 — Fig. 3 (bottom-left): the finalTable sample.
fn final_table(scale: usize) {
    banner("E2 (Fig. 3)", "finalTable rows (multi-valued sector cells)");
    let dataset = italy_dataset(scale.min(500));
    let ft = scube::build_final_table(
        &dataset,
        &UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents),
        1,
    )
    .expect("pipeline succeeds");
    let rel = scube::final_table_relation(&ft.db);
    let mut table = TextTable::new().header(rel.columns().to_vec());
    // Prefer rows with multi-valued sectors (the Fig. 3 highlight).
    let mut shown = 0;
    for row in rel.rows() {
        if row.iter().any(|c| c.contains(';')) && shown < 5 {
            table.row(row.clone());
            shown += 1;
        }
    }
    for row in rel.rows().iter().take(8 - shown.min(8)) {
        table.row(row.clone());
    }
    print!("{}", table.render());
    println!("({} rows total)", rel.len());
}

/// E3 — Fig. 3 (right): dissimilarity of women per region (map overlay
/// rows; the paper colours Italian provinces by this value).
fn provinces(scale: usize) {
    banner("E3 (Fig. 3 right)", "per-region dissimilarity of women across sectors");
    let dataset = italy_dataset(scale);
    let result = scube::run(
        &dataset,
        &ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
            .cube(CubeBuilder::new().min_support(10).parallel(true)),
    )
    .expect("pipeline succeeds");
    let mut rows: Vec<(String, f64, u64)> = result
        .cube
        .cells()
        .filter_map(|(coords, v)| {
            // Cells of the form (gender=F | residence=R).
            let labels = result.cube.labels();
            let is_target = coords.sa.len() == 1
                && coords.ca.len() == 1
                && labels.attr_of(coords.sa[0]) == "gender"
                && labels.value_of(coords.sa[0]) == "F"
                && labels.attr_of(coords.ca[0]) == "residence";
            (is_target && v.dissimilarity.is_some()).then(|| {
                (labels.value_of(coords.ca[0]).to_string(), v.dissimilarity.unwrap(), v.total)
            })
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut table = TextTable::new().header(["region", "D", "population"]).aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
    ]);
    for (region, d, t) in rows {
        table.row([region, format!("{d:.3}"), t.to_string()]);
    }
    print!("{}", table.render());
}

/// E4 — Fig. 5 (top): the cube sheet.
fn cube_sheet(scale: usize) {
    banner("E4 (Fig. 5 top)", "multidimensional segregation cube sheet (CSV head)");
    let db = italy_final_table(scale);
    let cube = CubeBuilder::new().min_support(50).parallel(true).build(&db).expect("cube builds");
    let csv = scube_cube::to_csv(&cube);
    for line in csv.lines().take(15) {
        println!("{line}");
    }
    println!("... ({} cells total)", cube.len());
}

/// E5 — Fig. 5 (bottom): radial plot series, 6 indexes per sector.
fn radial(scale: usize) {
    banner("E5 (Fig. 5 bottom)", "six segregation indexes per company sector");
    let db = italy_final_table(scale);
    let mut explorer: CubeExplorer = CubeExplorer::new(&db);
    let cube = CubeBuilder::new().min_support(1).build(&db).expect("cube builds");
    let coords = cube.coords_by_names(&[("gender", "F")], &[]).expect("gender=F exists");
    let breakdown = explorer.unit_breakdown(&coords);
    let series = radial_series(&breakdown, db.unit_names());
    let mut table =
        TextTable::new().header(["sector", "D", "G", "H", "xPx", "xPy", "A"]).aligns(vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    let mut series = series;
    series.sort_by(|a, b| a.0.cmp(&b.0));
    for (sector, v) in &series {
        table.row([
            sector.clone(),
            fmt(v.dissimilarity),
            fmt(v.gini),
            fmt(v.information),
            fmt(v.isolation),
            fmt(v.interaction),
            fmt(v.atkinson),
        ]);
    }
    print!("{}", table.render());
}

/// E6 — Scenario 1: women across company sectors (tabular).
fn scenario1(scale: usize) {
    banner("E6 (Scenario 1)", "tabular: how segregated are women in company sectors?");
    let dataset = italy_dataset(scale);
    let start = Instant::now();
    let result = scube::run(
        &dataset,
        &ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
            .cube(CubeBuilder::new().min_support(20).parallel(true)),
    )
    .expect("pipeline succeeds");
    println!(
        "{} directors, {} sectors, {} cells, total {:?}",
        result.stats.n_individuals,
        result.stats.n_units,
        result.stats.n_cells,
        start.elapsed()
    );
    let women = result.cube.get_by_names(&[("gender", "F")], &[]).expect("cell exists");
    println!(
        "women | * :  D={} G={} H={} xPx={} xPy={} A={}",
        fmt(women.dissimilarity),
        fmt(women.gini),
        fmt(women.information),
        fmt(women.isolation),
        fmt(women.interaction),
        fmt(women.atkinson)
    );
    println!("\ntop contexts by D (population ≥ 100):");
    for (coords, v, d) in top_contexts(&result.cube, SegIndex::Dissimilarity, 10, 100) {
        println!(
            "  D={d:.3}  {}  (M={}, T={})",
            result.cube.labels().describe(coords),
            v.minority,
            v.total
        );
    }
}

/// E7 — Scenario 2: communities of connected directors, per clustering
/// method.
fn scenario2(scale: usize) {
    banner("E7 (Scenario 2)", "director communities under the three clustering methods");
    let dataset = italy_dataset(scale);
    // The projected director graph, for the modularity column.
    let projection = dataset.bipartite.project_individuals(1);
    let mut table = TextTable::new()
        .header(["method", "clusters", "giant", "modularity", "time", "D(F|*)", "H(F|*)"])
        .aligns(vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    for (name, method) in [
        ("connected-components", ClusteringMethod::ConnectedComponents),
        ("weight-threshold(2)", ClusteringMethod::WeightThreshold { min_weight: 2 }),
        (
            "stoc(0.5,0.5)",
            ClusteringMethod::Stoc(StocParams { tau: 0.5, alpha: 0.5, horizon: 2, seed: 42 }),
        ),
        ("label-propagation", ClusteringMethod::LabelPropagation(LabelPropParams::default())),
    ] {
        let result = scube::run(
            &dataset,
            &ScubeConfig::new(UnitStrategy::ClusterIndividuals(method))
                .cube(CubeBuilder::new().min_support(20).parallel(true)),
        )
        .expect("pipeline succeeds");
        let clustering = result.clustering.as_ref().unwrap();
        let q = scube_graph::modularity(&projection.graph, clustering);
        let women = result.cube.get_by_names(&[("gender", "F")], &[]);
        table.row([
            name.to_string(),
            clustering.num_clusters().to_string(),
            clustering.giant_size().to_string(),
            fmt(q),
            format!("{:?}", result.timings.clustering),
            fmt(women.and_then(|v| v.dissimilarity)),
            fmt(women.and_then(|v| v.information)),
        ]);
    }
    print!("{}", table.render());
}

/// E8 — Scenario 3: communities of connected companies.
fn scenario3(scale: usize) {
    banner("E8 (Scenario 3)", "bipartite: company communities by shared directors");
    let dataset = italy_dataset(scale);
    for min_shared in [1u32, 2] {
        let result = scube::run(
            &dataset,
            &ScubeConfig::new(UnitStrategy::ClusterGroups(ClusteringMethod::ConnectedComponents))
                .min_shared(min_shared)
                .cube(CubeBuilder::new().min_support(20).parallel(true)),
        )
        .expect("pipeline succeeds");
        let clustering = result.clustering.as_ref().unwrap();
        let women = result.cube.get_by_names(&[("gender", "F")], &[]);
        println!(
            "min_shared={min_shared}: {} communities (giant {}), {} isolated, \
             projection {:?}, D(F|*) = {}",
            clustering.num_clusters(),
            clustering.giant_size(),
            result.isolated.len(),
            result.timings.projection,
            fmt(women.and_then(|v| v.dissimilarity)),
        );
    }
}

/// E9 — Italy vs Estonia cross-comparison.
fn compare(scale: usize) {
    banner("E9", "Italy vs Estonia cross-comparison (women across sectors)");
    let countries =
        [("italy", scube_datagen::italy(scale)), ("estonia", scube_datagen::estonia(scale))];
    let mut results = Vec::new();
    for (name, boards) in &countries {
        let dataset = boards.to_dataset(vec![]).expect("valid dataset");
        let result = scube::run(
            &dataset,
            &ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
                .cube(CubeBuilder::new().min_support(10).parallel(true)),
        )
        .expect("pipeline succeeds");
        results.push((*name, result));
    }
    let mut table = TextTable::new().header(["index", results[0].0, results[1].0]).aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
    ]);
    for idx in SegIndex::ALL {
        let mut row = vec![idx.name().to_string()];
        for (_, r) in &results {
            let v = r.cube.get_by_names(&[("gender", "F")], &[]).and_then(|v| v.get(idx));
            row.push(fmt(v));
        }
        table.row(row);
    }
    print!("{}", table.render());
}

/// E10 — temporal trend on the Estonian registry.
fn temporal(scale: usize) {
    banner("E10", "Estonian 20-year temporal trend (yearly snapshots)");
    let dataset = estonia_dataset(scale, 8);
    let snaps = scube::run_snapshots(
        &dataset,
        &ScubeConfig::new(UnitStrategy::GroupAttribute("sector".into()))
            .cube(CubeBuilder::new().min_support(10).parallel(true)),
    )
    .expect("pipeline succeeds");
    let mut table =
        TextTable::new().header(["year", "rows", "P(F)", "D", "H", "xPx"]).aligns(vec![
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    for (year, r) in &snaps {
        let v = r.cube.get_by_names(&[("gender", "F")], &[]);
        table.row([
            year.to_string(),
            r.stats.n_rows.to_string(),
            v.and_then(|v| v.minority_proportion())
                .map(|p| format!("{p:.3}"))
                .unwrap_or_else(|| "-".into()),
            fmt(v.and_then(|v| v.dissimilarity)),
            fmt(v.and_then(|v| v.information)),
            fmt(v.and_then(|v| v.isolation)),
        ]);
    }
    print!("{}", table.render());
}

/// E11 — efficiency: scaling and ablations.
fn scale_experiment() {
    banner("E11", "efficiency: cube construction scaling and ablations");

    println!("\n-- cube build time vs population (min_support = 0.5% of rows) --");
    let mut table = TextTable::new()
        .header(["companies", "rows", "cells", "all-frequent", "closed", "parallel"])
        .aligns(vec![
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    for n in [1000usize, 2000, 4000, 8000] {
        let db = italy_final_table(n);
        let minsup = (db.len() as u64 / 200).max(1);
        let t0 = Instant::now();
        let full = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        let t_full = t0.elapsed();
        let t0 = Instant::now();
        let _closed = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::ClosedOnly)
            .build(&db)
            .unwrap();
        let t_closed = t0.elapsed();
        let t0 = Instant::now();
        let _par = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::AllFrequent)
            .parallel(true)
            .build(&db)
            .unwrap();
        let t_par = t0.elapsed();
        table.row([
            n.to_string(),
            db.len().to_string(),
            full.len().to_string(),
            format!("{t_full:?}"),
            format!("{t_closed:?}"),
            format!("{t_par:?}"),
        ]);
    }
    print!("{}", table.render());

    println!("\n-- miner comparison (4000 companies) --");
    let db = italy_final_table(4000);
    let mut table = TextTable::new()
        .header(["min_support", "itemsets", "fpgrowth", "eclat(ewah)", "apriori"])
        .aligns(vec![Align::Right, Align::Right, Align::Right, Align::Right, Align::Right]);
    for rel_minsup in [0.02f64, 0.01, 0.005] {
        let minsup = ((db.len() as f64 * rel_minsup) as u64).max(1);
        let t0 = Instant::now();
        let fp = FpGrowth.mine(&db, minsup).unwrap();
        let t_fp = t0.elapsed();
        let t0 = Instant::now();
        let _ec = Eclat::<scube_bitmap::EwahBitmap>::new().mine(&db, minsup).unwrap();
        let t_ec = t0.elapsed();
        let t0 = Instant::now();
        let _ap = Apriori.mine(&db, minsup).unwrap();
        let t_ap = t0.elapsed();
        table.row([
            minsup.to_string(),
            fp.len().to_string(),
            format!("{t_fp:?}"),
            format!("{t_ec:?}"),
            format!("{t_ap:?}"),
        ]);
    }
    print!("{}", table.render());

    println!("\n-- closed-cube compression (4000 companies) --");
    let minsup = (db.len() as u64 / 200).max(1);
    let full = CubeBuilder::new()
        .min_support(minsup)
        .materialize(Materialize::AllFrequent)
        .build(&db)
        .unwrap();
    let closed = CubeBuilder::new()
        .min_support(minsup)
        .materialize(Materialize::ClosedOnly)
        .build(&db)
        .unwrap();
    println!(
        "all-frequent cells: {}, closed cells: {} ({:.1}% of full)",
        full.len(),
        closed.len(),
        100.0 * closed.len() as f64 / full.len() as f64
    );
}

/// E12 — the Simpson's-paradox motivation (§2): analysing at the wrong
/// granularity yields the wrong conclusion.
fn simpson() {
    banner("E12", "Simpson's paradox: aggregate evenness hides regional segregation");
    // Planted construction: in the north women fill unit A, men unit B;
    // in the south the roles reverse; the aggregate per unit is balanced.
    let mut rel = Relation::new(vec!["gender".into(), "region".into(), "unitID".into()]).unwrap();
    let mut add = |g: &str, r: &str, u: &str, n: usize| {
        for _ in 0..n {
            rel.push_row(vec![g.into(), r.into(), u.into()]).unwrap();
        }
    };
    add("F", "north", "A", 40);
    add("M", "north", "A", 10);
    add("F", "north", "B", 10);
    add("M", "north", "B", 40);
    add("F", "south", "A", 10);
    add("M", "south", "A", 40);
    add("F", "south", "B", 40);
    add("M", "south", "B", 10);

    let spec = FinalTableSpec::new("unitID").sa("gender").ca("region");
    let result = scube::run_final_table(&rel, &spec, &CubeBuilder::new()).unwrap();
    let at = |ca: &[(&str, &str)]| {
        result.cube.get_by_names(&[("gender", "F")], ca).and_then(|v| v.dissimilarity)
    };
    println!("D(gender=F | *)            = {}   ← looks perfectly even", fmt(at(&[])));
    println!(
        "D(gender=F | region=north) = {}   ← strong segregation",
        fmt(at(&[("region", "north")]))
    );
    println!(
        "D(gender=F | region=south) = {}   ← strong segregation (reversed)",
        fmt(at(&[("region", "south")]))
    );
    println!(
        "\nHypothesis testing at the aggregate level would have missed both contexts;\n\
         cube exploration over all granularities surfaces them."
    );
}

/// E14 — build-pipeline throughput: serial vs parallel cube construction
/// on datagen workloads, written to `BENCH_cube_build.json` so successive
/// PRs accumulate a perf trajectory.
fn cube_build_experiment() {
    banner("E14", "cube build throughput (writes BENCH_cube_build.json)");
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // The canonical comparison pins 8 workers (the "8-thread datagen
    // workload"); on smaller hosts the OS interleaves them, so record the
    // host's own parallelism alongside.
    let bench_threads = 8usize;

    let best_of = |f: &dyn Fn() -> usize| -> (f64, usize) {
        let mut best = f64::INFINITY;
        let mut cells = 0;
        for _ in 0..3 {
            let t0 = Instant::now();
            cells = f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, cells)
    };

    let mut table = TextTable::new()
        .header(["companies", "rows", "cells", "serial", "parallel(8)", "speedup", "rows/s (par)"])
        .aligns(vec![
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    let mut workloads = String::new();
    for n in [1000usize, 2000, 4000] {
        let db = italy_final_table(n);
        let minsup = (db.len() as u64 / 200).max(1);
        let serial_builder = CubeBuilder::new().min_support(minsup).parallel(false);
        let parallel_builder =
            CubeBuilder::new().min_support(minsup).parallel(true).threads(bench_threads);
        let (serial_s, cells) = best_of(&|| serial_builder.build(&db).unwrap().len());
        let (parallel_s, _) = best_of(&|| parallel_builder.build(&db).unwrap().len());
        // Gate the recorded numbers on full bit-identity, cell by cell —
        // never report timings of a divergent parallel build as validated.
        let serial_cube = serial_builder.build(&db).unwrap();
        let parallel_cube = parallel_builder.build(&db).unwrap();
        assert_eq!(serial_cube.len(), parallel_cube.len(), "parallel build must be bit-identical");
        for (coords, v) in serial_cube.cells() {
            assert_eq!(
                parallel_cube.get(coords),
                Some(v),
                "parallel build diverged from serial at a cell"
            );
        }
        let rows = db.len();
        let speedup = serial_s / parallel_s;
        table.row([
            n.to_string(),
            rows.to_string(),
            cells.to_string(),
            format!("{:.1} ms", serial_s * 1e3),
            format!("{:.1} ms", parallel_s * 1e3),
            format!("{speedup:.2}x"),
            format!("{:.0}", rows as f64 / parallel_s),
        ]);
        if !workloads.is_empty() {
            workloads.push_str(",\n");
        }
        workloads.push_str(&format!(
            "    {{\"dataset\": \"italy\", \"companies\": {n}, \"rows\": {rows}, \
             \"units\": {units}, \"min_support\": {minsup}, \"cells\": {cells}, \
             \"serial_s\": {serial_s:.6}, \"parallel_s\": {parallel_s:.6}, \
             \"parallel_threads\": {bench_threads}, \"speedup\": {speedup:.3}, \
             \"serial_rows_per_s\": {srps:.0}, \"parallel_rows_per_s\": {prps:.0}, \
             \"serial_cells_per_s\": {scps:.0}, \"parallel_cells_per_s\": {pcps:.0}}}",
            units = db.num_units(),
            srps = rows as f64 / serial_s,
            prps = rows as f64 / parallel_s,
            scps = cells as f64 / serial_s,
            pcps = cells as f64 / parallel_s,
        ));
    }
    print!("{}", table.render());

    // Thread sweep on the largest workload.
    let db = italy_final_table(4000);
    let minsup = (db.len() as u64 / 200).max(1);
    let mut sweep_threads = String::new();
    let mut sweep_seconds = String::new();
    println!("\n-- thread sweep (4000 companies) --");
    for threads in [1usize, 2, 4, 8] {
        let builder = CubeBuilder::new().min_support(minsup).parallel(threads > 1).threads(threads);
        let (secs, _) = best_of(&|| builder.build(&db).unwrap().len());
        println!("  {threads} thread(s): {:.1} ms", secs * 1e3);
        if !sweep_threads.is_empty() {
            sweep_threads.push_str(", ");
            sweep_seconds.push_str(", ");
        }
        sweep_threads.push_str(&threads.to_string());
        sweep_seconds.push_str(&format!("{secs:.6}"));
    }

    let host = host_json();
    let json = format!(
        "{{\n  \"experiment\": \"cube_build\",\n  \"generated_by\": \
         \"cargo run -p scube-bench --release --bin exp -- cube-build\",\n  \
         \"host_threads\": {host_threads},\n  {host},\n  \"workloads\": [\n{workloads}\n  ],\n  \
         \"thread_sweep\": {{\"dataset\": \"italy\", \"companies\": 4000, \
         \"min_support\": {minsup}, \"threads\": [{sweep_threads}], \
         \"seconds\": [{sweep_seconds}]}}\n}}\n"
    );
    std::fs::write("BENCH_cube_build.json", &json).expect("write BENCH_cube_build.json");
    println!("\nwrote BENCH_cube_build.json ({} workloads)", 3);
}

/// E15 — cube serving: snapshot cold-load time and point-query throughput
/// through the three tiers (materialized store / LRU cache / explorer
/// fallback), written to `BENCH_cube_query.json`.
fn cube_query_experiment() {
    banner("E15", "cube serving: snapshot load + query throughput (writes BENCH_cube_query.json)");
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let db = italy_final_table(4000);
    let rows = db.len();
    let minsup = (rows as u64 / 200).max(1);

    // Serve from the closed materialization (the compressed store); the
    // full cube defines the query universe, so a share of the workload
    // exercises the explorer-fallback path.
    let closed_builder =
        CubeBuilder::new().min_support(minsup).materialize(Materialize::ClosedOnly).parallel(true);
    let snapshot: CubeSnapshot =
        CubeSnapshot::from_db(&db, &closed_builder).expect("snapshot builds");
    let full = CubeBuilder::new()
        .min_support(minsup)
        .materialize(Materialize::AllFrequent)
        .parallel(true)
        .build(&db)
        .expect("cube builds");
    let bytes = snapshot.to_bytes();

    let mut cold_load_s = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        let loaded: CubeSnapshot = CubeSnapshot::from_bytes(&bytes).expect("snapshot loads");
        cold_load_s = cold_load_s.min(t0.elapsed().as_secs_f64());
        drop(loaded);
    }

    let workload: Vec<CellCoords> = full.cells().map(|(c, _)| c.clone()).collect();
    let fallback_cells = workload.iter().filter(|c| snapshot.cube().get(c).is_none()).count();
    let materialized: Vec<CellCoords> = snapshot.cube().cells().map(|(c, _)| c.clone()).collect();

    // Every tier must agree with the in-memory full build, bit for bit,
    // before any throughput number is recorded.
    let mut check = CubeQueryEngine::new(snapshot.clone());
    for (coords, v) in full.cells() {
        assert_eq!(check.query(coords).expect("query succeeds"), *v, "tier divergence");
    }

    let qps = |engine: &mut CubeQueryEngine, coords: &[CellCoords]| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            for c in coords {
                std::hint::black_box(engine.query(c).expect("query succeeds"));
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        coords.len() as f64 / best
    };

    // Materialized-only lookups (pure hash-map tier).
    let mut engine = CubeQueryEngine::new(snapshot.clone());
    let materialized_qps = qps(&mut engine, &materialized);

    // Full universe with the cache disabled: every miss recomputes.
    let mut engine = CubeQueryEngine::with_cache_capacity(snapshot.clone(), 0);
    let uncached_qps = qps(&mut engine, &workload);

    // Full universe with the cache warm: misses come from the LRU. The hit
    // rate is differenced over the timed region only, so the cold warm-up
    // pass does not dilute it.
    let mut engine = CubeQueryEngine::new(snapshot.clone());
    for c in &workload {
        engine.query(c).expect("warm-up succeeds");
    }
    let before = engine.stats();
    let cached_qps = qps(&mut engine, &workload);
    let after = engine.stats();
    let warm_hit_rate =
        1.0 - (after.explored - before.explored) as f64 / (after.total() - before.total()) as f64;

    println!("rows: {rows}, min_support: {minsup}");
    println!(
        "store: {} closed cells of {} frequent ({} served by fallback)",
        materialized.len(),
        workload.len(),
        fallback_cells
    );
    println!("snapshot: {} bytes, cold load {:.3} ms", bytes.len(), cold_load_s * 1e3);
    println!("materialized lookups: {materialized_qps:.0}/s");
    println!("fallback uncached:    {uncached_qps:.0}/s  (cache capacity 0)");
    println!("fallback cached:      {cached_qps:.0}/s  (warm hit rate {warm_hit_rate:.3})");

    let host = host_json();
    let json = format!(
        "{{\n  \"experiment\": \"cube_query\",\n  \"generated_by\": \
         \"cargo run -p scube-bench --release --bin exp -- cube-query\",\n  \
         \"host_threads\": {host_threads},\n  {host},\n  \"dataset\": \"italy\",\n  \
         \"companies\": 4000,\n  \"rows\": {rows},\n  \"min_support\": {minsup},\n  \
         \"materialized_cells\": {mat},\n  \"query_universe\": {uni},\n  \
         \"fallback_cells\": {fallback_cells},\n  \"snapshot_bytes\": {nbytes},\n  \
         \"cold_load_s\": {cold_load_s:.6},\n  \"cold_load_cells_per_s\": {clps:.0},\n  \
         \"materialized_qps\": {materialized_qps:.0},\n  \"uncached_qps\": {uncached_qps:.0},\n  \
         \"cached_qps\": {cached_qps:.0},\n  \"cache_capacity\": {cap},\n  \
         \"warm_hit_rate\": {warm_hit_rate:.4}\n}}\n",
        mat = materialized.len(),
        uni = workload.len(),
        nbytes = bytes.len(),
        clps = materialized.len() as f64 / cold_load_s,
        cap = scube_cube::DEFAULT_CACHE_CAPACITY,
    );
    std::fs::write("BENCH_cube_query.json", &json).expect("write BENCH_cube_query.json");
    println!("\nwrote BENCH_cube_query.json");
}

/// E20 — the data-scale axis, end to end: `scube_datagen` streams a
/// final table (up to ~4×10⁶ rows, one per board seat, one unit per
/// company) straight to CSV, and the cube is built two ways under the
/// counting global allocator: the chunked bounded-memory path
/// ([`run_final_table_csv_chunked`] — tid-order chunks tail-appended into
/// the vertical postings, the horizontal table never materialized) and
/// the resident path (`FinalTableSpec::load_csv` + `CubeSnapshot::from_db`).
/// The chunked snapshot must re-encode **byte-identical** to the resident
/// one; the largest scale runs chunked-only — that input is what the
/// bounded path exists for — and its record shows the chunked peak
/// staying output-bounded while rows grow. The saved snapshot is then
/// served heap-loaded vs mmap-opened, every recorded number gated on
/// bit-identity between the two serving paths: re-encoded bytes, every
/// materialized cell value, and the answers to a mixed
/// materialized + fallback workload (the fallback tier recomputes from
/// the snapshot's postings, so the mapped run exercises the zero-copy
/// views). Written to `BENCH_cube_scale.json`.
fn cube_scale_experiment(smoke: bool) {
    banner(
        "E20",
        "cube scale: chunked vs resident build + mmap serving (writes BENCH_cube_scale.json)",
    );
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let query_threads = 4usize.min(host_threads);
    // (company count, run the resident path too). Mean board size is
    // ~2.8 seats, so the largest scale is ~4.2×10⁶ rows — chunked-only:
    // materializing its horizontal table is the cost this path avoids.
    let scales: &[(usize, bool)] = if smoke {
        &[(2_000, true)]
    } else {
        &[(45_000, true), (180_000, true), (360_000, true), (1_500_000, false)]
    };
    let chunk_rows = scube_data::DEFAULT_CHUNK_ROWS;
    let dir = std::env::temp_dir().join(format!("scube_e20_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let best_of = |reps: usize, f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };

    let mut table = TextTable::new()
        .header([
            "rows",
            "snapshot",
            "build res",
            "build chk",
            "peak res",
            "peak chk",
            "heap load",
            "mmap open",
            "heap q/s",
            "mmap q/s",
        ])
        .aligns(vec![Align::Right; 10]);
    let mut records = String::new();
    for &(n, resident) in scales {
        let csv = dir.join(format!("scale_{n}.csv"));
        let snap_path = dir.join(format!("scale_{n}.snap"));

        let t0 = Instant::now();
        let stats =
            scube_datagen::write_final_table_csv(scube_datagen::BoardsConfig::italy(n), &csv)
                .expect("datagen streams");
        let datagen_s = t0.elapsed().as_secs_f64();
        let csv_bytes = std::fs::metadata(&csv).expect("csv written").len();
        let rows = stats.n_rows;

        let spec = scube_datagen::final_table_spec();
        let minsup = (rows as u64 / 200).max(1);
        let builder = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::ClosedOnly)
            .parallel(true);

        // Chunked bounded-memory build (every scale): CSV rows stream in
        // tid-order chunks straight into the vertical postings, the cube
        // mines from them, and the snapshot is assembled by move (the
        // `snapshot_chunked` helper clones, which would inflate the peak
        // measurement). Peak allocation here is bounded by the output
        // (postings + cube) plus one staged chunk — not the input table.
        let t0 = Instant::now();
        let (chunked, chunked_peak) = scube_bench::alloc::measure(|| {
            let cb = run_final_table_csv_chunked(&csv, &spec, &builder, chunk_rows)
                .expect("chunked build");
            assert_eq!(cb.stats.n_rows, rows, "chunked ingest must see every emitted row");
            let ChunkedBuild { cube, vertical, .. } = cb;
            let config = builder.config();
            CubeSnapshot::new(cube, vertical).expect("snapshot assembles").with_build_config(
                config.materialize,
                config.atkinson_b,
                config.measures,
            )
        });
        let chunked_build_s = t0.elapsed().as_secs_f64();
        let cells = chunked.cube().len();

        // Resident build (skipped at the largest scale): materialize the
        // whole horizontal table, then build. Gate: the chunked build's
        // snapshot re-encodes byte-identical to the resident build's.
        let mut ingest_s: Option<f64> = None;
        let mut build_s: Option<f64> = None;
        let mut resident_peak: Option<usize> = None;
        if resident {
            let (snapshot, peak) = scube_bench::alloc::measure(|| {
                let t0 = Instant::now();
                let db = spec.load_csv(&csv).expect("streaming ingest");
                ingest_s = Some(t0.elapsed().as_secs_f64());
                assert_eq!(db.len(), rows, "ingest must see every emitted row");
                let t0 = Instant::now();
                let snap: CubeSnapshot =
                    CubeSnapshot::from_db(&db, &builder).expect("snapshot builds");
                build_s = Some(t0.elapsed().as_secs_f64());
                snap
            });
            resident_peak = Some(peak);
            assert_eq!(
                snapshot.to_bytes(),
                chunked.to_bytes(),
                "chunked build must re-encode byte-identical to the resident build"
            );
        }

        let t0 = Instant::now();
        chunked.save(&snap_path).expect("snapshot saves");
        let save_s = t0.elapsed().as_secs_f64();
        let snapshot_bytes = std::fs::metadata(&snap_path).expect("snapshot written").len();
        drop(chunked);

        let heap_load_s = best_of(3, &mut || {
            let snap: CubeSnapshot = CubeSnapshot::load(&snap_path).expect("heap load");
            drop(snap);
        });
        let mmap_open_s = best_of(3, &mut || {
            let snap: CubeSnapshot = CubeSnapshot::open_mmap(&snap_path).expect("mmap open");
            drop(snap);
        });

        // --- Bit-identity gates: nothing below is recorded unless the
        // mapped path is indistinguishable from the heap path. ---
        let heap: CubeSnapshot = CubeSnapshot::load(&snap_path).expect("heap load");
        let mapped: CubeSnapshot = CubeSnapshot::open_mmap(&snap_path).expect("mmap open");
        assert_eq!(
            heap.to_bytes(),
            mapped.to_bytes(),
            "mapped snapshot must re-encode bit-identically"
        );
        for (coords, v) in heap.cube().cells() {
            assert_eq!(mapped.cube().get(coords), Some(v), "mapped cube diverged at a cell");
        }

        // Workload: every materialized cell plus its CA-parent projections
        // (frequent by anti-monotonicity, usually not closed, so they are
        // served by posting recomputation — the tier the mapping must feed).
        let mut workload: Vec<CellCoords> = heap.cube().cells().map(|(c, _)| c.clone()).collect();
        let mut seen: std::collections::HashSet<CellCoords> = workload.iter().cloned().collect();
        let mut fallback_cells = 0usize;
        for (c, _) in heap.cube().cells() {
            if c.ca.is_empty() {
                continue;
            }
            let mut parent = c.clone();
            parent.ca.pop();
            if heap.cube().get(&parent).is_none() && seen.insert(parent.clone()) {
                fallback_cells += 1;
                workload.push(parent);
            }
        }
        workload.sort();

        let heap_engine = ConcurrentCubeEngine::new(heap);
        let mapped_engine = ConcurrentCubeEngine::new(mapped);
        let heap_answers =
            heap_engine.query_batch(&workload, query_threads).expect("heap queries succeed");
        let mapped_answers =
            mapped_engine.query_batch(&workload, query_threads).expect("mapped queries succeed");
        assert_eq!(heap_answers, mapped_answers, "mapped serving diverged from heap serving");

        let qps = |engine: &ConcurrentCubeEngine| -> f64 {
            let secs = best_of(3, &mut || {
                std::hint::black_box(
                    engine.query_batch(&workload, query_threads).expect("queries succeed"),
                );
            });
            workload.len() as f64 / secs
        };
        let heap_qps = qps(&heap_engine);
        let mapped_qps = qps(&mapped_engine);

        let mb = |b: usize| format!("{:.1} MB", b as f64 / 1e6);
        table.row([
            rows.to_string(),
            format!("{:.1} MB", snapshot_bytes as f64 / 1e6),
            build_s.map(|s| format!("{s:.2} s")).unwrap_or_else(|| "-".into()),
            format!("{chunked_build_s:.2} s"),
            resident_peak.map(mb).unwrap_or_else(|| "-".into()),
            mb(chunked_peak),
            format!("{:.1} ms", heap_load_s * 1e3),
            format!("{:.2} ms", mmap_open_s * 1e3),
            format!("{heap_qps:.0}"),
            format!("{mapped_qps:.0}"),
        ]);
        println!(
            "  {n} companies: {rows} rows ({} directors), csv {:.1} MB in {datagen_s:.2} s, \
             chunked build {chunked_build_s:.2} s ({chunk_rows}-row chunks), {cells} cells, \
             workload {} ({fallback_cells} fallback){}",
            stats.n_directors,
            csv_bytes as f64 / 1e6,
            workload.len(),
            if resident { "" } else { " [chunked-only]" },
        );

        if !records.is_empty() {
            records.push_str(",\n");
        }
        let jf = |v: Option<f64>| v.map(|x| format!("{x:.6}")).unwrap_or_else(|| "null".into());
        records.push_str(&format!(
            "    {{\"dataset\": \"italy_final_table\", \"companies\": {n}, \"rows\": {rows}, \
             \"directors\": {dirs}, \"units\": {n}, \"csv_bytes\": {csv_bytes}, \
             \"datagen_s\": {datagen_s:.6}, \"datagen_rows_per_s\": {dgr:.0}, \
             \"ingest_s\": {ing}, \"ingest_rows_per_s\": {igr}, \
             \"min_support\": {minsup}, \"build_s\": {bld}, \"cells\": {cells}, \
             \"chunk_rows\": {chunk_rows}, \"chunked_build_s\": {chunked_build_s:.6}, \
             \"chunked_rows_per_s\": {ckr:.0}, \
             \"build_peak_alloc_bytes\": {{\"resident\": {rpk}, \"chunked\": {chunked_peak}}}, \
             \"chunked_matches_resident\": {cmr}, \
             \"save_s\": {save_s:.6}, \"snapshot_bytes\": {snapshot_bytes}, \
             \"heap_load_s\": {heap_load_s:.6}, \"mmap_open_s\": {mmap_open_s:.6}, \
             \"open_speedup\": {ospd:.1}, \"workload_cells\": {wl}, \
             \"fallback_cells\": {fallback_cells}, \"query_threads\": {query_threads}, \
             \"heap_qps\": {heap_qps:.0}, \"mmap_qps\": {mapped_qps:.0}, \
             \"bit_identical\": true}}",
            dirs = stats.n_directors,
            dgr = rows as f64 / datagen_s,
            ing = jf(ingest_s),
            igr = jf(ingest_s.map(|s| (rows as f64 / s).round())),
            bld = jf(build_s),
            ckr = rows as f64 / chunked_build_s,
            rpk = resident_peak.map(|p| p.to_string()).unwrap_or_else(|| "null".into()),
            cmr = if resident { "true" } else { "null" },
            ospd = heap_load_s / mmap_open_s,
            wl = workload.len(),
        ));
    }
    print!("{}", table.render());
    std::fs::remove_dir_all(&dir).ok();

    if smoke {
        println!("smoke mode: bit-identity gates passed; skipping BENCH_cube_scale.json");
        return;
    }

    let host = host_json();
    let json = format!(
        "{{\n  \"experiment\": \"cube_scale\",\n  \"generated_by\": \
         \"cargo run -p scube-bench --release --bin exp -- cube-scale\",\n  \
         \"host_threads\": {host_threads},\n  {host},\n  \"scales\": [\n{records}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_cube_scale.json", &json).expect("write BENCH_cube_scale.json");
    println!("\nwrote BENCH_cube_scale.json ({} scales)", scales.len());
}

/// E16 — concurrent sharded serving: one `ConcurrentCubeEngine` shared by
/// N worker threads answering the full-cube universe (materialized hits +
/// sharded-cache/explorer fallbacks), swept over thread and shard counts,
/// written to `BENCH_cube_serve.json`. All timings are gated on
/// bit-identity with an in-memory full build.
fn cube_serve_experiment() {
    banner("E16", "concurrent sharded serving (writes BENCH_cube_serve.json)");
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let db = italy_final_table(4000);
    let rows = db.len();
    let minsup = (rows as u64 / 200).max(1);

    let closed_builder =
        CubeBuilder::new().min_support(minsup).materialize(Materialize::ClosedOnly).parallel(true);
    let snapshot: CubeSnapshot =
        CubeSnapshot::from_db(&db, &closed_builder).expect("snapshot builds");
    let full = CubeBuilder::new()
        .min_support(minsup)
        .materialize(Materialize::AllFrequent)
        .parallel(true)
        .build(&db)
        .expect("cube builds");

    let mut workload: Vec<CellCoords> = full.cells().map(|(c, _)| c.clone()).collect();
    workload.sort();
    let fallback_cells = workload.iter().filter(|c| snapshot.cube().get(c).is_none()).count();

    // Correctness gate: the shared-reference engine must answer the whole
    // universe bit-identically to the in-memory full build — across
    // threads — before any throughput number is recorded.
    let gate = ConcurrentCubeEngine::new(snapshot.clone());
    let answers = gate.query_batch(&workload, 4).expect("gate queries succeed");
    for (c, got) in workload.iter().zip(&answers) {
        assert_eq!(full.get(c), Some(got), "concurrent engine diverged at a cell");
    }

    // One long pre-repeated workload per measurement, so worker threads are
    // spawned once per timing (as a resident serving pool would be) rather
    // than once per round.
    const ROUNDS: usize = 50;
    let mut big: Vec<CellCoords> = Vec::with_capacity(workload.len() * ROUNDS);
    for _ in 0..ROUNDS {
        big.extend(workload.iter().cloned());
    }

    // Warm the engine, then time the big pass; the hit rate is differenced
    // over the timed region only.
    let measure = |engine: &ConcurrentCubeEngine, threads: usize| -> (f64, f64) {
        engine.query_batch(&workload, threads).expect("warm-up succeeds");
        let mut best = f64::INFINITY;
        let before = engine.stats();
        for _ in 0..3 {
            let t0 = Instant::now();
            std::hint::black_box(engine.query_batch(&big, threads).expect("queries succeed"));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let after = engine.stats();
        let hit_rate = 1.0
            - (after.explored - before.explored) as f64 / (after.total() - before.total()) as f64;
        (big.len() as f64 / best, hit_rate)
    };

    println!("rows: {rows}, min_support: {minsup}, host_threads: {host_threads}");
    println!(
        "store: {} closed cells of {} frequent ({} served by fallback)",
        snapshot.cube().len(),
        workload.len(),
        fallback_cells
    );

    let mut table = TextTable::new().header(["threads", "qps", "hit rate"]).aligns(vec![
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let sweep_threads = [1usize, 2, 4, 8];
    let mut thread_qps = Vec::new();
    let mut thread_hit = Vec::new();
    for &threads in &sweep_threads {
        let engine = ConcurrentCubeEngine::new(snapshot.clone());
        let (qps, hit) = measure(&engine, threads);
        table.row([threads.to_string(), format!("{qps:.0}"), format!("{hit:.4}")]);
        thread_qps.push(qps);
        thread_hit.push(hit);
    }
    print!("{}", table.render());

    let mut table = TextTable::new()
        .header(["shards", "qps (8 threads)"])
        .aligns(vec![Align::Right, Align::Right]);
    let sweep_shards = [1usize, 2, 4, 8, 16, 32];
    let mut shard_qps = Vec::new();
    for &shards in &sweep_shards {
        let engine = ConcurrentCubeEngine::with_config(
            snapshot.clone(),
            shards,
            scube_cube::DEFAULT_CACHE_CAPACITY,
        );
        let (qps, _) = measure(&engine, 8);
        table.row([shards.to_string(), format!("{qps:.0}")]);
        shard_qps.push(qps);
    }
    print!("{}", table.render());

    let single_thread_qps = thread_qps[0];
    let (best_i, best_multi) = thread_qps
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &q)| (i, q))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("sweep has multi-thread entries");
    println!(
        "single thread: {single_thread_qps:.0}/s; best multi-thread: {best_multi:.0}/s \
         at {} threads ({:.2}x)",
        sweep_threads[best_i],
        best_multi / single_thread_qps
    );

    let fmt_list = |xs: &[f64], prec: usize| -> String {
        xs.iter().map(|x| format!("{x:.prec$}")).collect::<Vec<_>>().join(", ")
    };
    let host = host_json();
    let json = format!(
        "{{\n  \"experiment\": \"cube_serve\",\n  \"generated_by\": \
         \"cargo run -p scube-bench --release --bin exp -- cube-serve\",\n  \
         \"host_threads\": {host_threads},\n  {host},\n  \"dataset\": \"italy\",\n  \
         \"companies\": 4000,\n  \"rows\": {rows},\n  \"min_support\": {minsup},\n  \
         \"materialized_cells\": {mat},\n  \"query_universe\": {uni},\n  \
         \"fallback_cells\": {fallback_cells},\n  \"rounds_per_pass\": {ROUNDS},\n  \
         \"cache_capacity\": {cap},\n  \"default_shards\": {shards},\n  \
         \"thread_sweep\": {{\"threads\": [{ts}], \"qps\": [{tq}], \"hit_rate\": [{th}]}},\n  \
         \"shard_sweep\": {{\"threads\": 8, \"shards\": [{ss}], \"qps\": [{sq}]}},\n  \
         \"single_thread_qps\": {single_thread_qps:.0},\n  \
         \"best_multi_thread_qps\": {best_multi:.0},\n  \
         \"best_multi_threads\": {bt}\n}}\n",
        mat = snapshot.cube().len(),
        uni = workload.len(),
        cap = scube_cube::DEFAULT_CACHE_CAPACITY,
        shards = scube_cube::DEFAULT_SHARDS,
        ts = sweep_threads.map(|t| t.to_string()).join(", "),
        tq = fmt_list(&thread_qps, 0),
        th = fmt_list(&thread_hit, 4),
        ss = sweep_shards.map(|s| s.to_string()).join(", "),
        sq = fmt_list(&shard_qps, 0),
        bt = sweep_threads[best_i],
    );
    std::fs::write("BENCH_cube_serve.json", &json).expect("write BENCH_cube_serve.json");
    println!("\nwrote BENCH_cube_serve.json");
}

/// E19 — the `scubed` serving daemon over loopback: a closed-loop client
/// sweep against a live [`scube::daemon::Daemon`], measuring end-to-end
/// request throughput and latency percentiles (parse + route + engine +
/// serialize + TCP round trip). Every timed request is compared
/// byte-for-byte against a body pre-rendered from an in-process engine
/// with the daemon's own serializers, so a throughput number can never be
/// bought with a wrong answer. `--smoke` runs the bit-identity gate and a
/// reduced sweep, and skips the file write.
fn cube_daemon_experiment(smoke: bool) {
    use minihttp::{percent_encode, HttpClient};
    use scube::daemon::{self, Daemon, DaemonConfig};

    banner("E19", "scubed loopback serving daemon (writes BENCH_cube_serve_daemon.json)");
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let companies = if smoke { 400 } else { 4000 };
    let db = italy_final_table(companies);
    let rows = db.len();
    let minsup = (rows as u64 / 200).max(1);
    let builder =
        CubeBuilder::new().min_support(minsup).materialize(Materialize::ClosedOnly).parallel(true);
    let snapshot: CubeSnapshot = CubeSnapshot::from_db(&db, &builder).expect("snapshot builds");

    // Expected wire bodies, pre-rendered from an in-process engine with the
    // daemon's own serializers: the loopback answers must match them
    // byte-for-byte, both in the gate and inside every timed request.
    let reference = ConcurrentCubeEngine::new(snapshot.clone());
    let labels = reference.cube().labels().clone();
    let mut cells: Vec<CellCoords> = snapshot.cube().cells().map(|(c, _)| c.clone()).collect();
    cells.sort();
    let workload: Vec<(String, String)> = cells
        .iter()
        .map(|coords| {
            let name = |items: &[u32]| {
                let pairs: Vec<String> = items
                    .iter()
                    .map(|&i| format!("{}={}", labels.attr_of(i), labels.value_of(i)))
                    .collect();
                percent_encode(&pairs.join(","))
            };
            let path = format!("/cubes/main/query?sa={}&ca={}", name(&coords.sa), name(&coords.ca));
            let body = daemon::cell_json(&labels, coords, &reference.query(coords).unwrap());
            (path, body)
        })
        .collect();

    let client_sweep: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4, 8] };
    // The daemon is thread-per-connection: give it one worker per client in
    // the largest sweep point, plus slack for the gate connection.
    let config = DaemonConfig {
        workers: client_sweep.iter().max().copied().unwrap_or(1) + 2,
        ..DaemonConfig::default()
    };
    let workers = config.workers;
    let daemon = Daemon::bind("127.0.0.1:0", vec![("main".to_string(), snapshot.clone())], config)
        .expect("daemon binds on loopback");
    let addr = daemon.local_addr().expect("daemon addr").to_string();
    let server = std::thread::spawn(move || daemon.run());

    // Correctness gate: one pass over the whole workload before any timing.
    let mut gate = HttpClient::connect(&addr).expect("gate connects");
    for (path, expected) in &workload {
        let resp = gate.get(path).expect("gate request");
        assert_eq!(resp.status, 200, "gate request failed: {path}");
        assert_eq!(resp.text().unwrap(), expected, "daemon diverged from in-process engine");
    }
    println!(
        "rows: {rows}, min_support: {minsup}, workload: {} materialized cells \
         (gate: all bit-identical over loopback)",
        workload.len()
    );

    let per_client = if smoke { 200 } else { 5_000 };
    let pct = |sorted: &[u64], q: f64| -> u64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    };

    let mut table = TextTable::new()
        .header(["clients", "qps", "p50 us", "p95 us", "p99 us"])
        .aligns(vec![Align::Right; 5]);
    let (mut qps_col, mut p50_col, mut p95_col, mut p99_col) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for &clients in &client_sweep {
        let t0 = Instant::now();
        let mut latencies: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|offset| {
                    let (addr, workload) = (&addr, &workload);
                    scope.spawn(move || {
                        // Closed loop: each client owns one keep-alive
                        // connection and drives it as fast as the daemon
                        // answers, round-robin over the workload.
                        let mut client = HttpClient::connect(addr).expect("client connects");
                        let mut lats = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            let (path, expected) = &workload[(offset + i) % workload.len()];
                            let t = Instant::now();
                            let resp = client.get(path).expect("timed request");
                            lats.push(t.elapsed().as_micros() as u64);
                            assert_eq!(resp.text().unwrap(), expected, "timed request diverged");
                        }
                        lats
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
        });
        let wall = t0.elapsed().as_secs_f64();
        latencies.sort_unstable();
        let qps = latencies.len() as f64 / wall;
        let (p50, p95, p99) = (pct(&latencies, 0.50), pct(&latencies, 0.95), pct(&latencies, 0.99));
        table.row([
            clients.to_string(),
            format!("{qps:.0}"),
            p50.to_string(),
            p95.to_string(),
            p99.to_string(),
        ]);
        qps_col.push(qps);
        p50_col.push(p50);
        p95_col.push(p95);
        p99_col.push(p99);
    }
    print!("{}", table.render());

    let mut admin = HttpClient::connect(&addr).expect("admin connects");
    assert_eq!(admin.post("/shutdown", b"").expect("shutdown").status, 200);
    server.join().expect("daemon thread").expect("daemon exits cleanly");

    if smoke {
        println!("smoke mode: bit-identity gate passed; skipping BENCH_cube_serve_daemon.json");
        return;
    }

    let (best_i, best_qps) = qps_col
        .iter()
        .enumerate()
        .map(|(i, &q)| (i, q))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("sweep is non-empty");
    println!("best: {best_qps:.0} req/s at {} clients", client_sweep[best_i]);

    let ints = |xs: &[u64]| xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ");
    let host = host_json();
    let json = format!(
        "{{\n  \"experiment\": \"cube_serve_daemon\",\n  \"generated_by\": \
         \"cargo run -p scube-bench --release --bin exp -- cube-daemon\",\n  \
         \"host_threads\": {host_threads},\n  {host},\n  \"dataset\": \"italy\",\n  \
         \"companies\": {companies},\n  \"rows\": {rows},\n  \"min_support\": {minsup},\n  \
         \"workload_requests\": {uni},\n  \"daemon_workers\": {workers},\n  \
         \"requests_per_client\": {per_client},\n  \"bit_identity_gate\": \"passed\",\n  \
         \"client_sweep\": {{\"clients\": [{cs}], \"qps\": [{qs}], \"p50_us\": [{p50}], \
         \"p95_us\": [{p95}], \"p99_us\": [{p99}]}},\n  \
         \"best_qps\": {best_qps:.0},\n  \"best_clients\": {bc}\n}}\n",
        uni = workload.len(),
        cs = client_sweep.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", "),
        qs = qps_col.iter().map(|q| format!("{q:.0}")).collect::<Vec<_>>().join(", "),
        p50 = ints(&p50_col),
        p95 = ints(&p95_col),
        p99 = ints(&p99_col),
        bc = client_sweep[best_i],
    );
    std::fs::write("BENCH_cube_serve_daemon.json", &json)
        .expect("write BENCH_cube_serve_daemon.json");
    println!("\nwrote BENCH_cube_serve_daemon.json");
}

/// E17 — incremental cube maintenance under churn: fold append-only,
/// delete-only, and mixed deltas (1% / 5% / 20%) into a built snapshot —
/// serially and with parallel dirty-cell re-evaluation — versus rebuilding
/// the cube from the edited data, gated on bit-identity of the *entire
/// snapshot bytes* with the from-scratch build. Writes
/// `BENCH_cube_update.json`.
fn cube_update_experiment() {
    banner("E17", "incremental churn ingest vs full rebuild (writes BENCH_cube_update.json)");
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let db = italy_final_table(4000);
    let rows = db.len();
    let minsup = (rows as u64 / 200).max(1);
    let full_rel = scube::final_table_relation(&db);

    // Reconstruct the encoding spec so row slices re-encode identically.
    let spec = scube_data::FinalTableSpec::from_schema(db.schema(), "unitID");

    // Serial builder on the full (AllFrequent) cube; the update path is
    // timed both serially and with parallel phase-2 re-evaluation.
    let builder = CubeBuilder::new().min_support(minsup).parallel(false);
    let full_db = spec.encode(&full_rel).expect("full table re-encodes");
    let rebuilt: CubeSnapshot = CubeSnapshot::from_db(&full_db, &builder).expect("full build");
    let total_cells = rebuilt.cube().len();

    let mut rebuild_s = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&full_db, &builder).expect("full build");
        rebuild_s = rebuild_s.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(snap);
    }
    // For transparency, also time the cube alone (the pre-update artifact,
    // without the maintenance histograms an updatable snapshot carries).
    let mut cube_only_rebuild_s = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        std::hint::black_box(builder.build(&full_db).expect("cube builds"));
        cube_only_rebuild_s = cube_only_rebuild_s.min(t0.elapsed().as_secs_f64());
    }

    println!("rows: {rows}, min_support: {minsup}, cells: {total_cells}");
    println!(
        "full snapshot rebuild (serial): {:.1} ms ({:.1} ms cube only)",
        rebuild_s * 1e3,
        cube_only_rebuild_s * 1e3
    );

    // Keep only the rows of `full_rel` whose index passes `keep`.
    let filter_rows = |keep: &dyn Fn(usize) -> bool| -> Relation {
        let mut out = Relation::new(full_rel.columns().to_vec()).expect("columns");
        for (i, row) in full_rel.rows().iter().enumerate() {
            if keep(i) {
                out.push_row(row.to_vec()).expect("row shapes match");
            }
        }
        out
    };

    // Dirty-cell re-evaluation is CPU-bound, so the parallel measurement
    // uses min(8, host cores) workers — oversubscribing a 1-CPU container
    // would measure scheduling overhead, not the phase. (The multi-worker
    // merge is bit-identity property-tested at fixed thread counts in
    // `tests/cube_update_equivalence.rs`, independently of this host.)
    let parallel_threads = host_threads.clamp(1, 8);
    let mut table = TextTable::new()
        .header([
            "kind", "delta", "+rows", "-rows", "dirty", "promoted", "demoted", "clean", "serial",
            "parallel", "rebuild", "speedup",
        ])
        .aligns(vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    let mut churn_json = String::new();
    for delta_pct in [1usize, 5, 20] {
        for kind in ["append", "delete", "mixed"] {
            let delta_rows = (rows * delta_pct / 100).max(1);
            // Workload shapes: `append` folds the last delta_pct% of rows
            // into a snapshot of the prefix; `delete` retracts the same
            // tail from the full snapshot (the undo workload — tail
            // surgery, no relabeling); `mixed` retracts a scattered half-
            // delta from the prefix (demotions, renumbering) while
            // appending the tail half.
            let (base_rel, remove, add_rel): (Relation, Vec<u32>, Option<Relation>) = match kind {
                "append" => (
                    full_rel.slice_rows(0..rows - delta_rows),
                    Vec::new(),
                    Some(full_rel.slice_rows(rows - delta_rows..rows)),
                ),
                "delete" => (
                    full_rel.slice_rows(0..rows),
                    ((rows - delta_rows) as u32..rows as u32).collect(),
                    None,
                ),
                _ => {
                    let half_add = (delta_rows / 2).max(1);
                    let base_rows = rows - half_add;
                    let stride = (2 * base_rows / delta_rows.max(1)).max(2);
                    let remove: Vec<u32> =
                        (0..base_rows as u32).step_by(stride).take(delta_rows / 2 + 1).collect();
                    (
                        full_rel.slice_rows(0..base_rows),
                        remove,
                        Some(full_rel.slice_rows(base_rows..rows)),
                    )
                }
            };
            let base_db = spec.encode(&base_rel).expect("base rows encode");
            let base: CubeSnapshot = CubeSnapshot::from_db(&base_db, &builder).expect("base");
            let mut batch = match &add_rel {
                Some(rel) => {
                    scube_cube::UpdateBatch::from_relation(rel, base.cube().labels(), "unitID")
                        .expect("delta rows resolve")
                }
                None => scube_cube::UpdateBatch::new(),
            };
            for &t in &remove {
                batch.remove_tid(t);
            }

            // Reference: a from-scratch snapshot on the edited table.
            let mut edited_rel =
                filter_rows(&|i| i < base_rel.len() && !remove.contains(&(i as u32)));
            if let Some(rel) = &add_rel {
                for row in rel.rows() {
                    edited_rel.push_row(row.to_vec()).expect("row shapes match");
                }
            }
            let edited_db = spec.encode(&edited_rel).expect("edited rows encode");
            let mut edited_rebuild_s = f64::INFINITY;
            let mut reference: Option<CubeSnapshot> = None;
            for _ in 0..3 {
                let t0 = Instant::now();
                let snap: CubeSnapshot =
                    CubeSnapshot::from_db(&edited_db, &builder).expect("edited build");
                edited_rebuild_s = edited_rebuild_s.min(t0.elapsed().as_secs_f64());
                reference = Some(snap);
            }
            let reference_bytes = reference.expect("three rebuilds ran").to_bytes();

            let time_update = |threads: usize| -> (f64, scube_cube::UpdateStats) {
                let mut best = f64::INFINITY;
                let mut stats = scube_cube::UpdateStats::default();
                for _ in 0..3 {
                    let mut snap = base.clone();
                    let t0 = Instant::now();
                    stats = snap.apply_update_threads(&batch, threads).expect("update applies");
                    best = best.min(t0.elapsed().as_secs_f64());
                    // Gate every recorded number on whole-snapshot
                    // bit-identity with the from-scratch build.
                    assert_eq!(
                        snap.to_bytes(),
                        reference_bytes,
                        "{kind} {delta_pct}% (threads {threads}) diverged from the rebuild"
                    );
                }
                (best, stats)
            };
            let (serial_s, stats) = time_update(1);
            let (parallel_s, pstats) = time_update(parallel_threads);
            assert_eq!(stats, pstats, "parallel stats must match serial");

            let speedup = edited_rebuild_s / serial_s;
            table.row([
                kind.to_string(),
                format!("{delta_pct}%"),
                stats.rows_added.to_string(),
                stats.rows_removed.to_string(),
                stats.dirty_cells.to_string(),
                stats.promoted_cells.to_string(),
                stats.demoted_cells.to_string(),
                stats.clean_cells.to_string(),
                format!("{:.2} ms", serial_s * 1e3),
                format!("{:.2} ms", parallel_s * 1e3),
                format!("{:.2} ms", edited_rebuild_s * 1e3),
                format!("{speedup:.1}x"),
            ]);
            if !churn_json.is_empty() {
                churn_json.push_str(",\n");
            }
            churn_json.push_str(&format!(
                "    {{\"kind\": \"{kind}\", \"delta_pct\": {delta_pct}, \
                 \"rows_added\": {}, \"rows_removed\": {}, \"base_rows\": {}, \
                 \"serial_update_s\": {serial_s:.6}, \"parallel_update_s\": {parallel_s:.6}, \
                 \"parallel_threads\": {parallel_threads}, \
                 \"rebuild_s\": {edited_rebuild_s:.6}, \"speedup_serial\": {speedup:.2}, \
                 \"speedup_parallel\": {:.2}, \"dirty_cells\": {}, \
                 \"promoted_cells\": {}, \"demoted_cells\": {}, \"clean_cells\": {}, \
                 \"bit_identical\": true}}",
                stats.rows_added,
                stats.rows_removed,
                base_rel.len(),
                edited_rebuild_s / parallel_s,
                stats.dirty_cells,
                stats.promoted_cells,
                stats.demoted_cells,
                stats.clean_cells,
            ));
        }
    }
    print!("{}", table.render());

    let host = host_json();
    let json = format!(
        "{{\n  \"experiment\": \"cube_update\",\n  \"generated_by\": \
         \"cargo run -p scube-bench --release --bin exp -- cube-update\",\n  \
         \"host_threads\": {host_threads},\n  {host},\n  \"dataset\": \"italy\",\n  \
         \"companies\": 4000,\n  \"rows\": {rows},\n  \"min_support\": {minsup},\n  \
         \"total_cells\": {total_cells},\n  \"rebuild_s\": {rebuild_s:.6},\n  \
         \"cube_only_rebuild_s\": {cube_only_rebuild_s:.6},\n  \
         \"churn\": [\n{churn_json}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_cube_update.json", &json).expect("write BENCH_cube_update.json");
    println!("\nwrote BENCH_cube_update.json");
}

/// E18 — posting-kernel microbenchmarks: every optimized kernel (pairwise
/// AND, streaming `and_cardinality`, batched 8-way `intersect_all`) timed
/// against the scalar sorted-vector reference over a representation ×
/// density grid, every cell gated on exact equality with the reference
/// answer before its timing is recorded. Writes
/// `BENCH_bitmap_kernels.json`; `--smoke` runs a reduced grid and skips
/// the file write (the CI correctness pass).
fn bitmap_kernels_experiment(smoke: bool) {
    use scube_bitmap::{AdaptivePosting, DenseBitmap, EwahBitmap, Posting, Representation, TidVec};

    banner("E18", "posting kernels vs scalar reference (writes BENCH_bitmap_kernels.json)");
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Deterministic generator (xorshift64*) — the exp binary carries no
    // rand dependency, and the grid must be reproducible run to run.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
    // Sorted ids with gaps in `1..=max_gap` (max_gap = 1 ⇒ a solid run).
    let gen_ids = |seed: u64, len: usize, max_gap: u64| -> Vec<u32> {
        let mut rng = Rng(seed | 1);
        let mut ids = Vec::with_capacity(len);
        let mut cur = 0u64;
        for _ in 0..len {
            cur += 1 + rng.next() % max_gap;
            ids.push(cur as u32);
        }
        ids
    };
    // Alternating solid runs and long gaps (EWAH's favourite shape).
    let gen_clustered = |seed: u64, clusters: usize, run: usize, gap: u64| -> Vec<u32> {
        let mut rng = Rng(seed | 1);
        let mut ids = Vec::with_capacity(clusters * run);
        let mut cur = 0u64;
        for _ in 0..clusters {
            cur += 64 + rng.next() % gap;
            for k in 0..run as u64 {
                ids.push((cur + k) as u32);
            }
            cur += run as u64;
        }
        ids
    };
    let merge_sorted = |a: &[u32], b: &[u32]| -> Vec<u32> {
        let mut out: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    };

    // Grid axes: density family × representation × kernel. Each family is
    // 8 lists (pairwise kernels use the first two, the batched AND all 8);
    // a shared base keeps the 8-way intersection non-trivial.
    let scale = if smoke { 16 } else { 1 };
    let families: Vec<(&str, Vec<Vec<u32>>)> = vec![
        ("sparse", (0..8).map(|i| gen_ids(11 + i, 4_000 / scale, 900)).collect()),
        (
            "clustered",
            (0..8)
                .map(|i| {
                    let base = gen_clustered(7, 160 / scale, 220, 9_000);
                    merge_sorted(&base, &gen_clustered(31 + i, 40 / scale.min(8), 90, 30_000))
                })
                .collect(),
        ),
        ("dense_runs", (0..8).map(|i| gen_ids(101 + i, 200_000 / scale, 2)).collect()),
        (
            "skewed",
            // One tiny probe list against 7 big ones: the galloping case.
            std::iter::once(gen_ids(5, 160.max(160 / scale), 6_000))
                .chain((0..7).map(|i| gen_ids(201 + i, 120_000 / scale, 4)))
                .collect(),
        ),
    ];

    let (iters, reps) = if smoke { (2usize, 1usize) } else { (30, 3) };
    let time_ns = |f: &mut dyn FnMut() -> u64| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let mut acc = 0u64;
            for _ in 0..iters {
                acc = acc.wrapping_add(f());
            }
            std::hint::black_box(acc);
            best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
        }
        best * 1e9
    };

    struct Cell {
        kernel: &'static str,
        representation: &'static str,
        density: &'static str,
        scalar_ns: f64,
        kernel_ns: f64,
        speedup: f64,
        /// `Some((pairwise_ns, batched_vs_pairwise))` for the batched AND.
        pairwise: Option<(f64, f64)>,
    }

    // One representation's three rows of the grid for one density family.
    // Every timing is preceded by an exact-equality gate against the
    // scalar reference — a mismatch aborts the experiment.
    fn run_rep<P: Posting>(
        representation: &'static str,
        density: &'static str,
        lists: &[Vec<u32>],
        time_ns: &dyn Fn(&mut dyn FnMut() -> u64) -> f64,
    ) -> Vec<Cell> {
        let postings: Vec<P> = lists.iter().map(|ids| P::from_sorted(ids)).collect();
        let refs: Vec<&P> = postings.iter().collect();
        let slices: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();
        let (a, b) = (&slices[0], &slices[1]);
        let (pa, pb) = (&postings[0], &postings[1]);
        let mut cells = Vec::new();

        // Pairwise AND (through the buffer-reusing and_into kernel).
        let expect = scube_bitmap::reference::intersect_sorted(a, b);
        assert_eq!(pa.and(pb).to_vec(), expect, "{representation}/{density}: and != scalar");
        let scalar_ns =
            time_ns(&mut || scube_bitmap::reference::intersect_sorted(a, b).len() as u64);
        let mut out = P::from_sorted(&[]);
        let kernel_ns = time_ns(&mut || {
            pa.and_into(pb, &mut out);
            out.cardinality()
        });
        cells.push(Cell {
            kernel: "and",
            representation,
            density,
            scalar_ns,
            kernel_ns,
            speedup: scalar_ns / kernel_ns,
            pairwise: None,
        });

        // Streaming intersection cardinality (never materializes).
        let count = scube_bitmap::reference::intersect_cardinality_sorted(a, b);
        assert_eq!(pa.and_cardinality(pb), count, "{representation}/{density}: and_cardinality");
        let scalar_ns =
            time_ns(&mut || scube_bitmap::reference::intersect_cardinality_sorted(a, b));
        let kernel_ns = time_ns(&mut || pa.and_cardinality(pb));
        cells.push(Cell {
            kernel: "and_cardinality",
            representation,
            density,
            scalar_ns,
            kernel_ns,
            speedup: scalar_ns / kernel_ns,
            pairwise: None,
        });

        // Batched 8-way AND vs the scalar fold, plus the old pairwise
        // posting fold (what intersect_all did before the batched kernel).
        let expect =
            scube_bitmap::reference::intersect_all_sorted(&slices).expect("families are non-empty");
        let got = scube_bitmap::intersect_all(&refs).expect("non-empty input");
        assert_eq!(got.to_vec(), expect, "{representation}/{density}: intersect_all");
        let scalar_ns = time_ns(&mut || {
            scube_bitmap::reference::intersect_all_sorted(&slices)
                .map(|v| v.len() as u64)
                .unwrap_or(0)
        });
        let kernel_ns = time_ns(&mut || {
            scube_bitmap::intersect_all(&refs).map(|p| p.cardinality()).unwrap_or(0)
        });
        let pairwise_ns = time_ns(&mut || {
            let mut acc = postings[0].clone();
            for p in &postings[1..] {
                if acc.is_empty() {
                    break;
                }
                acc = acc.and(p);
            }
            acc.cardinality()
        });
        cells.push(Cell {
            kernel: "intersect_all8",
            representation,
            density,
            scalar_ns,
            kernel_ns,
            speedup: scalar_ns / kernel_ns,
            pairwise: Some((pairwise_ns, pairwise_ns / kernel_ns)),
        });
        cells
    }

    let mut cells: Vec<Cell> = Vec::new();
    for (density, lists) in &families {
        for rep in Representation::ALL {
            let rep_cells = match rep {
                Representation::Ewah => run_rep::<EwahBitmap>(rep.name(), density, lists, &time_ns),
                Representation::Dense => {
                    run_rep::<DenseBitmap>(rep.name(), density, lists, &time_ns)
                }
                Representation::TidVec => run_rep::<TidVec>(rep.name(), density, lists, &time_ns),
                Representation::Adaptive => {
                    run_rep::<AdaptivePosting>(rep.name(), density, lists, &time_ns)
                }
            };
            cells.extend(rep_cells);
        }
    }

    let mut table = TextTable::new()
        .header(["kernel", "repr", "density", "scalar", "kernel", "speedup"])
        .aligns(vec![
            Align::Left,
            Align::Left,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
    for c in &cells {
        table.row([
            c.kernel.to_string(),
            c.representation.to_string(),
            c.density.to_string(),
            format!("{:.1} µs", c.scalar_ns / 1e3),
            format!("{:.1} µs", c.kernel_ns / 1e3),
            format!("{:.2}x", c.speedup),
        ]);
    }
    print!("{}", table.render());

    let best = cells.iter().max_by(|a, b| a.speedup.total_cmp(&b.speedup)).expect("grid ran");
    println!(
        "\nbest cell: {} / {} / {} at {:.2}x over scalar (every cell equality-gated)",
        best.kernel, best.representation, best.density, best.speedup
    );

    if smoke {
        println!("smoke mode: correctness gates passed; skipping BENCH_bitmap_kernels.json");
        return;
    }

    let mut cells_json = String::new();
    for c in &cells {
        if !cells_json.is_empty() {
            cells_json.push_str(",\n");
        }
        let extra = match c.pairwise {
            Some((p_ns, ratio)) => {
                format!(", \"pairwise_ns\": {p_ns:.0}, \"batched_vs_pairwise\": {ratio:.3}")
            }
            None => String::new(),
        };
        cells_json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"representation\": \"{}\", \"density\": \"{}\", \
             \"scalar_ns\": {:.0}, \"kernel_ns\": {:.0}, \"speedup\": {:.3}, \
             \"equal_scalar\": true{extra}}}",
            c.kernel, c.representation, c.density, c.scalar_ns, c.kernel_ns, c.speedup,
        ));
    }
    let host = host_json();
    let json = format!(
        "{{\n  \"experiment\": \"bitmap_kernels\",\n  \"generated_by\": \
         \"cargo run -p scube-bench --release --bin exp -- bitmap-kernels\",\n  \
         \"host_threads\": {host_threads},\n  {host},\n  \
         \"timing\": {{\"iters\": {iters}, \"reps\": {reps}, \"statistic\": \"best\"}},\n  \
         \"best_cell\": {{\"kernel\": \"{}\", \"representation\": \"{}\", \
         \"density\": \"{}\", \"speedup\": {:.3}}},\n  \"cells\": [\n{cells_json}\n  ]\n}}\n",
        best.kernel, best.representation, best.density, best.speedup,
    );
    std::fs::write("BENCH_bitmap_kernels.json", &json).expect("write BENCH_bitmap_kernels.json");
    println!("wrote BENCH_bitmap_kernels.json ({} cells)", cells.len());
}

/// E13 (extension) — permutation significance of discovered contexts:
/// separates real segregation from the small-unit bias of random
/// allocation before reporting findings.
/// E21 — the measure axis: how much does the per-cell fold cost depend on
/// the selected `MeasureSet`, and what does a permutation-significance
/// pass over discovered contexts add on top? Every timing is gated on the
/// differential harness — each subset build must bit-equal both the
/// masked full build and a direct `SegIndex::compute` over the explorer's
/// unit breakdown, and the v5 snapshot round-trip must be a byte-level
/// fixed point. Writes `BENCH_cube_indexes.json`; `--smoke` runs the
/// gates on a small dataset and skips the file write (the CI pass).
fn cube_indexes_experiment(smoke: bool) {
    banner("E21", "pluggable measure folds + significance (writes BENCH_cube_indexes.json)");
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let companies = if smoke { 300 } else { 4000 };
    let db = italy_final_table(companies);
    let rows = db.len();
    let minsup = (rows as u64 / 200).max(1);

    let suites: [(&str, MeasureSet); 4] = [
        ("all", MeasureSet::FULL),
        ("dissimilarity", MeasureSet::only(SegIndex::Dissimilarity)),
        ("atkinson", MeasureSet::only(SegIndex::Atkinson)),
        ("gini+isolation", MeasureSet::only(SegIndex::Gini).with(SegIndex::Isolation)),
    ];
    let builder_for =
        |set: MeasureSet| CubeBuilder::new().min_support(minsup).parallel(false).measures(set);
    let full_cube = builder_for(MeasureSet::FULL).build(&db).expect("full build");
    let cells = full_cube.len();
    println!("rows: {rows}, min_support: {minsup}, cells: {cells}");

    // Differential gate: each subset build must carry exactly the masked
    // full-suite values (bit for bit, absent elsewhere), and on a cell
    // sample the folds must equal computing each index directly from the
    // explorer's per-unit breakdown — segindex as an independent oracle.
    let mut explorer: CubeExplorer = CubeExplorer::new(&db);
    for (name, set) in suites {
        let cube = builder_for(set).build(&db).expect("subset build");
        assert_eq!(cube.len(), cells, "{name}: cell universe must not depend on measures");
        for (coords, v) in cube.cells() {
            let full_v = full_cube.get(coords).expect("same universe");
            assert_eq!(
                (v.minority, v.total, v.num_units),
                (full_v.minority, full_v.total, full_v.num_units)
            );
            for index in SegIndex::ALL {
                let want = if set.contains(index) { full_v.get(index) } else { None };
                assert_eq!(
                    v.get(index).map(f64::to_bits),
                    want.map(f64::to_bits),
                    "{name}: {index} diverged from the masked full build"
                );
            }
        }
        for (coords, v) in cube.cells().take(64) {
            let counts = UnitCounts::from_triples(explorer.unit_breakdown(coords))
                .expect("breakdown is consistent");
            for index in set.iter() {
                let want = match index {
                    SegIndex::Atkinson => {
                        scube_segindex::atkinson(&counts, scube_segindex::DEFAULT_ATKINSON_B)
                    }
                    _ => index.compute(&counts),
                };
                assert_eq!(
                    v.get(index).map(f64::to_bits),
                    want.map(f64::to_bits),
                    "{name}: {index} diverged from direct segindex recomputation"
                );
            }
        }
    }

    // v5 round-trip gate: a proper subset persists as version 5 and the
    // load → save cycle is a byte-level fixed point.
    let subset = MeasureSet::only(SegIndex::Gini).with(SegIndex::Isolation);
    let snap: CubeSnapshot =
        CubeSnapshot::from_db(&db, &builder_for(subset)).expect("subset snapshot builds");
    let bytes = snap.to_bytes();
    assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 5, "subset saves as v5");
    let reloaded: CubeSnapshot = CubeSnapshot::from_bytes(&bytes).expect("v5 loads");
    assert_eq!(reloaded.to_bytes(), bytes, "v5 round-trip must be a fixed point");
    println!("gates passed: masked-full identity, segindex differential, v5 fixed point");
    if smoke {
        println!("(smoke: gates only, skipping timings and the JSON write)");
        return;
    }

    // Fold-cost sweep: best-of-3 full builds per measure suite. The fold
    // is a small slice of the whole build (mining dominates), so vs_full
    // measures how free a narrower suite actually is end to end.
    let mut full_build_s = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        std::hint::black_box(builder_for(MeasureSet::FULL).build(&db).expect("build"));
        full_build_s = full_build_s.min(t0.elapsed().as_secs_f64());
    }
    let mut table = TextTable::new()
        .header(["measures", "n", "build", "vs full suite"])
        .aligns(vec![Align::Left, Align::Right, Align::Right, Align::Right]);
    let mut folds_json = String::new();
    for (name, set) in suites {
        let build_s = if set.is_full() {
            full_build_s
        } else {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                std::hint::black_box(builder_for(set).build(&db).expect("build"));
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        };
        let vs_full = full_build_s / build_s;
        table.row([
            name.to_string(),
            set.len().to_string(),
            format!("{:.1} ms", build_s * 1e3),
            format!("{vs_full:.2}x"),
        ]);
        if !folds_json.is_empty() {
            folds_json.push_str(",\n");
        }
        folds_json.push_str(&format!(
            "    {{\"measures\": \"{name}\", \"n_measures\": {}, \
             \"build_s\": {build_s:.6}, \"vs_full\": {vs_full:.2}}}",
            set.len()
        ));
    }
    print!("{}", table.render());

    // Significance pass: the default 999-permutation test over the top-k
    // discovered contexts by dissimilarity — the cost a `--significance`
    // query adds per cell.
    let k = 20usize;
    let test = PermutationTest::default();
    let top: Vec<CellCoords> = top_contexts(&full_cube, SegIndex::Dissimilarity, k, minsup)
        .into_iter()
        .map(|(c, _, _)| c.clone())
        .collect();
    let mut tested = 0usize;
    let t0 = Instant::now();
    for coords in &top {
        let counts = UnitCounts::from_triples(explorer.unit_breakdown(coords))
            .expect("breakdown is consistent");
        if let Some(r) = test.run(SegIndex::Dissimilarity, &counts) {
            std::hint::black_box(r);
            tested += 1;
        }
    }
    let sig_s = t0.elapsed().as_secs_f64();
    let per_cell_ms = sig_s * 1e3 / tested.max(1) as f64;
    println!(
        "significance: {tested} cells x {} permutations in {:.1} ms ({per_cell_ms:.2} ms/cell)",
        test.permutations,
        sig_s * 1e3
    );

    let host = host_json();
    let json = format!(
        "{{\n  \"experiment\": \"cube_indexes\",\n  \"generated_by\": \
         \"cargo run -p scube-bench --release --bin exp -- cube-indexes\",\n  \
         \"host_threads\": {host_threads},\n  {host},\n  \"dataset\": \"italy\",\n  \
         \"companies\": {companies},\n  \"rows\": {rows},\n  \"min_support\": {minsup},\n  \
         \"cells\": {cells},\n  \"differential_gate\": \"passed\",\n  \
         \"v5_roundtrip_gate\": \"passed\",\n  \"folds\": [\n{folds_json}\n  ],\n  \
         \"significance\": {{\"index\": \"dissimilarity\", \"permutations\": {}, \
         \"cells\": {tested}, \"total_s\": {sig_s:.6}, \"per_cell_ms\": {per_cell_ms:.4}}}\n}}\n",
        test.permutations
    );
    std::fs::write("BENCH_cube_indexes.json", &json).expect("write BENCH_cube_indexes.json");
    println!("\nwrote BENCH_cube_indexes.json");
}

fn significance(scale: usize) {
    banner("E13 (extension)", "permutation tests on the top discovered contexts");
    let db = italy_final_table(scale);
    let cube = CubeBuilder::new().min_support(100).parallel(true).build(&db).expect("cube builds");
    let mut explorer: CubeExplorer = CubeExplorer::new(&db);
    let test = scube_segindex::PermutationTest { permutations: 499, seed: 7 };
    let mut table = TextTable::new().header(["context", "D", "null mean", "p-value"]).aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for (coords, _, d) in top_contexts(&cube, SegIndex::Dissimilarity, 5, 200) {
        let breakdown = explorer.unit_breakdown(coords);
        let counts =
            scube_segindex::UnitCounts::from_triples(breakdown).expect("breakdown is consistent");
        if let Some(r) = test.run(SegIndex::Dissimilarity, &counts) {
            table.row([
                cube.labels().describe(coords),
                format!("{d:.3}"),
                format!("{:.3}", r.null_mean),
                format!("{:.3}", r.p_value),
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "(null mean ≫ 0 shows the small-unit bias of D; p ≤ 0.002 is the\n\
         resolution limit of 499 permutations)"
    );
}
