//! Brute-force mining oracle.
//!
//! Level-wise breadth-first enumeration with per-level transaction scans
//! and no data-structure cleverness: slow but obviously correct. The test
//! suites compare every real miner against this.

use scube_common::{FxHashMap, FxHashSet, Result};
use scube_data::{ItemId, TransactionDb};

use crate::itemset::{is_sorted_subset, FrequentItemset};
use crate::validate_min_support;

/// Mine all frequent itemsets by brute force.
pub fn mine(db: &TransactionDb, min_support: u64) -> Result<Vec<FrequentItemset>> {
    validate_min_support(min_support)?;
    let mut out: Vec<FrequentItemset> = Vec::new();

    // Level 1: count items by a scan.
    let supports = db.item_supports();
    let mut level: Vec<Vec<ItemId>> = supports
        .iter()
        .enumerate()
        .filter(|(_, &s)| s >= min_support)
        .map(|(i, _)| vec![i as ItemId])
        .collect();
    for set in &level {
        out.push(FrequentItemset::new(set.clone(), supports[set[0] as usize]));
    }

    // Level k: extend every frequent (k-1)-set with every frequent item,
    // dedupe, count by scan, keep the frequent ones.
    let frequent_items: Vec<ItemId> = level.iter().map(|s| s[0]).collect();
    while !level.is_empty() {
        let mut candidates: FxHashSet<Vec<ItemId>> = FxHashSet::default();
        for set in &level {
            for &item in &frequent_items {
                if !set.contains(&item) {
                    let mut c = set.clone();
                    c.push(item);
                    c.sort_unstable();
                    candidates.insert(c);
                }
            }
        }
        let mut counts: FxHashMap<Vec<ItemId>, u64> = FxHashMap::default();
        for (items, _) in db.iter() {
            for c in &candidates {
                if is_sorted_subset(c, items) {
                    *counts.entry(c.clone()).or_insert(0) += 1;
                }
            }
        }
        level = counts
            .into_iter()
            .filter(|&(_, n)| n >= min_support)
            .map(|(c, n)| {
                out.push(FrequentItemset::new(c.clone(), n));
                c
            })
            .collect();
    }
    crate::itemset::sort_canonical(&mut out);
    Ok(out)
}

/// Closed itemsets by the definition: no strict superset with the same
/// support among the frequent sets.
pub fn mine_closed(db: &TransactionDb, min_support: u64) -> Result<Vec<FrequentItemset>> {
    let all = mine(db, min_support)?;
    let closed: Vec<FrequentItemset> = all
        .iter()
        .filter(|s| {
            !all.iter().any(|t| {
                t.support == s.support && t.items.len() > s.items.len() && s.is_subset_of(t)
            })
        })
        .cloned()
        .collect();
    Ok(closed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::db_from_sets;

    #[test]
    fn textbook_example() {
        // {a,b,c}, {a,b}, {a,c}, {a} with minsup 2.
        let db = db_from_sets(&[&[0, 1, 2], &[0, 1], &[0, 2], &[0]]);
        let result = mine(&db, 2).unwrap();
        // Map values back to readable labels for the assertion.
        let mut found: Vec<(Vec<String>, u64)> = result
            .iter()
            .map(|s| (s.items.iter().map(|&i| db.item_label(i)).collect::<Vec<_>>(), s.support))
            .collect();
        found.sort();
        let expect = |items: &[&str], support: u64| {
            (items.iter().map(|s| format!("x={s}")).collect::<Vec<_>>(), support)
        };
        let mut expected = vec![
            expect(&["v0"], 4),
            expect(&["v1"], 2),
            expect(&["v2"], 2),
            expect(&["v0", "v1"], 2),
            expect(&["v0", "v2"], 2),
        ];
        expected.sort();
        assert_eq!(found, expected);
    }

    #[test]
    fn closed_subset() {
        let db = db_from_sets(&[&[0, 1, 2], &[0, 1], &[0, 2], &[0]]);
        let closed = mine_closed(&db, 2).unwrap();
        // v1 (sup 2) is subsumed by {v0,v1} (sup 2); same for v2.
        assert_eq!(closed.len(), 3);
        let lens: Vec<usize> = closed.iter().map(FrequentItemset::len).collect();
        assert_eq!(lens.iter().filter(|&&l| l == 1).count(), 1); // only v0
        assert_eq!(lens.iter().filter(|&&l| l == 2).count(), 2);
    }

    #[test]
    fn min_support_zero_rejected() {
        let db = db_from_sets(&[&[0]]);
        assert!(mine(&db, 0).is_err());
    }

    #[test]
    fn high_min_support_empty_result() {
        let db = db_from_sets(&[&[0, 1], &[0]]);
        assert_eq!(mine(&db, 3).unwrap().len(), 0);
    }
}
