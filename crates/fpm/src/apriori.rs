//! Apriori: the classical level-wise baseline.
//!
//! Kept as the comparison point for the efficiency experiments (E11): it
//! re-scans the database once per level and generates candidates by
//! self-joining the previous level, which the paper-era literature shows is
//! dominated by FP-Growth/Eclat on dense data.

use scube_common::{FxHashMap, Result};
use scube_data::{ItemId, TransactionDb};

use crate::itemset::{is_sorted_subset, sort_canonical, FrequentItemset};
use crate::{validate_min_support, Miner};

/// The Apriori miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Apriori;

impl Miner for Apriori {
    fn name(&self) -> &'static str {
        "apriori"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64) -> Result<Vec<FrequentItemset>> {
        validate_min_support(min_support)?;
        let mut out: Vec<FrequentItemset> = Vec::new();

        // L1.
        let supports = db.item_supports();
        let mut level: Vec<Vec<ItemId>> = supports
            .iter()
            .enumerate()
            .filter(|(_, &s)| s >= min_support)
            .map(|(i, _)| vec![i as ItemId])
            .collect();
        for set in &level {
            out.push(FrequentItemset::new(set.clone(), supports[set[0] as usize]));
        }

        while level.len() > 1 {
            let candidates = generate_candidates(&level);
            if candidates.is_empty() {
                break;
            }
            // Count candidates with one scan; transactions are filtered to
            // frequent items implicitly by the subset test.
            let mut counts: FxHashMap<&[ItemId], u64> = FxHashMap::default();
            for (items, _) in db.iter() {
                for c in &candidates {
                    if is_sorted_subset(c, items) {
                        *counts.entry(c.as_slice()).or_insert(0) += 1;
                    }
                }
            }
            level = candidates
                .iter()
                .filter(|c| counts.get(c.as_slice()).copied().unwrap_or(0) >= min_support)
                .cloned()
                .collect();
            for set in &level {
                out.push(FrequentItemset::new(set.clone(), counts[set.as_slice()]));
            }
        }
        sort_canonical(&mut out);
        Ok(out)
    }
}

/// Self-join of `L_{k-1}`: pairs sharing the first `k-2` items, followed by
/// the Apriori prune (every (k-1)-subset must be frequent).
fn generate_candidates(level: &[Vec<ItemId>]) -> Vec<Vec<ItemId>> {
    let mut sorted: Vec<&Vec<ItemId>> = level.iter().collect();
    sorted.sort();
    let k = sorted.first().map(|s| s.len()).unwrap_or(0);
    let mut out = Vec::new();
    for i in 0..sorted.len() {
        for j in i + 1..sorted.len() {
            let (a, b) = (sorted[i], sorted[j]);
            if a[..k - 1] != b[..k - 1] {
                break; // sorted order: no further prefix matches
            }
            let mut cand = a.clone();
            cand.push(b[k - 1]);
            // Prune: all (k-1)-subsets must be in the level.
            let all_subsets_frequent = (0..cand.len()).all(|drop| {
                let sub: Vec<ItemId> = cand
                    .iter()
                    .enumerate()
                    .filter(|&(idx, _)| idx != drop)
                    .map(|(_, &it)| it)
                    .collect();
                sorted.binary_search(&&sub).is_ok()
            });
            if all_subsets_frequent {
                out.push(cand);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::db_from_sets;

    #[test]
    fn matches_naive() {
        let db = db_from_sets(&[&[0, 1, 2], &[0, 1], &[0, 2], &[0], &[1, 2, 3], &[3]]);
        for minsup in 1..=3 {
            let got = Apriori.mine(&db, minsup).unwrap();
            let expected = crate::naive::mine(&db, minsup).unwrap();
            assert_eq!(got, expected, "minsup {minsup}");
        }
    }

    #[test]
    fn candidate_generation_prunes() {
        // {0,1}, {0,2} frequent but {1,2} not → candidate {0,1,2} pruned.
        let level = vec![vec![0, 1], vec![0, 2]];
        assert!(generate_candidates(&level).is_empty());
        // With {1,2} present the triple survives.
        let level = vec![vec![0, 1], vec![0, 2], vec![1, 2]];
        assert_eq!(generate_candidates(&level), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_db() {
        let db = db_from_sets(&[]);
        assert!(Apriori.mine(&db, 1).unwrap().is_empty());
    }
}
