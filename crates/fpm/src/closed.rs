//! Closed-itemset filtering.
//!
//! An itemset is *closed* when no strict superset has the same support.
//! SCube materializes only closed itemsets in the cube (the tidset — and
//! therefore every index value — of a non-closed itemset equals that of its
//! closure), which compresses the cube losslessly.

use scube_common::FxHashMap;

use crate::itemset::FrequentItemset;

/// Keep only the closed itemsets of a mining result.
///
/// Supports are grouped first: a superset with *different* support can
/// never witness non-closedness, so each itemset is only checked against
/// the (few) longer itemsets in its own support bucket.
pub fn filter_closed(sets: &[FrequentItemset]) -> Vec<FrequentItemset> {
    let kept = closed_positions(sets.len(), |i| (&sets[i].items, sets[i].support));
    let mut out: Vec<FrequentItemset> = kept.into_iter().map(|i| sets[i].clone()).collect();
    crate::itemset::sort_canonical(&mut out);
    out
}

/// Indices of the closed entries among `n` itemsets described by `get`
/// (which returns `(sorted items, support)` for an index).
///
/// Generic over storage so callers that carry payloads alongside each
/// itemset (e.g. the cube builder's tidsets) can filter without cloning.
pub fn closed_positions<'a>(
    n: usize,
    get: impl Fn(usize) -> (&'a [scube_data::ItemId], u64),
) -> Vec<usize> {
    let mut by_support: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    for i in 0..n {
        by_support.entry(get(i).1).or_default().push(i);
    }
    let mut kept = Vec::new();
    for bucket in by_support.values() {
        for &i in bucket {
            let (items, _) = get(i);
            let closed = !bucket.iter().any(|&j| {
                let (other, _) = get(j);
                other.len() > items.len() && crate::itemset::is_sorted_subset(items, other)
            });
            if closed {
                kept.push(i);
            }
        }
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::db_from_sets;
    use crate::{naive, Miner};

    #[test]
    fn matches_definition_on_example() {
        let db = db_from_sets(&[&[0, 1, 2], &[0, 1], &[0, 2], &[0]]);
        let all = naive::mine(&db, 2).unwrap();
        let got = filter_closed(&all);
        let expected = naive::mine_closed(&db, 2).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn all_distinct_supports_means_all_closed() {
        let sets = vec![
            FrequentItemset::new(vec![0], 5),
            FrequentItemset::new(vec![1], 4),
            FrequentItemset::new(vec![0, 1], 3),
        ];
        assert_eq!(filter_closed(&sets).len(), 3);
    }

    #[test]
    fn equal_support_superset_subsumes() {
        let sets = vec![
            FrequentItemset::new(vec![0], 3),
            FrequentItemset::new(vec![0, 1], 3),
            FrequentItemset::new(vec![0, 1, 2], 3),
        ];
        let closed = filter_closed(&sets);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].items, vec![0, 1, 2]);
    }

    #[test]
    fn closed_preserves_maximal_per_tidset() {
        // Via the trait on a richer database.
        let db = db_from_sets(&[&[0, 1, 2, 3], &[0, 1, 2], &[0, 1], &[2, 3], &[0, 3]]);
        let got = crate::FpGrowth.mine_closed(&db, 1).unwrap();
        let expected = naive::mine_closed(&db, 1).unwrap();
        assert_eq!(got, expected);
    }
}
