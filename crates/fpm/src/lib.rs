#![warn(missing_docs)]
//! Frequent and closed itemset mining.
//!
//! SCube enumerates candidate cube cells by mining frequent (closed)
//! itemsets over the encoded population table (the original tool shells out
//! to Borgelt's FPGrowth; we implement the miners natively):
//!
//! * [`FpGrowth`] — the reference miner: FP-tree construction plus
//!   recursive conditional-tree mining;
//! * [`Eclat`] — vertical mining by tidset intersection, generic over the
//!   [`scube_bitmap::Posting`] representation (EWAH / dense / tid-vector);
//! * [`Apriori`] — the classical level-wise baseline, kept for the
//!   efficiency comparison (experiment E11);
//! * [`naive`] — an intentionally simple exponential oracle used by tests;
//! * [`closed::filter_closed`] — reduce any result to closed itemsets
//!   (no strict superset with equal support).
//!
//! All miners return the same canonical output — itemsets sorted by item id
//! with absolute supports — and are cross-checked against each other and
//! against the oracle in the test suite.

pub mod apriori;
pub mod closed;
pub mod eclat;
pub mod fpgrowth;
pub mod itemset;
pub mod naive;

pub use apriori::Apriori;
pub use closed::filter_closed;
pub use eclat::Eclat;
pub use fpgrowth::FpGrowth;
pub use itemset::FrequentItemset;

use scube_common::{Result, ScubeError};
use scube_data::TransactionDb;

/// A frequent-itemset mining algorithm.
pub trait Miner {
    /// Short algorithm name (used in benchmark reports).
    fn name(&self) -> &'static str;

    /// Mine all itemsets with absolute support ≥ `min_support`.
    ///
    /// The empty itemset is *not* reported (its support is the database
    /// size by definition); itemsets are canonical (ids ascending).
    fn mine(&self, db: &TransactionDb, min_support: u64) -> Result<Vec<FrequentItemset>>;

    /// Mine and keep only closed itemsets.
    fn mine_closed(&self, db: &TransactionDb, min_support: u64) -> Result<Vec<FrequentItemset>> {
        Ok(filter_closed(&self.mine(db, min_support)?))
    }
}

pub(crate) fn validate_min_support(min_support: u64) -> Result<()> {
    if min_support == 0 {
        return Err(ScubeError::InvalidParameter(
            "min_support must be at least 1 (support 0 itemsets are unbounded)".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use scube_data::{Attribute, Schema, TransactionDb, TransactionDbBuilder};

    /// Build a database of set-transactions over items "v0".."v9" of one
    /// multi-valued attribute (the simplest shape for miner tests).
    pub fn db_from_sets(sets: &[&[u8]]) -> TransactionDb {
        let schema = Schema::new(vec![Attribute::ca("x").multi()]).unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        for set in sets {
            let vals: Vec<String> = set.iter().map(|v| format!("v{v}")).collect();
            b.add_row(&[vals], "u").unwrap();
        }
        b.finish()
    }
}
