//! FP-Growth: FP-tree construction and recursive conditional mining.
//!
//! This is the workhorse miner (the original SCube calls Borgelt's C
//! implementation). Items are re-ranked by descending support so shared
//! prefixes compress into single tree paths; mining proceeds bottom-up by
//! building conditional trees per item.

use scube_common::Result;
use scube_data::{ItemId, TransactionDb};

use crate::itemset::{sort_canonical, FrequentItemset};
use crate::{validate_min_support, Miner};

const NONE: usize = usize::MAX;

/// The FP-Growth miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpGrowth;

impl Miner for FpGrowth {
    fn name(&self) -> &'static str {
        "fpgrowth"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64) -> Result<Vec<FrequentItemset>> {
        validate_min_support(min_support)?;

        // Rank frequent items by (support desc, id asc) for determinism.
        let supports = db.item_supports();
        let mut frequent: Vec<(ItemId, u64)> = supports
            .iter()
            .enumerate()
            .filter(|(_, &s)| s >= min_support)
            .map(|(i, &s)| (i as ItemId, s))
            .collect();
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let nranks = frequent.len();
        let mut rank_of = vec![u32::MAX; supports.len()];
        for (rank, &(item, _)) in frequent.iter().enumerate() {
            rank_of[item as usize] = rank as u32;
        }

        // Build the global tree (workhorse buffer reused across rows).
        let mut tree = FpTree::new(nranks);
        let mut ranks: Vec<u32> = Vec::new();
        for (items, _) in db.iter() {
            ranks.clear();
            ranks.extend(items.iter().map(|&it| rank_of[it as usize]).filter(|&r| r != u32::MAX));
            ranks.sort_unstable();
            tree.insert(&ranks, 1);
        }

        // Mine, collecting itemsets in rank space.
        let mut out_ranks: Vec<(Vec<u32>, u64)> = Vec::new();
        let mut suffix: Vec<u32> = Vec::new();
        mine_tree(&tree, min_support, &mut suffix, &mut out_ranks);

        // Translate ranks back to item ids, canonicalize.
        let mut out: Vec<FrequentItemset> = out_ranks
            .into_iter()
            .map(|(ranks, support)| {
                let mut items: Vec<ItemId> =
                    ranks.iter().map(|&r| frequent[r as usize].0).collect();
                items.sort_unstable();
                FrequentItemset::new(items, support)
            })
            .collect();
        sort_canonical(&mut out);
        Ok(out)
    }
}

#[derive(Debug)]
struct FpNode {
    rank: u32,
    count: u64,
    parent: usize,
    /// Next node of the same rank (header chain).
    next: usize,
    /// Children as (rank, node index), sorted by rank.
    children: Vec<(u32, usize)>,
}

#[derive(Debug)]
struct FpTree {
    nodes: Vec<FpNode>,
    headers: Vec<usize>,
}

impl FpTree {
    fn new(nranks: usize) -> Self {
        let root =
            FpNode { rank: u32::MAX, count: 0, parent: NONE, next: NONE, children: Vec::new() };
        FpTree { nodes: vec![root], headers: vec![NONE; nranks] }
    }

    fn insert(&mut self, ranks: &[u32], count: u64) {
        let mut cur = 0usize;
        for &r in ranks {
            let child = match self.nodes[cur].children.binary_search_by_key(&r, |&(k, _)| k) {
                Ok(pos) => self.nodes[cur].children[pos].1,
                Err(pos) => {
                    let idx = self.nodes.len();
                    self.nodes.push(FpNode {
                        rank: r,
                        count: 0,
                        parent: cur,
                        next: self.headers[r as usize],
                        children: Vec::new(),
                    });
                    self.headers[r as usize] = idx;
                    self.nodes[cur].children.insert(pos, (r, idx));
                    idx
                }
            };
            self.nodes[child].count += count;
            cur = child;
        }
    }

    fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }
}

fn mine_tree(
    tree: &FpTree,
    min_support: u64,
    suffix: &mut Vec<u32>,
    out: &mut Vec<(Vec<u32>, u64)>,
) {
    // Process ranks bottom-up (least frequent first).
    for r in (0..tree.headers.len()).rev() {
        let mut support = 0u64;
        let mut node = tree.headers[r];
        while node != NONE {
            support += tree.nodes[node].count;
            node = tree.nodes[node].next;
        }
        if support < min_support {
            continue;
        }
        suffix.push(r as u32);
        out.push((suffix.clone(), support));

        // Conditional pattern base: prefix paths of every node of rank r.
        let mut cond = FpTree::new(r); // only ranks < r can appear above r
        let mut rank_counts = vec![0u64; r];
        let mut paths: Vec<(Vec<u32>, u64)> = Vec::new();
        let mut node = tree.headers[r];
        while node != NONE {
            let weight = tree.nodes[node].count;
            let mut path = Vec::new();
            let mut p = tree.nodes[node].parent;
            while p != NONE && tree.nodes[p].rank != u32::MAX {
                path.push(tree.nodes[p].rank);
                p = tree.nodes[p].parent;
            }
            path.reverse();
            for &pr in &path {
                rank_counts[pr as usize] += weight;
            }
            if !path.is_empty() {
                paths.push((path, weight));
            }
            node = tree.nodes[node].next;
        }
        // Insert paths filtered to locally-frequent ranks.
        let mut filtered: Vec<u32> = Vec::new();
        for (path, weight) in &paths {
            filtered.clear();
            filtered
                .extend(path.iter().copied().filter(|&pr| rank_counts[pr as usize] >= min_support));
            if !filtered.is_empty() {
                cond.insert(&filtered, *weight);
            }
        }
        if !cond.is_empty() {
            mine_tree(&cond, min_support, suffix, out);
        }
        suffix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::db_from_sets;

    #[test]
    fn matches_naive_on_textbook_example() {
        let db = db_from_sets(&[&[0, 1, 2], &[0, 1], &[0, 2], &[0]]);
        let got = FpGrowth.mine(&db, 2).unwrap();
        let expected = crate::naive::mine(&db, 2).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn matches_naive_on_classic_fp_paper_data() {
        // The transactions from Han et al.'s FP-Growth paper (relabelled).
        let db = db_from_sets(&[
            &[0, 1, 2, 3, 4],
            &[0, 1, 2, 5],
            &[1, 6, 7],
            &[1, 2, 8],
            &[0, 1, 2, 5],
            &[0, 2, 9],
        ]);
        for minsup in 1..=4 {
            let got = FpGrowth.mine(&db, minsup).unwrap();
            let expected = crate::naive::mine(&db, minsup).unwrap();
            assert_eq!(got, expected, "minsup {minsup}");
        }
    }

    #[test]
    fn empty_database() {
        let db = db_from_sets(&[]);
        assert_eq!(FpGrowth.mine(&db, 1).unwrap().len(), 0);
    }

    #[test]
    fn single_transaction_minsup_one() {
        let db = db_from_sets(&[&[0, 1]]);
        let got = FpGrowth.mine(&db, 1).unwrap();
        assert_eq!(got.len(), 3); // {v0}, {v1}, {v0,v1}
    }

    #[test]
    fn closed_via_trait() {
        let db = db_from_sets(&[&[0, 1, 2], &[0, 1], &[0, 2], &[0]]);
        let got = FpGrowth.mine_closed(&db, 2).unwrap();
        let expected = crate::naive::mine_closed(&db, 2).unwrap();
        let mut got = got;
        let mut expected = expected;
        crate::itemset::sort_canonical(&mut got);
        crate::itemset::sort_canonical(&mut expected);
        assert_eq!(got, expected);
    }
}
