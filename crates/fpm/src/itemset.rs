//! Canonical frequent-itemset records.

use scube_data::ItemId;

/// An itemset with its absolute support.
///
/// Items are stored sorted ascending by id, which makes itemsets directly
/// comparable and hashable across miners.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FrequentItemset {
    /// Sorted item ids.
    pub items: Vec<ItemId>,
    /// Number of transactions containing all the items.
    pub support: u64,
}

impl FrequentItemset {
    /// Create from already-sorted items.
    pub fn new(items: Vec<ItemId>, support: u64) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "items must be sorted unique");
        FrequentItemset { items, support }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for the empty itemset.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Is `self` a (non-strict) subset of `other`? Both sides sorted.
    pub fn is_subset_of(&self, other: &FrequentItemset) -> bool {
        is_sorted_subset(&self.items, &other.items)
    }
}

/// Subset test on sorted unique slices.
pub fn is_sorted_subset(small: &[ItemId], big: &[ItemId]) -> bool {
    let mut j = 0;
    for &x in small {
        loop {
            if j == big.len() {
                return false;
            }
            match big[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

/// Sort a result set into the canonical order used for equality checks:
/// by length, then lexicographically by items.
pub fn sort_canonical(sets: &mut [FrequentItemset]) {
    sets.sort_by(|a, b| a.items.len().cmp(&b.items.len()).then_with(|| a.items.cmp(&b.items)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_tests() {
        assert!(is_sorted_subset(&[], &[1, 2]));
        assert!(is_sorted_subset(&[2], &[1, 2, 3]));
        assert!(is_sorted_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_sorted_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_sorted_subset(&[0], &[1]));
        assert!(!is_sorted_subset(&[1, 2], &[2]));
    }

    #[test]
    fn canonical_sorting() {
        let mut v = vec![
            FrequentItemset::new(vec![2], 5),
            FrequentItemset::new(vec![1, 2], 3),
            FrequentItemset::new(vec![1], 6),
        ];
        sort_canonical(&mut v);
        assert_eq!(v[0].items, vec![1]);
        assert_eq!(v[1].items, vec![2]);
        assert_eq!(v[2].items, vec![1, 2]);
    }

    #[test]
    fn itemset_basics() {
        let s = FrequentItemset::new(vec![1, 5, 9], 4);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(FrequentItemset::new(vec![], 10).is_empty());
        assert!(FrequentItemset::new(vec![5], 4).is_subset_of(&s));
    }
}
