//! Eclat: depth-first vertical mining over tidset intersections.
//!
//! Generic over the tidset representation so the EWAH/dense/tid-vector
//! ablation (experiment E11) measures mining end-to-end with each.

use std::marker::PhantomData;

use scube_bitmap::{EwahBitmap, Posting};
use scube_common::Result;
use scube_data::{ItemId, TransactionDb, VerticalDb};

use crate::itemset::{sort_canonical, FrequentItemset};
use crate::{validate_min_support, Miner};

/// The Eclat miner, parameterized by posting representation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Eclat<P: Posting = EwahBitmap> {
    _marker: PhantomData<P>,
}

impl<P: Posting> Eclat<P> {
    /// Create a miner with the given posting representation.
    pub fn new() -> Self {
        Eclat { _marker: PhantomData }
    }
}

impl<P: Posting> Miner for Eclat<P> {
    fn name(&self) -> &'static str {
        "eclat"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64) -> Result<Vec<FrequentItemset>> {
        validate_min_support(min_support)?;
        let vertical: VerticalDb<P> = VerticalDb::build(db);

        // Frequent single items, ascending support (smaller tidsets first
        // keeps intermediate intersections small).
        let mut roots: Vec<(ItemId, P)> = (0..vertical.num_items() as ItemId)
            .filter_map(|it| {
                let posting = vertical.posting(it);
                (posting.cardinality() >= min_support).then(|| (it, posting.clone()))
            })
            .collect();
        roots.sort_by_key(|(it, p)| (p.cardinality(), *it));

        let mut out = Vec::new();
        let mut prefix: Vec<ItemId> = Vec::new();
        dfs(&roots, min_support, &mut prefix, &mut out);
        for set in &mut out {
            set.items.sort_unstable();
        }
        sort_canonical(&mut out);
        Ok(out)
    }
}

fn dfs<P: Posting>(
    candidates: &[(ItemId, P)],
    min_support: u64,
    prefix: &mut Vec<ItemId>,
    out: &mut Vec<FrequentItemset>,
) {
    for (i, (item, tids)) in candidates.iter().enumerate() {
        prefix.push(*item);
        out.push(FrequentItemset { items: prefix.clone(), support: tids.cardinality() });
        let extensions: Vec<(ItemId, P)> = candidates[i + 1..]
            .iter()
            .filter_map(|(jt, jtids)| {
                let joined = tids.and(jtids);
                (joined.cardinality() >= min_support).then_some((*jt, joined))
            })
            .collect();
        if !extensions.is_empty() {
            dfs(&extensions, min_support, prefix, out);
        }
        prefix.pop();
    }
}

/// Eclat that also returns each itemset's tidset — the entry point the cube
/// builder uses, since it needs to partition every tidset by unit.
pub fn mine_with_tidsets<P: Posting>(
    db: &TransactionDb,
    min_support: u64,
) -> Result<Vec<(FrequentItemset, P)>> {
    validate_min_support(min_support)?;
    let vertical: VerticalDb<P> = VerticalDb::build(db);
    mine_vertical_with_tidsets(&vertical, min_support)
}

/// As [`mine_with_tidsets`], over a pre-built vertical database.
pub fn mine_vertical_with_tidsets<P: Posting>(
    vertical: &VerticalDb<P>,
    min_support: u64,
) -> Result<Vec<(FrequentItemset, P)>> {
    validate_min_support(min_support)?;
    let mut roots: Vec<(ItemId, P)> = (0..vertical.num_items() as ItemId)
        .filter_map(|it| {
            let posting = vertical.posting(it);
            (posting.cardinality() >= min_support).then(|| (it, posting.clone()))
        })
        .collect();
    roots.sort_by_key(|(it, p)| (p.cardinality(), *it));
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    dfs_tids(&roots, min_support, &mut prefix, &mut out);
    for (set, _) in &mut out {
        set.items.sort_unstable();
    }
    out.sort_by(|a, b| a.0.items.len().cmp(&b.0.items.len()).then_with(|| a.0.items.cmp(&b.0.items)));
    Ok(out)
}

fn dfs_tids<P: Posting>(
    candidates: &[(ItemId, P)],
    min_support: u64,
    prefix: &mut Vec<ItemId>,
    out: &mut Vec<(FrequentItemset, P)>,
) {
    for (i, (item, tids)) in candidates.iter().enumerate() {
        prefix.push(*item);
        out.push((
            FrequentItemset { items: prefix.clone(), support: tids.cardinality() },
            tids.clone(),
        ));
        let extensions: Vec<(ItemId, P)> = candidates[i + 1..]
            .iter()
            .filter_map(|(jt, jtids)| {
                let joined = tids.and(jtids);
                (joined.cardinality() >= min_support).then_some((*jt, joined))
            })
            .collect();
        if !extensions.is_empty() {
            dfs_tids(&extensions, min_support, prefix, out);
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::db_from_sets;
    use scube_bitmap::{DenseBitmap, TidVec};

    #[test]
    fn matches_naive() {
        let db = db_from_sets(&[&[0, 1, 2], &[0, 1], &[0, 2], &[0], &[1, 2, 3]]);
        for minsup in 1..=3 {
            let got = Eclat::<EwahBitmap>::new().mine(&db, minsup).unwrap();
            let expected = crate::naive::mine(&db, minsup).unwrap();
            assert_eq!(got, expected, "minsup {minsup}");
        }
    }

    #[test]
    fn representations_agree() {
        let db = db_from_sets(&[&[0, 1, 2, 3], &[0, 1], &[1, 2], &[0, 3], &[2, 3]]);
        let e = Eclat::<EwahBitmap>::new().mine(&db, 2).unwrap();
        let d = Eclat::<DenseBitmap>::new().mine(&db, 2).unwrap();
        let t = Eclat::<TidVec>::new().mine(&db, 2).unwrap();
        assert_eq!(e, d);
        assert_eq!(d, t);
    }

    #[test]
    fn tidsets_are_correct() {
        let db = db_from_sets(&[&[0, 1], &[0], &[0, 1], &[1]]);
        let result = mine_with_tidsets::<EwahBitmap>(&db, 1).unwrap();
        for (set, tids) in &result {
            assert_eq!(set.support, tids.cardinality());
            // Verify against a direct scan.
            let mut expected = Vec::new();
            for (t, (items, _)) in db.iter().enumerate() {
                if crate::itemset::is_sorted_subset(&set.items, items) {
                    expected.push(t as u32);
                }
            }
            assert_eq!(tids.to_vec(), expected, "itemset {:?}", set.items);
        }
    }

    #[test]
    fn rejects_zero_min_support() {
        let db = db_from_sets(&[&[0]]);
        assert!(Eclat::<EwahBitmap>::new().mine(&db, 0).is_err());
        assert!(mine_with_tidsets::<EwahBitmap>(&db, 0).is_err());
    }
}
