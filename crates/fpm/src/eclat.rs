//! Eclat: depth-first vertical mining over tidset intersections.
//!
//! Generic over the tidset representation so the EWAH/dense/tid-vector
//! ablation (experiment E11) measures mining end-to-end with each.
//!
//! The DFS owns its candidate lists, so a node's tidset is *moved* into the
//! output once its extensions are computed (no per-node clone), and the
//! tidset-carrying entry point has a parallel twin that fans the first-level
//! equivalence classes (one frequent item's prefix subtree each) out over
//! scoped worker threads. Workers claim subtrees dynamically and the
//! per-subtree outputs are merged back in root order, so the parallel miner
//! is bit-identical to the serial one.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

use scube_bitmap::{EwahBitmap, Posting};
use scube_common::Result;
use scube_data::{ItemId, TransactionDb, VerticalDb};

use crate::itemset::{sort_canonical, FrequentItemset};
use crate::{validate_min_support, Miner};

/// The Eclat miner, parameterized by posting representation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Eclat<P: Posting = EwahBitmap> {
    _marker: PhantomData<P>,
}

impl<P: Posting> Eclat<P> {
    /// Create a miner with the given posting representation.
    pub fn new() -> Self {
        Eclat { _marker: PhantomData }
    }
}

impl<P: Posting> Miner for Eclat<P> {
    fn name(&self) -> &'static str {
        "eclat"
    }

    fn mine(&self, db: &TransactionDb, min_support: u64) -> Result<Vec<FrequentItemset>> {
        validate_min_support(min_support)?;
        let vertical: VerticalDb<P> = VerticalDb::build(db);
        let roots = frequent_roots(&vertical, min_support);
        let mut out = Vec::new();
        let mut prefix: Vec<ItemId> = Vec::new();
        let mut scratch = P::from_sorted(&[]);
        dfs(&roots, min_support, &mut prefix, &mut out, &mut scratch);
        for set in &mut out {
            set.items.sort_unstable();
        }
        sort_canonical(&mut out);
        Ok(out)
    }
}

/// Frequent single items with their postings, ascending support (smaller
/// tidsets first keeps intermediate intersections small).
fn frequent_roots<P: Posting>(vertical: &VerticalDb<P>, min_support: u64) -> Vec<(ItemId, P)> {
    let mut roots: Vec<(ItemId, P)> = (0..vertical.num_items() as ItemId)
        .filter_map(|it| {
            let posting = vertical.posting(it);
            (posting.cardinality() >= min_support).then(|| (it, posting.clone()))
        })
        .collect();
    roots.sort_by_key(|(it, p)| (p.cardinality(), *it));
    roots
}

/// The node body every DFS variant shares: join `tids` against each later
/// candidate, keeping the frequent results. Every intersection lands in the
/// caller-owned `scratch` buffer via the `and_into` kernel, so infrequent
/// candidates — the overwhelming majority deep in the search — cost no
/// allocation at all; only survivors are cloned out. Reserves the worst
/// case up front (no regrowth in the hot loop) but gives sparsely-filled
/// vectors back before they are held across a whole subtree recursion.
fn join_extensions<P: Posting>(
    tids: &P,
    rest: &[(ItemId, P)],
    min_support: u64,
    scratch: &mut P,
) -> Vec<(ItemId, P)> {
    let mut extensions: Vec<(ItemId, P)> = Vec::with_capacity(rest.len());
    for (jt, jtids) in rest {
        tids.and_into(jtids, scratch);
        if scratch.cardinality() >= min_support {
            extensions.push((*jt, scratch.clone()));
        }
    }
    if extensions.len() * 4 <= extensions.capacity() {
        extensions.shrink_to_fit();
    }
    extensions
}

fn dfs<P: Posting>(
    candidates: &[(ItemId, P)],
    min_support: u64,
    prefix: &mut Vec<ItemId>,
    out: &mut Vec<FrequentItemset>,
    scratch: &mut P,
) {
    for (i, (item, tids)) in candidates.iter().enumerate() {
        prefix.push(*item);
        out.push(FrequentItemset { items: prefix.clone(), support: tids.cardinality() });
        let extensions = join_extensions(tids, &candidates[i + 1..], min_support, scratch);
        if !extensions.is_empty() {
            dfs(&extensions, min_support, prefix, out, scratch);
        }
        prefix.pop();
    }
}

/// Eclat that also returns each itemset's tidset — the entry point the cube
/// builder uses, since it needs to partition every tidset by unit.
pub fn mine_with_tidsets<P: Posting>(
    db: &TransactionDb,
    min_support: u64,
) -> Result<Vec<(FrequentItemset, P)>> {
    validate_min_support(min_support)?;
    let vertical: VerticalDb<P> = VerticalDb::build(db);
    mine_vertical_with_tidsets(&vertical, min_support)
}

/// As [`mine_with_tidsets`], over a pre-built vertical database.
pub fn mine_vertical_with_tidsets<P: Posting>(
    vertical: &VerticalDb<P>,
    min_support: u64,
) -> Result<Vec<(FrequentItemset, P)>> {
    validate_min_support(min_support)?;
    let roots = frequent_roots(vertical, min_support);
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    let mut scratch = P::from_sorted(&[]);
    dfs_tids(roots, min_support, &mut prefix, &mut out, &mut scratch);
    canonicalize_tids(&mut out);
    Ok(out)
}

/// As [`mine_vertical_with_tidsets`], restricted to the first-level Eclat
/// equivalence classes rooted at the given `scope` items: enumerates every
/// frequent itemset composed **solely** of scope items, with its tidset.
///
/// This is the promotion step of incremental cube maintenance: after a
/// batch of appended rows, any newly-frequent (or newly-closed) itemset
/// consists entirely of items that occur in the batch, so re-mining only
/// those classes over the updated postings finds every candidate without
/// touching the rest of the search space. Output is in the same canonical
/// order as the full miners; duplicate scope entries are ignored.
pub fn mine_vertical_with_tidsets_scoped<P: Posting>(
    vertical: &VerticalDb<P>,
    min_support: u64,
    scope: &[ItemId],
) -> Result<Vec<(FrequentItemset, P)>> {
    validate_min_support(min_support)?;
    let mut scope: Vec<ItemId> = scope.to_vec();
    scope.sort_unstable();
    scope.dedup();
    let mut roots: Vec<(ItemId, P)> = scope
        .into_iter()
        .filter_map(|it| {
            let posting = vertical.posting(it);
            (posting.cardinality() >= min_support).then(|| (it, posting.clone()))
        })
        .collect();
    roots.sort_by_key(|(it, p)| (p.cardinality(), *it));
    let mut out = Vec::new();
    let mut prefix = Vec::new();
    let mut scratch = P::from_sorted(&[]);
    dfs_tids(roots, min_support, &mut prefix, &mut out, &mut scratch);
    canonicalize_tids(&mut out);
    Ok(out)
}

/// One worker's claimed subtrees: `(root index, subtree output)` pairs.
type SubtreeBatch<P> = Vec<(usize, Vec<(FrequentItemset, P)>)>;

/// As [`mine_vertical_with_tidsets`], with the first-level equivalence
/// classes fanned out over `n_threads` scoped workers.
///
/// Workers claim prefix subtrees dynamically (ascending-support root order
/// gives the small subtrees first, so late claims stay balanced) and the
/// per-subtree outputs are concatenated in root order before the canonical
/// sort — the result is bit-identical to the serial miner.
pub fn mine_vertical_with_tidsets_parallel<P: Posting + Send + Sync>(
    vertical: &VerticalDb<P>,
    min_support: u64,
    n_threads: usize,
) -> Result<Vec<(FrequentItemset, P)>> {
    validate_min_support(min_support)?;
    let roots = frequent_roots(vertical, min_support);
    let n_threads = n_threads.clamp(1, roots.len().max(1));
    if n_threads == 1 {
        return mine_vertical_with_tidsets(vertical, min_support);
    }

    let next = AtomicUsize::new(0);
    let roots = &roots;
    let batches: Vec<SubtreeBatch<P>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    // One join buffer per worker, reused across all its
                    // claimed subtrees.
                    let mut scratch = P::from_sorted(&[]);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= roots.len() {
                            break;
                        }
                        let (item, tids) = &roots[i];
                        let mut out = Vec::new();
                        let mut prefix = vec![*item];
                        out.push((
                            FrequentItemset { items: prefix.clone(), support: tids.cardinality() },
                            tids.clone(),
                        ));
                        let extensions =
                            join_extensions(tids, &roots[i + 1..], min_support, &mut scratch);
                        if !extensions.is_empty() {
                            dfs_tids(extensions, min_support, &mut prefix, &mut out, &mut scratch);
                        }
                        local.push((i, out));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("miner worker panicked")).collect()
    });

    // Deterministic merge: subtree outputs back in root order.
    let mut slots: Vec<Vec<(FrequentItemset, P)>> = Vec::new();
    slots.resize_with(roots.len(), Vec::new);
    for batch in batches {
        for (i, out) in batch {
            slots[i] = out;
        }
    }
    let mut out: Vec<(FrequentItemset, P)> = slots.into_iter().flatten().collect();
    canonicalize_tids(&mut out);
    Ok(out)
}

/// Canonical output form shared by the serial and parallel miners: items
/// ascending within each set, sets sorted by (length, items).
fn canonicalize_tids<P: Posting>(out: &mut [(FrequentItemset, P)]) {
    for (set, _) in out.iter_mut() {
        set.items.sort_unstable();
    }
    out.sort_by(|a, b| {
        a.0.items.len().cmp(&b.0.items.len()).then_with(|| a.0.items.cmp(&b.0.items))
    });
}

fn dfs_tids<P: Posting>(
    mut candidates: Vec<(ItemId, P)>,
    min_support: u64,
    prefix: &mut Vec<ItemId>,
    out: &mut Vec<(FrequentItemset, P)>,
    scratch: &mut P,
) {
    for i in 0..candidates.len() {
        let extensions = {
            let (item, tids) = &candidates[i];
            prefix.push(*item);
            join_extensions(tids, &candidates[i + 1..], min_support, scratch)
        };
        // The node's tidset is done intersecting: move it into the output
        // instead of cloning it, leaving a cheap empty hole behind.
        let tids = std::mem::replace(&mut candidates[i].1, P::full(0));
        out.push((FrequentItemset { items: prefix.clone(), support: tids.cardinality() }, tids));
        if !extensions.is_empty() {
            dfs_tids(extensions, min_support, prefix, out, scratch);
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::db_from_sets;
    use scube_bitmap::{DenseBitmap, TidVec};

    #[test]
    fn matches_naive() {
        let db = db_from_sets(&[&[0, 1, 2], &[0, 1], &[0, 2], &[0], &[1, 2, 3]]);
        for minsup in 1..=3 {
            let got = Eclat::<EwahBitmap>::new().mine(&db, minsup).unwrap();
            let expected = crate::naive::mine(&db, minsup).unwrap();
            assert_eq!(got, expected, "minsup {minsup}");
        }
    }

    #[test]
    fn representations_agree() {
        let db = db_from_sets(&[&[0, 1, 2, 3], &[0, 1], &[1, 2], &[0, 3], &[2, 3]]);
        let e = Eclat::<EwahBitmap>::new().mine(&db, 2).unwrap();
        let d = Eclat::<DenseBitmap>::new().mine(&db, 2).unwrap();
        let t = Eclat::<TidVec>::new().mine(&db, 2).unwrap();
        assert_eq!(e, d);
        assert_eq!(d, t);
    }

    #[test]
    fn tidsets_are_correct() {
        let db = db_from_sets(&[&[0, 1], &[0], &[0, 1], &[1]]);
        let result = mine_with_tidsets::<EwahBitmap>(&db, 1).unwrap();
        for (set, tids) in &result {
            assert_eq!(set.support, tids.cardinality());
            // Verify against a direct scan.
            let mut expected = Vec::new();
            for (t, (items, _)) in db.iter().enumerate() {
                if crate::itemset::is_sorted_subset(&set.items, items) {
                    expected.push(t as u32);
                }
            }
            assert_eq!(tids.to_vec(), expected, "itemset {:?}", set.items);
        }
    }

    #[test]
    fn rejects_zero_min_support() {
        let db = db_from_sets(&[&[0]]);
        assert!(Eclat::<EwahBitmap>::new().mine(&db, 0).is_err());
        assert!(mine_with_tidsets::<EwahBitmap>(&db, 0).is_err());
        let v: VerticalDb<EwahBitmap> = VerticalDb::build(&db);
        assert!(mine_vertical_with_tidsets_parallel(&v, 0, 4).is_err());
    }

    #[test]
    fn scoped_mine_is_the_touched_projection_of_the_full_mine() {
        let db = db_from_sets(&[&[0, 1, 2, 3], &[0, 1], &[1, 2], &[0, 3], &[2, 3], &[0, 1, 2]]);
        let v: VerticalDb<EwahBitmap> = VerticalDb::build(&db);
        for minsup in 1..=3 {
            let full = mine_vertical_with_tidsets(&v, minsup).unwrap();
            for scope in [vec![], vec![1], vec![0, 2], vec![0, 1, 2, 3], vec![3, 3, 0]] {
                let scoped = mine_vertical_with_tidsets_scoped(&v, minsup, &scope).unwrap();
                let expected: Vec<_> = full
                    .iter()
                    .filter(|(set, _)| set.items.iter().all(|it| scope.contains(it)))
                    .cloned()
                    .collect();
                assert_eq!(scoped.len(), expected.len(), "minsup {minsup} scope {scope:?}");
                for ((s_set, s_tids), (e_set, e_tids)) in scoped.iter().zip(&expected) {
                    assert_eq!(s_set, e_set, "minsup {minsup} scope {scope:?}");
                    assert_eq!(s_tids.to_vec(), e_tids.to_vec(), "minsup {minsup}");
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let db = db_from_sets(&[
            &[0, 1, 2, 3],
            &[0, 1],
            &[1, 2],
            &[0, 3],
            &[2, 3],
            &[0, 1, 2],
            &[3],
            &[0, 2, 3],
        ]);
        let v: VerticalDb<EwahBitmap> = VerticalDb::build(&db);
        for minsup in 1..=4 {
            let serial = mine_vertical_with_tidsets(&v, minsup).unwrap();
            for threads in [1, 2, 3, 8, 64] {
                let parallel = mine_vertical_with_tidsets_parallel(&v, minsup, threads).unwrap();
                assert_eq!(serial.len(), parallel.len(), "minsup {minsup} x{threads}");
                for ((s_set, s_tids), (p_set, p_tids)) in serial.iter().zip(&parallel) {
                    assert_eq!(s_set, p_set, "minsup {minsup} x{threads}");
                    assert_eq!(s_tids.to_vec(), p_tids.to_vec(), "minsup {minsup} x{threads}");
                }
            }
        }
    }
}
