//! Property tests: all miners agree with the brute-force oracle (and hence
//! with each other) on random databases, for both all-frequent and closed
//! mining, across tidset representations.

use proptest::prelude::*;
use scube_bitmap::{DenseBitmap, EwahBitmap, TidVec};
use scube_data::{Attribute, Schema, TransactionDb, TransactionDbBuilder};
use scube_fpm::{naive, Apriori, Eclat, FpGrowth, Miner};

fn db_from_sets(sets: &[Vec<u8>]) -> TransactionDb {
    let schema = Schema::new(vec![Attribute::ca("x").multi()]).unwrap();
    let mut b = TransactionDbBuilder::new(schema);
    for set in sets {
        let vals: Vec<String> = set.iter().map(|v| format!("v{v}")).collect();
        b.add_row(&[vals], "u").unwrap();
    }
    b.finish()
}

fn random_db() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::btree_set(0u8..8, 0..6)
            .prop_map(|s| s.into_iter().collect::<Vec<u8>>()),
        0..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_miners_agree_with_oracle(sets in random_db(), minsup in 1u64..5) {
        let db = db_from_sets(&sets);
        let expected = naive::mine(&db, minsup).unwrap();
        let fp = FpGrowth.mine(&db, minsup).unwrap();
        let ec = Eclat::<EwahBitmap>::new().mine(&db, minsup).unwrap();
        let ap = Apriori.mine(&db, minsup).unwrap();
        prop_assert_eq!(&fp, &expected, "fpgrowth");
        prop_assert_eq!(&ec, &expected, "eclat");
        prop_assert_eq!(&ap, &expected, "apriori");
    }

    #[test]
    fn closed_mining_agrees_with_oracle(sets in random_db(), minsup in 1u64..5) {
        let db = db_from_sets(&sets);
        let expected = naive::mine_closed(&db, minsup).unwrap();
        let fp = FpGrowth.mine_closed(&db, minsup).unwrap();
        let ec = Eclat::<EwahBitmap>::new().mine_closed(&db, minsup).unwrap();
        prop_assert_eq!(&fp, &expected);
        prop_assert_eq!(&ec, &expected);
    }

    #[test]
    fn eclat_representation_invariance(sets in random_db(), minsup in 1u64..4) {
        let db = db_from_sets(&sets);
        let e = Eclat::<EwahBitmap>::new().mine(&db, minsup).unwrap();
        let d = Eclat::<DenseBitmap>::new().mine(&db, minsup).unwrap();
        let t = Eclat::<TidVec>::new().mine(&db, minsup).unwrap();
        prop_assert_eq!(&e, &d);
        prop_assert_eq!(&d, &t);
    }

    #[test]
    fn monotonicity_of_min_support(sets in random_db()) {
        // Raising min_support can only shrink the result, and every
        // surviving itemset keeps its exact support value.
        let db = db_from_sets(&sets);
        let low = FpGrowth.mine(&db, 1).unwrap();
        let high = FpGrowth.mine(&db, 3).unwrap();
        prop_assert!(high.len() <= low.len());
        for h in &high {
            prop_assert!(h.support >= 3);
            let in_low = low.iter().find(|l| l.items == h.items);
            prop_assert_eq!(in_low.map(|l| l.support), Some(h.support));
        }
    }

    #[test]
    fn supports_are_exact(sets in random_db(), minsup in 1u64..4) {
        // Verify each reported support against a direct scan.
        let db = db_from_sets(&sets);
        let result = FpGrowth.mine(&db, minsup).unwrap();
        for set in result.iter().take(50) {
            let count = db
                .iter()
                .filter(|(items, _)| scube_fpm::itemset::is_sorted_subset(&set.items, items))
                .count() as u64;
            prop_assert_eq!(count, set.support, "itemset {:?}", &set.items);
        }
    }

    #[test]
    fn closed_is_subset_with_same_maximal_sets(sets in random_db(), minsup in 1u64..4) {
        let db = db_from_sets(&sets);
        let all = FpGrowth.mine(&db, minsup).unwrap();
        let closed = FpGrowth.mine_closed(&db, minsup).unwrap();
        prop_assert!(closed.len() <= all.len());
        // Every closed set is frequent with identical support.
        for c in &closed {
            prop_assert!(all.iter().any(|a| a.items == c.items && a.support == c.support));
        }
        // Every frequent set has a closed superset with equal support.
        for a in &all {
            prop_assert!(
                closed.iter().any(|c| a.support == c.support && a.is_subset_of(c)),
                "no closure found for {:?}",
                &a.items
            );
        }
    }
}
