//! Differential tests pinning every optimized kernel bit-identical to the
//! scalar reference (`scube_bitmap::reference`, plain sorted-vector merges).
//!
//! Covered kernels: the batched k-way AND (`intersect_many` /
//! `intersect_all`), the in-place / buffer-reusing `and_assign` and
//! `and_into`, the word-unrolled EWAH and dense paths (exercised through
//! `and` / `or` / `andnot` / `and_cardinality`), the galloping `TidVec`
//! intersection (skewed generators), and the adaptive representation
//! (checked both for answer equality and for canonical-encoding stability
//! against a from-scratch build — *bit*-identical, not just set-equal).
//!
//! Deterministic edge grids cover empty / full / single-word /
//! word-boundary shapes; proptest generators cover skew-varying random
//! data.

use std::collections::BTreeSet;

use proptest::prelude::*;
use scube_bitmap::reference;
use scube_bitmap::{intersect_all, AdaptivePosting, DenseBitmap, EwahBitmap, Posting, TidVec};

/// Every optimized entry point vs the scalar reference, plus canonical
/// encoding of every result vs a from-scratch build of the reference
/// answer.
fn check_against_reference<P: Posting + PartialEq + std::fmt::Debug>(lists: &[Vec<u32>]) {
    let postings: Vec<P> = lists.iter().map(|ids| P::from_sorted(ids)).collect();
    let refs: Vec<&P> = postings.iter().collect();
    let slices: Vec<&[u32]> = lists.iter().map(|v| v.as_slice()).collect();

    // Batched k-way AND vs scalar pairwise fold.
    let expect = reference::intersect_all_sorted(&slices);
    let got = intersect_all(&refs);
    match (&expect, &got) {
        (None, None) => {}
        (Some(e), Some(g)) => {
            assert_eq!(g.to_vec(), *e, "intersect_all answer");
            encodes_like_scratch(g, e, "intersect_all");
        }
        _ => panic!("intersect_all Some/None mismatch"),
    }

    // Pairwise kernels over every adjacent pair.
    for w in lists.windows(2) {
        let (xs, ys) = (&w[0], &w[1]);
        let px = P::from_sorted(xs);
        let py = P::from_sorted(ys);
        let and = reference::intersect_sorted(xs, ys);

        assert_eq!(px.and(&py).to_vec(), and, "and");
        assert_eq!(px.and_cardinality(&py), and.len() as u64, "and_cardinality");
        assert_eq!(
            px.and_cardinality(&py),
            reference::intersect_cardinality_sorted(xs, ys),
            "and_cardinality vs scalar count"
        );

        let mut out = P::from_sorted(&[9, 100, 110]); // stale state must vanish
        px.and_into(&py, &mut out);
        assert_eq!(out.to_vec(), and, "and_into");
        encodes_like_scratch(&out, &and, "and_into");

        let mut assigned = px.clone();
        assigned.and_assign(&py);
        assert_eq!(assigned.to_vec(), and, "and_assign");
        encodes_like_scratch(&assigned, &and, "and_assign");

        // or / andnot via the BTreeSet model (the unrolled EWAH/dense
        // word paths serve all four ops).
        let sx: BTreeSet<u32> = xs.iter().copied().collect();
        let sy: BTreeSet<u32> = ys.iter().copied().collect();
        let or: Vec<u32> = sx.union(&sy).copied().collect();
        let diff: Vec<u32> = sx.difference(&sy).copied().collect();
        assert_eq!(px.or(&py).to_vec(), or, "or");
        assert_eq!(px.andnot(&py).to_vec(), diff, "andnot");
        encodes_like_scratch(&px.or(&py), &or, "or");
        encodes_like_scratch(&px.andnot(&py), &diff, "andnot");
    }
}

/// The optimized result must serialize byte-identically to a from-scratch
/// build of the reference answer — the bit-identity gate that makes the
/// kernel rewrite risk-free for snapshots.
fn encodes_like_scratch<P: Posting>(got: &P, expect_ids: &[u32], what: &str) {
    let scratch = P::from_sorted(expect_ids);
    let (mut a, mut b) = (Vec::new(), Vec::new());
    got.write_bytes(&mut a);
    scratch.write_bytes(&mut b);
    assert_eq!(a, b, "{what}: encoding differs from from-scratch build");
}

fn check_all_representations(lists: &[Vec<u32>]) {
    check_against_reference::<EwahBitmap>(lists);
    check_against_reference::<DenseBitmap>(lists);
    check_against_reference::<TidVec>(lists);
    check_against_reference::<AdaptivePosting>(lists);
}

#[test]
fn edge_case_grid() {
    let full_word: Vec<u32> = (0..64).collect();
    let three_words: Vec<u32> = (0..192).collect();
    let boundary = vec![62u32, 63, 64, 65, 127, 128, 129];
    let single = vec![64u32];
    let empty: Vec<u32> = vec![];
    let sparse_tail = vec![0u32, 1_000_000, 33_554_431];
    let shapes: &[Vec<u32>] =
        &[empty.clone(), single, full_word, boundary, three_words, sparse_tail];
    // Every ordered pair of shapes, plus a triple including empties.
    for a in shapes {
        for b in shapes {
            check_all_representations(&[a.clone(), b.clone()]);
        }
    }
    check_all_representations(&[]);
    check_all_representations(&[empty.clone(), empty.clone(), empty]);
}

#[test]
fn kway_wide_fanout() {
    // k = 9 postings with controlled overlap: id multiples of 2..=10.
    let lists: Vec<Vec<u32>> =
        (2u32..=10).map(|step| (0..50_000).step_by(step as usize).collect()).collect();
    check_all_representations(&lists);
}

fn sorted_ids(max: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(0..max, 0..max_len)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
}

/// Pairs with wildly different densities: drives galloping (tidvec), the
/// clean-run × literal block paths (EWAH), and cross-variant dispatch
/// (adaptive).
fn skewed_pair() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (sorted_ids(500_000, 20), sorted_ids(500_000, 4_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_pairs_match_reference(xs in sorted_ids(100_000, 600), ys in sorted_ids(100_000, 600)) {
        check_all_representations(&[xs, ys]);
    }

    #[test]
    fn skewed_pairs_match_reference((xs, ys) in skewed_pair()) {
        check_all_representations(&[xs.clone(), ys.clone()]);
        check_all_representations(&[ys, xs]);
    }

    #[test]
    fn random_kway_matches_reference(lists in proptest::collection::vec(sorted_ids(20_000, 400), 0..6)) {
        check_all_representations(&lists);
    }
}
