//! Model-based property tests: every `Posting` implementation must agree
//! with `BTreeSet<u32>` on all operations, and the three implementations
//! must agree with each other.

use std::collections::BTreeSet;

use proptest::prelude::*;
use scube_bitmap::{AdaptivePosting, DenseBitmap, EwahBitmap, Posting, TidVec};

fn sorted_ids(max: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(0..max, 0..max_len)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
}

/// Mixed-density strategy: some dense clusters, some sparse outliers —
/// exercises both run-length and literal EWAH paths.
fn clustered_ids() -> impl Strategy<Value = Vec<u32>> {
    (
        proptest::collection::btree_set(0..500u32, 0..200),
        proptest::collection::btree_set(10_000..11_000u32, 0..50),
        proptest::collection::btree_set(0..2_000_000u32, 0..20),
    )
        .prop_map(|(a, b, c)| {
            let mut s: BTreeSet<u32> = a;
            s.extend(b);
            s.extend(c);
            s.into_iter().collect()
        })
}

fn check_all_ops<P: Posting>(xs: &[u32], ys: &[u32]) {
    let sx: BTreeSet<u32> = xs.iter().copied().collect();
    let sy: BTreeSet<u32> = ys.iter().copied().collect();
    let px = P::from_sorted(xs);
    let py = P::from_sorted(ys);

    assert_eq!(px.cardinality(), sx.len() as u64, "cardinality");
    assert_eq!(px.to_vec(), xs, "roundtrip");

    let and: Vec<u32> = sx.intersection(&sy).copied().collect();
    let or: Vec<u32> = sx.union(&sy).copied().collect();
    let diff: Vec<u32> = sx.difference(&sy).copied().collect();

    assert_eq!(px.and(&py).to_vec(), and, "and");
    assert_eq!(px.or(&py).to_vec(), or, "or");
    assert_eq!(px.andnot(&py).to_vec(), diff, "andnot");
    assert_eq!(px.and_cardinality(&py), and.len() as u64, "and_cardinality");

    // Algebraic laws.
    assert_eq!(px.and(&py).to_vec(), py.and(&px).to_vec(), "and commutes");
    assert_eq!(px.or(&py).to_vec(), py.or(&px).to_vec(), "or commutes");
    assert_eq!(px.andnot(&py).or(&px.and(&py)).to_vec(), xs, "partition law: (x\\y) ∪ (x∩y) = x");

    // Kernel entry points must agree with the materializing `and`.
    let mut out = P::from_sorted(&[]);
    px.and_into(&py, &mut out);
    assert_eq!(out.to_vec(), and, "and_into");
    let mut assigned = px.clone();
    assigned.and_assign(&py);
    assert_eq!(assigned.to_vec(), and, "and_assign");
    let kway = P::intersect_many(&[&px, &py, &px]).expect("non-empty input");
    assert_eq!(kway.to_vec(), and, "intersect_many");

    // Membership.
    for &id in xs.iter().take(20) {
        assert!(px.contains(id), "contains({id})");
    }
    for probe in [0u32, 1, 63, 64, 65, 1_000_003] {
        assert_eq!(px.contains(probe), sx.contains(&probe), "contains probe {probe}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ewah_matches_model(xs in sorted_ids(5_000, 400), ys in sorted_ids(5_000, 400)) {
        check_all_ops::<EwahBitmap>(&xs, &ys);
    }

    #[test]
    fn ewah_matches_model_clustered(xs in clustered_ids(), ys in clustered_ids()) {
        check_all_ops::<EwahBitmap>(&xs, &ys);
    }

    #[test]
    fn dense_matches_model(xs in sorted_ids(5_000, 400), ys in sorted_ids(5_000, 400)) {
        check_all_ops::<DenseBitmap>(&xs, &ys);
    }

    #[test]
    fn tidvec_matches_model(xs in sorted_ids(5_000, 400), ys in sorted_ids(5_000, 400)) {
        check_all_ops::<TidVec>(&xs, &ys);
    }

    #[test]
    fn tidvec_matches_model_skewed(xs in sorted_ids(200_000, 12), ys in sorted_ids(200_000, 3_000)) {
        // Heavy cardinality skew drives the galloping intersection paths.
        check_all_ops::<TidVec>(&xs, &ys);
        check_all_ops::<TidVec>(&ys, &xs);
    }

    #[test]
    fn adaptive_matches_model(xs in sorted_ids(5_000, 400), ys in sorted_ids(5_000, 400)) {
        check_all_ops::<AdaptivePosting>(&xs, &ys);
    }

    #[test]
    fn adaptive_matches_model_clustered(xs in clustered_ids(), ys in clustered_ids()) {
        check_all_ops::<AdaptivePosting>(&xs, &ys);
    }

    #[test]
    fn representations_agree(xs in clustered_ids(), ys in clustered_ids()) {
        let e = EwahBitmap::from_sorted(&xs).and(&EwahBitmap::from_sorted(&ys));
        let d = DenseBitmap::from_sorted(&xs).and(&DenseBitmap::from_sorted(&ys));
        let t = TidVec::from_sorted(&xs).and(&TidVec::from_sorted(&ys));
        let a = AdaptivePosting::from_sorted(&xs).and(&AdaptivePosting::from_sorted(&ys));
        prop_assert_eq!(e.to_vec(), d.to_vec());
        prop_assert_eq!(d.to_vec(), t.to_vec());
        prop_assert_eq!(t.to_vec(), a.to_vec());
    }

    #[test]
    fn ewah_not_upto_model(xs in sorted_ids(2_000, 300), n in 0u64..2_500) {
        let s: BTreeSet<u32> = xs.iter().copied().collect();
        let expected: Vec<u32> = (0..n as u32).filter(|i| !s.contains(i)).collect();
        let got = EwahBitmap::from_sorted(&xs).not_upto(n);
        prop_assert_eq!(got.to_vec(), expected);
    }

    #[test]
    fn ewah_semantic_eq_reflexive(xs in clustered_ids(), ys in clustered_ids()) {
        let a = EwahBitmap::from_sorted(&xs);
        let b = EwahBitmap::from_sorted(&ys);
        prop_assert_eq!(xs == ys, a == b);
        // Bitmaps built through different op paths still compare equal.
        let via_ops = a.andnot(&b).or(&a.and(&b));
        prop_assert_eq!(via_ops, a.clone());
    }

    #[test]
    fn ewah_associativity(
        xs in sorted_ids(3_000, 200),
        ys in sorted_ids(3_000, 200),
        zs in sorted_ids(3_000, 200),
    ) {
        let (a, b, c) = (
            EwahBitmap::from_sorted(&xs),
            EwahBitmap::from_sorted(&ys),
            EwahBitmap::from_sorted(&zs),
        );
        prop_assert_eq!(a.and(&b).and(&c), a.and(&b.and(&c)));
        prop_assert_eq!(a.or(&b).or(&c), a.or(&b.or(&c)));
        // Distributivity: a ∩ (b ∪ c) = (a∩b) ∪ (a∩c)
        prop_assert_eq!(a.and(&b.or(&c)), a.and(&b).or(&a.and(&c)));
    }

    #[test]
    fn ewah_xor_model(xs in sorted_ids(3_000, 200), ys in sorted_ids(3_000, 200)) {
        let sx: BTreeSet<u32> = xs.iter().copied().collect();
        let sy: BTreeSet<u32> = ys.iter().copied().collect();
        let expected: Vec<u32> = sx.symmetric_difference(&sy).copied().collect();
        let got = EwahBitmap::from_sorted(&xs).xor(&EwahBitmap::from_sorted(&ys));
        prop_assert_eq!(got.to_vec(), expected);
    }
}
