//! Scalar reference implementations over sorted id vectors.
//!
//! Every optimized kernel in this crate — the unrolled word loops, the
//! galloping merges, the compressed-stream block paths, the batched k-way
//! AND — is pinned against these deliberately boring linear merges, both by
//! the differential property tests (`tests/kernel_equivalence.rs`) and by
//! the `exp bitmap-kernels` experiment, whose every grid cell is gated on
//! exact equality with this module before a timing is recorded. The
//! reference is also the *old* side of the experiment's old-vs-new ratios:
//! it is precisely the scalar, one-element-at-a-time scan the
//! representations used before the kernel work.

/// Linear-merge intersection of two strictly increasing id slices.
pub fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Cardinality of the intersection, scalar two-pointer scan.
pub fn intersect_cardinality_sorted(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j) = (0, 0);
    let mut n = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Pairwise-fold k-way intersection: each step materializes a fresh vector,
/// exactly like the pre-kernel `intersect_all`.
pub fn intersect_all_sorted(lists: &[&[u32]]) -> Option<Vec<u32>> {
    let (first, rest) = lists.split_first()?;
    let mut acc = first.to_vec();
    for l in rest {
        if acc.is_empty() {
            break;
        }
        acc = intersect_sorted(&acc, l);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_ops() {
        let a = [1u32, 3, 5, 7, 9];
        let b = [3u32, 4, 5, 9, 10];
        assert_eq!(intersect_sorted(&a, &b), vec![3, 5, 9]);
        assert_eq!(intersect_cardinality_sorted(&a, &b), 3);
        assert_eq!(intersect_all_sorted(&[&a, &b, &[5u32, 9]]).unwrap(), vec![5, 9]);
        assert!(intersect_all_sorted(&[]).is_none());
    }
}
