//! Uncompressed bitset over `Vec<u64>`.
//!
//! Used for small, dense universes — per-unit membership masks in the cube
//! builder and the visited sets of graph traversals — and as the dense
//! contender in the tidset-representation ablation (experiment E11).
//! All boolean algebra runs through the unrolled word loops in
//! [`crate::kernels`], including true in-place `and_assign` (the
//! intersection never outgrows `self`'s words) and a non-materializing
//! `and_cardinality`.

use crate::{kernels, EwahBitmap, Posting};
use scube_common::mmap::{ByteRegion, MappedSlice, Store};

/// A plain, zero-extended bitset.
///
/// The word table lives in a [`Store`]: heap-owned normally, borrowed from
/// a mapped snapshot on the [`Posting::map_slot`] path; mutators copy a
/// mapped table onto the heap first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseBitmap {
    words: Store<u64>,
}

impl DenseBitmap {
    /// Empty bitset.
    pub fn new() -> Self {
        DenseBitmap::default()
    }

    /// Empty bitset with room for ids `< nbits` without reallocating.
    pub fn with_capacity(nbits: usize) -> Self {
        DenseBitmap { words: Vec::with_capacity(nbits.div_ceil(64)).into() }
    }

    /// Set bit `id` (grows as needed).
    pub fn insert(&mut self, id: u32) {
        let w = id as usize / 64;
        let words = self.words.vec_mut();
        if w >= words.len() {
            words.resize(w + 1, 0);
        }
        words[w] |= 1 << (id % 64);
    }

    /// Clear bit `id` (no-op when out of range).
    pub fn remove(&mut self, id: u32) {
        let w = id as usize / 64;
        if w < self.words.len() {
            self.words.vec_mut()[w] &= !(1 << (id % 64));
        }
    }

    /// Reset all bits, keeping capacity (workhorse-collection pattern).
    pub fn clear(&mut self) {
        self.words.vec_mut().clear();
    }

    /// Heap bytes used (0 when the words are served from a mapped
    /// snapshot).
    pub fn heap_bytes(&self) -> usize {
        self.words.heap_capacity() * 8
    }

    /// Convert to the compressed representation (bulk block classification,
    /// same canonical stream the word-at-a-time loop produced).
    pub fn to_ewah(&self) -> EwahBitmap {
        let mut a = crate::ewah::Appender::new();
        a.push_words(&self.words);
        a.finish()
    }

    /// Build from a compressed bitmap (bulk word decompression, not
    /// per-bit inserts).
    pub fn from_ewah(e: &EwahBitmap) -> Self {
        DenseBitmap { words: e.to_dense_words().into() }
    }

    /// Wrap raw words, trimming trailing zeros to the canonical form.
    pub(crate) fn from_words(mut words: Vec<u64>) -> Self {
        while words.last() == Some(&0) {
            words.pop();
        }
        DenseBitmap { words: words.into() }
    }

    /// The raw zero-extended words.
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    fn trim(&mut self) {
        if self.words.last() == Some(&0) {
            let words = self.words.vec_mut();
            while words.last() == Some(&0) {
                words.pop();
            }
        }
    }
}

impl Posting for DenseBitmap {
    const SERIAL_TAG: u8 = 2;

    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.words.len() as u32).to_le_bytes());
        for &w in self.words.iter() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn read_bytes(bytes: &[u8]) -> Option<(Self, usize)> {
        let n = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        let end = 4usize.checked_add(n.checked_mul(8)?)?;
        let body = bytes.get(4..end)?;
        let words: Vec<u64> =
            body.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        Some((DenseBitmap { words: words.into() }, end))
    }

    fn write_slot(&self, out: &mut Vec<u8>) {
        // The v4 slot is the bare zero-extended word table.
        for &w in self.words.iter() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn read_slot(bytes: &[u8], card: u64) -> Option<Self> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let words: Vec<u64> =
            bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        // Canonical form stores no trailing zero words, and the directory
        // cardinality must match the set bits.
        if words.last() == Some(&0) || kernels::popcount_words(&words) != card {
            return None;
        }
        Some(DenseBitmap { words: words.into() })
    }

    fn map_slot(region: ByteRegion, _card: u64, universe: u32) -> Option<Self> {
        let words = MappedSlice::<u64>::new(region)?;
        let max_words = u64::from(universe).div_ceil(64);
        if words.len() as u64 > max_words || words.last() == Some(&0) {
            return None;
        }
        // Only the final word can carry bits at or above the bound.
        let tail_bits = u64::from(universe) % 64;
        if tail_bits != 0
            && words.len() as u64 == max_words
            && words.last().is_some_and(|&w| w >> tail_bits != 0)
        {
            return None;
        }
        Some(DenseBitmap { words: words.into() })
    }

    fn full(n: u32) -> Self {
        let nbits = n as usize;
        let mut words = vec![u64::MAX; nbits / 64];
        if !nbits.is_multiple_of(64) {
            words.push((1u64 << (nbits % 64)) - 1);
        }
        DenseBitmap { words: words.into() }
    }

    fn from_sorted(ids: &[u32]) -> Self {
        let mut d = match ids.last() {
            Some(&max) => DenseBitmap::with_capacity(max as usize + 1),
            None => return DenseBitmap::new(),
        };
        let mut prev: Option<u32> = None;
        for &id in ids {
            assert!(prev.is_none_or(|p| id > p), "ids must be strictly increasing");
            prev = Some(id);
            d.insert(id);
        }
        d
    }

    fn append_sorted(&mut self, ids: &[u32]) {
        let mut prev: Option<u32> = None;
        for &id in ids {
            assert!(prev.is_none_or(|p| id > p), "ids must be strictly increasing");
            debug_assert!(!self.contains(id), "appended ids must be new");
            prev = Some(id);
            self.insert(id);
        }
    }

    fn remove_sorted(&mut self, ids: &[u32]) {
        let mut prev: Option<u32> = None;
        for &id in ids {
            assert!(prev.is_none_or(|p| id > p), "ids must be strictly increasing");
            assert!(self.contains(id), "removed ids must all be present");
            prev = Some(id);
            self.remove(id);
        }
        // Word-clears may strand all-zero trailing words; trim them so the
        // encoding matches a from-scratch build of the surviving ids.
        self.trim();
    }

    fn and(&self, other: &Self) -> Self {
        let mut out = DenseBitmap::new();
        self.and_into(other, &mut out);
        out
    }

    fn or(&self, other: &Self) -> Self {
        // No trailing-zero trim needed beyond the inputs': the longer
        // input's tail is copied verbatim, but inputs may carry stranded
        // zero words (via `remove`), so trim like `op` always did.
        let n = self.words.len().max(other.words.len());
        let mut words = vec![0u64; n];
        kernels::map2_into(&self.words, &other.words, &mut words, |a, b| a | b);
        let shared = self.words.len().min(other.words.len());
        let tail = if self.words.len() > shared { &self.words } else { &other.words };
        words[shared..].copy_from_slice(&tail[shared..]);
        DenseBitmap::from_words(words)
    }

    fn andnot(&self, other: &Self) -> Self {
        let mut words = vec![0u64; self.words.len()];
        kernels::map2_into(&self.words, &other.words, &mut words, |a, b| a & !b);
        let shared = self.words.len().min(other.words.len());
        words[shared..].copy_from_slice(&self.words[shared..]);
        DenseBitmap::from_words(words)
    }

    fn and_into(&self, other: &Self, out: &mut Self) {
        let n = self.words.len().min(other.words.len());
        let dst = out.words.vec_mut();
        dst.clear();
        dst.resize(n, 0);
        kernels::map2_into(&self.words, &other.words, dst, |a, b| a & b);
        out.trim();
    }

    fn and_assign(&mut self, other: &Self) {
        let words = self.words.vec_mut();
        words.truncate(other.words.len());
        kernels::map2_in_place(words, &other.words, |a, b| a & b);
        self.trim();
    }

    fn intersect_many(postings: &[&Self]) -> Option<Self> {
        match postings {
            [] => None,
            [one] => Some((*one).clone()),
            _ => {
                // A dense AND costs min(word spans) regardless of how many
                // bits are set, so order by span — computing cardinalities
                // (full popcounts) just to sort would cost as much as the
                // intersections themselves.
                let mut order: Vec<usize> = (0..postings.len()).collect();
                order.sort_by_key(|&i| postings[i].words.len());
                let mut acc = postings[order[0]].clone();
                let mut spare = DenseBitmap::new();
                for &i in &order[1..] {
                    if acc.is_empty() {
                        break;
                    }
                    acc.and_into(postings[i], &mut spare);
                    std::mem::swap(&mut acc, &mut spare);
                }
                Some(acc)
            }
        }
    }

    fn cardinality(&self) -> u64 {
        kernels::popcount_words(&self.words)
    }

    fn for_each(&self, mut f: impl FnMut(u32)) {
        for (i, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let tz = w.trailing_zeros();
                f((i * 64) as u32 + tz);
                w &= w - 1;
            }
        }
    }

    fn and_cardinality(&self, other: &Self) -> u64 {
        kernels::and_popcount_words(&self.words, &other.words)
    }

    fn contains(&self, id: u32) -> bool {
        self.words.get(id as usize / 64).is_some_and(|w| w & (1 << (id % 64)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut d = DenseBitmap::new();
        d.insert(0);
        d.insert(63);
        d.insert(64);
        assert!(d.contains(0) && d.contains(63) && d.contains(64));
        assert!(!d.contains(1) && !d.contains(65) && !d.contains(10_000));
        assert_eq!(d.cardinality(), 3);
    }

    #[test]
    fn remove_bit() {
        let mut d = DenseBitmap::from_sorted(&[1, 2, 3]);
        d.remove(2);
        assert_eq!(d.to_vec(), vec![1, 3]);
        d.remove(100); // out of range: no-op
        assert_eq!(d.cardinality(), 2);
    }

    #[test]
    fn ops_match_sets() {
        let a = DenseBitmap::from_sorted(&[1, 2, 3, 200]);
        let b = DenseBitmap::from_sorted(&[2, 200, 300]);
        assert_eq!(a.and(&b).to_vec(), vec![2, 200]);
        assert_eq!(a.or(&b).to_vec(), vec![1, 2, 3, 200, 300]);
        assert_eq!(a.andnot(&b).to_vec(), vec![1, 3]);
        assert_eq!(a.and_cardinality(&b), 2);
    }

    #[test]
    fn trailing_zero_words_trimmed_by_ops() {
        let a = DenseBitmap::from_sorted(&[1, 1000]);
        let b = DenseBitmap::from_sorted(&[1]);
        let r = a.and(&b);
        assert_eq!(r.to_vec(), vec![1]);
        assert!(r.words.len() <= 1);
    }

    #[test]
    fn ewah_roundtrip() {
        let ids = vec![0u32, 5, 64, 1000, 100_000];
        let d = DenseBitmap::from_sorted(&ids);
        let e = d.to_ewah();
        assert_eq!(e.to_vec(), ids);
        assert_eq!(DenseBitmap::from_ewah(&e), d);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut d = DenseBitmap::from_sorted(&[100_000]);
        let cap = d.heap_bytes();
        d.clear();
        assert_eq!(d.cardinality(), 0);
        assert_eq!(d.heap_bytes(), cap);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_panics() {
        DenseBitmap::from_sorted(&[2, 1]);
    }
}
