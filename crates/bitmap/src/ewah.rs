//! 64-bit EWAH (Enhanced Word-Aligned Hybrid) compressed bitmap.
//!
//! Layout follows JavaEWAH: the bitmap is a sequence of 64-bit words.
//! A *marker* word encodes a run of "clean" words (all-zero or all-one)
//! followed by a count of verbatim "literal" words:
//!
//! ```text
//! bit 0        : value of the clean run (0 or 1)
//! bits 1..=32  : number of clean words (RUN_MAX = 2^32 - 1)
//! bits 33..=63 : number of literal words that follow (LIT_MAX = 2^31 - 1)
//! ```
//!
//! Bitmaps are logically infinite and zero-extended, so trailing zero runs
//! are never stored. Binary operations merge the two compressed streams in
//! `O(stored words)` without decompressing to a dense form.

use crate::Posting;
use scube_common::mmap::{ByteRegion, MappedSlice, Store};

const RUN_MAX: u64 = (1 << 32) - 1;
const LIT_MAX: u64 = (1 << 31) - 1;

#[inline]
fn encode_marker(ones: bool, run: u64, lit: u64) -> u64 {
    debug_assert!(run <= RUN_MAX && lit <= LIT_MAX);
    (ones as u64) | (run << 1) | (lit << 33)
}

#[inline]
fn decode_marker(m: u64) -> (bool, u64, u64) {
    (m & 1 == 1, (m >> 1) & RUN_MAX, (m >> 33) & LIT_MAX)
}

/// An EWAH-compressed bitmap over `u32` ids.
///
/// The word stream lives in a [`Store`]: heap-owned on the build and
/// update paths, borrowed straight from a mapped snapshot on the
/// [`Posting::map_slot`] path. All kernels read through `&[u64]`, so they
/// cannot tell the difference.
#[derive(Debug, Clone, Default)]
pub struct EwahBitmap {
    words: Store<u64>,
    card: u64,
}

/// One decoded segment of the compressed stream.
#[derive(Debug, Clone, Copy)]
enum Seg<'a> {
    /// `nwords` words all equal to 0 or to `u64::MAX`.
    Clean { ones: bool, nwords: u64 },
    /// Verbatim words.
    Lit(&'a [u64]),
}

/// Iterator over the segments of a compressed stream.
struct RawSegs<'a> {
    words: &'a [u64],
    pos: usize,
    pending_lit: Option<(usize, usize)>,
}

impl<'a> RawSegs<'a> {
    fn new(words: &'a [u64]) -> Self {
        RawSegs { words, pos: 0, pending_lit: None }
    }
}

impl<'a> Iterator for RawSegs<'a> {
    type Item = Seg<'a>;

    fn next(&mut self) -> Option<Seg<'a>> {
        if let Some((start, len)) = self.pending_lit.take() {
            return Some(Seg::Lit(&self.words[start..start + len]));
        }
        while self.pos < self.words.len() {
            let (ones, run, lit) = decode_marker(self.words[self.pos]);
            let lit_start = self.pos + 1;
            self.pos = lit_start + lit as usize;
            debug_assert!(self.pos <= self.words.len(), "corrupt EWAH stream");
            if run > 0 {
                if lit > 0 {
                    self.pending_lit = Some((lit_start, lit as usize));
                }
                return Some(Seg::Clean { ones, nwords: run });
            }
            if lit > 0 {
                return Some(Seg::Lit(&self.words[lit_start..lit_start + lit as usize]));
            }
            // Empty marker (can occur at the start of an empty bitmap).
        }
        None
    }
}

/// Word-granular cursor over a compressed stream, zero-extended at the end.
struct Cursor<'a> {
    segs: RawSegs<'a>,
    cur: Cur<'a>,
}

#[derive(Debug, Clone, Copy)]
enum Cur<'a> {
    Clean { ones: bool, left: u64 },
    Lit { words: &'a [u64], i: usize },
    End,
}

impl<'a> Cursor<'a> {
    fn new(bitmap: &'a EwahBitmap) -> Self {
        let mut c = Cursor { segs: RawSegs::new(&bitmap.words), cur: Cur::End };
        c.bump();
        c
    }

    fn bump(&mut self) {
        self.cur = match self.segs.next() {
            Some(Seg::Clean { ones, nwords }) => Cur::Clean { ones, left: nwords },
            Some(Seg::Lit(words)) => Cur::Lit { words, i: 0 },
            None => Cur::End,
        };
    }

    fn is_end(&self) -> bool {
        matches!(self.cur, Cur::End)
    }

    /// Consume and return the next word, or `None` past the stored end.
    fn next_word(&mut self) -> Option<u64> {
        match &mut self.cur {
            Cur::Clean { ones, left } => {
                let w = if *ones { u64::MAX } else { 0 };
                *left -= 1;
                if *left == 0 {
                    self.bump();
                }
                Some(w)
            }
            Cur::Lit { words, i } => {
                let w = words[*i];
                *i += 1;
                if *i == words.len() {
                    self.bump();
                }
                Some(w)
            }
            Cur::End => None,
        }
    }

    /// If positioned on a clean segment, report `(ones, remaining_words)`.
    fn peek_clean(&self) -> Option<(bool, u64)> {
        match self.cur {
            Cur::Clean { ones, left } => Some((ones, left)),
            _ => None,
        }
    }

    /// Consume `n` words from the current clean segment (`n` ≤ remaining).
    fn consume_clean(&mut self, n: u64) {
        match &mut self.cur {
            Cur::Clean { left, .. } => {
                debug_assert!(n <= *left);
                *left -= n;
                if *left == 0 {
                    self.bump();
                }
            }
            _ => unreachable!("consume_clean on non-clean cursor"),
        }
    }

    /// If positioned on a literal segment, borrow its remaining words.
    ///
    /// The slice borrows the *bitmap* (lifetime `'a`), not the cursor, so
    /// callers can keep it across a later [`Cursor::consume_lit`] — that is
    /// what lets the merge hand whole literal blocks to the word kernels.
    fn peek_lit(&self) -> Option<&'a [u64]> {
        match self.cur {
            Cur::Lit { words, i } => Some(&words[i..]),
            _ => None,
        }
    }

    /// Consume `n` words from the current literal segment (`n` ≤ remaining).
    fn consume_lit(&mut self, n: usize) {
        match &mut self.cur {
            Cur::Lit { words, i } => {
                debug_assert!(*i + n <= words.len());
                *i += n;
                if *i == words.len() {
                    self.bump();
                }
            }
            _ => unreachable!("consume_lit on non-literal cursor"),
        }
    }
}

/// Builds an EWAH stream from a sequence of words, run-compressing on the fly.
#[derive(Debug)]
pub struct Appender {
    words: Vec<u64>,
    marker_pos: usize,
    run_bit: bool,
    run_len: u64,
    lit_cnt: u64,
    card: u64,
}

impl Default for Appender {
    fn default() -> Self {
        Self::new()
    }
}

impl Appender {
    /// Start an empty stream.
    pub fn new() -> Self {
        Self::with_buffer(Vec::new())
    }

    /// Start an empty stream that reuses `buf`'s allocation (cleared
    /// first). This is what makes the batched k-way AND allocation-free:
    /// the ping-pong accumulators hand their buffers back and forth
    /// instead of allocating a fresh word vector per step.
    pub fn with_buffer(mut buf: Vec<u64>) -> Self {
        buf.clear();
        buf.push(0);
        Appender { words: buf, marker_pos: 0, run_bit: false, run_len: 0, lit_cnt: 0, card: 0 }
    }

    fn seal_marker(&mut self) {
        self.words[self.marker_pos] = encode_marker(self.run_bit, self.run_len, self.lit_cnt);
    }

    fn new_marker(&mut self) {
        self.seal_marker();
        self.marker_pos = self.words.len();
        self.words.push(0);
        self.run_bit = false;
        self.run_len = 0;
        self.lit_cnt = 0;
    }

    /// Append `n` clean words of the given value.
    pub fn push_clean(&mut self, ones: bool, mut n: u64) {
        if ones {
            self.card += 64 * n;
        }
        while n > 0 {
            if self.lit_cnt > 0
                || (self.run_len > 0 && self.run_bit != ones)
                || self.run_len == RUN_MAX
            {
                self.new_marker();
            }
            if self.run_len == 0 {
                self.run_bit = ones;
            }
            let take = n.min(RUN_MAX - self.run_len);
            self.run_len += take;
            n -= take;
        }
    }

    /// Append one word, auto-compressing all-zero / all-one words.
    pub fn push_word(&mut self, w: u64) {
        if w == 0 {
            self.push_clean(false, 1);
        } else if w == u64::MAX {
            self.push_clean(true, 1);
        } else {
            self.card += u64::from(w.count_ones());
            if self.lit_cnt == LIT_MAX {
                self.new_marker();
            }
            self.lit_cnt += 1;
            self.words.push(w);
        }
    }

    /// Append a block of words, classifying clean runs and literal
    /// stretches in bulk. Produces the exact marker/word stream a
    /// word-at-a-time [`Appender::push_word`] loop would — the canonical
    /// encoding is a pure function of the pushed bits, which is what keeps
    /// block-built bitmaps byte-identical to scalar-built ones — but feeds
    /// literal stretches through `extend_from_slice` plus one unrolled
    /// popcount instead of a branch per word.
    pub fn push_words(&mut self, words: &[u64]) {
        let mut i = 0;
        while i < words.len() {
            let w = words[i];
            if w == 0 || w == u64::MAX {
                let mut j = i + 1;
                while j < words.len() && words[j] == w {
                    j += 1;
                }
                self.push_clean(w == u64::MAX, (j - i) as u64);
                i = j;
            } else {
                let mut j = i + 1;
                while j < words.len() && words[j] != 0 && words[j] != u64::MAX {
                    j += 1;
                }
                self.push_literals(&words[i..j]);
                i = j;
            }
        }
    }

    /// Append literal (dirty) words; none may be all-zero or all-one.
    fn push_literals(&mut self, mut lits: &[u64]) {
        debug_assert!(lits.iter().all(|&w| w != 0 && w != u64::MAX));
        while !lits.is_empty() {
            if self.lit_cnt == LIT_MAX {
                self.new_marker();
            }
            let take = ((LIT_MAX - self.lit_cnt) as usize).min(lits.len());
            self.lit_cnt += take as u64;
            self.words.extend_from_slice(&lits[..take]);
            self.card += crate::kernels::popcount_words(&lits[..take]);
            lits = &lits[take..];
        }
    }

    /// Finish the stream, trimming any trailing zero run (bitmaps are
    /// implicitly zero-extended, so trailing zeros carry no information).
    pub fn finish(mut self) -> EwahBitmap {
        if self.lit_cnt == 0 && !self.run_bit {
            self.run_len = 0;
        }
        self.seal_marker();
        if self.marker_pos > 0 && self.words[self.marker_pos] == 0 {
            self.words.pop();
        }
        EwahBitmap { words: self.words.into(), card: self.card }
    }
}

impl EwahBitmap {
    /// The empty bitmap.
    pub fn new() -> Self {
        EwahBitmap::default()
    }

    /// Number of stored 64-bit words (compression diagnostics).
    pub fn stored_words(&self) -> usize {
        self.words.len()
    }

    /// Heap bytes used by the compressed representation (0 when the words
    /// are served from a mapped snapshot).
    pub fn heap_bytes(&self) -> usize {
        self.words.heap_capacity() * 8
    }

    /// Iterate set-bit positions in increasing order.
    pub fn iter(&self) -> SetBits<'_> {
        SetBits { segs: RawSegs::new(&self.words), word_index: 0, state: SetBitsState::NeedSeg }
    }

    /// Complement within the universe `[0, nbits)`.
    #[must_use]
    pub fn not_upto(&self, nbits: u64) -> EwahBitmap {
        let full_words = nbits / 64;
        let rem_bits = (nbits % 64) as u32;
        let mut cur = Cursor::new(self);
        let mut out = Appender::new();
        let mut done = 0u64;
        while done < full_words {
            match cur.peek_clean() {
                Some((ones, left)) => {
                    let n = left.min(full_words - done);
                    out.push_clean(!ones, n);
                    cur.consume_clean(n);
                    done += n;
                }
                None => {
                    let w = cur.next_word().unwrap_or(0);
                    out.push_word(!w);
                    done += 1;
                }
            }
        }
        if rem_bits > 0 {
            let w = cur.next_word().unwrap_or(0);
            let mask = (1u64 << rem_bits) - 1;
            out.push_word(!w & mask);
        }
        out.finish()
    }

    fn binary_op(&self, other: &EwahBitmap, op: BinOp) -> EwahBitmap {
        self.binary_op_with_buffer(other, op, Vec::new())
    }

    /// The compressed-stream merge, writing into a reused word buffer.
    ///
    /// Unlike the classic word-at-a-time merge, segments are consumed in
    /// *blocks*: clean×clean runs emit one clean run (as before), a clean
    /// run meeting a literal block resolves the whole overlap at once
    /// (copy / zero-run / unrolled NOT, depending on the op), and two
    /// literal blocks run through the unrolled word kernels in
    /// [`crate::kernels`] via a stack chunk. The [`Appender`] re-compresses
    /// greedily either way, so the output stream is bit-identical to the
    /// scalar merge's.
    fn binary_op_with_buffer(&self, other: &EwahBitmap, op: BinOp, buf: Vec<u64>) -> EwahBitmap {
        let mut a = Cursor::new(self);
        let mut b = Cursor::new(other);
        let mut out = Appender::with_buffer(buf);
        let mut block = [0u64; OP_BLOCK];
        loop {
            if a.is_end() && b.is_end() {
                break;
            }
            if a.is_end() || b.is_end() {
                // Zero-extended tail: the op degenerates per side.
                match op {
                    BinOp::And => break, // x AND 0 = 0
                    BinOp::AndNot => {
                        if a.is_end() {
                            break; // 0 \ x = 0
                        }
                        copy_rest(&mut a, &mut out); // x \ 0 = x
                        break;
                    }
                    BinOp::Or | BinOp::Xor => {
                        let rest = if a.is_end() { &mut b } else { &mut a };
                        copy_rest(rest, &mut out);
                        break;
                    }
                }
            }
            match (a.peek_clean(), b.peek_clean()) {
                (Some((oa, la)), Some((ob, lb))) => {
                    let n = la.min(lb);
                    let ones = match op {
                        BinOp::And => oa && ob,
                        BinOp::Or => oa || ob,
                        BinOp::AndNot => oa && !ob,
                        BinOp::Xor => oa != ob,
                    };
                    out.push_clean(ones, n);
                    a.consume_clean(n);
                    b.consume_clean(n);
                }
                (Some((oa, la)), None) => {
                    let lit = b.peek_lit().expect("not end, not clean");
                    let n = la.min(lit.len() as u64) as usize;
                    let lit = &lit[..n];
                    match (op, oa) {
                        (BinOp::And, true) | (BinOp::Or, false) | (BinOp::Xor, false) => {
                            out.push_words(lit)
                        }
                        (BinOp::And, false) | (BinOp::AndNot, false) => {
                            out.push_clean(false, n as u64)
                        }
                        (BinOp::Or, true) => out.push_clean(true, n as u64),
                        (BinOp::AndNot, true) | (BinOp::Xor, true) => {
                            push_not_words(&mut out, lit, &mut block)
                        }
                    }
                    a.consume_clean(n as u64);
                    b.consume_lit(n);
                }
                (None, Some((ob, lb))) => {
                    let lit = a.peek_lit().expect("not end, not clean");
                    let n = lb.min(lit.len() as u64) as usize;
                    let lit = &lit[..n];
                    match (op, ob) {
                        (BinOp::And, true)
                        | (BinOp::Or, false)
                        | (BinOp::AndNot, false)
                        | (BinOp::Xor, false) => out.push_words(lit),
                        (BinOp::And, false) | (BinOp::AndNot, true) => {
                            out.push_clean(false, n as u64)
                        }
                        (BinOp::Or, true) => out.push_clean(true, n as u64),
                        (BinOp::Xor, true) => push_not_words(&mut out, lit, &mut block),
                    }
                    a.consume_lit(n);
                    b.consume_clean(n as u64);
                }
                (None, None) => {
                    let wa = a.peek_lit().expect("not end, not clean");
                    let wb = b.peek_lit().expect("not end, not clean");
                    let n = wa.len().min(wb.len());
                    let mut i = 0;
                    while i < n {
                        let k = OP_BLOCK.min(n - i);
                        let dst = &mut block[..k];
                        let (xa, xb) = (&wa[i..i + k], &wb[i..i + k]);
                        match op {
                            BinOp::And => crate::kernels::map2_into(xa, xb, dst, |x, y| x & y),
                            BinOp::Or => crate::kernels::map2_into(xa, xb, dst, |x, y| x | y),
                            BinOp::AndNot => crate::kernels::map2_into(xa, xb, dst, |x, y| x & !y),
                            BinOp::Xor => crate::kernels::map2_into(xa, xb, dst, |x, y| x ^ y),
                        }
                        out.push_words(dst);
                        i += k;
                    }
                    a.consume_lit(n);
                    b.consume_lit(n);
                }
            }
        }
        out.finish()
    }

    /// Symmetric difference.
    #[must_use]
    pub fn xor(&self, other: &EwahBitmap) -> EwahBitmap {
        self.binary_op(other, BinOp::Xor)
    }

    /// Decompress into plain zero-extended words (no trailing zero words):
    /// bulk `copy_from_slice` / fill per segment, not a per-bit walk.
    pub(crate) fn to_dense_words(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for seg in RawSegs::new(&self.words) {
            match seg {
                Seg::Clean { ones, nwords } => {
                    let v = if ones { u64::MAX } else { 0 };
                    out.resize(out.len() + nwords as usize, v);
                }
                Seg::Lit(words) => out.extend_from_slice(words),
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Largest id in the set, or `None` when empty. One pass over the
    /// compressed segments (no decompression).
    pub(crate) fn max_id(&self) -> Option<u32> {
        let mut word_index = 0u64;
        let mut max: Option<u64> = None;
        for seg in RawSegs::new(&self.words) {
            match seg {
                Seg::Clean { ones, nwords } => {
                    if ones {
                        max = Some((word_index + nwords) * 64 - 1);
                    }
                    word_index += nwords;
                }
                Seg::Lit(words) => {
                    for (i, &w) in words.iter().enumerate() {
                        if w != 0 {
                            let wi = word_index + i as u64;
                            max = Some(wi * 64 + 63 - u64::from(w.leading_zeros()));
                        }
                    }
                    word_index += words.len() as u64;
                }
            }
        }
        max.map(|m| m as u32)
    }

    /// Intersection cardinality against a plain zero-extended word array,
    /// streaming over the compressed segments (the mixed EWAH×dense kernel
    /// of [`crate::AdaptivePosting`]).
    pub(crate) fn and_cardinality_words(&self, words: &[u64]) -> u64 {
        let mut wi = 0usize;
        let mut count = 0u64;
        for seg in RawSegs::new(&self.words) {
            if wi >= words.len() {
                break;
            }
            match seg {
                Seg::Clean { ones, nwords } => {
                    if ones {
                        let n = (nwords as usize).min(words.len() - wi);
                        count += crate::kernels::popcount_words(&words[wi..wi + n]);
                    }
                    wi += nwords as usize;
                }
                Seg::Lit(lw) => {
                    let n = lw.len().min(words.len() - wi);
                    count += crate::kernels::and_popcount_words(&lw[..n], &words[wi..wi + n]);
                    wi += lw.len();
                }
            }
        }
        count
    }

    /// Filter a strictly increasing id slice by membership in this bitmap:
    /// ids for which `contains` is `keep` survive, in one streaming pass
    /// over the compressed segments (the mixed tidvec×EWAH kernel of
    /// [`crate::AdaptivePosting`]).
    pub(crate) fn filter_sorted_ids(&self, ids: &[u32], keep: bool) -> Vec<u32> {
        let mut out = Vec::new();
        let mut i = 0;
        let mut word_index = 0u64;
        for seg in RawSegs::new(&self.words) {
            if i == ids.len() {
                break;
            }
            let nwords = match seg {
                Seg::Clean { nwords, .. } => nwords,
                Seg::Lit(words) => words.len() as u64,
            };
            let end_bit = (word_index + nwords) * 64;
            match seg {
                Seg::Clean { ones, .. } => {
                    if ones == keep {
                        while i < ids.len() && u64::from(ids[i]) < end_bit {
                            out.push(ids[i]);
                            i += 1;
                        }
                    } else {
                        while i < ids.len() && u64::from(ids[i]) < end_bit {
                            i += 1;
                        }
                    }
                }
                Seg::Lit(words) => {
                    while i < ids.len() && u64::from(ids[i]) < end_bit {
                        let id = u64::from(ids[i]);
                        let w = words[((id / 64) - word_index) as usize];
                        if (w >> (id % 64)) & 1 == u64::from(keep) {
                            out.push(ids[i]);
                        }
                        i += 1;
                    }
                }
            }
            word_index += nwords;
        }
        // Ids past the stored end read as 0, so they survive iff filtering
        // for absence.
        if !keep {
            out.extend_from_slice(&ids[i..]);
        }
        out
    }
}

#[derive(Debug, Clone, Copy)]
enum BinOp {
    And,
    Or,
    AndNot,
    Xor,
}

/// Stack chunk (in words) for literal-block op results: 1 KiB, enough to
/// amortize loop overhead while staying cache- and stack-friendly.
const OP_BLOCK: usize = 128;

fn copy_rest(cur: &mut Cursor<'_>, out: &mut Appender) {
    loop {
        match cur.peek_clean() {
            Some((ones, left)) => {
                out.push_clean(ones, left);
                cur.consume_clean(left);
            }
            None => match cur.peek_lit() {
                Some(lit) => {
                    let n = lit.len();
                    out.push_words(lit);
                    cur.consume_lit(n);
                }
                None => break,
            },
        }
    }
}

/// Push `!lit` through a stack chunk (ones-run meeting a literal block
/// under AND-NOT / XOR).
fn push_not_words(out: &mut Appender, lit: &[u64], block: &mut [u64; OP_BLOCK]) {
    let mut i = 0;
    while i < lit.len() {
        let k = OP_BLOCK.min(lit.len() - i);
        crate::kernels::not_words_into(&lit[i..i + k], &mut block[..k]);
        out.push_words(&block[..k]);
        i += k;
    }
}

/// Walk a compressed stream and return its cardinality, or `None` when the
/// marker structure is inconsistent with the word count (corrupt input).
fn validate_stream(words: &[u64]) -> Option<u64> {
    let mut pos = 0usize;
    let mut card = 0u64;
    while pos < words.len() {
        let (ones, run, lit) = decode_marker(words[pos]);
        if ones {
            card = card.checked_add(64u64.checked_mul(run)?)?;
        }
        let lit_start = pos + 1;
        let lit_end = lit_start.checked_add(lit as usize)?;
        if lit_end > words.len() {
            return None;
        }
        for &w in &words[lit_start..lit_end] {
            card += u64::from(w.count_ones());
        }
        pos = lit_end;
    }
    Some(card)
}

/// Which kind of segment covers the last represented word of a stream —
/// the only word that may carry bits at or above the universe bound.
enum LastSeg {
    Clean(bool),
    /// Index of the final literal word in the stream.
    Lit(usize),
}

/// Structure-only walk for the mapped path: verify the marker chain tiles
/// the buffer exactly and that no represented bit can be `>= universe`,
/// without reading any literal word except (possibly) the final one — the
/// cost is proportional to the number of markers, not the data, which is
/// what keeps `open_mmap` O(ms) on multi-GB snapshots.
fn validate_stream_structure(words: &[u64], universe: u32) -> bool {
    let max_words = u64::from(universe).div_ceil(64);
    let mut pos = 0usize;
    let mut span = 0u64; // words represented so far
    let mut last: Option<LastSeg> = None;
    while pos < words.len() {
        let (ones, run, lit) = decode_marker(words[pos]);
        let lit_start = pos + 1;
        let Some(lit_end) = lit_start.checked_add(lit as usize) else { return false };
        if lit_end > words.len() {
            return false;
        }
        let Some(s) = span.checked_add(run).and_then(|s| s.checked_add(lit)) else {
            return false;
        };
        span = s;
        if run > 0 {
            last = Some(LastSeg::Clean(ones));
        }
        if lit > 0 {
            last = Some(LastSeg::Lit(lit_end - 1));
        }
        pos = lit_end;
    }
    if span > max_words {
        return false;
    }
    // Words before the last one only hold bits < 64·(max_words - 1) ≤
    // universe, so a single check of the segment covering the final word
    // bounds every id the stream can produce.
    let tail_bits = u64::from(universe) % 64;
    if span == max_words && tail_bits != 0 {
        match last {
            Some(LastSeg::Clean(true)) => return false, // ones at/above the bound
            Some(LastSeg::Lit(i)) if words[i] >> tail_bits != 0 => return false,
            _ => {}
        }
    }
    true
}

impl Posting for EwahBitmap {
    const SERIAL_TAG: u8 = 1;

    fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.card.to_le_bytes());
        out.extend_from_slice(&(self.words.len() as u32).to_le_bytes());
        for &w in self.words.iter() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn read_bytes(bytes: &[u8]) -> Option<(Self, usize)> {
        let card = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
        let n = u32::from_le_bytes(bytes.get(8..12)?.try_into().ok()?) as usize;
        let end = 12usize.checked_add(n.checked_mul(8)?)?;
        let body = bytes.get(12..end)?;
        let words: Vec<u64> =
            body.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        // Reject streams whose markers overrun the buffer or whose declared
        // cardinality disagrees with the words (bit flips, truncation).
        if validate_stream(&words)? != card {
            return None;
        }
        Some((EwahBitmap { words: words.into(), card }, end))
    }

    fn write_slot(&self, out: &mut Vec<u8>) {
        // The v4 slot is the bare word stream: cardinality and length live
        // in the snapshot's checksummed posting directory.
        for &w in self.words.iter() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn read_slot(bytes: &[u8], card: u64) -> Option<Self> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let words: Vec<u64> =
            bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        if validate_stream(&words)? != card {
            return None;
        }
        Some(EwahBitmap { words: words.into(), card })
    }

    fn map_slot(region: ByteRegion, card: u64, universe: u32) -> Option<Self> {
        let words = MappedSlice::<u64>::new(region)?;
        if !validate_stream_structure(&words, universe) {
            return None;
        }
        Some(EwahBitmap { words: words.into(), card })
    }

    fn full(n: u32) -> Self {
        let nbits = u64::from(n);
        let mut a = Appender::new();
        a.push_clean(true, nbits / 64);
        if nbits % 64 != 0 {
            a.push_word((1u64 << (nbits % 64)) - 1);
        }
        a.finish()
    }

    fn from_sorted(ids: &[u32]) -> Self {
        let mut out = Appender::new();
        let mut cur_word_idx = 0u64;
        let mut cur_word = 0u64;
        let mut prev: Option<u32> = None;
        for &id in ids {
            assert!(prev.is_none_or(|p| id > p), "ids must be strictly increasing");
            prev = Some(id);
            let w = u64::from(id) / 64;
            let bit = u64::from(id) % 64;
            if w != cur_word_idx {
                out.push_word(cur_word);
                out.push_clean(false, w - cur_word_idx - 1);
                cur_word_idx = w;
                cur_word = 0;
            }
            cur_word |= 1u64 << bit;
        }
        if cur_word != 0 {
            out.push_word(cur_word);
        }
        out.finish()
    }

    fn append_sorted(&mut self, ids: &[u32]) {
        if ids.is_empty() {
            return;
        }
        // Merging the two compressed streams is O(stored words) without
        // decompressing anything, and the Appender re-compresses greedily,
        // so the result is the same canonical word stream `from_sorted`
        // would build from the concatenated id list — byte-identical
        // snapshots do not depend on the construction path.
        *self = self.or(&EwahBitmap::from_sorted(ids));
    }

    fn remove_sorted(&mut self, ids: &[u32]) {
        if ids.is_empty() {
            return;
        }
        let removal = EwahBitmap::from_sorted(ids);
        // A real assert (not debug-only): the check is one streaming pass
        // over the compressed words, and silently dropping an absent id
        // would desynchronize the caller's histograms from the postings in
        // release builds — matching Dense/TidVec, which always panic.
        assert_eq!(self.and_cardinality(&removal), removal.card, "removed ids must all be present");
        // Stream difference: both compressed streams merge word by word
        // without decompressing, and the Appender re-compresses greedily,
        // so the result is the same canonical word stream `from_sorted`
        // would build from the surviving ids — byte-identical snapshots do
        // not depend on the construction path.
        *self = self.binary_op(&removal, BinOp::AndNot);
    }

    fn and(&self, other: &Self) -> Self {
        self.binary_op(other, BinOp::And)
    }

    fn or(&self, other: &Self) -> Self {
        self.binary_op(other, BinOp::Or)
    }

    fn andnot(&self, other: &Self) -> Self {
        self.binary_op(other, BinOp::AndNot)
    }

    fn cardinality(&self) -> u64 {
        self.card
    }

    fn for_each(&self, mut f: impl FnMut(u32)) {
        for id in self.iter() {
            f(id);
        }
    }

    fn and_into(&self, other: &Self, out: &mut Self) {
        // Reuse `out`'s word buffer for the merge output; this plus the
        // trait's ping-pong `intersect_many` default is the allocation-free
        // k-way path for EWAH (the intersection of compressed streams can
        // outgrow either input's storage, so true in-place is not possible,
        // but buffer recycling gets the same steady-state behavior).
        let buf = out.words.take_vec();
        *out = self.binary_op_with_buffer(other, BinOp::And, buf);
    }

    fn and_cardinality(&self, other: &Self) -> u64 {
        // Streaming count: like binary_op(And) but without building output.
        // Clean runs annihilate (zeros) or popcount the other side's
        // literal block wholesale (ones); literal×literal blocks run
        // through the unrolled fused AND-popcount kernel.
        let mut a = Cursor::new(self);
        let mut b = Cursor::new(other);
        let mut count = 0u64;
        loop {
            if a.is_end() || b.is_end() {
                break;
            }
            match (a.peek_clean(), b.peek_clean()) {
                (Some((oa, la)), Some((ob, lb))) => {
                    let n = la.min(lb);
                    if oa && ob {
                        count += 64 * n;
                    }
                    a.consume_clean(n);
                    b.consume_clean(n);
                }
                (Some((oa, la)), None) => {
                    let lit = b.peek_lit().expect("not end, not clean");
                    let n = la.min(lit.len() as u64) as usize;
                    if oa {
                        count += crate::kernels::popcount_words(&lit[..n]);
                    }
                    a.consume_clean(n as u64);
                    b.consume_lit(n);
                }
                (None, Some((ob, lb))) => {
                    let lit = a.peek_lit().expect("not end, not clean");
                    let n = lb.min(lit.len() as u64) as usize;
                    if ob {
                        count += crate::kernels::popcount_words(&lit[..n]);
                    }
                    a.consume_lit(n);
                    b.consume_clean(n as u64);
                }
                (None, None) => {
                    let wa = a.peek_lit().expect("not end, not clean");
                    let wb = b.peek_lit().expect("not end, not clean");
                    let n = wa.len().min(wb.len());
                    count += crate::kernels::and_popcount_words(&wa[..n], &wb[..n]);
                    a.consume_lit(n);
                    b.consume_lit(n);
                }
            }
        }
        count
    }

    fn contains(&self, id: u32) -> bool {
        let target_word = u64::from(id) / 64;
        let bit = u64::from(id) % 64;
        let mut word_index = 0u64;
        for seg in RawSegs::new(&self.words) {
            match seg {
                Seg::Clean { ones, nwords } => {
                    if target_word < word_index + nwords {
                        return ones;
                    }
                    word_index += nwords;
                }
                Seg::Lit(words) => {
                    if target_word < word_index + words.len() as u64 {
                        let w = words[(target_word - word_index) as usize];
                        return w & (1 << bit) != 0;
                    }
                    word_index += words.len() as u64;
                }
            }
        }
        false
    }
}

impl PartialEq for EwahBitmap {
    /// Semantic equality: equal sets compare equal even if their compressed
    /// encodings differ (e.g. a literal word `0` vs a clean zero run).
    fn eq(&self, other: &Self) -> bool {
        if self.card != other.card {
            return false;
        }
        let mut a = Cursor::new(self);
        let mut b = Cursor::new(other);
        loop {
            if a.is_end() && b.is_end() {
                return true;
            }
            match (a.peek_clean(), b.peek_clean()) {
                (Some((oa, la)), Some((ob, lb))) => {
                    if oa != ob {
                        return false;
                    }
                    let n = la.min(lb);
                    a.consume_clean(n);
                    b.consume_clean(n);
                }
                _ => {
                    let wa = a.next_word().unwrap_or(0);
                    let wb = b.next_word().unwrap_or(0);
                    if wa != wb {
                        return false;
                    }
                }
            }
        }
    }
}

impl Eq for EwahBitmap {}

impl FromIterator<u32> for EwahBitmap {
    /// Collect from an ascending id iterator.
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let ids: Vec<u32> = iter.into_iter().collect();
        EwahBitmap::from_sorted(&ids)
    }
}

/// Iterator over set bits (see [`EwahBitmap::iter`]).
pub struct SetBits<'a> {
    segs: RawSegs<'a>,
    word_index: u64,
    state: SetBitsState<'a>,
}

enum SetBitsState<'a> {
    NeedSeg,
    InClean { ones: bool, left: u64, bit: u32 },
    InLit { words: &'a [u64], i: usize, cur: u64 },
    Done,
}

impl Iterator for SetBits<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            match &mut self.state {
                SetBitsState::NeedSeg => {
                    self.state = match self.segs.next() {
                        Some(Seg::Clean { ones, nwords }) => {
                            SetBitsState::InClean { ones, left: nwords, bit: 0 }
                        }
                        Some(Seg::Lit(words)) => SetBitsState::InLit { words, i: 0, cur: words[0] },
                        None => SetBitsState::Done,
                    };
                }
                SetBitsState::InClean { ones, left, bit } => {
                    if !*ones {
                        self.word_index += *left;
                        self.state = SetBitsState::NeedSeg;
                        continue;
                    }
                    let id = (self.word_index * 64 + u64::from(*bit)) as u32;
                    *bit += 1;
                    if *bit == 64 {
                        *bit = 0;
                        *left -= 1;
                        self.word_index += 1;
                        if *left == 0 {
                            self.state = SetBitsState::NeedSeg;
                        }
                    }
                    return Some(id);
                }
                SetBitsState::InLit { words, i, cur } => {
                    if *cur == 0 {
                        *i += 1;
                        self.word_index += 1;
                        if *i == words.len() {
                            self.state = SetBitsState::NeedSeg;
                        } else {
                            *cur = words[*i];
                        }
                        continue;
                    }
                    let tz = cur.trailing_zeros();
                    *cur &= *cur - 1;
                    return Some((self.word_index * 64 + u64::from(tz)) as u32);
                }
                SetBitsState::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(ids: &[u32]) -> EwahBitmap {
        EwahBitmap::from_sorted(ids)
    }

    #[test]
    fn empty_bitmap() {
        let b = EwahBitmap::new();
        assert_eq!(b.cardinality(), 0);
        assert!(b.is_empty());
        assert_eq!(b.to_vec(), Vec::<u32>::new());
        assert!(!b.contains(0));
    }

    #[test]
    fn roundtrip_small() {
        let ids = vec![0, 1, 5, 63, 64, 65, 1000];
        let b = bm(&ids);
        assert_eq!(b.to_vec(), ids);
        assert_eq!(b.cardinality(), ids.len() as u64);
    }

    #[test]
    fn roundtrip_sparse_large_gaps() {
        let ids = vec![0, 1_000_000, 2_000_000, 50_000_000];
        let b = bm(&ids);
        assert_eq!(b.to_vec(), ids);
        // Sparse data must compress: 50M bits would be ~780K dense words.
        assert!(b.stored_words() < 20, "stored {} words", b.stored_words());
    }

    #[test]
    fn roundtrip_dense_run() {
        let ids: Vec<u32> = (0..10_000).collect();
        let b = bm(&ids);
        assert_eq!(b.cardinality(), 10_000);
        assert_eq!(b.to_vec(), ids);
        // A solid run of ones compresses to a handful of words.
        assert!(b.stored_words() < 10, "stored {} words", b.stored_words());
    }

    #[test]
    fn contains_all_cases() {
        let b = bm(&[3, 64, 128, 129]);
        for id in [3u32, 64, 128, 129] {
            assert!(b.contains(id), "missing {id}");
        }
        for id in [0u32, 2, 63, 65, 127, 130, 100_000] {
            assert!(!b.contains(id), "spurious {id}");
        }
    }

    #[test]
    fn and_overlapping() {
        let a = bm(&[1, 2, 3, 100, 200]);
        let b = bm(&[2, 100, 300]);
        assert_eq!(a.and(&b).to_vec(), vec![2, 100]);
        assert_eq!(a.and_cardinality(&b), 2);
    }

    #[test]
    fn or_disjoint() {
        let a = bm(&[1, 1000]);
        let b = bm(&[5, 500]);
        assert_eq!(a.or(&b).to_vec(), vec![1, 5, 500, 1000]);
    }

    #[test]
    fn andnot_and_xor() {
        let a = bm(&[1, 2, 3, 4]);
        let b = bm(&[2, 4, 6]);
        assert_eq!(a.andnot(&b).to_vec(), vec![1, 3]);
        assert_eq!(b.andnot(&a).to_vec(), vec![6]);
        assert_eq!(a.xor(&b).to_vec(), vec![1, 3, 6]);
    }

    #[test]
    fn ops_with_empty() {
        let a = bm(&[1, 2, 3]);
        let e = EwahBitmap::new();
        assert_eq!(a.and(&e).to_vec(), Vec::<u32>::new());
        assert_eq!(a.or(&e).to_vec(), vec![1, 2, 3]);
        assert_eq!(e.or(&a).to_vec(), vec![1, 2, 3]);
        assert_eq!(a.andnot(&e).to_vec(), vec![1, 2, 3]);
        assert_eq!(e.andnot(&a).to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn not_upto() {
        let a = bm(&[0, 2, 4]);
        assert_eq!(a.not_upto(6).to_vec(), vec![1, 3, 5]);
        assert_eq!(a.not_upto(5).to_vec(), vec![1, 3]);
        assert_eq!(a.not_upto(0).to_vec(), Vec::<u32>::new());
        let e = EwahBitmap::new();
        assert_eq!(e.not_upto(130).cardinality(), 130);
    }

    #[test]
    fn not_upto_word_boundary() {
        let a = bm(&[63, 64]);
        let c = a.not_upto(128);
        assert_eq!(c.cardinality(), 126);
        assert!(!c.contains(63));
        assert!(!c.contains(64));
        assert!(c.contains(0));
        assert!(c.contains(127));
    }

    #[test]
    fn semantic_equality() {
        let a = bm(&[1, 2, 3]);
        let b = bm(&[1, 2, 3]);
        let c = bm(&[1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Different construction path, same set.
        let d = bm(&[1]).or(&bm(&[2, 3]));
        assert_eq!(a, d);
    }

    #[test]
    fn double_negation_is_identity() {
        let ids = vec![0, 7, 63, 64, 300];
        let a = bm(&ids);
        assert_eq!(a.not_upto(301).not_upto(301), a);
    }

    #[test]
    fn from_iterator() {
        let b: EwahBitmap = (10..20u32).collect();
        assert_eq!(b.cardinality(), 10);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_input_panics() {
        bm(&[5, 3]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn duplicate_input_panics() {
        bm(&[5, 5]);
    }

    #[test]
    fn long_alternating_literals() {
        // Alternating bits produce pure literal words; exercise marker limits.
        let ids: Vec<u32> = (0..100_000).step_by(2).collect();
        let b = bm(&ids);
        assert_eq!(b.cardinality(), ids.len() as u64);
        assert_eq!(b.to_vec(), ids);
    }

    #[test]
    fn and_cardinality_matches_materialized() {
        let a = bm(&(0..5000).step_by(3).collect::<Vec<_>>());
        let b = bm(&(0..5000).step_by(7).collect::<Vec<_>>());
        assert_eq!(a.and_cardinality(&b), a.and(&b).cardinality());
        assert_eq!(b.and_cardinality(&a), a.and(&b).cardinality());
    }

    #[test]
    fn max_id_near_u32_limit() {
        let ids = vec![u32::MAX - 1, u32::MAX];
        let b = bm(&ids);
        assert_eq!(b.to_vec(), ids);
        assert!(b.contains(u32::MAX));
    }
}
