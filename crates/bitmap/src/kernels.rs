//! Word-level kernels shared by the posting representations.
//!
//! Every routine here works on plain `&[u64]` slices and is written as a
//! straight-line loop over fixed-width chunks (`chunks_exact`), the shape
//! LLVM's autovectorizer reliably turns into SIMD on both x86-64 and
//! aarch64 — `std::simd` is nightly-only, so this is the portable way to
//! get vector code on stable. The kernels are *pure word transforms*: they
//! never trim trailing zeros or track cardinality; callers own the
//! representation invariants.
//!
//! [`DenseBitmap`](crate::DenseBitmap) routes its boolean algebra through
//! these, and [`EwahBitmap`](crate::EwahBitmap) uses them for
//! literal-run × literal-run blocks inside its compressed-stream merge, so
//! one set of hot loops serves both representations.

/// Width of the unrolled inner loops, in 64-bit words (a 512-bit stripe).
const LANES: usize = 8;

/// Number of set bits across `words`.
#[inline]
pub fn popcount_words(words: &[u64]) -> u64 {
    let mut chunks = words.chunks_exact(LANES);
    let mut acc = [0u64; LANES];
    for c in &mut chunks {
        for (a, w) in acc.iter_mut().zip(c) {
            *a += u64::from(w.count_ones());
        }
    }
    let tail: u64 = chunks.remainder().iter().map(|w| u64::from(w.count_ones())).sum();
    acc.iter().sum::<u64>() + tail
}

/// Number of set bits in `a & b`, over the overlapping prefix, without
/// materializing the intersection.
#[inline]
pub fn and_popcount_words(a: &[u64], b: &[u64]) -> u64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let mut acc = [0u64; LANES];
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for ((s, x), y) in acc.iter_mut().zip(xs).zip(ys) {
            *s += u64::from((x & y).count_ones());
        }
    }
    let tail: u64 = ca
        .remainder()
        .iter()
        .zip(cb.remainder())
        .map(|(x, y)| u64::from((x & y).count_ones()))
        .sum();
    acc.iter().sum::<u64>() + tail
}

/// `out[i] = f(a[i], b[i])` over the overlapping prefix; `out` must be at
/// least that long. The closure is monomorphized per call site, so each op
/// gets its own unrolled loop.
#[inline]
pub fn map2_into(a: &[u64], b: &[u64], out: &mut [u64], f: impl Fn(u64, u64) -> u64) {
    let n = a.len().min(b.len());
    let (a, b, out) = (&a[..n], &b[..n], &mut out[..n]);
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let mut co = out.chunks_exact_mut(LANES);
    for ((xs, ys), os) in (&mut ca).zip(&mut cb).zip(&mut co) {
        for ((o, x), y) in os.iter_mut().zip(xs).zip(ys) {
            *o = f(*x, *y);
        }
    }
    for ((o, x), y) in co.into_remainder().iter_mut().zip(ca.remainder()).zip(cb.remainder()) {
        *o = f(*x, *y);
    }
}

/// `a[i] = f(a[i], b[i])` in place over the overlapping prefix.
#[inline]
pub fn map2_in_place(a: &mut [u64], b: &[u64], f: impl Fn(u64, u64) -> u64) {
    let n = a.len().min(b.len());
    let (a, b) = (&mut a[..n], &b[..n]);
    let mut ca = a.chunks_exact_mut(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for (x, y) in xs.iter_mut().zip(ys) {
            *x = f(*x, *y);
        }
    }
    for (x, y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
        *x = f(*x, *y);
    }
}

/// `out[i] = !src[i]` (used by the EWAH merge when a ones-run meets a
/// literal block under AND-NOT / XOR).
#[inline]
pub fn not_words_into(src: &[u64], out: &mut [u64]) {
    for (o, s) in out[..src.len()].iter_mut().zip(src) {
        *o = !s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popcount_matches_naive() {
        for n in [0usize, 1, 7, 8, 9, 16, 63, 64, 65, 200] {
            let words: Vec<u64> =
                (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
            let naive: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
            assert_eq!(popcount_words(&words), naive, "n={n}");
        }
    }

    #[test]
    fn and_popcount_matches_naive() {
        let a: Vec<u64> = (0..37u64).map(|i| i.wrapping_mul(0x1234_5678_9ABC_DEF1)).collect();
        let b: Vec<u64> = (0..41u64).map(|i| !i.wrapping_mul(0x0FED_CBA9_8765_4321)).collect();
        let naive: u64 = a.iter().zip(&b).map(|(x, y)| u64::from((x & y).count_ones())).sum();
        assert_eq!(and_popcount_words(&a, &b), naive);
    }

    #[test]
    fn map2_variants_agree() {
        let a: Vec<u64> = (0..100u64).map(|i| i.wrapping_mul(0xDEAD_BEEF_CAFE_F00D)).collect();
        let b: Vec<u64> = (0..90u64).map(|i| i.rotate_left(13) ^ 0xABCD).collect();
        let mut out = vec![0u64; 90];
        map2_into(&a, &b, &mut out, |x, y| x & !y);
        let mut in_place = a[..90].to_vec();
        map2_in_place(&mut in_place, &b, |x, y| x & !y);
        assert_eq!(out, in_place);
        for i in 0..90 {
            assert_eq!(out[i], a[i] & !b[i]);
        }
    }

    #[test]
    fn not_words() {
        let src = [0u64, u64::MAX, 0x0F0F];
        let mut out = [0u64; 3];
        not_words_into(&src, &mut out);
        assert_eq!(out, [u64::MAX, 0, !0x0F0Fu64]);
    }
}
