//! Per-posting adaptive representation choice.
//!
//! A vertical database holds one posting per item, and item frequencies are
//! wildly skewed: a handful of items cover most transactions (dense), the
//! long tail covers almost none (sparse), and attribute-value postings sit
//! in between (clustered). No single representation wins everywhere —
//! [`TidVec`] is smallest and fastest for sparse sets, [`DenseBitmap`] for
//! near-full ones, [`EwahBitmap`] for the clustered middle. [`AdaptivePosting`]
//! re-picks the winner **per posting** from two numbers the set already
//! knows: its cardinality and its span (`max_id + 1`).
//!
//! The decision rule (`choose`, integer arithmetic only, so it is exactly
//! reproducible on every host):
//!
//! * empty, tiny (≤ 64 ids), or density < 1/128 → [`TidVec`]
//! * density ≥ 1/4 → [`DenseBitmap`]
//! * otherwise → [`EwahBitmap`]
//!
//! Every operation re-canonicalizes its result through the same rule, so
//! the representation — and therefore the serialized encoding — is a pure
//! function of the *set content*, never of the construction path. That is
//! the property the snapshot layer's byte-identity tests demand, and it is
//! what lets an Adaptive-built cube answer byte-identically to any
//! fixed-representation build (pinned by the whole-pipeline test in
//! `crates/cube/tests/adaptive_pipeline.rs`).

use crate::{kernels, DenseBitmap, EwahBitmap, Posting, TidVec};
use scube_common::mmap::ByteRegion;

/// Sets at or below this cardinality always stay id vectors: at ≤ 64 ids a
/// linear scan beats any decompression setup cost.
const TINY_CARD: u64 = 64;

/// Sparse cutoff: density below `1/SPARSE_DIVISOR` → [`TidVec`] (4 bytes
/// per id beats one bit per universe slot once fewer than 1 in 128 bits
/// are set, with galloping intersection as the kicker).
const SPARSE_DIVISOR: u64 = 128;

/// Dense cutoff: density at or above `1/DENSE_DIVISOR` → [`DenseBitmap`]
/// (EWAH markers stop paying once every fourth bit is set; plain words
/// feed the unrolled kernels directly).
const DENSE_DIVISOR: u64 = 4;

/// Which of the three fixed representations a set should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Ewah,
    Dense,
    Tids,
}

/// The representation the heuristic picks for a set with `card` ids whose
/// largest id is `max_id` (`None` when empty).
fn choose(card: u64, max_id: Option<u32>) -> Kind {
    let Some(max) = max_id else { return Kind::Tids };
    let span = u64::from(max) + 1;
    if card <= TINY_CARD || card.saturating_mul(SPARSE_DIVISOR) < span {
        Kind::Tids
    } else if card.saturating_mul(DENSE_DIVISOR) >= span {
        Kind::Dense
    } else {
        Kind::Ewah
    }
}

/// A posting that stores itself as whichever of [`EwahBitmap`],
/// [`DenseBitmap`] or [`TidVec`] is cheapest for its own density (see the
/// module docs for the rule). Mixed-representation operations use
/// streaming bridge kernels (id filtering against compressed segments,
/// bulk EWAH↔dense word conversion) rather than falling back to per-bit
/// loops.
#[derive(Debug, Clone)]
pub enum AdaptivePosting {
    /// Clustered middle ground: compressed runs + literals.
    Ewah(EwahBitmap),
    /// Near-full sets: plain words, unrolled kernels.
    Dense(DenseBitmap),
    /// Sparse tail: sorted ids, galloping intersection.
    Tids(TidVec),
}

use AdaptivePosting as A;

impl AdaptivePosting {
    fn kind(&self) -> Kind {
        match self {
            A::Ewah(_) => Kind::Ewah,
            A::Dense(_) => Kind::Dense,
            A::Tids(_) => Kind::Tids,
        }
    }

    fn max_id(&self) -> Option<u32> {
        match self {
            A::Ewah(e) => e.max_id(),
            A::Dense(d) => {
                let words = d.words();
                words
                    .iter()
                    .rposition(|&w| w != 0)
                    .map(|i| (i as u32) * 64 + 63 - words[i].leading_zeros())
            }
            A::Tids(t) => t.as_slice().last().copied(),
        }
    }

    /// Re-pick the representation for the current content and convert if
    /// the heuristic disagrees with the current variant. Conversions go
    /// through canonical constructors, so the result serializes exactly as
    /// a from-scratch build of the same set would.
    fn canon(self) -> Self {
        let target = choose(self.cardinality(), self.max_id());
        if self.kind() == target {
            return self;
        }
        match target {
            Kind::Tids => A::Tids(TidVec::from_sorted(&self.to_vec())),
            Kind::Dense => match self {
                A::Ewah(e) => A::Dense(DenseBitmap::from_words(e.to_dense_words())),
                A::Tids(t) => A::Dense(DenseBitmap::from_sorted(t.as_slice())),
                A::Dense(_) => unreachable!("kind matched above"),
            },
            Kind::Ewah => match self {
                A::Dense(d) => A::Ewah(d.to_ewah()),
                A::Tids(t) => A::Ewah(EwahBitmap::from_sorted(t.as_slice())),
                A::Ewah(_) => unreachable!("kind matched above"),
            },
        }
    }

    /// The heuristic's choice for a hypothetical set, exposed for tests
    /// and benchmark labeling.
    pub fn chosen_name(card: u64, max_id: Option<u32>) -> &'static str {
        match choose(card, max_id) {
            Kind::Ewah => "ewah",
            Kind::Dense => "dense",
            Kind::Tids => "tidvec",
        }
    }

    /// Name of the representation currently in use.
    pub fn current_name(&self) -> &'static str {
        match self {
            A::Ewah(_) => "ewah",
            A::Dense(_) => "dense",
            A::Tids(_) => "tidvec",
        }
    }
}

impl Posting for AdaptivePosting {
    const SERIAL_TAG: u8 = 4;

    fn from_sorted(ids: &[u32]) -> Self {
        // The inner constructor validates strict monotonicity; `choose`
        // only peeks at the last element, which for valid input is the max.
        match choose(ids.len() as u64, ids.last().copied()) {
            Kind::Tids => A::Tids(TidVec::from_sorted(ids)),
            Kind::Dense => A::Dense(DenseBitmap::from_sorted(ids)),
            Kind::Ewah => A::Ewah(EwahBitmap::from_sorted(ids)),
        }
    }

    fn write_bytes(&self, out: &mut Vec<u8>) {
        // One leading byte names the inner representation (its own
        // SERIAL_TAG), then the inner canonical encoding follows. Because
        // every operation re-canonicalizes, the variant — hence the byte
        // stream — depends only on the set content.
        match self {
            A::Ewah(e) => {
                out.push(EwahBitmap::SERIAL_TAG);
                e.write_bytes(out);
            }
            A::Dense(d) => {
                out.push(DenseBitmap::SERIAL_TAG);
                d.write_bytes(out);
            }
            A::Tids(t) => {
                out.push(TidVec::SERIAL_TAG);
                t.write_bytes(out);
            }
        }
    }

    fn read_bytes(bytes: &[u8]) -> Option<(Self, usize)> {
        let (&tag, rest) = bytes.split_first()?;
        let (posting, used) = if tag == EwahBitmap::SERIAL_TAG {
            let (e, n) = EwahBitmap::read_bytes(rest)?;
            (A::Ewah(e), n)
        } else if tag == DenseBitmap::SERIAL_TAG {
            let (d, n) = DenseBitmap::read_bytes(rest)?;
            (A::Dense(d), n)
        } else if tag == TidVec::SERIAL_TAG {
            let (t, n) = TidVec::read_bytes(rest)?;
            (A::Tids(t), n)
        } else {
            return None;
        };
        Some((posting, used + 1))
    }

    fn write_slot(&self, out: &mut Vec<u8>) {
        // v4 slots are 8-aligned, so the inner representation's tag rides
        // in a full little-endian u64 header word (low byte = the inner
        // SERIAL_TAG), keeping the inner word table aligned too.
        match self {
            A::Ewah(e) => {
                out.extend_from_slice(&u64::from(EwahBitmap::SERIAL_TAG).to_le_bytes());
                e.write_slot(out);
            }
            A::Dense(d) => {
                out.extend_from_slice(&u64::from(DenseBitmap::SERIAL_TAG).to_le_bytes());
                d.write_slot(out);
            }
            A::Tids(t) => {
                out.extend_from_slice(&u64::from(TidVec::SERIAL_TAG).to_le_bytes());
                t.write_slot(out);
            }
        }
    }

    fn read_slot(bytes: &[u8], card: u64) -> Option<Self> {
        let tag = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
        let rest = &bytes[8..];
        match u8::try_from(tag).ok()? {
            t if t == EwahBitmap::SERIAL_TAG => Some(A::Ewah(EwahBitmap::read_slot(rest, card)?)),
            t if t == DenseBitmap::SERIAL_TAG => {
                Some(A::Dense(DenseBitmap::read_slot(rest, card)?))
            }
            t if t == TidVec::SERIAL_TAG => Some(A::Tids(TidVec::read_slot(rest, card)?)),
            _ => None,
        }
    }

    fn map_slot(region: ByteRegion, card: u64, universe: u32) -> Option<Self> {
        let header = region.slice(0, 8)?;
        let tag = u64::from_le_bytes(header.as_slice().try_into().ok()?);
        let inner = region.slice(8, region.len() - 8)?;
        match u8::try_from(tag).ok()? {
            t if t == EwahBitmap::SERIAL_TAG => {
                Some(A::Ewah(EwahBitmap::map_slot(inner, card, universe)?))
            }
            t if t == DenseBitmap::SERIAL_TAG => {
                Some(A::Dense(DenseBitmap::map_slot(inner, card, universe)?))
            }
            t if t == TidVec::SERIAL_TAG => Some(A::Tids(TidVec::map_slot(inner, card, universe)?)),
            _ => None,
        }
    }

    fn full(n: u32) -> Self {
        match choose(u64::from(n), n.checked_sub(1)) {
            Kind::Tids => A::Tids(TidVec::full(n)),
            Kind::Dense => A::Dense(DenseBitmap::full(n)),
            Kind::Ewah => A::Ewah(EwahBitmap::full(n)),
        }
    }

    fn append_sorted(&mut self, ids: &[u32]) {
        if ids.is_empty() {
            return;
        }
        // Append natively (each inner append is canonical and validating),
        // then re-pick the representation for the grown set.
        let mut cur = std::mem::replace(self, A::Tids(TidVec::new()));
        match &mut cur {
            A::Ewah(e) => e.append_sorted(ids),
            A::Dense(d) => d.append_sorted(ids),
            A::Tids(t) => t.append_sorted(ids),
        }
        *self = cur.canon();
    }

    fn remove_sorted(&mut self, ids: &[u32]) {
        if ids.is_empty() {
            return;
        }
        let mut cur = std::mem::replace(self, A::Tids(TidVec::new()));
        match &mut cur {
            A::Ewah(e) => e.remove_sorted(ids),
            A::Dense(d) => d.remove_sorted(ids),
            A::Tids(t) => t.remove_sorted(ids),
        }
        *self = cur.canon();
    }

    fn and(&self, other: &Self) -> Self {
        let raw = match (self, other) {
            (A::Ewah(a), A::Ewah(b)) => A::Ewah(a.and(b)),
            (A::Dense(a), A::Dense(b)) => A::Dense(a.and(b)),
            (A::Tids(a), A::Tids(b)) => A::Tids(a.and(b)),
            (A::Tids(t), A::Ewah(e)) | (A::Ewah(e), A::Tids(t)) => {
                A::Tids(TidVec::from_sorted(&e.filter_sorted_ids(t.as_slice(), true)))
            }
            (A::Tids(t), A::Dense(d)) | (A::Dense(d), A::Tids(t)) => {
                let kept: Vec<u32> =
                    t.as_slice().iter().copied().filter(|&id| d.contains(id)).collect();
                A::Tids(TidVec::from_sorted(&kept))
            }
            (A::Dense(d), A::Ewah(e)) | (A::Ewah(e), A::Dense(d)) => {
                let mut words = e.to_dense_words();
                words.truncate(d.words().len());
                kernels::map2_in_place(&mut words, d.words(), |x, y| x & y);
                A::Dense(DenseBitmap::from_words(words))
            }
        };
        raw.canon()
    }

    fn or(&self, other: &Self) -> Self {
        let raw = match (self, other) {
            (A::Ewah(a), A::Ewah(b)) => A::Ewah(a.or(b)),
            (A::Dense(a), A::Dense(b)) => A::Dense(a.or(b)),
            (A::Tids(a), A::Tids(b)) => A::Tids(a.or(b)),
            (A::Tids(t), A::Ewah(e)) | (A::Ewah(e), A::Tids(t)) => {
                A::Ewah(e.or(&EwahBitmap::from_sorted(t.as_slice())))
            }
            (A::Tids(t), A::Dense(d)) | (A::Dense(d), A::Tids(t)) => {
                let mut grown = d.clone();
                for &id in t.as_slice() {
                    grown.insert(id);
                }
                A::Dense(grown)
            }
            (A::Dense(d), A::Ewah(e)) | (A::Ewah(e), A::Dense(d)) => {
                let mut words = e.to_dense_words();
                if words.len() < d.words().len() {
                    words.resize(d.words().len(), 0);
                }
                kernels::map2_in_place(&mut words, d.words(), |x, y| x | y);
                A::Dense(DenseBitmap::from_words(words))
            }
        };
        raw.canon()
    }

    fn andnot(&self, other: &Self) -> Self {
        let raw = match (self, other) {
            (A::Ewah(a), A::Ewah(b)) => A::Ewah(a.andnot(b)),
            (A::Dense(a), A::Dense(b)) => A::Dense(a.andnot(b)),
            (A::Tids(a), A::Tids(b)) => A::Tids(a.andnot(b)),
            (A::Tids(t), A::Ewah(e)) => {
                A::Tids(TidVec::from_sorted(&e.filter_sorted_ids(t.as_slice(), false)))
            }
            (A::Ewah(e), A::Tids(t)) => A::Ewah(e.andnot(&EwahBitmap::from_sorted(t.as_slice()))),
            (A::Tids(t), A::Dense(d)) => {
                let kept: Vec<u32> =
                    t.as_slice().iter().copied().filter(|&id| !d.contains(id)).collect();
                A::Tids(TidVec::from_sorted(&kept))
            }
            (A::Dense(d), A::Tids(t)) => {
                A::Dense(d.andnot(&DenseBitmap::from_sorted(t.as_slice())))
            }
            (A::Dense(d), A::Ewah(e)) => {
                let ewords = e.to_dense_words();
                let mut words = d.words().to_vec();
                kernels::map2_in_place(&mut words, &ewords, |x, y| x & !y);
                A::Dense(DenseBitmap::from_words(words))
            }
            (A::Ewah(e), A::Dense(d)) => A::Ewah(e.andnot(&d.to_ewah())),
        };
        raw.canon()
    }

    fn cardinality(&self) -> u64 {
        match self {
            A::Ewah(e) => e.cardinality(),
            A::Dense(d) => d.cardinality(),
            A::Tids(t) => t.cardinality(),
        }
    }

    fn for_each(&self, f: impl FnMut(u32)) {
        match self {
            A::Ewah(e) => e.for_each(f),
            A::Dense(d) => d.for_each(f),
            A::Tids(t) => t.for_each(f),
        }
    }

    fn and_cardinality(&self, other: &Self) -> u64 {
        match (self, other) {
            (A::Ewah(a), A::Ewah(b)) => a.and_cardinality(b),
            (A::Dense(a), A::Dense(b)) => a.and_cardinality(b),
            (A::Tids(a), A::Tids(b)) => a.and_cardinality(b),
            (A::Tids(t), A::Ewah(e)) | (A::Ewah(e), A::Tids(t)) => {
                e.filter_sorted_ids(t.as_slice(), true).len() as u64
            }
            (A::Tids(t), A::Dense(d)) | (A::Dense(d), A::Tids(t)) => {
                t.as_slice().iter().filter(|&&id| d.contains(id)).count() as u64
            }
            (A::Dense(d), A::Ewah(e)) | (A::Ewah(e), A::Dense(d)) => {
                e.and_cardinality_words(d.words())
            }
        }
    }

    fn to_vec(&self) -> Vec<u32> {
        match self {
            A::Ewah(e) => e.to_vec(),
            A::Dense(d) => d.to_vec(),
            A::Tids(t) => t.to_vec(),
        }
    }

    fn contains(&self, id: u32) -> bool {
        match self {
            A::Ewah(e) => e.contains(id),
            A::Dense(d) => d.contains(id),
            A::Tids(t) => t.contains(id),
        }
    }

    fn is_empty(&self) -> bool {
        self.cardinality() == 0
    }
}

impl PartialEq for AdaptivePosting {
    /// Semantic set equality. Canonically built values of equal sets always
    /// share a variant (the heuristic is a pure function of content), so
    /// the cross-variant fallback only triggers for hand-decoded input.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (A::Ewah(a), A::Ewah(b)) => a == b,
            (A::Dense(a), A::Dense(b)) => a == b,
            (A::Tids(a), A::Tids(b)) => a == b,
            _ => self.cardinality() == other.cardinality() && self.to_vec() == other.to_vec(),
        }
    }
}

impl Eq for AdaptivePosting {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_picks_by_density() {
        // Empty and tiny → tidvec.
        assert!(matches!(AdaptivePosting::from_sorted(&[]), A::Tids(_)));
        assert!(matches!(AdaptivePosting::from_sorted(&[5, 9]), A::Tids(_)));
        // 65 ids spread over 1M → density ~2^-14 → tidvec.
        let sparse: Vec<u32> = (0..65u32).map(|i| i * 15_000).collect();
        assert!(matches!(AdaptivePosting::from_sorted(&sparse), A::Tids(_)));
        // Every other id over 10k → density 1/2 → dense.
        let dense: Vec<u32> = (0..10_000).step_by(2).collect();
        assert!(matches!(AdaptivePosting::from_sorted(&dense), A::Dense(_)));
        // Every 16th id over 100k → density 1/16 → ewah.
        let mid: Vec<u32> = (0..100_000).step_by(16).collect();
        assert!(matches!(AdaptivePosting::from_sorted(&mid), A::Ewah(_)));
    }

    #[test]
    fn ops_recanonicalize() {
        // dense ∩ sparse → tiny result must come back as Tids, encoded
        // exactly like a from-scratch build.
        let dense: Vec<u32> = (0..10_000).collect();
        let sparse: Vec<u32> = vec![3, 5_000, 50_000];
        let d = AdaptivePosting::from_sorted(&dense);
        let s = AdaptivePosting::from_sorted(&sparse);
        let both = d.and(&s);
        assert!(matches!(both, A::Tids(_)));
        let expect = AdaptivePosting::from_sorted(&[3, 5_000]);
        assert_eq!(both, expect);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        both.write_bytes(&mut a);
        expect.write_bytes(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_ops_match_fixed_representation() {
        let xs: Vec<u32> = (0..50_000).step_by(3).collect(); // ewah-range density
        let ys: Vec<u32> = (0..50_000).step_by(2).collect(); // dense
        let zs: Vec<u32> = vec![0, 3, 6, 30_000, 49_998, 60_000]; // tids
        for (a_ids, b_ids) in [(&xs, &ys), (&xs, &zs), (&ys, &zs), (&zs, &xs), (&ys, &xs)] {
            let a = AdaptivePosting::from_sorted(a_ids);
            let b = AdaptivePosting::from_sorted(b_ids);
            let ea = EwahBitmap::from_sorted(a_ids);
            let eb = EwahBitmap::from_sorted(b_ids);
            assert_eq!(a.and(&b).to_vec(), ea.and(&eb).to_vec());
            assert_eq!(a.or(&b).to_vec(), ea.or(&eb).to_vec());
            assert_eq!(a.andnot(&b).to_vec(), ea.andnot(&eb).to_vec());
            assert_eq!(a.and_cardinality(&b), ea.and_cardinality(&eb));
        }
    }

    #[test]
    fn serialization_names_inner_representation() {
        let p = AdaptivePosting::from_sorted(&[1, 2, 3]);
        let mut bytes = Vec::new();
        p.write_bytes(&mut bytes);
        assert_eq!(bytes[0], TidVec::SERIAL_TAG);
        let (q, used) = AdaptivePosting::read_bytes(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(q, p);
        assert!(AdaptivePosting::read_bytes(&[9, 1, 2]).is_none());
    }
}
