//! Sorted-vector posting list (classical Eclat tidset).
//!
//! The simplest representation: a strictly increasing `Vec<u32>`. Operations
//! are linear merges. Kept as the baseline in the tidset-representation
//! ablation (experiment E11): EWAH wins on dense/clustered data, `TidVec`
//! on very sparse data, and the benchmarks show the crossover.

use crate::Posting;

/// Sorted vector of ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TidVec {
    ids: Vec<u32>,
}

impl TidVec {
    /// Empty posting list.
    pub fn new() -> Self {
        TidVec::default()
    }

    /// Borrow the underlying sorted ids.
    pub fn as_slice(&self) -> &[u32] {
        &self.ids
    }

    /// Heap bytes used.
    pub fn heap_bytes(&self) -> usize {
        self.ids.capacity() * 4
    }
}

impl Posting for TidVec {
    // The default sorted-id encoding *is* this representation's native
    // layout, so only the tag is needed.
    const SERIAL_TAG: u8 = 3;

    fn full(n: u32) -> Self {
        TidVec { ids: (0..n).collect() }
    }

    fn from_sorted(ids: &[u32]) -> Self {
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "ids must be strictly increasing");
        }
        TidVec { ids: ids.to_vec() }
    }

    fn append_sorted(&mut self, ids: &[u32]) {
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "ids must be strictly increasing");
        }
        if let (Some(&last), Some(&first)) = (self.ids.last(), ids.first()) {
            assert!(first > last, "appended ids must be strictly above the current maximum");
        }
        self.ids.extend_from_slice(ids);
    }

    fn remove_sorted(&mut self, ids: &[u32]) {
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "ids must be strictly increasing");
        }
        if ids.is_empty() {
            return;
        }
        // One in-place drain pass over the sorted vector: survivors shift
        // left past the removed slots.
        let mut j = 0;
        let before = self.ids.len();
        self.ids.retain(|&id| {
            if j < ids.len() && ids[j] == id {
                j += 1;
                false
            } else {
                true
            }
        });
        assert_eq!(before - self.ids.len(), ids.len(), "removed ids must all be present");
    }

    fn and(&self, other: &Self) -> Self {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.ids.len().min(other.ids.len()));
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        TidVec { ids: out }
    }

    fn or(&self, other: &Self) -> Self {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.ids.len() + other.ids.len());
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        TidVec { ids: out }
    }

    fn andnot(&self, other: &Self) -> Self {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.ids.len());
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        TidVec { ids: out }
    }

    fn cardinality(&self) -> u64 {
        self.ids.len() as u64
    }

    fn for_each(&self, mut f: impl FnMut(u32)) {
        for &id in &self.ids {
            f(id);
        }
    }

    fn and_cardinality(&self, other: &Self) -> u64 {
        let (mut i, mut j) = (0, 0);
        let mut n = 0u64;
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    fn to_vec(&self) -> Vec<u32> {
        self.ids.clone()
    }

    fn contains(&self, id: u32) -> bool {
        self.ids.binary_search(&id).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = TidVec::from_sorted(&[1, 3, 5, 7]);
        let b = TidVec::from_sorted(&[3, 4, 5]);
        assert_eq!(a.and(&b).to_vec(), vec![3, 5]);
        assert_eq!(a.or(&b).to_vec(), vec![1, 3, 4, 5, 7]);
        assert_eq!(a.andnot(&b).to_vec(), vec![1, 7]);
        assert_eq!(a.and_cardinality(&b), 2);
        assert!(a.contains(7));
        assert!(!a.contains(4));
    }

    #[test]
    fn empty_interactions() {
        let a = TidVec::from_sorted(&[1, 2]);
        let e = TidVec::new();
        assert_eq!(a.and(&e).cardinality(), 0);
        assert_eq!(a.or(&e).to_vec(), vec![1, 2]);
        assert_eq!(e.andnot(&a).cardinality(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_duplicates() {
        TidVec::from_sorted(&[1, 1]);
    }
}
