//! Sorted-vector posting list (classical Eclat tidset).
//!
//! The simplest representation: a strictly increasing `Vec<u32>`. Balanced
//! operations are linear merges; when cardinalities are skewed by more than
//! `GALLOP_RATIO` (16×), intersection switches to a **galloping**
//! (exponential-search) scan that walks the small side and probes the large
//! side in `O(|small| · log(gap))` — the classic sort-merge-join trick, and
//! the reason a 100-element tidset can intersect a 100 000-element one
//! without reading all 100 000 ids. Kept as the baseline in the
//! tidset-representation ablation (experiment E11): EWAH wins on
//! dense/clustered data, `TidVec` on very sparse data, and the benchmarks
//! show the crossover.

use crate::Posting;
use scube_common::mmap::{ByteRegion, MappedSlice, Store};

/// Length ratio above which intersection gallops instead of merging
/// linearly. Galloping costs ~2·log₂(gap) probes per small-side id, so it
/// only pays once the large side is comfortably bigger than
/// `|small| · log |large|`; 16 is past the crossover on every measured
/// shape and keeps the balanced case on the branch-predictable merge.
const GALLOP_RATIO: usize = 16;

/// First index `>= from` with `hay[idx] >= needle`, or `hay.len()`.
/// Exponential search from `from` followed by a binary search of the
/// bracketed window — cost grows with the *distance advanced*, not the
/// haystack length, so a full k-way pass stays linear in the haystack even
/// when called once per small-side id.
#[inline]
fn gallop_to(hay: &[u32], from: usize, needle: u32) -> usize {
    if from >= hay.len() || hay[from] >= needle {
        return from;
    }
    // Invariant: hay[lo] < needle.
    let mut lo = from;
    let mut step = 1usize;
    while lo + step < hay.len() && hay[lo + step] < needle {
        lo += step;
        step <<= 1;
    }
    let end = (lo + step + 1).min(hay.len());
    lo + 1 + hay[lo + 1..end].partition_point(|&v| v < needle)
}

/// Intersection of two sorted slices into `out` (cleared first): galloping
/// when skewed, linear merge when balanced.
fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len().saturating_mul(GALLOP_RATIO) < large.len() {
        out.reserve(small.len());
        let mut j = 0;
        for &x in small {
            j = gallop_to(large, j, x);
            if j == large.len() {
                break;
            }
            if large[j] == x {
                out.push(x);
                j += 1;
            }
        }
    } else {
        out.reserve(small.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Sorted vector of ids.
///
/// The ids live in a [`Store`]: heap-owned normally, borrowed from a
/// mapped snapshot on the [`Posting::map_slot`] path; mutators copy a
/// mapped store onto the heap first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TidVec {
    ids: Store<u32>,
}

impl TidVec {
    /// Empty posting list.
    pub fn new() -> Self {
        TidVec::default()
    }

    /// Borrow the underlying sorted ids.
    pub fn as_slice(&self) -> &[u32] {
        &self.ids
    }

    /// Heap bytes used (0 when the ids are served from a mapped snapshot).
    pub fn heap_bytes(&self) -> usize {
        self.ids.heap_capacity() * 4
    }
}

impl Posting for TidVec {
    // The default sorted-id encoding *is* this representation's native
    // layout, so only the tag is needed.
    const SERIAL_TAG: u8 = 3;

    fn full(n: u32) -> Self {
        TidVec { ids: (0..n).collect::<Vec<u32>>().into() }
    }

    fn from_sorted(ids: &[u32]) -> Self {
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "ids must be strictly increasing");
        }
        TidVec { ids: ids.to_vec().into() }
    }

    // The default sorted-id slot encoding is also this representation's
    // native layout, so `write_slot`/`read_slot` need no override; only
    // `map_slot` does (to adopt the mapped ids zero-copy).
    fn map_slot(region: ByteRegion, card: u64, universe: u32) -> Option<Self> {
        let ids = MappedSlice::<u32>::new(region)?;
        if ids.len() as u64 != card {
            return None;
        }
        // The ids *are* the structure: one pass proves strict monotonicity
        // and the universe bound, which keeps every later lookup (binary
        // search, unit histogramming) panic-free.
        if ids.windows(2).any(|w| w[0] >= w[1]) || ids.last().is_some_and(|&m| m >= universe) {
            return None;
        }
        Some(TidVec { ids: ids.into() })
    }

    fn append_sorted(&mut self, ids: &[u32]) {
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "ids must be strictly increasing");
        }
        if let (Some(&last), Some(&first)) = (self.ids.last(), ids.first()) {
            assert!(first > last, "appended ids must be strictly above the current maximum");
        }
        self.ids.vec_mut().extend_from_slice(ids);
    }

    fn remove_sorted(&mut self, ids: &[u32]) {
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "ids must be strictly increasing");
        }
        if ids.is_empty() {
            return;
        }
        // One in-place drain pass over the sorted vector: survivors shift
        // left past the removed slots.
        let mut j = 0;
        let own = self.ids.vec_mut();
        let before = own.len();
        own.retain(|&id| {
            if j < ids.len() && ids[j] == id {
                j += 1;
                false
            } else {
                true
            }
        });
        assert_eq!(before - own.len(), ids.len(), "removed ids must all be present");
    }

    fn and(&self, other: &Self) -> Self {
        let mut out = Vec::new();
        intersect_into(&self.ids, &other.ids, &mut out);
        TidVec { ids: out.into() }
    }

    fn and_into(&self, other: &Self, out: &mut Self) {
        intersect_into(&self.ids, &other.ids, out.ids.vec_mut());
    }

    fn and_assign(&mut self, other: &Self) {
        // The intersection is a subsequence of `self`, so the write cursor
        // never overtakes the read cursor: safe to compact in place.
        let ids = self.ids.vec_mut();
        if other.ids.len().saturating_mul(GALLOP_RATIO) < ids.len() {
            // `self` is the large side: probe it for each id of `other` and
            // compact the hits to the front.
            let mut w = 0;
            let mut j = 0;
            for k in 0..other.ids.len() {
                let x = other.ids[k];
                j = gallop_to(ids, j, x);
                if j == ids.len() {
                    break;
                }
                if ids[j] == x {
                    ids[w] = x;
                    w += 1;
                    j += 1;
                }
            }
            ids.truncate(w);
        } else {
            let mut w = 0;
            let mut j = 0;
            let gallop = ids.len().saturating_mul(GALLOP_RATIO) < other.ids.len();
            for i in 0..ids.len() {
                let x = ids[i];
                if gallop {
                    j = gallop_to(&other.ids, j, x);
                } else {
                    while j < other.ids.len() && other.ids[j] < x {
                        j += 1;
                    }
                }
                if j == other.ids.len() {
                    break;
                }
                if other.ids[j] == x {
                    ids[w] = x;
                    w += 1;
                    j += 1;
                }
            }
            ids.truncate(w);
        }
    }

    fn intersect_many(postings: &[&Self]) -> Option<Self> {
        match postings {
            [] => None,
            [one] => Some((*one).clone()),
            _ => {
                // Single-pass k-way: walk the smallest list once and gallop
                // a cursor through each other list. One output allocation,
                // no intermediate postings at all.
                let mut order: Vec<&Self> = postings.to_vec();
                order.sort_by_key(|p| p.ids.len());
                let (smallest, rest) = order.split_first().expect("len >= 2");
                let mut out = Vec::with_capacity(smallest.ids.len());
                let mut cursors = vec![0usize; rest.len()];
                'outer: for &x in smallest.ids.iter() {
                    for (cur, list) in cursors.iter_mut().zip(rest) {
                        *cur = gallop_to(&list.ids, *cur, x);
                        if *cur == list.ids.len() {
                            // Every later id of the smallest list is larger
                            // still, so nothing more can match anywhere.
                            break 'outer;
                        }
                        if list.ids[*cur] != x {
                            continue 'outer;
                        }
                    }
                    out.push(x);
                }
                Some(TidVec { ids: out.into() })
            }
        }
    }

    fn or(&self, other: &Self) -> Self {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.ids.len() + other.ids.len());
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        TidVec { ids: out.into() }
    }

    fn andnot(&self, other: &Self) -> Self {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::with_capacity(self.ids.len());
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        TidVec { ids: out.into() }
    }

    fn cardinality(&self) -> u64 {
        self.ids.len() as u64
    }

    fn for_each(&self, mut f: impl FnMut(u32)) {
        for &id in self.ids.iter() {
            f(id);
        }
    }

    fn and_cardinality(&self, other: &Self) -> u64 {
        // Galloping, non-materializing count when skewed; linear otherwise.
        let (small, large) = if self.ids.len() <= other.ids.len() {
            (&self.ids, &other.ids)
        } else {
            (&other.ids, &self.ids)
        };
        let mut n = 0u64;
        if small.len().saturating_mul(GALLOP_RATIO) < large.len() {
            let mut j = 0;
            for &x in small.iter() {
                j = gallop_to(large, j, x);
                if j == large.len() {
                    break;
                }
                if large[j] == x {
                    n += 1;
                    j += 1;
                }
            }
        } else {
            let (mut i, mut j) = (0, 0);
            while i < small.len() && j < large.len() {
                match small[i].cmp(&large[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        n += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        n
    }

    fn to_vec(&self) -> Vec<u32> {
        self.ids.as_slice().to_vec()
    }

    fn contains(&self, id: u32) -> bool {
        self.ids.binary_search(&id).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = TidVec::from_sorted(&[1, 3, 5, 7]);
        let b = TidVec::from_sorted(&[3, 4, 5]);
        assert_eq!(a.and(&b).to_vec(), vec![3, 5]);
        assert_eq!(a.or(&b).to_vec(), vec![1, 3, 4, 5, 7]);
        assert_eq!(a.andnot(&b).to_vec(), vec![1, 7]);
        assert_eq!(a.and_cardinality(&b), 2);
        assert!(a.contains(7));
        assert!(!a.contains(4));
    }

    #[test]
    fn empty_interactions() {
        let a = TidVec::from_sorted(&[1, 2]);
        let e = TidVec::new();
        assert_eq!(a.and(&e).cardinality(), 0);
        assert_eq!(a.or(&e).to_vec(), vec![1, 2]);
        assert_eq!(e.andnot(&a).cardinality(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_duplicates() {
        TidVec::from_sorted(&[1, 1]);
    }

    #[test]
    fn gallop_to_brackets_correctly() {
        let hay: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        for from in [0usize, 1, 500, 999, 1000] {
            for needle in [0u32, 1, 2, 3, 1499, 1500, 2997, 2998, 5000] {
                let expect = from + hay[from.min(hay.len())..].partition_point(|&v| v < needle);
                assert_eq!(gallop_to(&hay, from, needle), expect, "from={from} needle={needle}");
            }
        }
    }

    #[test]
    fn skewed_intersections_match_linear() {
        // 40 ids vs 40_000: forces the galloping path in every kernel.
        let small: Vec<u32> = (0..40u32).map(|i| i * 997).collect();
        let large: Vec<u32> = (0..40_000u32).collect();
        let s = TidVec::from_sorted(&small);
        let l = TidVec::from_sorted(&large);
        let expect: Vec<u32> = small.iter().copied().filter(|&x| x < 40_000).collect();
        assert_eq!(s.and(&l).to_vec(), expect);
        assert_eq!(l.and(&s).to_vec(), expect);
        assert_eq!(s.and_cardinality(&l), expect.len() as u64);
        assert_eq!(l.and_cardinality(&s), expect.len() as u64);
        let mut a = s.clone();
        a.and_assign(&l);
        assert_eq!(a.to_vec(), expect);
        let mut b = l.clone();
        b.and_assign(&s);
        assert_eq!(b.to_vec(), expect);
        let kway = TidVec::intersect_many(&[&l, &s, &l]).unwrap();
        assert_eq!(kway.to_vec(), expect);
    }
}
