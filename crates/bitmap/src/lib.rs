#![warn(missing_docs)]
//! Compressed bitmaps for SCube (JavaEWAH substitute).
//!
//! The original SCube tool stores transaction-id sets ("tidsets") as
//! compressed bitmaps using the JavaEWAH library. This crate reimplements
//! that substrate from scratch:
//!
//! * [`EwahBitmap`] — a 64-bit word-aligned hybrid (EWAH) compressed bitmap:
//!   runs of identical words are run-length encoded, other words are stored
//!   verbatim. Fast `AND`/`OR`/`ANDNOT`/`XOR` by merging compressed streams;
//!   this is the default tidset representation of the cube builder.
//! * [`DenseBitmap`] — an uncompressed `Vec<u64>` bitset, better for small
//!   dense universes (per-unit masks).
//! * [`TidVec`] — a sorted vector of ids, the classical Eclat
//!   representation; kept for the representation-ablation benchmarks.
//!
//! All three implement the [`Posting`] trait so the mining and cube layers
//! can be written once and benchmarked against each representation
//! (experiment E11 of `DESIGN.md`).

pub mod dense;
pub mod ewah;
pub mod tidvec;

pub use dense::DenseBitmap;
pub use ewah::EwahBitmap;
pub use tidvec::TidVec;

/// A set of `u32` ids (transaction ids / node ids) supporting the boolean
/// algebra the SCube pipeline needs.
///
/// Implementations must behave like an *infinite, zero-extended* bit vector:
/// ids absent from the set read as 0 regardless of representation length.
pub trait Posting: Sized + Clone {
    /// Build from strictly increasing ids.
    ///
    /// # Panics
    /// Implementations may panic if `ids` is not strictly increasing.
    fn from_sorted(ids: &[u32]) -> Self;

    /// The full universe `{0, 1, …, n-1}`.
    ///
    /// The default materializes an id vector; compressed representations
    /// override it with O(1)-ish construction (a run of set words), which
    /// matters because the cube builder requests the universe for every
    /// empty-context lookup.
    fn full(n: u32) -> Self {
        Self::from_sorted(&(0..n).collect::<Vec<u32>>())
    }

    /// Set intersection.
    #[must_use]
    fn and(&self, other: &Self) -> Self;

    /// Set union.
    #[must_use]
    fn or(&self, other: &Self) -> Self;

    /// Set difference (`self \ other`).
    #[must_use]
    fn andnot(&self, other: &Self) -> Self;

    /// Number of ids in the set.
    fn cardinality(&self) -> u64;

    /// Visit every id in increasing order.
    fn for_each(&self, f: impl FnMut(u32));

    /// Cardinality of the intersection, without materializing it.
    ///
    /// The default materializes; representations override with streaming
    /// counting where profitable (this is the hot operation of support
    /// counting in Eclat and of per-unit histograms in the cube builder).
    fn and_cardinality(&self, other: &Self) -> u64 {
        self.and(other).cardinality()
    }

    /// Collect the ids into a vector (ascending).
    fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.cardinality() as usize);
        self.for_each(|id| v.push(id));
        v
    }

    /// True when the set is empty.
    fn is_empty(&self) -> bool {
        self.cardinality() == 0
    }

    /// Membership test. Default is O(n); representations override.
    fn contains(&self, id: u32) -> bool {
        let mut found = false;
        self.for_each(|x| {
            if x == id {
                found = true;
            }
        });
        found
    }
}

/// Intersect many postings, smallest-cardinality first (standard Eclat
/// optimization: the running intersection can only shrink).
pub fn intersect_all<P: Posting>(postings: &[&P]) -> Option<P> {
    if postings.is_empty() {
        return None;
    }
    let mut order: Vec<usize> = (0..postings.len()).collect();
    order.sort_by_key(|&i| postings[i].cardinality());
    let mut acc = postings[order[0]].clone();
    for &i in &order[1..] {
        if acc.is_empty() {
            break;
        }
        acc = acc.and(postings[i]);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_all_empty_input() {
        assert!(intersect_all::<EwahBitmap>(&[]).is_none());
    }

    #[test]
    fn intersect_all_three_ways() {
        let a = EwahBitmap::from_sorted(&[1, 2, 3, 4, 5]);
        let b = EwahBitmap::from_sorted(&[2, 4, 6]);
        let c = EwahBitmap::from_sorted(&[4, 5, 6]);
        let r = intersect_all(&[&a, &b, &c]).unwrap();
        assert_eq!(r.to_vec(), vec![4]);
    }

    #[test]
    fn intersect_all_single() {
        let a = TidVec::from_sorted(&[7, 9]);
        let r = intersect_all(&[&a]).unwrap();
        assert_eq!(r.to_vec(), vec![7, 9]);
    }

    #[test]
    fn full_matches_from_sorted() {
        fn check<P: Posting>() {
            for n in [0u32, 1, 63, 64, 65, 128, 1000] {
                let expected: Vec<u32> = (0..n).collect();
                let f = P::full(n);
                assert_eq!(f.to_vec(), expected, "full({n})");
                assert_eq!(f.cardinality(), u64::from(n), "cardinality of full({n})");
            }
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
    }

    #[test]
    fn full_intersects_like_identity() {
        let a = EwahBitmap::from_sorted(&[3, 64, 1000]);
        assert_eq!(EwahBitmap::full(2000).and(&a).to_vec(), vec![3, 64, 1000]);
    }
}
