#![warn(missing_docs)]
//! Compressed bitmaps for SCube (JavaEWAH substitute).
//!
//! The original SCube tool stores transaction-id sets ("tidsets") as
//! compressed bitmaps using the JavaEWAH library. This crate reimplements
//! that substrate from scratch:
//!
//! * [`EwahBitmap`] — a 64-bit word-aligned hybrid (EWAH) compressed bitmap:
//!   runs of identical words are run-length encoded, other words are stored
//!   verbatim. Fast `AND`/`OR`/`ANDNOT`/`XOR` by merging compressed streams;
//!   this is the default tidset representation of the cube builder.
//! * [`DenseBitmap`] — an uncompressed `Vec<u64>` bitset, better for small
//!   dense universes (per-unit masks).
//! * [`TidVec`] — a sorted vector of ids, the classical Eclat
//!   representation; kept for the representation-ablation benchmarks.
//!
//! All three implement the [`Posting`] trait so the mining and cube layers
//! can be written once and benchmarked against each representation
//! (experiment E11 of `DESIGN.md`).

use scube_common::mmap::ByteRegion;

pub mod adaptive;
pub mod dense;
pub mod ewah;
pub mod kernels;
pub mod reference;
pub mod tidvec;

pub use adaptive::AdaptivePosting;
pub use dense::DenseBitmap;
pub use ewah::EwahBitmap;
pub use tidvec::TidVec;

/// Runtime-selectable posting representation, for ablation entry points and
/// benchmark grids that enumerate representations by value.
///
/// The pipeline itself is generic over [`Posting`] at compile time; this
/// enum names the available choices. The first three map to the fixed
/// representations; [`Representation::Adaptive`] maps to
/// [`AdaptivePosting`], which re-picks the cheapest of the three per
/// posting from its density and cardinality at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Representation {
    /// [`EwahBitmap`] — compressed, the pipeline default.
    Ewah,
    /// [`DenseBitmap`] — uncompressed `u64` words.
    Dense,
    /// [`TidVec`] — sorted id vector.
    TidVec,
    /// [`AdaptivePosting`] — per-posting choice among the other three.
    Adaptive,
}

impl Representation {
    /// All representations, in benchmark-grid order.
    pub const ALL: [Representation; 4] = [
        Representation::Ewah,
        Representation::Dense,
        Representation::TidVec,
        Representation::Adaptive,
    ];

    /// Stable lowercase name (used in benchmark JSON).
    pub fn name(self) -> &'static str {
        match self {
            Representation::Ewah => "ewah",
            Representation::Dense => "dense",
            Representation::TidVec => "tidvec",
            Representation::Adaptive => "adaptive",
        }
    }
}

/// A set of `u32` ids (transaction ids / node ids) supporting the boolean
/// algebra the SCube pipeline needs.
///
/// Implementations must behave like an *infinite, zero-extended* bit vector:
/// ids absent from the set read as 0 regardless of representation length.
pub trait Posting: Sized + Clone {
    /// One-byte representation tag stored in serialized headers, so a
    /// reader can verify it decodes postings with the representation that
    /// wrote them (see [`Posting::write_bytes`]).
    const SERIAL_TAG: u8;

    /// Build from strictly increasing ids.
    ///
    /// # Panics
    /// Implementations may panic if `ids` is not strictly increasing.
    fn from_sorted(ids: &[u32]) -> Self;

    /// Append the canonical little-endian binary encoding of this posting.
    ///
    /// The default encodes the sorted id list (`u32` count, then the ids);
    /// representations with a native word layout override it so a snapshot
    /// round-trip is a plain memory copy. Every encoding must satisfy
    /// `read_bytes(write_bytes(p)) == p`, and writing the decoded posting
    /// again must reproduce the original bytes exactly (stable round-trip).
    fn write_bytes(&self, out: &mut Vec<u8>) {
        let ids = self.to_vec();
        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for id in ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
    }

    /// Decode one posting from the front of `bytes`, returning it together
    /// with the number of bytes consumed, or `None` on a truncated or
    /// corrupt prefix.
    fn read_bytes(bytes: &[u8]) -> Option<(Self, usize)> {
        let n = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        let end = 4usize.checked_add(n.checked_mul(4)?)?;
        let body = bytes.get(4..end)?;
        let mut ids = Vec::with_capacity(n);
        let mut prev: Option<u32> = None;
        for chunk in body.chunks_exact(4) {
            let id = u32::from_le_bytes(chunk.try_into().ok()?);
            if prev.is_some_and(|p| id <= p) {
                return None;
            }
            prev = Some(id);
            ids.push(id);
        }
        Some((Self::from_sorted(&ids), end))
    }

    /// Append this posting's snapshot-v4 *slot* encoding: the raw
    /// fixed-width little-endian table a memory-mapped reader can serve in
    /// place. Unlike [`Posting::write_bytes`], a slot carries no counts or
    /// tags of its own — the cardinality lives in the snapshot's
    /// checksummed posting directory and comes back through `card` on the
    /// read side.
    ///
    /// The default writes the sorted ids as little-endian `u32`s (the
    /// native [`TidVec`] layout); word-based representations override with
    /// their word tables. `read_slot(write_slot(p), p.cardinality())` must
    /// reproduce `p` exactly, and re-writing the decoded posting must
    /// reproduce the original bytes (stable round-trip).
    fn write_slot(&self, out: &mut Vec<u8>) {
        self.for_each(|id| out.extend_from_slice(&id.to_le_bytes()));
    }

    /// Decode an owned posting from a v4 slot (the heap-load path). Fully
    /// validating: `None` on any structural defect or when the slot does
    /// not hold exactly `card` ids.
    fn read_slot(bytes: &[u8], card: u64) -> Option<Self> {
        if !bytes.len().is_multiple_of(4) || (bytes.len() / 4) as u64 != card {
            return None;
        }
        let mut ids = Vec::with_capacity(bytes.len() / 4);
        let mut prev: Option<u32> = None;
        for chunk in bytes.chunks_exact(4) {
            let id = u32::from_le_bytes(chunk.try_into().ok()?);
            if prev.is_some_and(|p| id <= p) {
                return None;
            }
            prev = Some(id);
            ids.push(id);
        }
        Some(Self::from_sorted(&ids))
    }

    /// Borrow a posting from a mapped v4 slot (the `open_mmap` path),
    /// validating *structure* only — enough to guarantee that every later
    /// operation is panic-free and that every id the posting can produce
    /// is `< universe`, in time proportional to the slot's metadata rather
    /// than its data (exception: [`TidVec`] must scan its ids, since the
    /// ids *are* the structure). `card` comes from the checksummed posting
    /// directory and is trusted; a slot whose actual contents disagree may
    /// answer queries wrong, but never crashes.
    ///
    /// The default copies through the fully-validating
    /// [`Posting::read_slot`]; representations with a borrowable layout
    /// override it to adopt the region zero-copy. Callers must have
    /// checked the host is little-endian first.
    fn map_slot(region: ByteRegion, card: u64, universe: u32) -> Option<Self> {
        let p = Self::read_slot(region.as_slice(), card)?;
        let mut ok = true;
        p.for_each(|id| ok &= id < universe);
        ok.then_some(p)
    }

    /// The full universe `{0, 1, …, n-1}`.
    ///
    /// The default materializes an id vector; compressed representations
    /// override it with O(1)-ish construction (a run of set words), which
    /// matters because the cube builder requests the universe for every
    /// empty-context lookup.
    fn full(n: u32) -> Self {
        Self::from_sorted(&(0..n).collect::<Vec<u32>>())
    }

    /// Extend the set in place with strictly increasing ids, all larger
    /// than every id already present — the shape of a delta-ingest append,
    /// where new transaction ids always follow the existing ones.
    ///
    /// The default re-encodes through [`Posting::from_sorted`];
    /// representations override it with a cheaper tail extension
    /// ([`TidVec`] pushes, [`DenseBitmap`] grows its word vector,
    /// [`EwahBitmap`] merges the compressed streams without decompressing).
    ///
    /// # Panics
    /// Implementations may panic if `ids` is not strictly increasing or not
    /// strictly above the current maximum id.
    fn append_sorted(&mut self, ids: &[u32]) {
        if ids.is_empty() {
            return;
        }
        let mut all = self.to_vec();
        all.extend_from_slice(ids);
        *self = Self::from_sorted(&all);
    }

    /// Remove strictly increasing ids from the set, all of which must be
    /// present — the shape of a delta-retract, where the caller already
    /// intersected the removal set with this posting.
    ///
    /// The default re-encodes through [`Posting::from_sorted`];
    /// representations override it with cheaper surgery ([`TidVec`] drains
    /// the matching slots, [`DenseBitmap`] clears words in place,
    /// [`EwahBitmap`] stream-differences the compressed streams). Every
    /// override must leave the set in its canonical encoding: removing ids
    /// and rebuilding from scratch must serialize identically
    /// (`remove_sorted_matches_from_scratch_build` below), which is what
    /// keeps retracted snapshots byte-identical to rebuilt ones.
    ///
    /// # Panics
    /// Implementations may panic if `ids` is not strictly increasing or
    /// contains an id not present in the set.
    fn remove_sorted(&mut self, ids: &[u32]) {
        if ids.is_empty() {
            return;
        }
        let mut keep = Vec::with_capacity((self.cardinality() as usize).saturating_sub(ids.len()));
        let mut i = 0;
        self.for_each(|id| {
            if i < ids.len() && ids[i] == id {
                if i > 0 {
                    assert!(ids[i - 1] < ids[i], "ids must be strictly increasing");
                }
                i += 1;
            } else {
                keep.push(id);
            }
        });
        assert_eq!(i, ids.len(), "removed ids must all be present");
        *self = Self::from_sorted(&keep);
    }

    /// Set intersection.
    #[must_use]
    fn and(&self, other: &Self) -> Self;

    /// Set union.
    #[must_use]
    fn or(&self, other: &Self) -> Self;

    /// Set difference (`self \ other`).
    #[must_use]
    fn andnot(&self, other: &Self) -> Self;

    /// Number of ids in the set.
    fn cardinality(&self) -> u64;

    /// Visit every id in increasing order.
    fn for_each(&self, f: impl FnMut(u32));

    /// Cardinality of the intersection, without materializing it.
    ///
    /// The default materializes; representations override with streaming
    /// counting where profitable (this is the hot operation of support
    /// counting in Eclat and of per-unit histograms in the cube builder).
    fn and_cardinality(&self, other: &Self) -> u64 {
        self.and(other).cardinality()
    }

    /// Intersection into a caller-owned accumulator, reusing its storage.
    ///
    /// This is the allocation-free building block of the batched k-way AND:
    /// a loop that ping-pongs two accumulators through `and_into` performs
    /// any number of intersection steps with at most the first step's
    /// allocation. The default assigns a fresh intersection (correct for
    /// any implementation); every built-in representation overrides it to
    /// write into `out`'s existing buffer.
    fn and_into(&self, other: &Self, out: &mut Self) {
        *out = self.and(other);
    }

    /// In-place intersection (`*self &= other`).
    ///
    /// The default materializes; [`TidVec`] and [`DenseBitmap`] override
    /// with true in-place kernels (the intersection is a subsequence of
    /// `self`, so it can be written over `self`'s own storage).
    fn and_assign(&mut self, other: &Self) {
        *self = self.and(other);
    }

    /// Batched k-way intersection: smallest-cardinality first, empty
    /// short-circuit, and **no per-step posting allocation** — the default
    /// ping-pongs two accumulators through [`Posting::and_into`], so k
    /// steps cost at most two buffers regardless of k.
    ///
    /// [`TidVec`] overrides this with a single-pass galloping k-way merge
    /// that writes the result once. `None` when `postings` is empty
    /// (an empty *intersection* of zero sets would be the full universe,
    /// which a posting cannot represent without knowing `n`).
    fn intersect_many(postings: &[&Self]) -> Option<Self> {
        match postings {
            [] => None,
            [one] => Some((*one).clone()),
            _ => {
                // Cache the cardinalities: `sort_by_key` re-evaluates its
                // key per comparison, and `cardinality` is a full popcount
                // for the word-based representations.
                let cards: Vec<u64> = postings.iter().map(|p| p.cardinality()).collect();
                let mut order: Vec<usize> = (0..postings.len()).collect();
                order.sort_by_key(|&i| cards[i]);
                let mut acc = postings[order[0]].clone();
                let mut spare = Self::from_sorted(&[]);
                for &i in &order[1..] {
                    if acc.is_empty() {
                        break;
                    }
                    acc.and_into(postings[i], &mut spare);
                    std::mem::swap(&mut acc, &mut spare);
                }
                Some(acc)
            }
        }
    }

    /// Collect the ids into a vector (ascending).
    fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.cardinality() as usize);
        self.for_each(|id| v.push(id));
        v
    }

    /// True when the set is empty.
    fn is_empty(&self) -> bool {
        self.cardinality() == 0
    }

    /// Membership test. Default is O(n); representations override.
    fn contains(&self, id: u32) -> bool {
        let mut found = false;
        self.for_each(|x| {
            if x == id {
                found = true;
            }
        });
        found
    }
}

/// Intersect many postings, smallest-cardinality first (standard Eclat
/// optimization: the running intersection can only shrink).
///
/// Delegates to [`Posting::intersect_many`], the batched one-pass kernel:
/// no per-step posting allocation, representation-specific fast paths.
pub fn intersect_all<P: Posting>(postings: &[&P]) -> Option<P> {
    P::intersect_many(postings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_all_empty_input() {
        assert!(intersect_all::<EwahBitmap>(&[]).is_none());
    }

    #[test]
    fn intersect_all_three_ways() {
        let a = EwahBitmap::from_sorted(&[1, 2, 3, 4, 5]);
        let b = EwahBitmap::from_sorted(&[2, 4, 6]);
        let c = EwahBitmap::from_sorted(&[4, 5, 6]);
        let r = intersect_all(&[&a, &b, &c]).unwrap();
        assert_eq!(r.to_vec(), vec![4]);
    }

    #[test]
    fn intersect_all_single() {
        let a = TidVec::from_sorted(&[7, 9]);
        let r = intersect_all(&[&a]).unwrap();
        assert_eq!(r.to_vec(), vec![7, 9]);
    }

    #[test]
    fn full_matches_from_sorted() {
        fn check<P: Posting>() {
            for n in [0u32, 1, 63, 64, 65, 128, 1000] {
                let expected: Vec<u32> = (0..n).collect();
                let f = P::full(n);
                assert_eq!(f.to_vec(), expected, "full({n})");
                assert_eq!(f.cardinality(), u64::from(n), "cardinality of full({n})");
            }
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
        check::<AdaptivePosting>();
    }

    #[test]
    fn full_intersects_like_identity() {
        let a = EwahBitmap::from_sorted(&[3, 64, 1000]);
        assert_eq!(EwahBitmap::full(2000).and(&a).to_vec(), vec![3, 64, 1000]);
    }

    #[test]
    fn intersect_all_matches_pairwise_fold() {
        fn check<P: Posting + PartialEq + std::fmt::Debug>() {
            let a = P::from_sorted(&(0..400).step_by(2).collect::<Vec<u32>>());
            let b = P::from_sorted(&(0..400).step_by(3).collect::<Vec<u32>>());
            let c = P::from_sorted(&(0..400).step_by(5).collect::<Vec<u32>>());
            let batched = intersect_all(&[&a, &b, &c]).unwrap();
            let folded = a.and(&b).and(&c);
            assert_eq!(batched, folded);
            assert_eq!(batched.to_vec(), (0..400).step_by(30).collect::<Vec<u32>>());
            // Disjoint input short-circuits to empty.
            let d = P::from_sorted(&[401]);
            assert!(intersect_all(&[&a, &d, &b]).unwrap().is_empty());
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
        check::<AdaptivePosting>();
    }

    #[test]
    fn and_into_and_assign_match_and() {
        fn check<P: Posting + PartialEq + std::fmt::Debug>() {
            let a = P::from_sorted(&[1, 3, 5, 64, 65, 900]);
            let b = P::from_sorted(&[3, 64, 900, 1000]);
            let expect = a.and(&b);
            let mut out = P::from_sorted(&[7, 8]); // stale contents must be overwritten
            a.and_into(&b, &mut out);
            assert_eq!(out, expect);
            let mut c = a.clone();
            c.and_assign(&b);
            assert_eq!(c, expect);
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
        check::<AdaptivePosting>();
    }

    #[test]
    fn serial_tags_distinct() {
        let tags = [
            EwahBitmap::SERIAL_TAG,
            DenseBitmap::SERIAL_TAG,
            TidVec::SERIAL_TAG,
            AdaptivePosting::SERIAL_TAG,
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn byte_roundtrip_all_representations() {
        fn check<P: Posting + PartialEq + std::fmt::Debug>() {
            for ids in [
                vec![],
                vec![0u32],
                vec![0, 1, 5, 63, 64, 65, 1000],
                (0..500).collect::<Vec<u32>>(),
                vec![7, 1_000_000, 50_000_000],
            ] {
                let p = P::from_sorted(&ids);
                let mut bytes = vec![0xAB]; // leading junk the encoder must append after
                p.write_bytes(&mut bytes);
                let (decoded, consumed) = P::read_bytes(&bytes[1..]).expect("decodes");
                assert_eq!(consumed, bytes.len() - 1, "{ids:?}: trailing bytes");
                assert_eq!(decoded, p, "{ids:?}");
                assert_eq!(decoded.to_vec(), ids, "{ids:?}");
                // Stable round-trip: re-encoding reproduces the same bytes.
                let mut again = Vec::new();
                decoded.write_bytes(&mut again);
                assert_eq!(again, bytes[1..], "{ids:?}: encoding not stable");
            }
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
        check::<AdaptivePosting>();
    }

    #[test]
    fn read_bytes_rejects_corrupt_input() {
        // Truncated count / body.
        assert!(EwahBitmap::read_bytes(&[1, 2]).is_none());
        assert!(TidVec::read_bytes(&[5, 0, 0, 0, 1, 0]).is_none());
        assert!(DenseBitmap::read_bytes(&[9, 0, 0, 0]).is_none());
        // Non-increasing ids in the default (sorted-id) encoding.
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&7u32.to_le_bytes());
        bad.extend_from_slice(&7u32.to_le_bytes());
        assert!(TidVec::read_bytes(&bad).is_none());
        // EWAH: declared cardinality must match the decoded words.
        let p = EwahBitmap::from_sorted(&[1, 2, 3]);
        let mut bytes = Vec::new();
        p.write_bytes(&mut bytes);
        bytes[0] ^= 1; // flip the cardinality field
        assert!(EwahBitmap::read_bytes(&bytes).is_none());
    }

    #[test]
    fn append_sorted_matches_from_scratch_build() {
        fn check<P: Posting + PartialEq + std::fmt::Debug>() {
            for (base, delta) in [
                (vec![], vec![0u32, 3]),
                (vec![0u32, 1, 5], vec![]),
                (vec![0u32, 1, 5], vec![6]),
                (vec![3u32, 63], vec![64, 65, 200]),
                (vec![0u32, 64, 1000], vec![1001, 1002, 5000]),
                ((0..300).collect::<Vec<u32>>(), (300..420).collect::<Vec<u32>>()),
                (vec![7u32], vec![1_000_000]),
            ] {
                let mut appended = P::from_sorted(&base);
                appended.append_sorted(&delta);
                let all: Vec<u32> = base.iter().chain(delta.iter()).copied().collect();
                let scratch = P::from_sorted(&all);
                assert_eq!(appended, scratch, "{base:?} + {delta:?}");
                // Canonical encoding must not depend on the build path:
                // snapshot byte-identity after an update relies on this.
                let (mut a, mut b) = (Vec::new(), Vec::new());
                appended.write_bytes(&mut a);
                scratch.write_bytes(&mut b);
                assert_eq!(a, b, "{base:?} + {delta:?}: encodings diverge");
            }
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
        check::<AdaptivePosting>();
    }

    #[test]
    fn remove_sorted_matches_from_scratch_build() {
        fn check<P: Posting + PartialEq + std::fmt::Debug>() {
            for (base, removed) in [
                (vec![0u32, 3], vec![0u32, 3]),
                (vec![0u32, 1, 5], vec![]),
                (vec![0u32, 1, 5], vec![1]),
                (vec![3u32, 63, 64, 65, 200], vec![63, 64]),
                (vec![0u32, 64, 1000, 1001, 5000], vec![1000, 5000]),
                ((0..420).collect::<Vec<u32>>(), (0..420).step_by(3).collect::<Vec<u32>>()),
                ((0..300).collect::<Vec<u32>>(), (100..300).collect::<Vec<u32>>()),
                (vec![7u32, 1_000_000], vec![1_000_000]),
            ] {
                let mut shrunk = P::from_sorted(&base);
                shrunk.remove_sorted(&removed);
                let survivors: Vec<u32> =
                    base.iter().copied().filter(|id| !removed.contains(id)).collect();
                let scratch = P::from_sorted(&survivors);
                assert_eq!(shrunk, scratch, "{base:?} - {removed:?}");
                assert_eq!(shrunk.to_vec(), survivors, "{base:?} - {removed:?}");
                // Canonical encoding must not depend on the build path:
                // snapshot byte-identity after a retraction relies on this.
                let (mut a, mut b) = (Vec::new(), Vec::new());
                shrunk.write_bytes(&mut a);
                scratch.write_bytes(&mut b);
                assert_eq!(a, b, "{base:?} - {removed:?}: encodings diverge");
            }
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
        check::<AdaptivePosting>();
    }

    #[test]
    fn remove_sorted_rejects_absent_ids() {
        fn check<P: Posting + std::fmt::Debug>() {
            let result = std::panic::catch_unwind(|| {
                let mut p = P::from_sorted(&[1, 5, 9]);
                p.remove_sorted(&[5, 6]);
            });
            assert!(result.is_err(), "removing an absent id must panic");
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
        check::<AdaptivePosting>();
    }

    const SLOT_CASES: [&[u32]; 6] = [
        &[],
        &[0],
        &[0, 1, 5, 63, 64, 65, 1000],
        &[3, 64, 1000, 1001, 5000],
        &[7, 1_000_000, 50_000_000],
        &[63],
    ];

    #[test]
    fn slot_roundtrip_all_representations() {
        fn check<P: Posting + PartialEq + std::fmt::Debug>() {
            for ids in SLOT_CASES {
                let mut all: Vec<Vec<u32>> = vec![ids.to_vec()];
                all.push((0..500).collect()); // dense-ish shape too
                for ids in all {
                    let p = P::from_sorted(&ids);
                    let mut slot = Vec::new();
                    p.write_slot(&mut slot);
                    let q = P::read_slot(&slot, p.cardinality()).expect("slot decodes");
                    assert_eq!(q, p, "{ids:?}");
                    // Stable round-trip: re-encoding reproduces the bytes.
                    let mut again = Vec::new();
                    q.write_slot(&mut again);
                    assert_eq!(again, slot, "{ids:?}: slot encoding not stable");
                    // A cardinality that disagrees with the slot is rejected.
                    assert!(P::read_slot(&slot, p.cardinality() + 1).is_none(), "{ids:?}");
                }
            }
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
        check::<AdaptivePosting>();
    }

    #[test]
    fn map_slot_matches_heap_decode() {
        if cfg!(target_endian = "big") {
            return; // mapped views are little-endian-host only
        }
        use scube_common::mmap::MmapFile;
        use std::sync::Arc;
        fn check<P: Posting + PartialEq + std::fmt::Debug>(name: &str) {
            for (case, ids) in SLOT_CASES.iter().enumerate() {
                let p = P::from_sorted(ids);
                let mut slot = Vec::new();
                p.write_slot(&mut slot);
                let path = std::env::temp_dir().join(format!("scube_slot_{name}_{case}.bin"));
                std::fs::write(&path, &slot).unwrap();
                let file = Arc::new(MmapFile::open(&path).unwrap());
                let universe = ids.last().map_or(0, |&m| m + 1);
                let q =
                    P::map_slot(ByteRegion::whole(Arc::clone(&file)), p.cardinality(), universe)
                        .expect("mapped slot decodes");
                assert_eq!(q.to_vec(), *ids, "{name} case {case}");
                // A universe bound at or below the max id must be rejected:
                // that is the check that keeps `unit_of[tid]` lookups in
                // bounds when serving a mapped snapshot.
                if let Some(&max) = ids.last() {
                    assert!(
                        P::map_slot(ByteRegion::whole(Arc::clone(&file)), p.cardinality(), max)
                            .is_none(),
                        "{name} case {case}: universe bound not enforced"
                    );
                }
                std::fs::remove_file(&path).ok();
            }
        }
        check::<EwahBitmap>("ewah");
        check::<DenseBitmap>("dense");
        check::<TidVec>("tidvec");
        check::<AdaptivePosting>("adaptive");
    }

    #[test]
    fn read_bytes_consumes_prefix_only() {
        let a = TidVec::from_sorted(&[1, 9]);
        let b = TidVec::from_sorted(&[4]);
        let mut bytes = Vec::new();
        a.write_bytes(&mut bytes);
        let split = bytes.len();
        b.write_bytes(&mut bytes);
        let (da, na) = TidVec::read_bytes(&bytes).unwrap();
        assert_eq!(na, split);
        assert_eq!(da, a);
        let (db, _) = TidVec::read_bytes(&bytes[na..]).unwrap();
        assert_eq!(db, b);
    }
}
