//! Incremental cube maintenance: fold appended *and retracted* rows into a
//! built cube.
//!
//! SCube as published is a batch tool — any new data meant re-mining and
//! rebuilding the whole cube. This module makes a built cube a *maintained*
//! artifact instead: an [`UpdateBatch`] of appended rows and retractions
//! (by tid or by exact row match) is folded into the existing
//! [`VerticalDb`] — postings extended at their tails via
//! [`Posting::append_sorted`], shrunk via [`Posting::remove_sorted`] — and
//! only the affected cells are recomputed. The result is **bit-identical**
//! to a full rebuild on the edited data (property-tested in
//! `tests/cube_update_equivalence.rs`) because the maintenance store holds
//! exact integer sufficient statistics, and integers subtract as exactly as
//! they add: `hist(edited) = hist(base) + hist(appended Δ) −
//! hist(retracted Δ)`. The structural facts that bound the work:
//!
//! 1. **Dirtiness is decided by the context alone.** A cell `(A | B)` is
//!    evaluated from the per-unit histograms of `tidset(B)` (population)
//!    and `tidset(A ∪ B) ⊆ tidset(B)` (minority). The histograms change
//!    iff `tidset(B)` gained appended tids or lost retracted ones — iff
//!    some delta row contains all of `B` (`B = ⋆` is always dirty: the
//!    population universe changed). Clean cells keep their exact floats,
//!    untouched.
//! 2. **Appends only promote; retractions only demote.** Appends never
//!    evict a cell (supports only grow, and a superset can never catch an
//!    equal-support subset by gaining rows). Retractions never create one:
//!    supports only shrink, and two itemsets with equal tidsets lose the
//!    same transactions, so a non-closed itemset stays non-closed.
//!    Demotion therefore mirrors promotion exactly: a dirty cell whose
//!    support falls below `min_support` — or whose itemset loses
//!    closedness under [`Materialize::ClosedOnly`], checked against an
//!    O(row-width) witness transaction — is evicted.
//! 3. **Promotions are subsets of single appended rows.** An itemset that
//!    becomes newly frequent — or newly closed — must have gained ids,
//!    hence be contained in some *one* appended row (this survives mixed
//!    batches: a net gain requires an appended occurrence). Each row's
//!    frequent-item projection is enumerated as candidates, with
//!    [`scube_fpm::eclat::mine_vertical_with_tidsets_scoped`] as the
//!    class-level fallback for pathologically wide rows. Supports are
//!    counted over the full updated postings, so promotion is exact.
//!
//! All histogram staging — including the dominated subtraction, which hard-
//! errors on underflow — happens **before** any mutation, so a rejected
//! batch or an inconsistent store leaves the snapshot untouched, byte for
//! byte. Dirty cells are re-evaluated with the same [`UnitScratch`]
//! machinery as [`crate::builder::CubeBuilder`] — identical integer
//! histograms, hence identical index values — and large dirty sets fan out
//! over scoped worker threads with per-worker scratches (cell evaluation is
//! pure, so the parallel update is bit-identical to the serial one).
//!
//! **Dictionary maintenance.** Appends extend the label dictionary at the
//! tail in first-seen order, matching a rebuild on base-then-delta rows.
//! Retractions may *shrink or reorder* it: a rebuild on the edited table
//! interns values and units by first occurrence, so a retraction that
//! removes a value's last row (the value leaves the dictionary) or its
//! first row (its intern position moves) triggers a relabeling pass that
//! renumbers items, units, cells, postings, and store entries exactly as a
//! rebuild would assign them. Tail retractions that empty nothing skip the
//! pass — survivors keep their ids and the postings shrink in place. The
//! within-row tie-break is attribute-major, then prior id, which matches a
//! rebuild's interning for single-valued-per-row attributes (the shape of
//! every final table in this workspace; simultaneously re-first-seen values
//! of one *multi-valued* attribute in one row may tie-break differently
//! than their cell order).

use scube_bitmap::Posting;
use scube_common::{FxHashMap, FxHashSet, Result, ScubeError};
use scube_data::{ItemId, Relation, UnitId, UnitScratch, VerticalDb, MULTI_VALUE_SEPARATOR};
use scube_fpm::eclat::mine_vertical_with_tidsets_scoped;
use scube_segindex::{IndexValues, MeasureSet, UnitCounts};

use crate::builder::Materialize;
use crate::coords::CellCoords;
use crate::cube::{CubeLabels, SegregationCube};

/// Widest frequent-item row projection whose subsets are enumerated
/// directly; wider rows fall back to the scoped Eclat re-mine.
const MAX_SUBSET_WIDTH: usize = 16;

/// A batch of appended individuals and retractions, expressed in label
/// space (`attribute = value` pairs plus a unit name), waiting to be folded
/// into a built cube.
///
/// Appended rows are applied in insertion order; values and units first
/// seen in the batch extend the cube's dictionary. Retractions (by
/// pre-update tid, or by exact row match via [`Self::remove_row`]) apply to
/// the *existing* rows; the edited table a batch produces is
/// `(base ∖ retracted) ⧺ appended`, and the updated snapshot is
/// byte-identical to a rebuild on it for final tables whose attributes are
/// single-valued per row — the shape of every final-table spec in this
/// workspace. For *multi-valued* attributes there is one narrow exception:
/// a retraction that makes two values of one attribute first-occur
/// simultaneously in the same surviving row cannot recover that row's
/// original cell order (the vertical database stores sets, not sequences),
/// so the relabeled dictionary may order those two values differently than
/// a rebuild would intern them. Every cell *value* is still exact — item
/// ids never enter the index math — only the serialized dictionary order
/// can differ (pinned by `multi_valued_relabel_caveat_is_value_exact`).
///
/// ```
/// use scube_cube::UpdateBatch;
///
/// let mut batch = UpdateBatch::new();
/// batch
///     .add_row(&[("sex", "F"), ("region", "north")], "acme")
///     .add_row(&[("sex", "M"), ("region", "south")], "globex");
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    /// `(attribute, value)` pairs + unit name, one entry per individual.
    rows: Vec<(Vec<(String, String)>, String)>,
    /// Retractions by transaction id (pre-update numbering).
    remove_tids: Vec<u32>,
    /// Retractions by exact row match: the `(attribute, value)` pairs and
    /// unit of a row to remove (first unclaimed match wins).
    remove_rows: Vec<(Vec<(String, String)>, String)>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Append one individual: its `(attribute, value)` pairs (repeat the
    /// attribute for multi-valued ones; omit it for missing values) and the
    /// name of the organizational unit it belongs to.
    pub fn add_row<S: AsRef<str>>(&mut self, values: &[(S, S)], unit: &str) -> &mut Self {
        self.rows.push((
            values
                .iter()
                .map(|(a, v)| (a.as_ref().to_string(), v.as_ref().trim().to_string()))
                .collect(),
            unit.to_string(),
        ));
        self
    }

    /// Retract one existing individual by transaction id (the id space of
    /// the snapshot *before* this batch applies; survivors renumber
    /// downwards exactly as a rebuild on the edited table would).
    pub fn remove_tid(&mut self, tid: u32) -> &mut Self {
        self.remove_tids.push(tid);
        self
    }

    /// Retract one existing individual by exact row match: the same
    /// `(attribute, value)` pairs (order-insensitive) and unit name as the
    /// row to remove. When several identical rows exist, the earliest
    /// not-yet-claimed one is removed; a removal that matches no remaining
    /// row is an error at apply time, as is one referencing an attribute
    /// value or unit absent from the snapshot's dictionary.
    pub fn remove_row<S: AsRef<str>>(&mut self, values: &[(S, S)], unit: &str) -> &mut Self {
        self.remove_rows.push((
            values
                .iter()
                .map(|(a, v)| (a.as_ref().to_string(), v.as_ref().trim().to_string()))
                .collect(),
            unit.to_string(),
        ));
        self
    }

    /// Total operations in the batch — appended rows plus retractions —
    /// so `len() == 0` exactly when [`Self::is_empty`] (a retraction-only
    /// batch is *not* empty). Use [`Self::num_rows`] / [`Self::num_removals`]
    /// for the per-side counts.
    pub fn len(&self) -> usize {
        self.num_rows() + self.num_removals()
    }

    /// Number of appended rows in the batch.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of retractions (by tid or by row match) in the batch.
    pub fn num_removals(&self) -> usize {
        self.remove_tids.len() + self.remove_rows.len()
    }

    /// True when the batch holds no appended rows and no retractions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.remove_tids.is_empty() && self.remove_rows.is_empty()
    }

    /// Build a batch from a final-table-shaped [`Relation`]: one column per
    /// cube attribute (all of the cube's SA and CA attributes must be
    /// present; multi-valued cells use the `;` separator) plus the unit
    /// column. This is what `scube update --add rows.csv` parses.
    pub fn from_relation(rel: &Relation, labels: &CubeLabels, unit_column: &str) -> Result<Self> {
        let attrs: Vec<&String> = labels.sa_attrs.iter().chain(labels.ca_attrs.iter()).collect();
        let mut cols = Vec::with_capacity(attrs.len());
        for attr in &attrs {
            let idx = rel.column_index(attr).ok_or_else(|| {
                ScubeError::Schema(format!("update rows miss the cube attribute column '{attr}'"))
            })?;
            cols.push(idx);
        }
        let unit_col = rel.column_index(unit_column).ok_or_else(|| {
            ScubeError::Schema(format!("update rows miss the unit column '{unit_column}'"))
        })?;
        let mut batch = UpdateBatch::new();
        for row in rel.rows() {
            let mut pairs: Vec<(&str, &str)> = Vec::new();
            for (attr, &col) in attrs.iter().zip(&cols) {
                for value in row[col].split(MULTI_VALUE_SEPARATOR) {
                    let value = value.trim();
                    if !value.is_empty() {
                        pairs.push((attr, value));
                    }
                }
            }
            batch.add_row(&pairs, &row[unit_col]);
        }
        Ok(batch)
    }

    /// Add retractions from a final-table-shaped [`Relation`] (same column
    /// rules as [`Self::from_relation`]): every listed row is removed by
    /// exact match. This is what `scube update --remove rows.csv` parses.
    pub fn remove_relation(
        &mut self,
        rel: &Relation,
        labels: &CubeLabels,
        unit_column: &str,
    ) -> Result<&mut Self> {
        let removals = UpdateBatch::from_relation(rel, labels, unit_column)?;
        for (pairs, unit) in removals.rows {
            self.remove_rows.push((pairs, unit));
        }
        Ok(self)
    }
}

/// What one [`UpdateBatch`] application did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Transactions appended.
    pub rows_added: usize,
    /// Transactions retracted.
    pub rows_removed: usize,
    /// Attribute values first seen in the batch (dictionary growth).
    pub new_items: usize,
    /// Units first seen in the batch.
    pub new_units: usize,
    /// Attribute values that lost their last occurrence and left the
    /// dictionary (retractions shrink it exactly as a rebuild would).
    pub dropped_items: usize,
    /// Units that lost their last transaction and were dropped.
    pub dropped_units: usize,
    /// Existing cells whose context gained or lost transactions and
    /// survived re-evaluation.
    pub dirty_cells: usize,
    /// Newly materialized cells (itemsets promoted to frequent — or, under
    /// [`Materialize::ClosedOnly`], to closed).
    pub promoted_cells: usize,
    /// Cells evicted because their support fell below `min_support` (or,
    /// under [`Materialize::ClosedOnly`], because their itemset lost
    /// closedness) — demotion mirrors promotion.
    pub demoted_cells: usize,
    /// Cells left untouched, bit for bit.
    pub clean_cells: usize,
}

/// Everything an engine needs to fold an update into its caches: the stats
/// plus a probe deciding whether *any* coordinates — cached fallback cells
/// included — may have been revalued.
#[derive(Debug)]
pub(crate) struct UpdateOutcome<P: Posting> {
    pub stats: UpdateStats,
    pub probe: DirtyProbe<P>,
}

/// Decides whether a cell's value may have changed under an applied batch:
/// true iff the cell's context tidset gained appended transactions or lost
/// retracted ones (the stored postings cover delta tids only). When the
/// update relabeled the id space — retractions dropped or reordered items
/// or units — *every* pre-update coordinate is reported dirty, since cached
/// keys from the old space are meaningless (and may even alias other cells)
/// in the new one.
#[derive(Debug)]
pub(crate) struct DirtyProbe<P: Posting> {
    add_postings: Vec<P>,
    rem_postings: Vec<P>,
    has_delta: bool,
    flush_all: bool,
}

impl<P: Posting> DirtyProbe<P> {
    fn clean() -> Self {
        DirtyProbe {
            add_postings: Vec::new(),
            rem_postings: Vec::new(),
            has_delta: false,
            flush_all: false,
        }
    }

    /// True when `coords` was (possibly) revalued by the update. `⋆`
    /// contexts are always dirty under a non-empty batch — the population
    /// universe changed.
    pub fn is_dirty(&self, coords: &CellCoords) -> bool {
        if self.flush_all {
            return true;
        }
        if !self.has_delta {
            return false;
        }
        coords.ca.is_empty()
            || delta_tidset(&self.add_postings, &coords.ca).is_some()
            || delta_tidset(&self.rem_postings, &coords.ca).is_some()
    }
}

/// Non-empty intersection of the delta postings of `items` (which must be
/// non-empty), or `None` when no appended row contains them all. One
/// batched k-way AND: items past the delta's item range short-circuit to
/// `None` before any intersection runs.
fn delta_tidset<P: Posting>(postings: &[P], items: &[ItemId]) -> Option<P> {
    assert!(!items.is_empty(), "delta_tidset needs items");
    let mut refs: Vec<&P> = Vec::with_capacity(items.len());
    for &it in items {
        refs.push(postings.get(it as usize)?);
    }
    let acc = P::intersect_many(&refs).expect("non-empty items");
    (!acc.is_empty()).then_some(acc)
}

/// A batch encoded against the cube's labels: dictionary-encoded rows plus
/// the new labels they introduced, in first-seen (intern) order.
struct EncodedBatch {
    rows: Vec<(Vec<ItemId>, UnitId)>,
    new_items: Vec<(String, String, bool)>,
    new_units: Vec<String>,
}

/// Resolve the batch against the current labels, interning new values and
/// units in first-seen order — per row, SA attributes before CA attributes,
/// mirroring the schema order of every final-table build.
fn encode_batch(batch: &UpdateBatch, labels: &CubeLabels) -> Result<EncodedBatch> {
    let mut item_lookup: FxHashMap<(String, String), ItemId> = FxHashMap::default();
    for (id, (attr, value, _)) in labels.items.iter().enumerate() {
        item_lookup.insert((attr.clone(), value.clone()), id as ItemId);
    }
    let mut unit_lookup: FxHashMap<String, UnitId> = FxHashMap::default();
    for (id, name) in labels.unit_names.iter().enumerate() {
        unit_lookup.insert(name.clone(), id as UnitId);
    }
    let is_sa: FxHashMap<&str, bool> = labels
        .sa_attrs
        .iter()
        .map(|a| (a.as_str(), true))
        .chain(labels.ca_attrs.iter().map(|a| (a.as_str(), false)))
        .collect();

    let mut out = EncodedBatch { rows: Vec::new(), new_items: Vec::new(), new_units: Vec::new() };
    let n_base_items = labels.num_items();
    let n_base_units = labels.unit_names.len();
    for (pairs, unit) in &batch.rows {
        for (attr, _) in pairs {
            if !is_sa.contains_key(attr.as_str()) {
                return Err(ScubeError::Schema(format!(
                    "update row references unknown attribute '{attr}'"
                )));
            }
        }
        let mut items: Vec<ItemId> = Vec::with_capacity(pairs.len());
        // Intern attribute-major — SA attributes in label order, then CA
        // attributes, values in row order within an attribute — regardless
        // of how the caller ordered the pairs. This is the order a
        // rebuild's TransactionDbBuilder interns in (for the SA-before-CA
        // schemas every final-table spec produces), which is what keeps
        // updated snapshots byte-identical to rebuilt ones.
        for attr in labels.sa_attrs.iter().chain(labels.ca_attrs.iter()) {
            for (a, value) in pairs {
                if a != attr || value.is_empty() {
                    continue;
                }
                let sa = is_sa[attr.as_str()];
                let id = *item_lookup.entry((a.clone(), value.clone())).or_insert_with(|| {
                    out.new_items.push((a.clone(), value.clone(), sa));
                    (n_base_items + out.new_items.len() - 1) as ItemId
                });
                items.push(id);
            }
        }
        items.sort_unstable();
        items.dedup();
        let unit_id = *unit_lookup.entry(unit.clone()).or_insert_with(|| {
            out.new_units.push(unit.clone());
            (n_base_units + out.new_units.len() - 1) as UnitId
        });
        out.rows.push((items, unit_id));
    }
    Ok(out)
}

/// The cube's *sufficient statistics*: the integer per-unit histograms
/// every cell value is computed from, kept alongside the cube so updates
/// never have to re-derive them from the full postings.
///
/// Per distinct context `B`, the ascending `(unit, total)` pairs of
/// `tidset(B)`; per materialized cell with a non-`⋆` minority side, the
/// ascending `(unit, minority)` pairs of `tidset(A ∪ B)` (`A = ⋆` cells
/// mirror the context totals and store nothing). Histograms are plain
/// `u64` counts, so `hist(base ⧺ delta) = hist(base) + hist(delta)`
/// **exactly** — folding a delta in means histogramming only the appended
/// transactions and adding, after which the recomputed index values equal
/// a from-scratch rebuild bit for bit. This is what turns dirty-cell
/// re-evaluation from `O(Σ |full tidset|)` into `O(Σ |delta tidset| +
/// dirty cells × populated units)`.
///
/// Persisted since snapshot format v2 (canonical order: contexts by item
/// list, cells by coordinates) so a loaded snapshot is immediately
/// updatable; v1 files reconstruct it on load. Counts are exact integers,
/// so retractions *subtract* as losslessly as appends add — with a
/// domination check turning any disagreement between store and delta into
/// a hard error before mutation.
#[derive(Debug, Clone, Default)]
pub(crate) struct MaintenanceStore {
    /// Distinct cell contexts → ascending `(unit, total)` pairs.
    pub(crate) contexts: FxHashMap<Vec<ItemId>, Vec<(u32, u64)>>,
    /// Cells with a non-`⋆` SA side → ascending `(unit, minority)` pairs.
    pub(crate) minorities: FxHashMap<CellCoords, Vec<(u32, u64)>>,
    /// The still-undecoded remainder of a mapped snapshot's store region.
    /// `None` for heap-built and heap-loaded stores. When present, the two
    /// maps above hold only the entries an update has dirtied so far; the
    /// rest stay as byte ranges into the mapped file (see
    /// [`crate::snapshot::LazyStore`]) and the decoded and lazy key sets
    /// are disjoint.
    pub(crate) lazy: Option<crate::snapshot::LazyStore>,
}

impl MaintenanceStore {
    /// Derive the store from scratch — what [`crate::snapshot::CubeSnapshot::new`]
    /// does when pairing a cube with its vertical database, and what v1
    /// snapshot files (which predate the store) do on load.
    pub(crate) fn compute<P: Posting>(cube: &SegregationCube, vertical: &VerticalDb<P>) -> Self {
        let mut scratch = UnitScratch::new(vertical.num_units());
        let mut contexts: FxHashMap<Vec<ItemId>, Vec<(u32, u64)>> = FxHashMap::default();
        let mut context_tids: FxHashMap<Vec<ItemId>, P> = FxHashMap::default();
        for (coords, _) in cube.cells() {
            if !contexts.contains_key(&coords.ca) {
                let tids = vertical.tidset(&coords.ca);
                vertical.unit_histogram_into(&tids, &mut scratch);
                contexts.insert(coords.ca.clone(), scratch.sorted_pairs());
                context_tids.insert(coords.ca.clone(), tids);
            }
        }
        let mut minorities: FxHashMap<CellCoords, Vec<(u32, u64)>> = FxHashMap::default();
        for (coords, _) in cube.cells() {
            if coords.sa.is_empty() {
                continue;
            }
            let tids = minority_tidset(vertical, &context_tids, coords);
            vertical.unit_histogram_into(&tids, &mut scratch);
            minorities.insert(coords.clone(), scratch.sorted_pairs());
        }
        MaintenanceStore { contexts, minorities, lazy: None }
    }

    /// Structural consistency against a cube: every cell's context has
    /// totals, every non-`⋆`-SA cell has minority counts dominated by its
    /// context's totals (minority units are populated units with
    /// `m ≤ t`), and nothing else is stored. Loaded snapshots are
    /// validated with this before any update trusts the store, so a
    /// crafted store errors up front instead of failing mid-update.
    ///
    /// Still-lazy entries of a mapped store count toward presence (their
    /// keys were parsed and validated by the index scan); their histogram
    /// contents — including the domination invariant — are checked
    /// entry-by-entry when an update first decodes them, the same per-entry
    /// rejections the eager loaders apply up front.
    pub(crate) fn covers(&self, cube: &SegregationCube) -> bool {
        let mut want_min = 0usize;
        let mut want_ctx: FxHashMap<&[ItemId], ()> = FxHashMap::default();
        for (coords, _) in cube.cells() {
            want_ctx.insert(&coords.ca, ());
            if coords.sa.is_empty() {
                continue;
            }
            if !self.has_minority(coords) || !self.has_context(&coords.ca) {
                return false;
            }
            if let (Some(minority), Some(totals)) =
                (self.minorities.get(coords), self.contexts.get(&coords.ca))
            {
                let mut ti = totals.iter().peekable();
                for &(mu, mc) in minority {
                    while ti.next_if(|&&(tu, _)| tu < mu).is_some() {}
                    match ti.peek() {
                        Some(&&(tu, tc)) if tu == mu && mc <= tc => {}
                        _ => return false,
                    }
                }
            }
            want_min += 1;
        }
        self.num_minorities() == want_min
            && self.num_contexts() == want_ctx.len()
            && want_ctx.keys().all(|ca| self.has_context(ca))
    }

    /// Whether `ca` has totals, decoded or still lazy.
    pub(crate) fn has_context(&self, ca: &[ItemId]) -> bool {
        self.contexts.contains_key(ca)
            || self.lazy.as_ref().is_some_and(|l| l.ctx_ranges.contains_key(ca))
    }

    /// Whether `coords` has minority counts, decoded or still lazy.
    pub(crate) fn has_minority(&self, coords: &CellCoords) -> bool {
        self.minorities.contains_key(coords)
            || self.lazy.as_ref().is_some_and(|l| l.min_ranges.contains_key(coords))
    }

    fn num_contexts(&self) -> usize {
        self.contexts.len() + self.lazy.as_ref().map_or(0, |l| l.ctx_ranges.len())
    }

    fn num_minorities(&self) -> usize {
        self.minorities.len() + self.lazy.as_ref().map_or(0, |l| l.min_ranges.len())
    }

    /// Every context key, decoded and lazy (the store must be indexed
    /// first — [`Self::ensure_indexed`] — or lazy keys are invisible).
    fn context_keys(&self) -> Vec<Vec<ItemId>> {
        debug_assert!(self.lazy.as_ref().is_none_or(|l| l.indexed));
        let mut keys: Vec<Vec<ItemId>> = self.contexts.keys().cloned().collect();
        if let Some(l) = &self.lazy {
            keys.extend(l.ctx_ranges.keys().cloned());
        }
        keys
    }

    /// Insert context totals, superseding any lazy entry under the key.
    pub(crate) fn insert_context(&mut self, ca: Vec<ItemId>, totals: Vec<(u32, u64)>) {
        if let Some(l) = &mut self.lazy {
            l.ctx_ranges.remove(&ca);
        }
        self.contexts.insert(ca, totals);
    }

    /// Insert cell minority counts, superseding any lazy entry.
    pub(crate) fn insert_minority(&mut self, coords: CellCoords, minority: Vec<(u32, u64)>) {
        if let Some(l) = &mut self.lazy {
            l.min_ranges.remove(&coords);
        }
        self.minorities.insert(coords, minority);
    }

    /// Drop a cell's minority counts, decoded or lazy.
    pub(crate) fn remove_minority(&mut self, coords: &CellCoords) {
        self.minorities.remove(coords);
        if let Some(l) = &mut self.lazy {
            l.min_ranges.remove(coords);
        }
    }

    /// Keep exactly the contexts `keep` accepts, decoded and lazy alike.
    pub(crate) fn retain_contexts(&mut self, keep: impl Fn(&Vec<ItemId>) -> bool) {
        self.contexts.retain(|ca, _| keep(ca));
        if let Some(l) = &mut self.lazy {
            l.ctx_ranges.retain(|ca, _| keep(ca));
        }
    }
}

/// Add `delta` into `base`, both ascending by unit (a sorted merge; counts
/// are exact `u64` sums, which is what keeps updated histograms identical
/// to recomputed ones).
fn merge_add(base: &mut Vec<(u32, u64)>, delta: &[(u32, u64)]) {
    if delta.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(base.len() + delta.len());
    let (mut i, mut j) = (0, 0);
    while i < base.len() && j < delta.len() {
        match base[i].0.cmp(&delta[j].0) {
            std::cmp::Ordering::Less => {
                out.push(base[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(delta[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((base[i].0, base[i].1 + delta[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&base[i..]);
    out.extend_from_slice(&delta[j..]);
    *base = out;
}

/// Subtract `delta` from `base`, both ascending by unit. Every delta unit
/// must be dominated by the base (`present with count ≥ delta count`) —
/// exact integer subtraction is what keeps retracted histograms identical
/// to recomputed ones. Underflow (or a missing unit) means the maintenance
/// store and the delta disagree: a hard error, raised **before** anything
/// is mutated, so the snapshot stays untouched.
fn merge_sub(base: &mut Vec<(u32, u64)>, delta: &[(u32, u64)]) -> Result<()> {
    if delta.is_empty() {
        return Ok(());
    }
    let mut out = Vec::with_capacity(base.len());
    let mut j = 0;
    for &(u, c) in base.iter() {
        if j < delta.len() && delta[j].0 == u {
            let d = delta[j].1;
            j += 1;
            match c.checked_sub(d) {
                Some(0) => {}
                Some(rest) => out.push((u, rest)),
                None => {
                    return Err(ScubeError::Inconsistent(format!(
                        "update: histogram subtraction underflow at unit {u} ({c} − {d})"
                    )))
                }
            }
        } else {
            out.push((u, c));
        }
    }
    if j < delta.len() {
        return Err(ScubeError::Inconsistent(format!(
            "update: histogram subtraction references unit {} absent from the base",
            delta[j].0
        )));
    }
    *base = out;
    Ok(())
}

/// Index values from stored histograms: triples over the context's
/// populated units in ascending order, minority counts merged in (absent
/// unit ⇒ 0) — the same integer sequence the builder feeds
/// [`UnitCounts::from_triples`].
fn values_from_hists(
    context: &[(u32, u64)],
    minority: &[(u32, u64)],
    atkinson_b: f64,
    measures: MeasureSet,
) -> Result<IndexValues> {
    let mut mi = minority.iter().peekable();
    let counts = UnitCounts::from_triples(context.iter().map(|&(u, t)| {
        let m = match mi.peek() {
            Some(&&(mu, mc)) if mu == u => {
                mi.next();
                mc
            }
            _ => 0,
        };
        (u, m, t)
    }))?;
    Ok(IndexValues::compute_masked(&counts, atkinson_b, measures))
}

/// Tidset and support of `items` over the full postings, intersecting
/// smallest-first and aborting as soon as the running intersection drops
/// below `floor` (supports only shrink under intersection, so an early
/// sub-floor cardinality is conclusive). `None` = support below floor.
fn tidset_if_frequent<P: Posting>(
    vertical: &VerticalDb<P>,
    items: &[ItemId],
    floor: u64,
) -> Option<P> {
    let mut order: Vec<ItemId> = items.to_vec();
    order.sort_by_cached_key(|&it| vertical.posting(it).cardinality());
    let mut acc = vertical.posting(order[0]).clone();
    if acc.cardinality() < floor {
        return None;
    }
    // Ping-pong two accumulators through the buffer-reusing `and_into`
    // kernel: the floor check needs the intermediate cardinalities, so the
    // opaque `intersect_many` doesn't apply, but the allocation profile is
    // the same (two buffers total, not one fresh posting per step).
    let mut spare = P::from_sorted(&[]);
    for &it in &order[1..] {
        acc.and_into(vertical.posting(it), &mut spare);
        std::mem::swap(&mut acc, &mut spare);
        if acc.cardinality() < floor {
            return None;
        }
    }
    Some(acc)
}

/// Per-dirty-cell staging outcome, decided before any mutation.
enum CellFate {
    /// The cell survives: its staged minority histogram (`None` for `⋆`-SA
    /// cells, which store none) and the re-evaluated values.
    Keep(Option<Vec<(u32, u64)>>, IndexValues),
    /// The cell is evicted: its support fell below `min_support`, or its
    /// itemset lost closedness under [`Materialize::ClosedOnly`].
    Demote,
}

/// Resolved retractions plus the reconstructed base rows they were matched
/// against (the rows are reused for closedness witnesses and relabeling).
struct Removals {
    /// Sorted, distinct retracted tids, in pre-update numbering.
    tids: Vec<u32>,
    /// Every base row: sorted item ids + unit.
    base_rows: Vec<(Vec<ItemId>, UnitId)>,
}

/// Validate and resolve the batch's retractions against the current
/// snapshot: tids must be in range and distinct, and row-match retractions
/// must reference only values and units present in the dictionary and must
/// each claim a distinct matching row — any miss is an error, never a
/// silent no-op.
fn resolve_removals<P: Posting>(
    batch: &UpdateBatch,
    labels: &CubeLabels,
    vertical: &VerticalDb<P>,
) -> Result<Option<Removals>> {
    if batch.remove_tids.is_empty() && batch.remove_rows.is_empty() {
        return Ok(None);
    }
    let n = vertical.num_transactions();
    let mut claimed: FxHashSet<u32> = FxHashSet::default();
    for &t in &batch.remove_tids {
        if t >= n {
            return Err(ScubeError::InvalidParameter(format!(
                "update: retracted tid {t} out of range (snapshot has {n} rows)"
            )));
        }
        if !claimed.insert(t) {
            return Err(ScubeError::InvalidParameter(format!("update: tid {t} retracted twice")));
        }
    }
    let base_rows = vertical.transactions();
    if !batch.remove_rows.is_empty() {
        let mut item_lookup: FxHashMap<(&str, &str), ItemId> = FxHashMap::default();
        for (id, (attr, value, _)) in labels.items.iter().enumerate() {
            item_lookup.insert((attr.as_str(), value.as_str()), id as ItemId);
        }
        let unit_lookup: FxHashMap<&str, UnitId> = labels
            .unit_names
            .iter()
            .enumerate()
            .map(|(id, name)| (name.as_str(), id as UnitId))
            .collect();
        let mut by_shape: FxHashMap<(&[ItemId], UnitId), Vec<u32>> = FxHashMap::default();
        for (t, (items, unit)) in base_rows.iter().enumerate() {
            by_shape.entry((items.as_slice(), *unit)).or_default().push(t as u32);
        }
        for (pairs, unit) in &batch.remove_rows {
            let mut items: Vec<ItemId> = Vec::with_capacity(pairs.len());
            for (attr, value) in pairs {
                if value.is_empty() {
                    continue;
                }
                let Some(&id) = item_lookup.get(&(attr.as_str(), value.as_str())) else {
                    return Err(ScubeError::InvalidParameter(format!(
                        "update: retraction references {attr}={value}, which is absent from \
                         the snapshot's dictionary"
                    )));
                };
                items.push(id);
            }
            items.sort_unstable();
            items.dedup();
            let Some(&uid) = unit_lookup.get(unit.as_str()) else {
                return Err(ScubeError::InvalidParameter(format!(
                    "update: retraction references unknown unit '{unit}'"
                )));
            };
            let found = by_shape
                .get(&(items.as_slice(), uid))
                .and_then(|tids| tids.iter().find(|t| !claimed.contains(t)))
                .copied();
            let Some(t) = found else {
                return Err(ScubeError::InvalidParameter(format!(
                    "update: retraction ({pairs:?}, {unit}) matches no remaining row"
                )));
            };
            claimed.insert(t);
        }
    }
    let mut tids: Vec<u32> = claimed.into_iter().collect();
    tids.sort_unstable();
    Ok(Some(Removals { tids, base_rows }))
}

/// Exact closedness of an existing cell's itemset in the *edited* database,
/// decided before any mutation. An extender `j` must appear in **every**
/// post-edit transaction of the itemset — in particular in one witness
/// transaction — so the only candidates are the witness row's other items;
/// each candidate's post-edit support is counted as `base − retracted +
/// appended` against the still-unmodified postings.
#[allow(clippy::too_many_arguments)]
fn closed_after_edit<P: Posting>(
    items: &[ItemId],
    new_support: u64,
    vertical: &VerticalDb<P>,
    removed: &[u32],
    base_rows: &[(Vec<ItemId>, UnitId)],
    added_rows: &[(Vec<ItemId>, UnitId)],
    add_postings: &[P],
    n_base_items: usize,
) -> bool {
    debug_assert!(new_support > 0, "demotion by support precedes the closedness check");
    let tids_base = vertical.tidset(items);
    let mut surviving: Option<u32> = None;
    tids_base.for_each(|t| {
        if surviving.is_none() && removed.binary_search(&t).is_err() {
            surviving = Some(t);
        }
    });
    let witness: Option<&[ItemId]> = match surviving {
        Some(t) => Some(&base_rows[t as usize].0),
        None => added_rows.iter().map(|(r, _)| r.as_slice()).find(|r| is_sorted_subset(items, r)),
    };
    let Some(witness) = witness else {
        // new_support > 0 guarantees a witness; treat the impossible as
        // closed so the rebuild-identity tests would expose the breach.
        return true;
    };
    let add_union = delta_tidset(add_postings, items);
    for &j in witness {
        if items.contains(&j) {
            continue;
        }
        let added = add_union.as_ref().map_or(0, |a| a.and_cardinality(&add_postings[j as usize]));
        let (base_cnt, removed_in) = if (j as usize) < n_base_items {
            let a = tids_base.and(vertical.posting(j));
            let mut rem_in = 0u64;
            a.for_each(|t| {
                if removed.binary_search(&t).is_ok() {
                    rem_in += 1;
                }
            });
            (a.cardinality(), rem_in)
        } else {
            (0, 0)
        };
        if base_cnt - removed_in + added == new_support {
            return false;
        }
    }
    true
}

/// The item/unit renumbering a retraction induces: a rebuild on the edited
/// table interns dictionary entries in first-occurrence order (attribute-
/// major within a row), so items and units whose first occurrence moved —
/// or disappeared — get new ids. Identity for pure appends and for tail
/// retractions that empty nothing.
struct Relabel {
    /// Old item id → new id (`None` = the value left the dictionary).
    item_map: Vec<Option<ItemId>>,
    /// Old unit id → new id (`None` = the unit lost its last row).
    unit_map: Vec<Option<UnitId>>,
    n_new_items: usize,
    n_new_units: u32,
    identity: bool,
}

/// Derive the relabeling from the edited table's first-occurrence arrays
/// (old id space; `u32::MAX` = never occurs) and each item's attribute
/// rank. Ties inside one row order attribute-major (SA attributes in label
/// order, then CA attributes — the schema order every final-table spec
/// declares) and by old id within an attribute, which matches a rebuild's
/// interning for single-valued-per-row attributes (the shape of every
/// final table in this workspace).
fn compute_relabel(first_item: &[u32], first_unit: &[u32], item_attr_pos: &[usize]) -> Relabel {
    let n_items = first_item.len();
    let n_units = first_unit.len();
    let mut order: Vec<ItemId> =
        (0..n_items as ItemId).filter(|&it| first_item[it as usize] != u32::MAX).collect();
    order.sort_unstable_by_key(|&it| (first_item[it as usize], item_attr_pos[it as usize], it));
    let mut item_map = vec![None; n_items];
    for (new, &old) in order.iter().enumerate() {
        item_map[old as usize] = Some(new as ItemId);
    }
    let mut uorder: Vec<UnitId> =
        (0..n_units as UnitId).filter(|&u| first_unit[u as usize] != u32::MAX).collect();
    uorder.sort_unstable_by_key(|&u| first_unit[u as usize]);
    let mut unit_map = vec![None; n_units];
    for (new, &old) in uorder.iter().enumerate() {
        unit_map[old as usize] = Some(new as UnitId);
    }
    let identity = item_map.iter().enumerate().all(|(i, m)| *m == Some(i as ItemId))
        && unit_map.iter().enumerate().all(|(u, m)| *m == Some(u as UnitId));
    Relabel {
        item_map,
        unit_map,
        n_new_items: order.len(),
        n_new_units: uorder.len() as u32,
        identity,
    }
}

/// Histogram pairs reordered into a post-relabel unit order. Borrowed
/// through unchanged when no retraction relabels the units (the common
/// case — appends, and any retraction keeping every unit's first row), so
/// the hot dirty-cell loop copies nothing then.
fn reorder_units<'p>(
    pairs: &'p [(u32, u64)],
    map: Option<&[Option<UnitId>]>,
) -> std::borrow::Cow<'p, [(u32, u64)]> {
    match map {
        None => std::borrow::Cow::Borrowed(pairs),
        Some(map) => {
            let mut out: Vec<(u32, u64)> = pairs
                .iter()
                .map(|&(u, c)| (map[u as usize].expect("populated unit survives"), c))
                .collect();
            out.sort_unstable_by_key(|&(u, _)| u);
            std::borrow::Cow::Owned(out)
        }
    }
}

/// Remap cell coordinates through an item permutation (re-sorting each
/// side: the permutation need not be monotone).
fn remap_coords(coords: &CellCoords, item_map: &[Option<ItemId>]) -> CellCoords {
    let map = |ids: &[ItemId]| {
        let mut out: Vec<ItemId> =
            ids.iter().map(|&it| item_map[it as usize].expect("cell item survives")).collect();
        out.sort_unstable();
        out
    };
    CellCoords { sa: map(&coords.sa), ca: map(&coords.ca) }
}

/// Append the batch's new labels and commit the grown unit count (the
/// non-relabeling commit path).
fn commit_labels(cube: &mut SegregationCube, encoded: &EncodedBatch, n_units_after: u32) {
    let (labels, _, n_units) = cube.update_parts();
    for (attr, value, is_sa) in &encoded.new_items {
        labels.push_item(attr.clone(), value.clone(), *is_sa);
    }
    labels.unit_names.extend(encoded.new_units.iter().cloned());
    *n_units = n_units_after;
}

/// Fold `batch` into `(cube, vertical, store)` in place (see the module
/// docs): stage exact histogram deltas (addition for appends, dominated
/// subtraction for retractions) before any mutation, re-evaluate exactly
/// the dirty cells — fanned over `threads` scoped workers when the dirty
/// set is large — demote cells that fell below `min_support` or lost
/// closedness, promote newly-frequent itemsets, and relabel the id space
/// when retractions shrank or reordered the dictionary. `materialize`,
/// `atkinson_b`, and `measures` must be the configuration the cube was
/// built with — snapshots record them (v2 for the first two, v5 for the
/// measure set), so re-evaluated and promoted cells fold the exact same
/// index subset a rebuild would.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_update<P: Posting + Send + Sync>(
    cube: &mut SegregationCube,
    vertical: &mut VerticalDb<P>,
    store: &mut MaintenanceStore,
    batch: &UpdateBatch,
    materialize: Materialize,
    atkinson_b: f64,
    measures: MeasureSet,
    threads: usize,
) -> Result<UpdateOutcome<P>> {
    if batch.is_empty() {
        return Ok(UpdateOutcome {
            stats: UpdateStats { clean_cells: cube.len(), ..UpdateStats::default() },
            probe: DirtyProbe::clean(),
        });
    }
    let min_support = cube.min_support();
    // All fallible validation and histogram staging happens before anything
    // is mutated, so a rejected batch, an inconsistent store, or a
    // subtraction underflow leaves the snapshot exactly as it was.
    //
    // A mapped store is *indexed* here — an O(keys) structural scan — not
    // decoded: each histogram stays as bytes in the mapped file until this
    // update (or a later one) dirties its entry, so a small batch decodes
    // only the contexts and cells it touches.
    store.ensure_indexed()?;
    if !store.covers(cube) {
        return Err(ScubeError::Inconsistent(
            "update: maintenance store does not cover the cube".into(),
        ));
    }
    let encoded = encode_batch(batch, cube.labels())?;
    let removals = resolve_removals(batch, cube.labels(), vertical)?;
    let old_n = vertical.num_transactions();
    let n_base_items = cube.labels().num_items();
    let n_items_after = n_base_items + encoded.new_items.len();
    let n_units_after = (cube.labels().unit_names.len() + encoded.new_units.len()) as u32;
    let removed: &[u32] = removals.as_ref().map_or(&[], |r| &r.tids);
    let base_rows: &[(Vec<ItemId>, UnitId)] = removals.as_ref().map_or(&[], |r| &r.base_rows);
    let new_base = old_n - removed.len() as u32;

    // Delta postings: per item, the appended tids containing it (in their
    // *final* numbering — retractions renumber survivors first) and the
    // retracted tids containing it (pre-update numbering). The two sides
    // are only ever intersected within themselves, so the mixed numbering
    // is sound. They decide dirtiness for materialized cells here and for
    // engine caches later.
    let mut add_tids: Vec<Vec<u32>> = vec![Vec::new(); n_items_after];
    for (i, (items, _)) in encoded.rows.iter().enumerate() {
        for &it in items {
            add_tids[it as usize].push(new_base + i as u32);
        }
    }
    let add_postings: Vec<P> = add_tids.iter().map(|t| P::from_sorted(t)).collect();
    let mut rem_tids: Vec<Vec<u32>> = vec![Vec::new(); n_items_after];
    for &t in removed {
        for &it in &base_rows[t as usize].0 {
            rem_tids[it as usize].push(t);
        }
    }
    let rem_postings: Vec<P> = rem_tids.iter().map(|t| P::from_sorted(t)).collect();

    // Relabel plan (pre-mutation, retractions only): the edited table's
    // intern order decides the final unit ids, and cell values are float
    // folds over per-unit triples *in unit order* — so re-evaluation must
    // iterate the post-relabel order to reproduce a rebuild's floats bit
    // for bit, even though the histograms are permutation-equal. This
    // holds for *every* selected measure, not only Atkinson: the D/H/xPx/
    // xPy sums and Gini's sort-then-prefix-scan all accumulate f64s in
    // unit-visit order, so a permuted histogram can drift by 1 ULP. The
    // `reorder_units` pass below is what keeps each index in the
    // `MeasureSet` byte-identical to a rebuild (regression-tested per
    // index in `tests/multi_index_equivalence.rs`). Only the
    // first-occurrence scan runs here — O(Σ row width), no row or label
    // clones — so the (common) identity outcome costs no materialization;
    // the relabeling commit path reconstructs the edited rows when, and
    // only when, the ids actually change.
    let plan: Option<Relabel> = removals.as_ref().map(|rem| {
        let mut first_item = vec![u32::MAX; n_items_after];
        let mut first_unit = vec![u32::MAX; n_units_after as usize];
        let mut t = 0u32;
        let mut r = 0usize;
        let mut visit = |row: &[ItemId], unit: UnitId, t: u32| {
            for &it in row {
                if first_item[it as usize] == u32::MAX {
                    first_item[it as usize] = t;
                }
            }
            if first_unit[unit as usize] == u32::MAX {
                first_unit[unit as usize] = t;
            }
        };
        for (old_t, (row, unit)) in rem.base_rows.iter().enumerate() {
            if r < rem.tids.len() && rem.tids[r] as usize == old_t {
                r += 1;
                continue;
            }
            visit(row, *unit, t);
            t += 1;
        }
        for (row, unit) in &encoded.rows {
            visit(row, *unit, t);
            t += 1;
        }
        // Attribute rank of every item — old ones from the labels, batch-
        // new ones from the encoded batch (no label-table clone).
        let attr_pos: FxHashMap<&str, usize> = cube
            .labels()
            .sa_attrs
            .iter()
            .chain(cube.labels().ca_attrs.iter())
            .enumerate()
            .map(|(i, a)| (a.as_str(), i))
            .collect();
        let item_attr_pos: Vec<usize> = (0..n_items_after)
            .map(|it| {
                let attr = if it < n_base_items {
                    cube.labels().attr_of(it as ItemId)
                } else {
                    encoded.new_items[it - n_base_items].0.as_str()
                };
                attr_pos[attr]
            })
            .collect();
        compute_relabel(&first_item, &first_unit, &item_attr_pos)
    });
    let unit_remap: Option<&[Option<UnitId>]> = plan.as_ref().map(|p| p.unit_map.as_slice());
    // A dictionary-relabeling retraction rebuilds both store maps under
    // new ids wholesale, so nothing can stay lazy: decode the rest up
    // front, while a corrupt mapped entry can still error before mutation.
    if plan.as_ref().is_some_and(|p| !p.identity) {
        store.materialize_all()?;
    }

    // Phase 1 — stage the dirty context histograms: `hist(edited) =
    // hist(base) + hist(appended Δ) − hist(retracted Δ)`, all exact
    // integer sums over delta-sized tidsets. Appended tids histogram
    // through the batch rows' units, retracted tids through the still-
    // unmodified `tid → unit` map.
    let add_all: Option<P> = (!encoded.rows.is_empty()).then(|| {
        P::from_sorted(&(new_base..new_base + encoded.rows.len() as u32).collect::<Vec<u32>>())
    });
    let rem_all: Option<P> = removals.as_ref().map(|r| P::from_sorted(&r.tids));
    struct StagedCtx<P> {
        totals: Vec<(u32, u64)>,
        add: Option<P>,
        rem: Option<P>,
    }
    // A retraction that renumbers *units* changes the per-unit iteration
    // order every cell value is folded in — so even cells whose histograms
    // are untouched must be re-folded to reproduce a rebuild's floats bit
    // for bit. Items renumbering alone never affects values.
    let units_relabeled = plan
        .as_ref()
        .is_some_and(|p| p.unit_map.iter().enumerate().any(|(u, m)| *m != Some(u as u32)));
    let mut scratch = UnitScratch::new(n_units_after);
    let mut staged_ctx: FxHashMap<Vec<ItemId>, StagedCtx<P>> = FxHashMap::default();
    // Delta-clean contexts are skipped *before* their histograms are
    // touched, so on a mapped snapshot they stay undecoded byte ranges —
    // the point of the lazy store.
    for ca in store.context_keys() {
        let add = if ca.is_empty() { add_all.clone() } else { delta_tidset(&add_postings, &ca) };
        let rem = if ca.is_empty() { rem_all.clone() } else { delta_tidset(&rem_postings, &ca) };
        if add.is_none() && rem.is_none() && !units_relabeled {
            continue;
        }
        store.ensure_context(&ca)?;
        let totals = store.contexts.get(&ca).ok_or_else(|| {
            ScubeError::Inconsistent("update: context missing from maintenance store".into())
        })?;
        let mut new_totals = totals.clone();
        if let Some(a) = &add {
            scratch.clear();
            a.for_each(|t| scratch.bump(encoded.rows[(t - new_base) as usize].1));
            merge_add(&mut new_totals, &scratch.sorted_pairs());
        }
        if let Some(r) = &rem {
            scratch.clear();
            r.for_each(|t| scratch.bump(vertical.unit_of(t)));
            merge_sub(&mut new_totals, &scratch.sorted_pairs())?;
        }
        staged_ctx.insert(ca, StagedCtx { totals: new_totals, add, rem });
    }

    // Phase 2 — stage every dirty cell: advance its minority histogram by
    // the delta tidsets, decide demotion (support floor; closedness under
    // ClosedOnly when the cell's own tidset shrank), and recompute its
    // values from the staged integer histograms. Cells are independent, so
    // large dirty sets fan out over scoped worker threads with per-worker
    // scratches; results are pure, hence bit-identical to the serial pass.
    let dirty_cells: Vec<CellCoords> = cube
        .cells()
        .filter(|(coords, _)| staged_ctx.contains_key(&coords.ca))
        .map(|(coords, _)| coords.clone())
        .collect();
    // Decode each dirty cell's minority histogram now, serially: the
    // evaluation closure below borrows the store immutably (it fans out
    // over scoped threads), so lazy entries must already be in the map by
    // the time it runs. Clean cells stay undecoded.
    for coords in &dirty_cells {
        if !coords.sa.is_empty() {
            store.ensure_minority(coords)?;
        }
    }
    let eval_one = |coords: &CellCoords, scratch: &mut UnitScratch| -> Result<CellFate> {
        let sc = &staged_ctx[&coords.ca];
        if coords.sa.is_empty() {
            // `A = ⋆` ⇒ minority ≡ population (the builder's apex path).
            let support: u64 = sc.totals.iter().map(|&(_, t)| t).sum();
            if !coords.ca.is_empty() {
                if support < min_support {
                    return Ok(CellFate::Demote);
                }
                if materialize == Materialize::ClosedOnly
                    && sc.rem.is_some()
                    && !closed_after_edit(
                        &coords.ca,
                        support,
                        vertical,
                        removed,
                        base_rows,
                        &encoded.rows,
                        &add_postings,
                        n_base_items,
                    )
                {
                    return Ok(CellFate::Demote);
                }
            }
            let totals = reorder_units(&sc.totals, unit_remap);
            let counts = UnitCounts::from_triples(totals.iter().map(|&(u, t)| (u, t, t)))?;
            Ok(CellFate::Keep(None, IndexValues::compute_masked(&counts, atkinson_b, measures)))
        } else {
            let mut minority = store
                .minorities
                .get(coords)
                .ok_or_else(|| {
                    ScubeError::Inconsistent("update: cell missing from maintenance store".into())
                })?
                .clone();
            if let Some(a) = &sc.add {
                let mut delta = a.clone();
                for &item in &coords.sa {
                    if delta.is_empty() {
                        break;
                    }
                    delta = delta.and(&add_postings[item as usize]);
                }
                if !delta.is_empty() {
                    scratch.clear();
                    delta.for_each(|t| scratch.bump(encoded.rows[(t - new_base) as usize].1));
                    merge_add(&mut minority, &scratch.sorted_pairs());
                }
            }
            let mut shrank = false;
            if let Some(r) = &sc.rem {
                let mut delta = r.clone();
                for &item in &coords.sa {
                    if delta.is_empty() {
                        break;
                    }
                    delta = delta.and(&rem_postings[item as usize]);
                }
                if !delta.is_empty() {
                    shrank = true;
                    scratch.clear();
                    delta.for_each(|t| scratch.bump(vertical.unit_of(t)));
                    merge_sub(&mut minority, &scratch.sorted_pairs())?;
                }
            }
            let support: u64 = minority.iter().map(|&(_, m)| m).sum();
            if support < min_support {
                return Ok(CellFate::Demote);
            }
            if materialize == Materialize::ClosedOnly && shrank {
                let union = coords.union();
                if !closed_after_edit(
                    &union,
                    support,
                    vertical,
                    removed,
                    base_rows,
                    &encoded.rows,
                    &add_postings,
                    n_base_items,
                ) {
                    return Ok(CellFate::Demote);
                }
            }
            let values = values_from_hists(
                &reorder_units(&sc.totals, unit_remap),
                &reorder_units(&minority, unit_remap),
                atkinson_b,
                measures,
            )?;
            Ok(CellFate::Keep(Some(minority), values))
        }
    };
    let n_workers = threads.max(1).min(dirty_cells.len().max(1));
    let fates: Vec<(CellCoords, CellFate)> = if n_workers > 1 && dirty_cells.len() >= 64 {
        let chunk = dirty_cells.len().div_ceil(n_workers);
        let results: Vec<Result<Vec<(CellCoords, CellFate)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = dirty_cells
                .chunks(chunk)
                .map(|cells| {
                    let eval_one = &eval_one;
                    scope.spawn(move || {
                        let mut scratch = UnitScratch::new(n_units_after);
                        cells.iter().map(|c| Ok((c.clone(), eval_one(c, &mut scratch)?))).collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("update worker panicked")).collect()
        });
        let mut out = Vec::with_capacity(dirty_cells.len());
        for r in results {
            out.extend(r?);
        }
        out
    } else {
        let mut scratch = UnitScratch::new(n_units_after);
        dirty_cells
            .iter()
            .map(|c| Ok((c.clone(), eval_one(c, &mut scratch)?)))
            .collect::<Result<Vec<_>>>()?
    };

    // ---- Commit. Everything below applies already-validated state. ----
    let mut stats = UpdateStats {
        rows_added: encoded.rows.len(),
        rows_removed: removed.len(),
        new_items: encoded.new_items.len(),
        new_units: encoded.new_units.len(),
        ..UpdateStats::default()
    };
    {
        let (_, cells, _) = cube.update_parts();
        for (coords, fate) in fates {
            match fate {
                CellFate::Demote => {
                    cells.remove(&coords);
                    store.remove_minority(&coords);
                    stats.demoted_cells += 1;
                }
                CellFate::Keep(minority, values) => {
                    if let Some(m) = minority {
                        store.insert_minority(coords.clone(), m);
                    }
                    cells.insert(coords, values);
                    stats.dirty_cells += 1;
                }
            }
        }
        for (ca, sc) in staged_ctx {
            store.insert_context(ca, sc.totals);
        }
        // Contexts no longer referenced by any cell leave the store,
        // exactly as a rebuild's store (derived from surviving cells)
        // would have it.
        let live: FxHashSet<Vec<ItemId>> = cells.keys().map(|c| c.ca.clone()).collect();
        store.retain_contexts(|ca| live.contains(ca));
    }

    // Mutate the vertical database and labels; relabel when retraction
    // shrank or reordered the dictionary.
    let mut relabeled = false;
    let promo_rows: Vec<(Vec<ItemId>, UnitId)>;
    match plan {
        None => {
            vertical
                .append_rows(&encoded.rows, n_items_after, n_units_after)
                .map_err(|e| ScubeError::Inconsistent(format!("update: {e}")))?;
            commit_labels(cube, &encoded, n_units_after);
            promo_rows = encoded.rows.clone();
        }
        Some(relabel) if relabel.identity => {
            // Retraction that moves no first occurrence and empties
            // nothing (any tail retraction, and interior ones with stable
            // dictionaries): postings shrink in place — `remove_sorted`
            // for tails, a renumbering rebuild for interiors — and every
            // surviving id keeps its meaning.
            let rem = removals.as_ref().expect("plan implies removals");
            vertical
                .remove_rows(&rem.tids)
                .map_err(|e| ScubeError::Inconsistent(format!("update: {e}")))?;
            vertical
                .append_rows(&encoded.rows, n_items_after, n_units_after)
                .map_err(|e| ScubeError::Inconsistent(format!("update: {e}")))?;
            commit_labels(cube, &encoded, n_units_after);
            promo_rows = encoded.rows.clone();
        }
        Some(relabel) => {
            // Dictionary-shrinking or -reordering retraction: rebuild the
            // id space the way a from-scratch build on the edited table
            // would intern it, then rebuild postings, labels, cells, and
            // store under the new ids. Only now — when the ids actually
            // change — are the edited rows and extended label tables
            // materialized.
            let rem = removals.as_ref().expect("plan implies removals");
            let mut final_rows: Vec<(Vec<ItemId>, UnitId)> =
                Vec::with_capacity(new_base as usize + encoded.rows.len());
            let mut r = 0usize;
            for (t, row) in rem.base_rows.iter().enumerate() {
                if r < rem.tids.len() && rem.tids[r] as usize == t {
                    r += 1;
                    continue;
                }
                final_rows.push(row.clone());
            }
            final_rows.extend(encoded.rows.iter().cloned());
            let mut ext_items = cube.labels().items.clone();
            for (a, v, sa) in &encoded.new_items {
                ext_items.push((a.clone(), v.clone(), *sa));
            }
            let mut ext_units = cube.labels().unit_names.clone();
            ext_units.extend(encoded.new_units.iter().cloned());
            relabeled = true;
            stats.dropped_items = n_items_after - relabel.n_new_items;
            stats.dropped_units = n_units_after as usize - relabel.n_new_units as usize;
            let map_item =
                |it: ItemId| relabel.item_map[it as usize].expect("occurring item survives");
            let mut new_unit_of: Vec<UnitId> = Vec::with_capacity(final_rows.len());
            let mut tids_new: Vec<Vec<u32>> = vec![Vec::new(); relabel.n_new_items];
            let mut mapped_rows: Vec<(Vec<ItemId>, UnitId)> = Vec::with_capacity(final_rows.len());
            for (t, (row, unit)) in final_rows.iter().enumerate() {
                let mut mapped: Vec<ItemId> = row.iter().map(|&it| map_item(it)).collect();
                mapped.sort_unstable();
                for &it in &mapped {
                    tids_new[it as usize].push(t as u32);
                }
                let u = relabel.unit_map[*unit as usize].expect("occurring unit survives");
                new_unit_of.push(u);
                mapped_rows.push((mapped, u));
            }
            let postings: Vec<P> = tids_new.iter().map(|t| P::from_sorted(t)).collect();
            *vertical = VerticalDb::from_parts(
                postings,
                final_rows.len() as u32,
                new_unit_of,
                relabel.n_new_units,
            )
            .ok_or_else(|| {
                ScubeError::Inconsistent("update: rebuilt vertical parts inconsistent".into())
            })?;
            {
                let (labels, cells, n_units) = cube.update_parts();
                let mut new_items =
                    vec![(String::new(), String::new(), false); relabel.n_new_items];
                for (old, entry) in ext_items.into_iter().enumerate() {
                    if let Some(new) = relabel.item_map[old] {
                        new_items[new as usize] = entry;
                    }
                }
                labels.items = new_items;
                let mut new_names = vec![String::new(); relabel.n_new_units as usize];
                for (old, name) in ext_units.into_iter().enumerate() {
                    if let Some(new) = relabel.unit_map[old] {
                        new_names[new as usize] = name;
                    }
                }
                labels.unit_names = new_names;
                *n_units = relabel.n_new_units;
                let old_cells = std::mem::take(cells);
                for (coords, v) in old_cells {
                    cells.insert(remap_coords(&coords, &relabel.item_map), v);
                }
            }
            debug_assert!(store.lazy.is_none(), "relabel path materializes the store up front");
            let remap_pairs = |pairs: &mut Vec<(u32, u64)>| {
                for p in pairs.iter_mut() {
                    p.0 = relabel.unit_map[p.0 as usize].expect("populated unit survives");
                }
                pairs.sort_unstable_by_key(|&(u, _)| u);
            };
            store.contexts = std::mem::take(&mut store.contexts)
                .into_iter()
                .map(|(ca, mut pairs)| {
                    let mut ca: Vec<ItemId> = ca.iter().map(|&it| map_item(it)).collect();
                    ca.sort_unstable();
                    remap_pairs(&mut pairs);
                    (ca, pairs)
                })
                .collect();
            store.minorities = std::mem::take(&mut store.minorities)
                .into_iter()
                .map(|(coords, mut pairs)| {
                    remap_pairs(&mut pairs);
                    (remap_coords(&coords, &relabel.item_map), pairs)
                })
                .collect();
            // The appended rows in the new id space seed promotion.
            promo_rows = mapped_rows.split_off(new_base as usize);
        }
    }

    // Phase 3 — promotions over the mutated (and possibly relabeled)
    // database: newly-frequent (or newly-closed) itemsets are subsets of
    // single appended rows, so enumerate each row's frequent-item
    // projection — deduplicated, with one generating row remembered as the
    // closedness witness. Wide rows fall back to the scoped Eclat re-mine
    // over their items. Retraction-only batches have no rows here and skip
    // the phase entirely (supports only shrink, and non-closed itemsets
    // stay non-closed when both sides of an equal-support pair lose the
    // same transactions).
    let mut candidates: FxHashMap<Vec<ItemId>, usize> = FxHashMap::default();
    let mut seen_projections: FxHashSet<Vec<ItemId>> = FxHashSet::default();
    let mut wide_items: Vec<ItemId> = Vec::new();
    let mut wide_rows: Vec<usize> = Vec::new();
    for (r, (items, _)) in promo_rows.iter().enumerate() {
        let frequent: Vec<ItemId> = items
            .iter()
            .copied()
            .filter(|&it| vertical.posting(it).cardinality() >= min_support)
            .collect();
        // Categorical deltas repeat row shapes heavily; one enumeration
        // per *distinct* frequent-item projection bounds the subset work
        // by shape count, not batch size.
        if frequent.is_empty() || !seen_projections.insert(frequent.clone()) {
            continue;
        }
        if frequent.len() > MAX_SUBSET_WIDTH {
            wide_items.extend_from_slice(&frequent);
            wide_rows.push(r);
            continue;
        }
        for mask in 1u32..(1 << frequent.len()) {
            let subset: Vec<ItemId> = frequent
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &it)| it)
                .collect();
            candidates.entry(subset).or_insert(r);
        }
    }
    if !wide_items.is_empty() {
        for (set, _) in mine_vertical_with_tidsets_scoped(vertical, min_support, &wide_items)? {
            // Attribute each mined itemset to a wide row containing it (it
            // may be a cross-row combination that gained nothing — those
            // are filtered below by the delta-gain check).
            if let Some(&r) =
                wide_rows.iter().find(|&&r| is_sorted_subset(&set.items, &promo_rows[r].0))
            {
                candidates.entry(set.items).or_insert(r);
            }
        }
    }

    // Candidates are visited smallest-first so an infrequent itemset
    // prunes its supersets without touching a posting (Apriori
    // monotonicity); surviving ones intersect smallest-posting-first with
    // a sub-threshold abort. Promoted cells get fresh store entries from
    // their full tidsets — new contexts too — exactly as a rebuild would
    // compute them.
    let mut scratch = UnitScratch::new(vertical.num_units());
    let mut promoted: Vec<(CellCoords, IndexValues)> = Vec::new();
    let mut ordered: Vec<(&Vec<ItemId>, usize)> =
        candidates.iter().map(|(items, &row)| (items, row)).collect();
    ordered.sort_unstable_by_key(|(items, _)| items.len());
    let mut infrequent: FxHashSet<&[ItemId]> = FxHashSet::default();
    for (items, row) in ordered {
        if items.len() > 1 {
            let mut sub: Vec<ItemId> = items[1..].to_vec();
            let mut pruned = infrequent.contains(&sub[..]);
            for i in 0..items.len() - 1 {
                if pruned {
                    break;
                }
                sub[i] = items[i];
                // sub now misses items[i + 1] (it holds the other items in
                // sorted order).
                pruned = infrequent.contains(&sub[..]);
            }
            if pruned {
                infrequent.insert(items.as_slice());
                continue;
            }
        }
        let coords = split_by_labels(items, cube.labels());
        if cube.get(&coords).is_some() {
            continue;
        }
        let Some(tids) = tidset_if_frequent(vertical, items, min_support) else {
            infrequent.insert(items.as_slice());
            continue;
        };
        if materialize == Materialize::ClosedOnly
            && !is_closed(vertical, items, &tids, &promo_rows[row].0)
        {
            continue;
        }
        // An existing-but-clean context may still be a lazy byte range;
        // decode it rather than re-deriving the totals from full postings.
        store.ensure_context(&coords.ca)?;
        if !store.contexts.contains_key(&coords.ca) {
            let ctx_tids = vertical.tidset(&coords.ca);
            vertical.unit_histogram_into(&ctx_tids, &mut scratch);
            let pairs = scratch.sorted_pairs();
            store.insert_context(coords.ca.clone(), pairs);
        }
        let totals = &store.contexts[&coords.ca];
        let values = if coords.sa.is_empty() {
            let counts = UnitCounts::from_triples(totals.iter().map(|&(u, t)| (u, t, t)))?;
            IndexValues::compute_masked(&counts, atkinson_b, measures)
        } else {
            vertical.unit_histogram_into(&tids, &mut scratch);
            let minority = scratch.sorted_pairs();
            let values = values_from_hists(totals, &minority, atkinson_b, measures)?;
            store.minorities.insert(coords.clone(), minority);
            values
        };
        promoted.push((coords, values));
    }
    {
        let (_, cells, _) = cube.update_parts();
        for (coords, values) in promoted {
            cells.insert(coords, values);
            stats.promoted_cells += 1;
        }
    }

    stats.clean_cells = cube.len() - stats.dirty_cells - stats.promoted_cells;
    let probe = DirtyProbe { add_postings, rem_postings, has_delta: true, flush_all: relabeled };
    Ok(UpdateOutcome { stats, probe })
}

/// Split a sorted itemset into `(A, B)` coordinates by label roles (the
/// update-path twin of [`CellCoords::from_itemset`], which needs the
/// original database).
fn split_by_labels(items: &[ItemId], labels: &CubeLabels) -> CellCoords {
    let mut sa = Vec::new();
    let mut ca = Vec::new();
    for &item in items {
        if labels.is_sa_item(item) {
            sa.push(item);
        } else {
            ca.push(item);
        }
    }
    CellCoords { sa, ca }
}

/// `a ⊆ b` over sorted id slices.
fn is_sorted_subset(a: &[ItemId], b: &[ItemId]) -> bool {
    let mut it = b.iter();
    a.iter().all(|x| it.by_ref().any(|y| y == x))
}

/// Minority tidset of a cell, reusing the cached context tidset (`⋆`
/// contexts intersect the SA postings directly).
fn minority_tidset<P: Posting>(
    vertical: &VerticalDb<P>,
    context_tids: &FxHashMap<Vec<ItemId>, P>,
    coords: &CellCoords,
) -> P {
    if coords.ca.is_empty() {
        return vertical.tidset(&coords.sa);
    }
    let mut refs: Vec<&P> = Vec::with_capacity(1 + coords.sa.len());
    refs.push(&context_tids[&coords.ca]);
    refs.extend(coords.sa.iter().map(|&item| vertical.posting(item)));
    P::intersect_many(&refs).expect("context plus non-empty SA side")
}

/// Exact closedness of a promotion candidate in the grown database, using
/// its generating appended row to keep the check O(row width): an item
/// extending the candidate with equal support must occur in *every*
/// transaction of the candidate's tidset — in particular in the generating
/// row — so the only possible extenders are that row's other items.
fn is_closed<P: Posting>(
    vertical: &VerticalDb<P>,
    items: &[ItemId],
    tids: &P,
    row_items: &[ItemId],
) -> bool {
    let support = tids.cardinality();
    !row_items
        .iter()
        .any(|j| !items.contains(j) && vertical.posting(*j).and_cardinality(tids) == support)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CubeBuilder;
    use crate::snapshot::CubeSnapshot;
    use scube_bitmap::{DenseBitmap, EwahBitmap, TidVec};
    use scube_data::{Attribute, Schema, TransactionDb, TransactionDbBuilder};

    type Row = (&'static str, &'static str, &'static str, &'static str);

    const BASE: &[Row] = &[
        ("F", "young", "north", "u0"),
        ("F", "young", "north", "u0"),
        ("M", "old", "north", "u0"),
        ("F", "old", "south", "u1"),
        ("M", "young", "south", "u1"),
        ("M", "old", "south", "u1"),
        ("F", "young", "south", "u0"),
        ("M", "young", "north", "u1"),
    ];

    /// Delta with an existing shape, a new value ("mid"), and a new unit.
    const DELTA: &[Row] = &[
        ("F", "old", "north", "u0"),
        ("M", "mid", "north", "u2"),
        ("F", "mid", "south", "u2"),
        ("F", "old", "north", "u0"),
    ];

    fn db(rows: &[Row]) -> TransactionDb {
        let schema =
            Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
                .unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        for (s, a, r, u) in rows {
            b.add_row(&[vec![*s], vec![*a], vec![*r]], u).unwrap();
        }
        b.finish()
    }

    fn batch(rows: &[Row]) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for (s, a, r, u) in rows {
            batch.add_row(&[("sex", *s), ("age", *a), ("region", *r)], u);
        }
        batch
    }

    fn check_roundtrip<P: Posting + Send + Sync + PartialEq + std::fmt::Debug>(
        materialize: Materialize,
        min_support: u64,
    ) {
        let builder = CubeBuilder::new().min_support(min_support).materialize(materialize);
        let mut updated: CubeSnapshot<P> = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let stats = updated.apply_update(&batch(DELTA)).unwrap();
        let all: Vec<Row> = BASE.iter().chain(DELTA.iter()).copied().collect();
        let rebuilt: CubeSnapshot<P> = CubeSnapshot::from_db(&db(&all), &builder).unwrap();
        assert_eq!(updated.cube(), rebuilt.cube(), "{materialize:?} minsup {min_support}");
        assert_eq!(
            updated.to_bytes(),
            rebuilt.to_bytes(),
            "{materialize:?} minsup {min_support}: snapshot bytes diverge"
        );
        assert_eq!(stats.rows_added, DELTA.len());
        assert_eq!(stats.new_items, 1, "age=mid is the one new value");
        assert_eq!(stats.new_units, 1, "u2 is the one new unit");
        assert_eq!(
            stats.dirty_cells + stats.promoted_cells + stats.clean_cells,
            updated.cube().len()
        );
    }

    #[test]
    fn update_matches_rebuild_all_representations() {
        for minsup in [1, 2, 3] {
            check_roundtrip::<EwahBitmap>(Materialize::AllFrequent, minsup);
            check_roundtrip::<EwahBitmap>(Materialize::ClosedOnly, minsup);
            check_roundtrip::<DenseBitmap>(Materialize::AllFrequent, minsup);
            check_roundtrip::<DenseBitmap>(Materialize::ClosedOnly, minsup);
            check_roundtrip::<TidVec>(Materialize::AllFrequent, minsup);
            check_roundtrip::<TidVec>(Materialize::ClosedOnly, minsup);
        }
    }

    #[test]
    fn promotion_crosses_the_support_threshold() {
        // At min_support 3, (age=old, region=north) has base support 1;
        // the delta adds two more rows with that pair, promoting it (and
        // (sex=F, age=old, region=north), support 0 → 2... still below).
        let builder = CubeBuilder::new().min_support(3);
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let before = snap.cube().len();
        let coords = |snap: &CubeSnapshot, sa: &[(&str, &str)], ca: &[(&str, &str)]| {
            snap.cube().coords_by_names(sa, ca)
        };
        let promoted = coords(&snap, &[("age", "old")], &[("region", "north")]).unwrap();
        assert!(snap.cube().get(&promoted).is_none(), "below threshold before the update");
        let stats = snap.apply_update(&batch(DELTA)).unwrap();
        assert!(stats.promoted_cells > 0);
        assert!(snap.cube().len() > before);
        let v = snap.cube().get(&promoted).expect("promoted after the update");
        assert_eq!(v.minority, 3);
    }

    #[test]
    fn clean_cells_are_not_reevaluated() {
        // A delta touching only the north leaves pure-south contexts clean.
        let builder = CubeBuilder::new().min_support(1);
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let south_delta: &[Row] = &[("F", "young", "north", "u0")];
        let stats = snap.apply_update(&batch(south_delta)).unwrap();
        assert!(stats.clean_cells > 0, "south-context cells must stay untouched");
        assert!(stats.dirty_cells > 0, "north and ⋆ contexts are dirty");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let builder = CubeBuilder::new();
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let bytes = snap.to_bytes();
        let stats = snap.apply_update(&UpdateBatch::new()).unwrap();
        assert_eq!(stats, UpdateStats { clean_cells: snap.cube().len(), ..Default::default() });
        assert_eq!(snap.to_bytes(), bytes);
    }

    #[test]
    fn unknown_attribute_rejected_before_mutation() {
        let builder = CubeBuilder::new();
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let bytes = snap.to_bytes();
        let mut bad = UpdateBatch::new();
        bad.add_row(&[("sex", "F"), ("planet", "mars")], "u0");
        assert!(snap.apply_update(&bad).is_err());
        assert_eq!(snap.to_bytes(), bytes, "failed update must not mutate the snapshot");
    }

    #[test]
    fn batch_from_relation_matches_hand_built() {
        let builder = CubeBuilder::new();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let mut rel =
            Relation::new(vec!["sex".into(), "age".into(), "region".into(), "unitID".into()])
                .unwrap();
        for (s, a, r, u) in DELTA {
            rel.push_row(vec![s.to_string(), a.to_string(), r.to_string(), u.to_string()]).unwrap();
        }
        let from_rel = UpdateBatch::from_relation(&rel, snap.cube().labels(), "unitID").unwrap();
        let mut a = snap.clone();
        let mut b = snap.clone();
        a.apply_update(&from_rel).unwrap();
        b.apply_update(&batch(DELTA)).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
        // Missing columns are schema errors.
        let empty = Relation::new(vec!["sex".into(), "unitID".into()]).unwrap();
        assert!(UpdateBatch::from_relation(&empty, snap.cube().labels(), "unitID").is_err());
        assert!(UpdateBatch::from_relation(&rel, snap.cube().labels(), "nope").is_err());
    }

    #[test]
    fn pair_order_does_not_change_interning() {
        // Two new values in one row, given in reverse attribute order: the
        // dictionary must still grow in label (schema) order, keeping the
        // updated snapshot byte-identical to a rebuild.
        let builder = CubeBuilder::new();
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let mut reversed = UpdateBatch::new();
        reversed.add_row(&[("region", "west"), ("age", "mid"), ("sex", "F")], "u0");
        snap.apply_update(&reversed).unwrap();
        let all: Vec<Row> = BASE.iter().copied().chain([("F", "mid", "west", "u0")]).collect();
        let rebuilt: CubeSnapshot = CubeSnapshot::from_db(&db(&all), &builder).unwrap();
        assert_eq!(snap.to_bytes(), rebuilt.to_bytes());
    }

    /// Apply `remove` (tids) + `delta` (appends) to a BASE snapshot and
    /// require byte-identity with a from-scratch snapshot on the edited
    /// table, for one representation × materialization × threshold.
    fn check_churn<P: Posting + Send + Sync + PartialEq + std::fmt::Debug>(
        remove: &[u32],
        delta: &[Row],
        materialize: Materialize,
        min_support: u64,
    ) {
        let builder = CubeBuilder::new().min_support(min_support).materialize(materialize);
        let mut updated: CubeSnapshot<P> = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let mut b = batch(delta);
        for &t in remove {
            b.remove_tid(t);
        }
        let stats = updated.apply_update(&b).unwrap();
        assert_eq!(stats.rows_removed, remove.len());
        assert_eq!(stats.rows_added, delta.len());
        assert_eq!(
            stats.dirty_cells + stats.promoted_cells + stats.clean_cells,
            updated.cube().len(),
            "stats partition the surviving store"
        );
        let edited: Vec<Row> = BASE
            .iter()
            .enumerate()
            .filter(|(i, _)| !remove.contains(&(*i as u32)))
            .map(|(_, r)| *r)
            .chain(delta.iter().copied())
            .collect();
        let rebuilt: CubeSnapshot<P> = CubeSnapshot::from_db(&db(&edited), &builder).unwrap();
        assert_eq!(
            updated.to_bytes(),
            rebuilt.to_bytes(),
            "{materialize:?} minsup {min_support} remove {remove:?} +{} rows: snapshot bytes \
             diverge",
            delta.len()
        );
    }

    fn check_churn_all(remove: &[u32], delta: &[Row]) {
        for minsup in [1, 2, 3] {
            for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
                check_churn::<EwahBitmap>(remove, delta, materialize, minsup);
                check_churn::<DenseBitmap>(remove, delta, materialize, minsup);
                check_churn::<TidVec>(remove, delta, materialize, minsup);
            }
        }
    }

    #[test]
    fn suffix_retraction_matches_rebuild() {
        check_churn_all(&[6, 7], &[]);
    }

    #[test]
    fn interior_retraction_matches_rebuild() {
        check_churn_all(&[2], &[]);
        check_churn_all(&[0, 4], &[]);
    }

    #[test]
    fn retraction_emptying_a_value_matches_rebuild() {
        // Rows 2, 3, 5 are the only age=old rows: the value must leave the
        // dictionary and every surviving id renumber, as a rebuild would.
        check_churn_all(&[2, 3, 5], &[]);
    }

    #[test]
    fn retraction_emptying_a_unit_matches_rebuild() {
        // Rows 3, 4, 5, 7 are all of u1: the unit disappears.
        check_churn_all(&[3, 4, 5, 7], &[]);
    }

    #[test]
    fn remove_everything_from_a_context_matches_rebuild() {
        // Rows 0, 1, 2, 7 are the whole region=north context: all of its
        // cells demote, and the context leaves the maintenance store.
        check_churn_all(&[0, 1, 2, 7], &[]);
    }

    #[test]
    fn remove_all_rows_matches_rebuild_on_empty_table() {
        check_churn_all(&[0, 1, 2, 3, 4, 5, 6, 7], &[]);
    }

    #[test]
    fn mixed_churn_matches_rebuild() {
        check_churn_all(&[1, 6], DELTA);
        check_churn_all(&[6, 7], DELTA);
        check_churn_all(&[2, 3, 5], DELTA);
    }

    #[test]
    fn remove_then_readd_identical_rows_is_byte_identical_to_base() {
        for materialize in [Materialize::AllFrequent, Materialize::ClosedOnly] {
            let builder = CubeBuilder::new().min_support(2).materialize(materialize);
            let base: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
            let bytes = base.to_bytes();
            let mut snap = base.clone();
            let mut b = batch(&BASE[6..]);
            b.remove_tid(6).remove_tid(7);
            let stats = snap.apply_update(&b).unwrap();
            assert_eq!((stats.rows_removed, stats.rows_added), (2, 2));
            assert_eq!(snap.to_bytes(), bytes, "{materialize:?}: must return to the base bytes");
        }
    }

    #[test]
    fn parallel_update_is_bit_identical_to_serial() {
        for (remove, delta) in
            [(vec![2u32, 5], DELTA), (vec![], DELTA), (vec![0, 1, 2, 7], &[] as &[Row])]
        {
            let builder = CubeBuilder::new().min_support(1);
            let mut serial: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
            let mut parallel = serial.clone();
            let mut b = batch(delta);
            for &t in &remove {
                b.remove_tid(t);
            }
            let s1 = serial.apply_update_threads(&b, 1).unwrap();
            let s2 = parallel.apply_update_threads(&b, 8).unwrap();
            assert_eq!(s1, s2, "stats must agree");
            assert_eq!(serial.to_bytes(), parallel.to_bytes(), "bytes must agree");
        }
    }

    #[test]
    fn remove_by_row_match_equals_remove_by_tid() {
        let builder = CubeBuilder::new();
        let base: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let mut by_tid = base.clone();
        let mut b1 = UpdateBatch::new();
        b1.remove_tid(0);
        by_tid.apply_update(&b1).unwrap();
        let mut by_row = base.clone();
        let mut b2 = UpdateBatch::new();
        // Row 0 is the first (sex=F, age=young, region=north, u0) row; the
        // matcher must claim the earliest occurrence.
        b2.remove_row(&[("sex", "F"), ("age", "young"), ("region", "north")], "u0");
        by_row.apply_update(&b2).unwrap();
        assert_eq!(by_tid.to_bytes(), by_row.to_bytes());

        // Two identical removals claim two distinct rows (0 and 1)...
        let mut both = base.clone();
        let mut b3 = UpdateBatch::new();
        b3.remove_row(&[("sex", "F"), ("age", "young"), ("region", "north")], "u0")
            .remove_row(&[("age", "young"), ("sex", "F"), ("region", "north")], "u0");
        let stats = both.apply_update(&b3).unwrap();
        assert_eq!(stats.rows_removed, 2);
        // ...and a third has nothing left to claim.
        let mut over = base.clone();
        let mut b4 = b3.clone();
        b4.remove_row(&[("sex", "F"), ("age", "young"), ("region", "north")], "u0");
        assert!(over.apply_update(&b4).is_err());
    }

    #[test]
    fn bad_retractions_rejected_before_mutation() {
        let builder = CubeBuilder::new();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let bytes = snap.to_bytes();
        // Unknown value: absent from the dictionary, can match nothing.
        let mut b = UpdateBatch::new();
        b.remove_row(&[("sex", "F"), ("age", "ancient"), ("region", "north")], "u0");
        let mut s = snap.clone();
        let err = s.apply_update(&b).unwrap_err().to_string();
        assert!(err.contains("absent from the snapshot's dictionary"), "{err}");
        assert_eq!(s.to_bytes(), bytes);
        // Unknown unit.
        let mut b = UpdateBatch::new();
        b.remove_row(&[("sex", "F"), ("age", "young"), ("region", "north")], "u9");
        let mut s = snap.clone();
        assert!(s.apply_update(&b).is_err());
        assert_eq!(s.to_bytes(), bytes);
        // Known values, but no row has this combination.
        let mut b = UpdateBatch::new();
        b.remove_row(&[("sex", "F"), ("age", "old"), ("region", "north")], "u0");
        let mut s = snap.clone();
        assert!(s.apply_update(&b).is_err());
        assert_eq!(s.to_bytes(), bytes);
        // Out-of-range and duplicate tids.
        for bad in [vec![8u32], vec![3, 3]] {
            let mut b = UpdateBatch::new();
            for &t in &bad {
                b.remove_tid(t);
            }
            let mut s = snap.clone();
            assert!(s.apply_update(&b).is_err(), "{bad:?}");
            assert_eq!(s.to_bytes(), bytes, "{bad:?}");
        }
    }

    #[test]
    fn demotion_mirrors_promotion() {
        // At min_support 2, (sex=F, age=young, region=north) has support 2
        // (rows 0, 1); retracting row 1 drops it below threshold and the
        // cell must leave the store.
        let builder = CubeBuilder::new().min_support(2).materialize(Materialize::AllFrequent);
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let coords = snap
            .cube()
            .coords_by_names(&[("sex", "F"), ("age", "young")], &[("region", "north")])
            .unwrap();
        assert!(snap.cube().get(&coords).is_some(), "materialized before the retraction");
        let before = snap.cube().len();
        let mut b = UpdateBatch::new();
        b.remove_tid(1);
        let stats = snap.apply_update(&b).unwrap();
        assert!(stats.demoted_cells > 0, "{stats:?}");
        assert!(snap.cube().len() < before);
        assert!(snap.cube().get(&coords).is_none(), "demoted after the retraction");
    }

    #[test]
    fn multi_valued_relabel_caveat_is_value_exact() {
        // The documented edge of the byte-identity contract: a retraction
        // that makes two values of one *multi-valued* attribute first-occur
        // in the same surviving row cannot recover that row's original cell
        // order, so the relabeled dictionary may differ from a rebuild's.
        // What must still hold — and what this test pins — is that the
        // updated cube is *value*-exact: same cells by name, same floats,
        // bit for bit.
        let schema =
            Schema::new(vec![Attribute::sa("lang").multi(), Attribute::ca("region")]).unwrap();
        let mut b = TransactionDbBuilder::new(schema.clone());
        b.add_row(&[vec!["b"], vec!["north"]], "u0").unwrap(); // b interns first
        b.add_row(&[vec!["a"], vec!["north"]], "u0").unwrap(); // then a
        b.add_row(&[vec!["a", "b"], vec!["south"]], "u1").unwrap(); // cell order a;b
        b.add_row(&[vec!["a"], vec!["south"]], "u1").unwrap();
        let base_db = b.finish();
        let builder = CubeBuilder::new().min_support(1);
        let mut updated: CubeSnapshot = CubeSnapshot::from_db(&base_db, &builder).unwrap();
        // Retract rows 0 and 1: both `a` and `b` now first-occur in row 2,
        // whose original cell order ("a" before "b") is unrecoverable from
        // the postings — old-id order says b before a.
        let mut batch = UpdateBatch::new();
        batch.remove_tid(0).remove_tid(1);
        updated.apply_update(&batch).unwrap();

        let mut rb = TransactionDbBuilder::new(schema);
        rb.add_row(&[vec!["a", "b"], vec!["south"]], "u1").unwrap();
        rb.add_row(&[vec!["a"], vec!["south"]], "u1").unwrap();
        let rebuilt: CubeSnapshot = CubeSnapshot::from_db(&rb.finish(), &builder).unwrap();

        // Value-exactness across the possibly-different dictionaries: every
        // rebuilt cell resolves by *name* in the updated cube to identical
        // floats, and the stores are the same size.
        assert_eq!(updated.cube().len(), rebuilt.cube().len());
        for (coords, values) in rebuilt.cube().cells() {
            let labels = rebuilt.cube().labels();
            let name = |items: &[ItemId]| -> Vec<(String, String)> {
                items
                    .iter()
                    .map(|&it| (labels.attr_of(it).to_string(), labels.value_of(it).to_string()))
                    .collect()
            };
            let (sa, ca) = (name(&coords.sa), name(&coords.ca));
            let sa_refs: Vec<(&str, &str)> =
                sa.iter().map(|(a, v)| (a.as_str(), v.as_str())).collect();
            let ca_refs: Vec<(&str, &str)> =
                ca.iter().map(|(a, v)| (a.as_str(), v.as_str())).collect();
            let got = updated
                .cube()
                .get_by_names(&sa_refs, &ca_refs)
                .unwrap_or_else(|| panic!("cell {sa:?} | {ca:?} missing after relabel"));
            assert_eq!(got, values, "cell {sa:?} | {ca:?} diverged in value");
        }
    }

    #[test]
    fn histogram_subtraction_underflow_is_a_hard_error() {
        let mut base = vec![(0u32, 2u64), (2, 1)];
        assert!(merge_sub(&mut base, &[(0, 3)]).is_err(), "underflow");
        assert!(merge_sub(&mut base, &[(1, 1)]).is_err(), "unit absent from base");
        assert_eq!(base, vec![(0, 2), (2, 1)], "failed subtraction must not mutate");
        assert!(merge_sub(&mut base, &[(0, 2)]).is_ok());
        assert_eq!(base, vec![(2, 1)], "exact-zero pairs are removed");
    }

    #[test]
    fn repeated_small_updates_match_one_rebuild() {
        // Stream the delta row by row: four updates ≡ one concatenated
        // rebuild, bit for bit.
        let builder = CubeBuilder::new().min_support(2).materialize(Materialize::ClosedOnly);
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        for row in DELTA {
            snap.apply_update(&batch(&[*row])).unwrap();
        }
        let all: Vec<Row> = BASE.iter().chain(DELTA.iter()).copied().collect();
        let rebuilt: CubeSnapshot = CubeSnapshot::from_db(&db(&all), &builder).unwrap();
        assert_eq!(snap.to_bytes(), rebuilt.to_bytes());
    }
}
