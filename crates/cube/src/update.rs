//! Incremental cube maintenance: fold appended rows into a built cube.
//!
//! SCube as published is a batch tool — any new data meant re-mining and
//! rebuilding the whole cube. This module makes a built cube a *maintained*
//! artifact instead: an [`UpdateBatch`] of appended rows is folded into the
//! existing [`VerticalDb`] (postings extended in place at their tails via
//! [`Posting::append_sorted`]) and only the affected cells are recomputed.
//! The result is **bit-identical** to a full rebuild on the concatenated
//! data (property-tested in `tests/cube_update_equivalence.rs`) at a small
//! fraction of the cost, because three structural facts bound the work:
//!
//! 1. **Dirtiness is decided by the context alone.** A cell `(A | B)` is
//!    evaluated from the per-unit histograms of `tidset(B)` (population)
//!    and `tidset(A ∪ B) ⊆ tidset(B)` (minority). Appends only ever add
//!    transaction ids, so the histograms change iff `tidset(B)` gains ids
//!    — iff some appended row contains all of `B` (`B = ⋆` is always
//!    dirty: the population universe grows). Clean cells keep their exact
//!    floats, untouched.
//! 2. **Supports only grow.** Every materialized itemset stays frequent,
//!    and (under [`Materialize::ClosedOnly`]) every closed itemset stays
//!    closed: a strict superset with strictly smaller support can never
//!    catch up, because any appended row containing the superset also
//!    contains the subset. Cells are therefore never removed by an append.
//! 3. **Promotions are subsets of single appended rows.** An itemset that
//!    becomes newly frequent — or newly closed — must have gained ids,
//!    hence be contained in some *one* appended row. The affected slice of
//!    the Eclat search space is re-mined from exactly those rows: each
//!    row's frequent-item projection is enumerated as candidates (the
//!    degenerate, row-local form of the first-level equivalence classes),
//!    with [`scube_fpm::eclat::mine_vertical_with_tidsets_scoped`] as the
//!    class-level fallback for pathologically wide rows. Supports are
//!    counted over the full updated postings, so promotion is exact.
//!
//! Dirty cells are re-evaluated with the same [`UnitScratch`] machinery and
//! the same compact per-context histograms as
//! [`crate::builder::CubeBuilder`] — identical integer histograms, hence
//! identical index values, bit for bit.
//!
//! New attribute values and new units extend the label dictionary at the
//! tail in first-seen order, matching the interning order of a rebuild on
//! base-then-delta rows (for schemas declaring SA attributes before CA
//! attributes, which is how every final-table spec in this workspace is
//! constructed).

use scube_bitmap::Posting;
use scube_common::{FxHashMap, FxHashSet, Result, ScubeError};
use scube_data::{ItemId, Relation, UnitId, UnitScratch, VerticalDb, MULTI_VALUE_SEPARATOR};
use scube_fpm::eclat::mine_vertical_with_tidsets_scoped;
use scube_segindex::{IndexValues, UnitCounts};

use crate::builder::Materialize;
use crate::coords::CellCoords;
use crate::cube::{CubeLabels, SegregationCube};

/// Widest frequent-item row projection whose subsets are enumerated
/// directly; wider rows fall back to the scoped Eclat re-mine.
const MAX_SUBSET_WIDTH: usize = 16;

/// A batch of appended individuals, expressed in label space
/// (`attribute = value` pairs plus a unit name), waiting to be folded into
/// a built cube.
///
/// Rows are applied in insertion order; values and units first seen in the
/// batch extend the cube's dictionary at the tail.
///
/// ```
/// use scube_cube::UpdateBatch;
///
/// let mut batch = UpdateBatch::new();
/// batch
///     .add_row(&[("sex", "F"), ("region", "north")], "acme")
///     .add_row(&[("sex", "M"), ("region", "south")], "globex");
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    /// `(attribute, value)` pairs + unit name, one entry per individual.
    rows: Vec<(Vec<(String, String)>, String)>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Append one individual: its `(attribute, value)` pairs (repeat the
    /// attribute for multi-valued ones; omit it for missing values) and the
    /// name of the organizational unit it belongs to.
    pub fn add_row<S: AsRef<str>>(&mut self, values: &[(S, S)], unit: &str) -> &mut Self {
        self.rows.push((
            values
                .iter()
                .map(|(a, v)| (a.as_ref().to_string(), v.as_ref().trim().to_string()))
                .collect(),
            unit.to_string(),
        ));
        self
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Build a batch from a final-table-shaped [`Relation`]: one column per
    /// cube attribute (all of the cube's SA and CA attributes must be
    /// present; multi-valued cells use the `;` separator) plus the unit
    /// column. This is what `scube update --add rows.csv` parses.
    pub fn from_relation(rel: &Relation, labels: &CubeLabels, unit_column: &str) -> Result<Self> {
        let attrs: Vec<&String> = labels.sa_attrs.iter().chain(labels.ca_attrs.iter()).collect();
        let mut cols = Vec::with_capacity(attrs.len());
        for attr in &attrs {
            let idx = rel.column_index(attr).ok_or_else(|| {
                ScubeError::Schema(format!("update rows miss the cube attribute column '{attr}'"))
            })?;
            cols.push(idx);
        }
        let unit_col = rel.column_index(unit_column).ok_or_else(|| {
            ScubeError::Schema(format!("update rows miss the unit column '{unit_column}'"))
        })?;
        let mut batch = UpdateBatch::new();
        for row in rel.rows() {
            let mut pairs: Vec<(&str, &str)> = Vec::new();
            for (attr, &col) in attrs.iter().zip(&cols) {
                for value in row[col].split(MULTI_VALUE_SEPARATOR) {
                    let value = value.trim();
                    if !value.is_empty() {
                        pairs.push((attr, value));
                    }
                }
            }
            batch.add_row(&pairs, &row[unit_col]);
        }
        Ok(batch)
    }
}

/// What one [`UpdateBatch`] application did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Transactions appended.
    pub rows_added: usize,
    /// Attribute values first seen in the batch (dictionary growth).
    pub new_items: usize,
    /// Units first seen in the batch.
    pub new_units: usize,
    /// Existing cells whose context gained transactions (re-evaluated).
    pub dirty_cells: usize,
    /// Newly materialized cells (itemsets promoted to frequent — or, under
    /// [`Materialize::ClosedOnly`], to closed).
    pub promoted_cells: usize,
    /// Cells left untouched, bit for bit.
    pub clean_cells: usize,
}

/// Everything an engine needs to fold an update into its caches: the stats
/// plus a probe deciding whether *any* coordinates — cached fallback cells
/// included — may have been revalued.
#[derive(Debug)]
pub(crate) struct UpdateOutcome<P: Posting> {
    pub stats: UpdateStats,
    pub probe: DirtyProbe<P>,
}

/// Decides whether a cell's value may have changed under an applied batch:
/// true iff the cell's context tidset gained appended transactions (the
/// stored postings cover appended tids only).
#[derive(Debug)]
pub(crate) struct DirtyProbe<P: Posting> {
    delta_postings: Vec<P>,
    has_rows: bool,
}

impl<P: Posting> DirtyProbe<P> {
    /// True when `coords` was (possibly) revalued by the update. `⋆`
    /// contexts are always dirty under a non-empty batch — the population
    /// universe grew.
    pub fn is_dirty(&self, coords: &CellCoords) -> bool {
        if !self.has_rows {
            return false;
        }
        coords.ca.is_empty() || delta_tidset(&self.delta_postings, &coords.ca).is_some()
    }
}

/// Non-empty intersection of the delta postings of `items` (which must be
/// non-empty), or `None` when no appended row contains them all.
fn delta_tidset<P: Posting>(postings: &[P], items: &[ItemId]) -> Option<P> {
    let [first, rest @ ..] = items else { unreachable!("delta_tidset needs items") };
    let mut acc = postings.get(*first as usize)?.clone();
    for &it in rest {
        if acc.is_empty() {
            return None;
        }
        acc = acc.and(postings.get(it as usize)?);
    }
    (!acc.is_empty()).then_some(acc)
}

/// A batch encoded against the cube's labels: dictionary-encoded rows plus
/// the new labels they introduced, in first-seen (intern) order.
struct EncodedBatch {
    rows: Vec<(Vec<ItemId>, UnitId)>,
    new_items: Vec<(String, String, bool)>,
    new_units: Vec<String>,
}

/// Resolve the batch against the current labels, interning new values and
/// units in first-seen order — per row, SA attributes before CA attributes,
/// mirroring the schema order of every final-table build.
fn encode_batch(batch: &UpdateBatch, labels: &CubeLabels) -> Result<EncodedBatch> {
    let mut item_lookup: FxHashMap<(String, String), ItemId> = FxHashMap::default();
    for (id, (attr, value, _)) in labels.items.iter().enumerate() {
        item_lookup.insert((attr.clone(), value.clone()), id as ItemId);
    }
    let mut unit_lookup: FxHashMap<String, UnitId> = FxHashMap::default();
    for (id, name) in labels.unit_names.iter().enumerate() {
        unit_lookup.insert(name.clone(), id as UnitId);
    }
    let is_sa: FxHashMap<&str, bool> = labels
        .sa_attrs
        .iter()
        .map(|a| (a.as_str(), true))
        .chain(labels.ca_attrs.iter().map(|a| (a.as_str(), false)))
        .collect();

    let mut out = EncodedBatch { rows: Vec::new(), new_items: Vec::new(), new_units: Vec::new() };
    let n_base_items = labels.num_items();
    let n_base_units = labels.unit_names.len();
    for (pairs, unit) in &batch.rows {
        for (attr, _) in pairs {
            if !is_sa.contains_key(attr.as_str()) {
                return Err(ScubeError::Schema(format!(
                    "update row references unknown attribute '{attr}'"
                )));
            }
        }
        let mut items: Vec<ItemId> = Vec::with_capacity(pairs.len());
        // Intern attribute-major — SA attributes in label order, then CA
        // attributes, values in row order within an attribute — regardless
        // of how the caller ordered the pairs. This is the order a
        // rebuild's TransactionDbBuilder interns in (for the SA-before-CA
        // schemas every final-table spec produces), which is what keeps
        // updated snapshots byte-identical to rebuilt ones.
        for attr in labels.sa_attrs.iter().chain(labels.ca_attrs.iter()) {
            for (a, value) in pairs {
                if a != attr || value.is_empty() {
                    continue;
                }
                let sa = is_sa[attr.as_str()];
                let id = *item_lookup.entry((a.clone(), value.clone())).or_insert_with(|| {
                    out.new_items.push((a.clone(), value.clone(), sa));
                    (n_base_items + out.new_items.len() - 1) as ItemId
                });
                items.push(id);
            }
        }
        items.sort_unstable();
        items.dedup();
        let unit_id = *unit_lookup.entry(unit.clone()).or_insert_with(|| {
            out.new_units.push(unit.clone());
            (n_base_units + out.new_units.len() - 1) as UnitId
        });
        out.rows.push((items, unit_id));
    }
    Ok(out)
}

/// The cube's *sufficient statistics*: the integer per-unit histograms
/// every cell value is computed from, kept alongside the cube so updates
/// never have to re-derive them from the full postings.
///
/// Per distinct context `B`, the ascending `(unit, total)` pairs of
/// `tidset(B)`; per materialized cell with a non-`⋆` minority side, the
/// ascending `(unit, minority)` pairs of `tidset(A ∪ B)` (`A = ⋆` cells
/// mirror the context totals and store nothing). Histograms are plain
/// `u64` counts, so `hist(base ⧺ delta) = hist(base) + hist(delta)`
/// **exactly** — folding a delta in means histogramming only the appended
/// transactions and adding, after which the recomputed index values equal
/// a from-scratch rebuild bit for bit. This is what turns dirty-cell
/// re-evaluation from `O(Σ |full tidset|)` into `O(Σ |delta tidset| +
/// dirty cells × populated units)`.
///
/// Persisted in snapshot format v2 (canonical order: contexts by item
/// list, cells by coordinates) so a loaded snapshot is immediately
/// updatable; v1 files reconstruct it on load.
#[derive(Debug, Clone, Default)]
pub(crate) struct MaintenanceStore {
    /// Distinct cell contexts → ascending `(unit, total)` pairs.
    pub(crate) contexts: FxHashMap<Vec<ItemId>, Vec<(u32, u64)>>,
    /// Cells with a non-`⋆` SA side → ascending `(unit, minority)` pairs.
    pub(crate) minorities: FxHashMap<CellCoords, Vec<(u32, u64)>>,
}

impl MaintenanceStore {
    /// Derive the store from scratch — what [`crate::snapshot::CubeSnapshot::new`]
    /// does when pairing a cube with its vertical database, and what v1
    /// snapshot files (which predate the store) do on load.
    pub(crate) fn compute<P: Posting>(cube: &SegregationCube, vertical: &VerticalDb<P>) -> Self {
        let mut scratch = UnitScratch::new(vertical.num_units());
        let mut contexts: FxHashMap<Vec<ItemId>, Vec<(u32, u64)>> = FxHashMap::default();
        let mut context_tids: FxHashMap<Vec<ItemId>, P> = FxHashMap::default();
        for (coords, _) in cube.cells() {
            if !contexts.contains_key(&coords.ca) {
                let tids = vertical.tidset(&coords.ca);
                vertical.unit_histogram_into(&tids, &mut scratch);
                contexts.insert(coords.ca.clone(), scratch.sorted_pairs());
                context_tids.insert(coords.ca.clone(), tids);
            }
        }
        let mut minorities: FxHashMap<CellCoords, Vec<(u32, u64)>> = FxHashMap::default();
        for (coords, _) in cube.cells() {
            if coords.sa.is_empty() {
                continue;
            }
            let tids = minority_tidset(vertical, &context_tids, coords);
            vertical.unit_histogram_into(&tids, &mut scratch);
            minorities.insert(coords.clone(), scratch.sorted_pairs());
        }
        MaintenanceStore { contexts, minorities }
    }

    /// Structural consistency against a cube: every cell's context has
    /// totals, every non-`⋆`-SA cell has minority counts dominated by its
    /// context's totals (minority units are populated units with
    /// `m ≤ t`), and nothing else is stored. Loaded snapshots are
    /// validated with this before any update trusts the store, so a
    /// crafted store errors up front instead of failing mid-update.
    pub(crate) fn covers(&self, cube: &SegregationCube) -> bool {
        let mut want_min = 0usize;
        let mut want_ctx: FxHashMap<&[ItemId], ()> = FxHashMap::default();
        for (coords, _) in cube.cells() {
            want_ctx.insert(&coords.ca, ());
            if coords.sa.is_empty() {
                continue;
            }
            let (Some(minority), Some(totals)) =
                (self.minorities.get(coords), self.contexts.get(&coords.ca))
            else {
                return false;
            };
            let mut ti = totals.iter().peekable();
            for &(mu, mc) in minority {
                while ti.next_if(|&&(tu, _)| tu < mu).is_some() {}
                match ti.peek() {
                    Some(&&(tu, tc)) if tu == mu && mc <= tc => {}
                    _ => return false,
                }
            }
            want_min += 1;
        }
        self.minorities.len() == want_min
            && self.contexts.len() == want_ctx.len()
            && want_ctx.keys().all(|ca| self.contexts.contains_key(*ca))
    }
}

/// Add `delta` into `base`, both ascending by unit (a sorted merge; counts
/// are exact `u64` sums, which is what keeps updated histograms identical
/// to recomputed ones).
fn merge_add(base: &mut Vec<(u32, u64)>, delta: &[(u32, u64)]) {
    if delta.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(base.len() + delta.len());
    let (mut i, mut j) = (0, 0);
    while i < base.len() && j < delta.len() {
        match base[i].0.cmp(&delta[j].0) {
            std::cmp::Ordering::Less => {
                out.push(base[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(delta[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((base[i].0, base[i].1 + delta[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&base[i..]);
    out.extend_from_slice(&delta[j..]);
    *base = out;
}

/// Index values from stored histograms: triples over the context's
/// populated units in ascending order, minority counts merged in (absent
/// unit ⇒ 0) — the same integer sequence the builder feeds
/// [`UnitCounts::from_triples`].
fn values_from_hists(
    context: &[(u32, u64)],
    minority: &[(u32, u64)],
    atkinson_b: f64,
) -> Result<IndexValues> {
    let mut mi = minority.iter().peekable();
    let counts = UnitCounts::from_triples(context.iter().map(|&(u, t)| {
        let m = match mi.peek() {
            Some(&&(mu, mc)) if mu == u => {
                mi.next();
                mc
            }
            _ => 0,
        };
        (u, m, t)
    }))?;
    Ok(IndexValues::compute_with(&counts, atkinson_b))
}

/// Tidset and support of `items` over the full postings, intersecting
/// smallest-first and aborting as soon as the running intersection drops
/// below `floor` (supports only shrink under intersection, so an early
/// sub-floor cardinality is conclusive). `None` = support below floor.
fn tidset_if_frequent<P: Posting>(
    vertical: &VerticalDb<P>,
    items: &[ItemId],
    floor: u64,
) -> Option<P> {
    let mut order: Vec<ItemId> = items.to_vec();
    order.sort_by_key(|&it| vertical.posting(it).cardinality());
    let mut acc = vertical.posting(order[0]).clone();
    if acc.cardinality() < floor {
        return None;
    }
    for &it in &order[1..] {
        acc = acc.and(vertical.posting(it));
        if acc.cardinality() < floor {
            return None;
        }
    }
    Some(acc)
}

/// Fold `batch` into `(cube, vertical, store)` in place (see the module
/// docs): extend the postings, promote newly-frequent itemsets, fold delta
/// histograms into the maintenance store, and recompute exactly the dirty
/// cells from the updated integer histograms. `materialize` and
/// `atkinson_b` must be the configuration the cube was built with —
/// snapshots record them since format v2.
pub(crate) fn apply_update<P: Posting>(
    cube: &mut SegregationCube,
    vertical: &mut VerticalDb<P>,
    store: &mut MaintenanceStore,
    batch: &UpdateBatch,
    materialize: Materialize,
    atkinson_b: f64,
) -> Result<UpdateOutcome<P>> {
    if batch.is_empty() {
        return Ok(UpdateOutcome {
            stats: UpdateStats { clean_cells: cube.len(), ..UpdateStats::default() },
            probe: DirtyProbe { delta_postings: Vec::new(), has_rows: false },
        });
    }
    let min_support = cube.min_support();
    // All fallible validation happens before anything is mutated, so a
    // rejected batch (or an inconsistent store) leaves the snapshot
    // exactly as it was.
    if !store.covers(cube) {
        return Err(ScubeError::Inconsistent(
            "update: maintenance store does not cover the cube".into(),
        ));
    }
    let encoded = encode_batch(batch, cube.labels())?;
    let old_n = vertical.num_transactions();
    let n_items_after = cube.labels().num_items() + encoded.new_items.len();
    let n_units_after = (cube.labels().unit_names.len() + encoded.new_units.len()) as u32;

    // Extend the postings first (append_rows validates before mutating, so
    // an inconsistent batch cannot leave the vertical half-extended), then
    // commit the dictionary growth.
    vertical
        .append_rows(&encoded.rows, n_items_after, n_units_after)
        .map_err(|e| ScubeError::Inconsistent(format!("update: {e}")))?;
    {
        let (labels, _, n_units) = cube.update_parts();
        for (attr, value, is_sa) in &encoded.new_items {
            labels.push_item(attr.clone(), value.clone(), *is_sa);
        }
        labels.unit_names.extend(encoded.new_units.iter().cloned());
        *n_units = n_units_after;
    }

    // Delta postings: per item, the *appended* tids containing it. They
    // decide dirtiness — a context is dirty iff its delta tidset is
    // non-empty — for materialized cells here and for engine caches later.
    let mut delta_tids: Vec<Vec<u32>> = vec![Vec::new(); n_items_after];
    for (i, (items, _)) in encoded.rows.iter().enumerate() {
        for &it in items {
            delta_tids[it as usize].push(old_n + i as u32);
        }
    }
    let probe = DirtyProbe {
        delta_postings: delta_tids.iter().map(|t| P::from_sorted(t)).collect(),
        has_rows: true,
    };

    // Promotion candidates: newly-frequent (or newly-closed) itemsets are
    // subsets of single appended rows, so enumerate each row's
    // frequent-item projection — deduplicated, with one generating row
    // remembered as the closedness witness. Wide rows fall back to the
    // scoped Eclat re-mine over their items.
    let mut candidates: FxHashMap<Vec<ItemId>, usize> = FxHashMap::default();
    let mut seen_projections: FxHashSet<Vec<ItemId>> = FxHashSet::default();
    let mut wide_items: Vec<ItemId> = Vec::new();
    let mut wide_rows: Vec<usize> = Vec::new();
    for (r, (items, _)) in encoded.rows.iter().enumerate() {
        let frequent: Vec<ItemId> = items
            .iter()
            .copied()
            .filter(|&it| vertical.posting(it).cardinality() >= min_support)
            .collect();
        // Categorical deltas repeat row shapes heavily; one enumeration
        // per *distinct* frequent-item projection bounds the subset work
        // by shape count, not batch size.
        if frequent.is_empty() || !seen_projections.insert(frequent.clone()) {
            continue;
        }
        if frequent.len() > MAX_SUBSET_WIDTH {
            wide_items.extend_from_slice(&frequent);
            wide_rows.push(r);
            continue;
        }
        for mask in 1u32..(1 << frequent.len()) {
            let subset: Vec<ItemId> = frequent
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &it)| it)
                .collect();
            candidates.entry(subset).or_insert(r);
        }
    }
    if !wide_items.is_empty() {
        for (set, _) in mine_vertical_with_tidsets_scoped(vertical, min_support, &wide_items)? {
            // Attribute each mined itemset to a wide row containing it (it
            // may be a cross-row combination that gained nothing — those
            // are filtered below by the delta-gain check).
            if let Some(&r) =
                wide_rows.iter().find(|&&r| is_sorted_subset(&set.items, &encoded.rows[r].0))
            {
                candidates.entry(set.items).or_insert(r);
            }
        }
    }

    // Phase 1 — fold the delta into the dirty context histograms. A dirty
    // context's delta tidset (over appended tids only) is histogrammed and
    // *added* to the stored totals: integer sums, so the result equals a
    // fresh histogram of the grown tidset exactly. Clean contexts are not
    // touched. The delta tidsets are kept for the minority intersections
    // below — every set here is delta-sized, never full-database-sized.
    let mut scratch = UnitScratch::new(n_units_after);
    let delta_all: P =
        P::from_sorted(&(old_n..old_n + encoded.rows.len() as u32).collect::<Vec<u32>>());
    let mut dirty_ctx_tids: FxHashMap<Vec<ItemId>, P> = FxHashMap::default();
    for (ca, totals) in store.contexts.iter_mut() {
        let delta_ctx = if ca.is_empty() {
            Some(delta_all.clone())
        } else {
            delta_tidset(&probe.delta_postings, ca)
        };
        let Some(delta_ctx) = delta_ctx else { continue };
        vertical.unit_histogram_into(&delta_ctx, &mut scratch);
        merge_add(totals, &scratch.sorted_pairs());
        dirty_ctx_tids.insert(ca.clone(), delta_ctx);
    }

    // Phase 2 — dirty cells: every cell whose context gained transactions.
    // Minority histograms advance by the *delta* minority tidset (the
    // context's delta intersected with the SA postings — again all
    // delta-sized), then the cell value is recomputed from the stored
    // integer histograms.
    let mut evaluated: Vec<(CellCoords, IndexValues, bool)> = Vec::new();
    let dirty_cells: Vec<CellCoords> = cube
        .cells()
        .filter(|(coords, _)| dirty_ctx_tids.contains_key(&coords.ca))
        .map(|(coords, _)| coords.clone())
        .collect();
    for coords in dirty_cells {
        let totals = &store.contexts[&coords.ca];
        let values = if coords.sa.is_empty() {
            // `A = ⋆` ⇒ minority ≡ population (the builder's apex path).
            let counts = UnitCounts::from_triples(totals.iter().map(|&(u, t)| (u, t, t)))?;
            IndexValues::compute_with(&counts, atkinson_b)
        } else {
            let mut delta_min = dirty_ctx_tids[&coords.ca].clone();
            for &item in &coords.sa {
                if delta_min.is_empty() {
                    break;
                }
                delta_min = delta_min.and(&probe.delta_postings[item as usize]);
            }
            let minority = store.minorities.get_mut(&coords).ok_or_else(|| {
                ScubeError::Inconsistent("update: cell missing from maintenance store".into())
            })?;
            if !delta_min.is_empty() {
                vertical.unit_histogram_into(&delta_min, &mut scratch);
                merge_add(minority, &scratch.sorted_pairs());
            }
            values_from_hists(totals, minority, atkinson_b)?
        };
        evaluated.push((coords, values, true));
    }

    // Phase 3 — promotions: candidates not yet materialized whose support
    // crossed the threshold (and which are closed, under ClosedOnly).
    // Candidates are visited smallest-first so an infrequent itemset
    // prunes its supersets without touching a posting (Apriori
    // monotonicity); surviving ones intersect smallest-posting-first with
    // a sub-threshold abort. Promoted cells get fresh store entries from
    // their full tidsets — new contexts too — exactly as a rebuild would
    // compute them.
    let mut ordered: Vec<(&Vec<ItemId>, usize)> =
        candidates.iter().map(|(items, &row)| (items, row)).collect();
    ordered.sort_unstable_by_key(|(items, _)| items.len());
    let mut infrequent: FxHashSet<&[ItemId]> = FxHashSet::default();
    for (items, row) in ordered {
        if items.len() > 1 {
            let mut sub: Vec<ItemId> = items[1..].to_vec();
            let mut pruned = infrequent.contains(&sub[..]);
            for i in 0..items.len() - 1 {
                if pruned {
                    break;
                }
                sub[i] = items[i];
                // sub now misses items[i + 1] (it holds the other items in
                // sorted order).
                pruned = infrequent.contains(&sub[..]);
            }
            if pruned {
                infrequent.insert(items.as_slice());
                continue;
            }
        }
        let coords = split_by_labels(items, cube.labels());
        if cube.get(&coords).is_some() {
            continue;
        }
        let Some(tids) = tidset_if_frequent(vertical, items, min_support) else {
            infrequent.insert(items.as_slice());
            continue;
        };
        if materialize == Materialize::ClosedOnly
            && !is_closed(vertical, items, &tids, &encoded.rows[row].0)
        {
            continue;
        }
        if !store.contexts.contains_key(&coords.ca) {
            let ctx_tids = vertical.tidset(&coords.ca);
            vertical.unit_histogram_into(&ctx_tids, &mut scratch);
            let pairs = scratch.sorted_pairs();
            store.contexts.insert(coords.ca.clone(), pairs);
        }
        let totals = &store.contexts[&coords.ca];
        let values = if coords.sa.is_empty() {
            let counts = UnitCounts::from_triples(totals.iter().map(|&(u, t)| (u, t, t)))?;
            IndexValues::compute_with(&counts, atkinson_b)
        } else {
            vertical.unit_histogram_into(&tids, &mut scratch);
            let minority = scratch.sorted_pairs();
            let values = values_from_hists(totals, &minority, atkinson_b)?;
            store.minorities.insert(coords.clone(), minority);
            values
        };
        evaluated.push((coords, values, false));
    }

    let mut stats = UpdateStats {
        rows_added: encoded.rows.len(),
        new_items: encoded.new_items.len(),
        new_units: encoded.new_units.len(),
        ..UpdateStats::default()
    };
    let (_, cells, _) = cube.update_parts();
    for (coords, values, existing) in evaluated {
        if existing {
            stats.dirty_cells += 1;
        } else {
            stats.promoted_cells += 1;
        }
        cells.insert(coords, values);
    }
    stats.clean_cells = cells.len() - stats.dirty_cells - stats.promoted_cells;
    Ok(UpdateOutcome { stats, probe })
}

/// Split a sorted itemset into `(A, B)` coordinates by label roles (the
/// update-path twin of [`CellCoords::from_itemset`], which needs the
/// original database).
fn split_by_labels(items: &[ItemId], labels: &CubeLabels) -> CellCoords {
    let mut sa = Vec::new();
    let mut ca = Vec::new();
    for &item in items {
        if labels.is_sa_item(item) {
            sa.push(item);
        } else {
            ca.push(item);
        }
    }
    CellCoords { sa, ca }
}

/// `a ⊆ b` over sorted id slices.
fn is_sorted_subset(a: &[ItemId], b: &[ItemId]) -> bool {
    let mut it = b.iter();
    a.iter().all(|x| it.by_ref().any(|y| y == x))
}

/// Minority tidset of a cell, reusing the cached context tidset (`⋆`
/// contexts intersect the SA postings directly).
fn minority_tidset<P: Posting>(
    vertical: &VerticalDb<P>,
    context_tids: &FxHashMap<Vec<ItemId>, P>,
    coords: &CellCoords,
) -> P {
    if coords.ca.is_empty() {
        return vertical.tidset(&coords.sa);
    }
    let mut acc = context_tids[&coords.ca].and(vertical.posting(coords.sa[0]));
    for &item in &coords.sa[1..] {
        if acc.is_empty() {
            break;
        }
        acc = acc.and(vertical.posting(item));
    }
    acc
}

/// Exact closedness of a promotion candidate in the grown database, using
/// its generating appended row to keep the check O(row width): an item
/// extending the candidate with equal support must occur in *every*
/// transaction of the candidate's tidset — in particular in the generating
/// row — so the only possible extenders are that row's other items.
fn is_closed<P: Posting>(
    vertical: &VerticalDb<P>,
    items: &[ItemId],
    tids: &P,
    row_items: &[ItemId],
) -> bool {
    let support = tids.cardinality();
    !row_items
        .iter()
        .any(|j| !items.contains(j) && vertical.posting(*j).and_cardinality(tids) == support)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CubeBuilder;
    use crate::snapshot::CubeSnapshot;
    use scube_bitmap::{DenseBitmap, EwahBitmap, TidVec};
    use scube_data::{Attribute, Schema, TransactionDb, TransactionDbBuilder};

    type Row = (&'static str, &'static str, &'static str, &'static str);

    const BASE: &[Row] = &[
        ("F", "young", "north", "u0"),
        ("F", "young", "north", "u0"),
        ("M", "old", "north", "u0"),
        ("F", "old", "south", "u1"),
        ("M", "young", "south", "u1"),
        ("M", "old", "south", "u1"),
        ("F", "young", "south", "u0"),
        ("M", "young", "north", "u1"),
    ];

    /// Delta with an existing shape, a new value ("mid"), and a new unit.
    const DELTA: &[Row] = &[
        ("F", "old", "north", "u0"),
        ("M", "mid", "north", "u2"),
        ("F", "mid", "south", "u2"),
        ("F", "old", "north", "u0"),
    ];

    fn db(rows: &[Row]) -> TransactionDb {
        let schema =
            Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
                .unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        for (s, a, r, u) in rows {
            b.add_row(&[vec![*s], vec![*a], vec![*r]], u).unwrap();
        }
        b.finish()
    }

    fn batch(rows: &[Row]) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for (s, a, r, u) in rows {
            batch.add_row(&[("sex", *s), ("age", *a), ("region", *r)], u);
        }
        batch
    }

    fn check_roundtrip<P: Posting + Send + Sync + PartialEq + std::fmt::Debug>(
        materialize: Materialize,
        min_support: u64,
    ) {
        let builder = CubeBuilder::new().min_support(min_support).materialize(materialize);
        let mut updated: CubeSnapshot<P> = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let stats = updated.apply_update(&batch(DELTA)).unwrap();
        let all: Vec<Row> = BASE.iter().chain(DELTA.iter()).copied().collect();
        let rebuilt: CubeSnapshot<P> = CubeSnapshot::from_db(&db(&all), &builder).unwrap();
        assert_eq!(updated.cube(), rebuilt.cube(), "{materialize:?} minsup {min_support}");
        assert_eq!(
            updated.to_bytes(),
            rebuilt.to_bytes(),
            "{materialize:?} minsup {min_support}: snapshot bytes diverge"
        );
        assert_eq!(stats.rows_added, DELTA.len());
        assert_eq!(stats.new_items, 1, "age=mid is the one new value");
        assert_eq!(stats.new_units, 1, "u2 is the one new unit");
        assert_eq!(
            stats.dirty_cells + stats.promoted_cells + stats.clean_cells,
            updated.cube().len()
        );
    }

    #[test]
    fn update_matches_rebuild_all_representations() {
        for minsup in [1, 2, 3] {
            check_roundtrip::<EwahBitmap>(Materialize::AllFrequent, minsup);
            check_roundtrip::<EwahBitmap>(Materialize::ClosedOnly, minsup);
            check_roundtrip::<DenseBitmap>(Materialize::AllFrequent, minsup);
            check_roundtrip::<DenseBitmap>(Materialize::ClosedOnly, minsup);
            check_roundtrip::<TidVec>(Materialize::AllFrequent, minsup);
            check_roundtrip::<TidVec>(Materialize::ClosedOnly, minsup);
        }
    }

    #[test]
    fn promotion_crosses_the_support_threshold() {
        // At min_support 3, (age=old, region=north) has base support 1;
        // the delta adds two more rows with that pair, promoting it (and
        // (sex=F, age=old, region=north), support 0 → 2... still below).
        let builder = CubeBuilder::new().min_support(3);
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let before = snap.cube().len();
        let coords = |snap: &CubeSnapshot, sa: &[(&str, &str)], ca: &[(&str, &str)]| {
            snap.cube().coords_by_names(sa, ca)
        };
        let promoted = coords(&snap, &[("age", "old")], &[("region", "north")]).unwrap();
        assert!(snap.cube().get(&promoted).is_none(), "below threshold before the update");
        let stats = snap.apply_update(&batch(DELTA)).unwrap();
        assert!(stats.promoted_cells > 0);
        assert!(snap.cube().len() > before);
        let v = snap.cube().get(&promoted).expect("promoted after the update");
        assert_eq!(v.minority, 3);
    }

    #[test]
    fn clean_cells_are_not_reevaluated() {
        // A delta touching only the north leaves pure-south contexts clean.
        let builder = CubeBuilder::new().min_support(1);
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let south_delta: &[Row] = &[("F", "young", "north", "u0")];
        let stats = snap.apply_update(&batch(south_delta)).unwrap();
        assert!(stats.clean_cells > 0, "south-context cells must stay untouched");
        assert!(stats.dirty_cells > 0, "north and ⋆ contexts are dirty");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let builder = CubeBuilder::new();
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let bytes = snap.to_bytes();
        let stats = snap.apply_update(&UpdateBatch::new()).unwrap();
        assert_eq!(stats, UpdateStats { clean_cells: snap.cube().len(), ..Default::default() });
        assert_eq!(snap.to_bytes(), bytes);
    }

    #[test]
    fn unknown_attribute_rejected_before_mutation() {
        let builder = CubeBuilder::new();
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let bytes = snap.to_bytes();
        let mut bad = UpdateBatch::new();
        bad.add_row(&[("sex", "F"), ("planet", "mars")], "u0");
        assert!(snap.apply_update(&bad).is_err());
        assert_eq!(snap.to_bytes(), bytes, "failed update must not mutate the snapshot");
    }

    #[test]
    fn batch_from_relation_matches_hand_built() {
        let builder = CubeBuilder::new();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let mut rel =
            Relation::new(vec!["sex".into(), "age".into(), "region".into(), "unitID".into()])
                .unwrap();
        for (s, a, r, u) in DELTA {
            rel.push_row(vec![s.to_string(), a.to_string(), r.to_string(), u.to_string()]).unwrap();
        }
        let from_rel = UpdateBatch::from_relation(&rel, snap.cube().labels(), "unitID").unwrap();
        let mut a = snap.clone();
        let mut b = snap.clone();
        a.apply_update(&from_rel).unwrap();
        b.apply_update(&batch(DELTA)).unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
        // Missing columns are schema errors.
        let empty = Relation::new(vec!["sex".into(), "unitID".into()]).unwrap();
        assert!(UpdateBatch::from_relation(&empty, snap.cube().labels(), "unitID").is_err());
        assert!(UpdateBatch::from_relation(&rel, snap.cube().labels(), "nope").is_err());
    }

    #[test]
    fn pair_order_does_not_change_interning() {
        // Two new values in one row, given in reverse attribute order: the
        // dictionary must still grow in label (schema) order, keeping the
        // updated snapshot byte-identical to a rebuild.
        let builder = CubeBuilder::new();
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        let mut reversed = UpdateBatch::new();
        reversed.add_row(&[("region", "west"), ("age", "mid"), ("sex", "F")], "u0");
        snap.apply_update(&reversed).unwrap();
        let all: Vec<Row> = BASE.iter().copied().chain([("F", "mid", "west", "u0")]).collect();
        let rebuilt: CubeSnapshot = CubeSnapshot::from_db(&db(&all), &builder).unwrap();
        assert_eq!(snap.to_bytes(), rebuilt.to_bytes());
    }

    #[test]
    fn repeated_small_updates_match_one_rebuild() {
        // Stream the delta row by row: four updates ≡ one concatenated
        // rebuild, bit for bit.
        let builder = CubeBuilder::new().min_support(2).materialize(Materialize::ClosedOnly);
        let mut snap: CubeSnapshot = CubeSnapshot::from_db(&db(BASE), &builder).unwrap();
        for row in DELTA {
            snap.apply_update(&batch(&[*row])).unwrap();
        }
        let all: Vec<Row> = BASE.iter().chain(DELTA.iter()).copied().collect();
        let rebuilt: CubeSnapshot = CubeSnapshot::from_db(&db(&all), &builder).unwrap();
        assert_eq!(snap.to_bytes(), rebuilt.to_bytes());
    }
}
