//! On-demand cell evaluation for interactive exploration.
//!
//! A [`crate::builder::Materialize::ClosedOnly`] cube stores one cell per
//! closed itemset; an analyst exploring the cube may ask for *any*
//! coordinates (Fig. 1 shows arbitrary ⋆ combinations). The explorer
//! answers such queries exactly by going back to the vertical database:
//! the minority statistics of `(A, B)` equal those of the closure of
//! `A ∪ B`, and the population statistics those of the closure of `B`, so
//! recomputing from tidsets gives the same numbers the full cube would
//! store — property-tested in `tests/cube_properties.rs`.
//!
//! The explorer splits cleanly into an **immutable** half (the vertical
//! postings and the Atkinson parameter, shared freely across threads) and a
//! **mutable** half ([`ExplorerScratch`]: two reusable [`UnitScratch`]
//! histograms). The `&mut self` methods ([`CubeExplorer::values_at`],
//! [`CubeExplorer::unit_breakdown`]) use the explorer's own scratch — the
//! convenient single-threaded API — while the `_with` variants take `&self`
//! plus an external scratch, which is what lets the concurrent serving
//! layer ([`crate::serve::ConcurrentCubeEngine`]) share one explorer across
//! worker threads, each with a checked-out scratch, so cold recomputation
//! never allocates per query.

use scube_bitmap::{EwahBitmap, Posting};
use scube_common::Result;
use scube_data::{TransactionDb, UnitScratch, VerticalDb};
use scube_segindex::{IndexValues, MeasureSet, UnitCounts, DEFAULT_ATKINSON_B};

use crate::coords::CellCoords;

/// The mutable half of cell evaluation: two reusable per-unit histograms
/// (minority and population). One scratch per worker thread lets any number
/// of threads evaluate cells through a shared [`CubeExplorer`] without a
/// single histogram allocation.
#[derive(Debug, Clone)]
pub struct ExplorerScratch {
    minority: UnitScratch,
    total: UnitScratch,
}

impl ExplorerScratch {
    /// Scratch for databases with `n_units` organizational units.
    pub fn new(n_units: u32) -> Self {
        ExplorerScratch { minority: UnitScratch::new(n_units), total: UnitScratch::new(n_units) }
    }
}

/// Evaluates arbitrary cube cells directly from a vertical database.
///
/// Single-threaded queries take `&mut self` and reuse the explorer's own
/// [`ExplorerScratch`]; concurrent callers use [`Self::values_at_with`] /
/// [`Self::unit_breakdown_with`] through `&self` with per-worker scratches.
/// Either way a query allocates no per-unit arrays and costs
/// `O(Σ|tidset| + |touched units|)` rather than `O(n_units)` — the same
/// fast path PR 1 gave the builder.
#[derive(Debug)]
pub struct CubeExplorer<P: Posting = EwahBitmap> {
    vertical: VerticalDb<P>,
    atkinson_b: f64,
    measures: MeasureSet,
    scratch: ExplorerScratch,
}

impl<P: Posting> CubeExplorer<P> {
    /// Build an explorer over a database.
    pub fn new(db: &TransactionDb) -> Self {
        Self::from_vertical(VerticalDb::build(db))
    }

    /// Wrap an existing vertical database (e.g. one loaded from a
    /// [`crate::snapshot::CubeSnapshot`]) without touching the original
    /// horizontal data.
    pub fn from_vertical(vertical: VerticalDb<P>) -> Self {
        let n_units = vertical.num_units();
        CubeExplorer {
            vertical,
            atkinson_b: DEFAULT_ATKINSON_B,
            measures: MeasureSet::FULL,
            scratch: ExplorerScratch::new(n_units),
        }
    }

    /// Override the Atkinson shape parameter.
    pub fn with_atkinson_b(mut self, b: f64) -> Self {
        self.atkinson_b = b;
        self
    }

    /// Restrict the fallback fold to a measure subset, so recomputed cells
    /// match a subset-built cube's materialized cells bit for bit.
    pub fn with_measures(mut self, measures: MeasureSet) -> Self {
        self.measures = measures;
        self
    }

    /// The underlying vertical database.
    pub fn vertical(&self) -> &VerticalDb<P> {
        &self.vertical
    }

    /// Mutable access for the update path (`crate::update` extends the
    /// postings in place). Callers must call [`Self::refresh_scratch`]
    /// afterwards if the unit count grew.
    pub(crate) fn vertical_mut(&mut self) -> &mut VerticalDb<P> {
        &mut self.vertical
    }

    /// Re-size the explorer's own scratch to the (possibly grown) unit
    /// count after an update.
    pub(crate) fn refresh_scratch(&mut self) {
        self.scratch = ExplorerScratch::new(self.vertical.num_units());
    }

    /// A fresh scratch sized for this explorer's database (what a worker
    /// thread checks out before calling the `_with` methods).
    pub fn new_scratch(&self) -> ExplorerScratch {
        ExplorerScratch::new(self.vertical.num_units())
    }

    /// Tidset of the context side (`Posting::full` when the side is `⋆`).
    fn total_tidset(vertical: &VerticalDb<P>, coords: &CellCoords) -> P {
        vertical.tidset(&coords.ca)
    }

    /// Tidset of `A ∪ B`, reusing the already-intersected context tidset
    /// instead of re-intersecting the `ca` postings from scratch. The whole
    /// recomputation is one batched k-way AND — smallest posting first, no
    /// per-step allocation.
    fn minority_tidset(vertical: &VerticalDb<P>, coords: &CellCoords, total_tids: &P) -> P {
        if coords.ca.is_empty() {
            return vertical.tidset(&coords.sa);
        }
        let mut refs: Vec<&P> = Vec::with_capacity(1 + coords.sa.len());
        refs.push(total_tids);
        refs.extend(coords.sa.iter().map(|&item| vertical.posting(item)));
        P::intersect_many(&refs).expect("context plus non-empty SA side")
    }

    /// Fill both scratch histograms and return the context's populated
    /// units as ascending `(unit, total)` pairs; minority counts are read
    /// from `scratch.minority` afterwards (zero when the SA side is `⋆`-free
    /// of the unit).
    fn fill_histograms(
        vertical: &VerticalDb<P>,
        coords: &CellCoords,
        scratch: &mut ExplorerScratch,
    ) -> Vec<(u32, u64)> {
        let total_tids = Self::total_tidset(vertical, coords);
        vertical.unit_histogram_into(&total_tids, &mut scratch.total);
        if coords.sa.is_empty() {
            // `A = ⋆` ⇒ minority ≡ population; mirror it into the minority
            // scratch so callers can read both uniformly.
            vertical.unit_histogram_into(&total_tids, &mut scratch.minority);
        } else {
            let minority_tids = Self::minority_tidset(vertical, coords, &total_tids);
            vertical.unit_histogram_into(&minority_tids, &mut scratch.minority);
        }
        scratch.total.sorted_pairs()
    }

    /// Evaluate the cell at `coords` through `&self` with an external
    /// scratch (the concurrent path).
    pub fn values_at_with(
        &self,
        coords: &CellCoords,
        scratch: &mut ExplorerScratch,
    ) -> Result<IndexValues> {
        let total_pairs = Self::fill_histograms(&self.vertical, coords, scratch);
        let minority = &scratch.minority;
        let counts = UnitCounts::from_triples(
            total_pairs.iter().map(|&(u, t)| (u, minority.count_of(u), t)),
        )?;
        Ok(IndexValues::compute_masked(&counts, self.atkinson_b, self.measures))
    }

    /// Per-unit `(unit, minority, total)` drill-down through `&self` with
    /// an external scratch (the concurrent path).
    pub fn unit_breakdown_with(
        &self,
        coords: &CellCoords,
        scratch: &mut ExplorerScratch,
    ) -> Vec<(u32, u64, u64)> {
        let total_pairs = Self::fill_histograms(&self.vertical, coords, scratch);
        let minority = &scratch.minority;
        total_pairs.iter().map(|&(u, t)| (u, minority.count_of(u), t)).collect()
    }

    /// Evaluate the cell at `coords`, regardless of materialization.
    pub fn values_at(&mut self, coords: &CellCoords) -> Result<IndexValues> {
        let CubeExplorer { vertical, atkinson_b, measures, scratch } = self;
        let total_pairs = Self::fill_histograms(vertical, coords, scratch);
        let minority = &scratch.minority;
        let counts = UnitCounts::from_triples(
            total_pairs.iter().map(|&(u, t)| (u, minority.count_of(u), t)),
        )?;
        Ok(IndexValues::compute_masked(&counts, *atkinson_b, *measures))
    }

    /// Per-unit `(unit, minority, total)` drill-down of a cell — what the
    /// paper's pivot-table exploration shows when expanding a cube row.
    pub fn unit_breakdown(&mut self, coords: &CellCoords) -> Vec<(u32, u64, u64)> {
        let CubeExplorer { vertical, scratch, .. } = self;
        let total_pairs = Self::fill_histograms(vertical, coords, scratch);
        let minority = &scratch.minority;
        total_pairs.iter().map(|&(u, t)| (u, minority.count_of(u), t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CubeBuilder, Materialize};
    use scube_data::{Attribute, Schema, TransactionDbBuilder};

    fn db() -> TransactionDb {
        let schema =
            Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
                .unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        let rows = [
            ("F", "young", "north", "u0"),
            ("F", "young", "north", "u0"),
            ("M", "old", "north", "u0"),
            ("F", "old", "south", "u1"),
            ("M", "young", "south", "u1"),
            ("M", "old", "south", "u1"),
            ("F", "young", "south", "u0"),
            ("M", "young", "north", "u1"),
        ];
        for (s, a, r, u) in rows {
            b.add_row(&[vec![s], vec![a], vec![r]], u).unwrap();
        }
        b.finish()
    }

    #[test]
    fn explorer_matches_materialized_cells() {
        let db = db();
        let cube = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let mut explorer: CubeExplorer = CubeExplorer::new(&db);
        for (coords, values) in cube.cells() {
            let recomputed = explorer.values_at(coords).unwrap();
            assert_eq!(&recomputed, values, "cell {}", cube.labels().describe(coords));
        }
    }

    #[test]
    fn explorer_resolves_non_materialized_cells() {
        let db = db();
        let closed = CubeBuilder::new().materialize(Materialize::ClosedOnly).build(&db).unwrap();
        let full = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let mut explorer: CubeExplorer = CubeExplorer::new(&db);
        // Every full-cube cell — materialized in `closed` or not — must be
        // answerable by the explorer with identical values.
        for (coords, values) in full.cells() {
            let via_explorer = explorer.values_at(coords).unwrap();
            assert_eq!(&via_explorer, values);
        }
        assert!(closed.len() <= full.len());
    }

    #[test]
    fn unit_breakdown_sums_match() {
        let db = db();
        let cube = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let mut explorer: CubeExplorer = CubeExplorer::new(&db);
        for (coords, values) in cube.cells() {
            let breakdown = explorer.unit_breakdown(coords);
            let m: u64 = breakdown.iter().map(|&(_, m, _)| m).sum();
            let t: u64 = breakdown.iter().map(|&(_, _, t)| t).sum();
            assert_eq!(m, values.minority);
            assert_eq!(t, values.total);
        }
    }

    #[test]
    fn shared_ref_path_matches_owned_scratch_path() {
        let db = db();
        let cube = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let mut owned: CubeExplorer = CubeExplorer::new(&db);
        let shared: CubeExplorer = CubeExplorer::new(&db);
        let mut scratch = shared.new_scratch();
        for (coords, values) in cube.cells() {
            assert_eq!(&shared.values_at_with(coords, &mut scratch).unwrap(), values);
            assert_eq!(
                shared.unit_breakdown_with(coords, &mut scratch),
                owned.unit_breakdown(coords)
            );
        }
    }
}
