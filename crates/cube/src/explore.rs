//! On-demand cell evaluation for interactive exploration.
//!
//! A [`crate::builder::Materialize::ClosedOnly`] cube stores one cell per
//! closed itemset; an analyst exploring the cube may ask for *any*
//! coordinates (Fig. 1 shows arbitrary ⋆ combinations). The explorer
//! answers such queries exactly by going back to the vertical database:
//! the minority statistics of `(A, B)` equal those of the closure of
//! `A ∪ B`, and the population statistics those of the closure of `B`, so
//! recomputing from tidsets gives the same numbers the full cube would
//! store — property-tested in `tests/cube_properties.rs`.

use scube_bitmap::{EwahBitmap, Posting};
use scube_common::Result;
use scube_data::{TransactionDb, VerticalDb};
use scube_segindex::{IndexValues, UnitCounts, DEFAULT_ATKINSON_B};

use crate::coords::CellCoords;

/// Evaluates arbitrary cube cells directly from a vertical database.
#[derive(Debug)]
pub struct CubeExplorer<P: Posting = EwahBitmap> {
    vertical: VerticalDb<P>,
    atkinson_b: f64,
}

impl<P: Posting> CubeExplorer<P> {
    /// Build an explorer over a database.
    pub fn new(db: &TransactionDb) -> Self {
        CubeExplorer { vertical: VerticalDb::build(db), atkinson_b: DEFAULT_ATKINSON_B }
    }

    /// Override the Atkinson shape parameter.
    pub fn with_atkinson_b(mut self, b: f64) -> Self {
        self.atkinson_b = b;
        self
    }

    /// The underlying vertical database.
    pub fn vertical(&self) -> &VerticalDb<P> {
        &self.vertical
    }

    /// Evaluate the cell at `coords`, regardless of materialization.
    pub fn values_at(&self, coords: &CellCoords) -> Result<IndexValues> {
        let minority_tids = self.vertical.tidset(&coords.union());
        let minority = self.vertical.unit_histogram(&minority_tids);
        let total = self.vertical.unit_histogram(&self.vertical.tidset(&coords.ca));
        let counts = UnitCounts::from_triples((0..self.vertical.num_units()).filter_map(|u| {
            let t = total[u as usize];
            (t > 0).then(|| (u, minority[u as usize], t))
        }))?;
        Ok(IndexValues::compute_with(&counts, self.atkinson_b))
    }

    /// Per-unit `(unit, minority, total)` drill-down of a cell — what the
    /// paper's pivot-table exploration shows when expanding a cube row.
    pub fn unit_breakdown(&self, coords: &CellCoords) -> Vec<(u32, u64, u64)> {
        let minority = self.vertical.unit_histogram(&self.vertical.tidset(&coords.union()));
        let total = self.vertical.unit_histogram(&self.vertical.tidset(&coords.ca));
        (0..self.vertical.num_units())
            .filter_map(|u| {
                let t = total[u as usize];
                (t > 0).then(|| (u, minority[u as usize], t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CubeBuilder, Materialize};
    use scube_data::{Attribute, Schema, TransactionDbBuilder};

    fn db() -> TransactionDb {
        let schema =
            Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
                .unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        let rows = [
            ("F", "young", "north", "u0"),
            ("F", "young", "north", "u0"),
            ("M", "old", "north", "u0"),
            ("F", "old", "south", "u1"),
            ("M", "young", "south", "u1"),
            ("M", "old", "south", "u1"),
            ("F", "young", "south", "u0"),
            ("M", "young", "north", "u1"),
        ];
        for (s, a, r, u) in rows {
            b.add_row(&[vec![s], vec![a], vec![r]], u).unwrap();
        }
        b.finish()
    }

    #[test]
    fn explorer_matches_materialized_cells() {
        let db = db();
        let cube = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let explorer: CubeExplorer = CubeExplorer::new(&db);
        for (coords, values) in cube.cells() {
            let recomputed = explorer.values_at(coords).unwrap();
            assert_eq!(&recomputed, values, "cell {}", cube.labels().describe(coords));
        }
    }

    #[test]
    fn explorer_resolves_non_materialized_cells() {
        let db = db();
        let closed = CubeBuilder::new().materialize(Materialize::ClosedOnly).build(&db).unwrap();
        let full = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let explorer: CubeExplorer = CubeExplorer::new(&db);
        // Every full-cube cell — materialized in `closed` or not — must be
        // answerable by the explorer with identical values.
        for (coords, values) in full.cells() {
            let via_explorer = explorer.values_at(coords).unwrap();
            assert_eq!(&via_explorer, values);
        }
        assert!(closed.len() <= full.len());
    }

    #[test]
    fn unit_breakdown_sums_match() {
        let db = db();
        let cube = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let explorer: CubeExplorer = CubeExplorer::new(&db);
        for (coords, values) in cube.cells() {
            let breakdown = explorer.unit_breakdown(coords);
            let m: u64 = breakdown.iter().map(|&(_, m, _)| m).sum();
            let t: u64 = breakdown.iter().map(|&(_, _, t)| t).sum();
            assert_eq!(m, values.minority);
            assert_eq!(t, values.total);
        }
    }
}
