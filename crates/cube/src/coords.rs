//! Cube cell coordinates: the `(A, B)` itemset pair.

use scube_data::{ItemId, TransactionDb};

/// Coordinates of one cube cell.
///
/// `sa` is the minority definition (items over segregation attributes),
/// `ca` the context definition (items over context attributes); both are
/// sorted ascending. An empty side means "all ⋆" (fully rolled up on that
/// family of dimensions).
///
/// The derived `Ord` (lexicographic `sa`, then `ca`) is the **canonical
/// cell order**: snapshot serialization sorts by it, so byte-identical
/// snapshots depend on it staying field-ordered `sa` before `ca`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CellCoords {
    /// Sorted SA item ids (the minority subgroup `A`).
    pub sa: Vec<ItemId>,
    /// Sorted CA item ids (the context `B`).
    pub ca: Vec<ItemId>,
}

impl CellCoords {
    /// The apex cell `(⋆, ⋆)`.
    pub fn apex() -> Self {
        CellCoords::default()
    }

    /// Build from explicit (unsorted) parts.
    pub fn new(mut sa: Vec<ItemId>, mut ca: Vec<ItemId>) -> Self {
        sa.sort_unstable();
        ca.sort_unstable();
        CellCoords { sa, ca }
    }

    /// Split a sorted itemset into SA and CA parts using the database's
    /// attribute roles.
    pub fn from_itemset(items: &[ItemId], db: &TransactionDb) -> Self {
        Self::split_sorted(items, |item| db.is_sa_item(item))
    }

    /// Split a sorted itemset by an arbitrary SA predicate — the shared
    /// core of [`Self::from_itemset`] and the label-based splits used by
    /// builds that never materialize a [`TransactionDb`].
    pub fn split_sorted(items: &[ItemId], is_sa: impl Fn(ItemId) -> bool) -> Self {
        let mut sa = Vec::new();
        let mut ca = Vec::new();
        for &item in items {
            if is_sa(item) {
                sa.push(item);
            } else {
                ca.push(item);
            }
        }
        CellCoords { sa, ca }
    }

    /// The union itemset `A ∪ B`, sorted.
    pub fn union(&self) -> Vec<ItemId> {
        let mut all: Vec<ItemId> = self.sa.iter().chain(self.ca.iter()).copied().collect();
        all.sort_unstable();
        all
    }

    /// Total number of fixed coordinates.
    pub fn len(&self) -> usize {
        self.sa.len() + self.ca.len()
    }

    /// True for the apex cell.
    pub fn is_empty(&self) -> bool {
        self.sa.is_empty() && self.ca.is_empty()
    }

    /// True when the minority side is `⋆` (no subgroup fixed).
    pub fn is_sa_star(&self) -> bool {
        self.sa.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scube_data::{Attribute, Schema, TransactionDbBuilder};

    #[test]
    fn splits_by_role() {
        let schema = Schema::new(vec![Attribute::sa("g"), Attribute::ca("r")]).unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        b.add_row(&[vec!["F"], vec!["north"]], "u").unwrap();
        let db = b.finish();
        let items: Vec<ItemId> = db.transaction(0).to_vec();
        let c = CellCoords::from_itemset(&items, &db);
        assert_eq!(c.sa.len(), 1);
        assert_eq!(c.ca.len(), 1);
        assert_eq!(c.union(), items);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(!c.is_sa_star());
    }

    #[test]
    fn apex() {
        let a = CellCoords::apex();
        assert!(a.is_empty());
        assert!(a.is_sa_star());
        assert_eq!(a.union(), Vec::<ItemId>::new());
    }

    #[test]
    fn new_sorts() {
        let c = CellCoords::new(vec![5, 1], vec![9, 2]);
        assert_eq!(c.sa, vec![1, 5]);
        assert_eq!(c.ca, vec![2, 9]);
    }
}
