#![warn(missing_docs)]
//! The multi-dimensional segregation data cube — SCube's core contribution.
//!
//! A cube cell is addressed by a pair of coordinate sets ([`CellCoords`]):
//! `A` over segregation-attribute items (defining a minority subgroup, e.g.
//! `sex=female ∧ age=young`) and `B` over context-attribute items (defining
//! a context, e.g. `region=north`); the absent attributes are at the `⋆`
//! granularity of standard multi-dimensional modelling. The cell's metric
//! ([`scube_segindex::IndexValues`]) is every segregation index computed
//! over the organizational units, taking
//!
//! * total population  = individuals matching `B`, split per unit (`t_i`),
//! * minority population = individuals matching `A ∪ B`, per unit (`m_i`).
//!
//! Segregation indexes are **not additive**, so cells cannot be rolled up
//! from finer cells; the [`builder::CubeBuilder`] instead enumerates every
//! sufficiently-populated cell by frequent-itemset mining and computes its
//! per-unit histograms from tidset bitmaps (the `SegregationDataCubeBuilder`
//! algorithm of the companion journal paper). Two materialization
//! strategies are offered:
//!
//! * **AllFrequent** — one cell per frequent itemset `A ∪ B`;
//! * **ClosedOnly** — one cell per *closed* frequent itemset: lossless in
//!   the sense that a non-closed cell's minority statistics equal those of
//!   its closure (the [`explore::CubeExplorer`] resolves any coordinates on
//!   demand), while storing far fewer cells.
//!
//! The cube also *serves*: [`snapshot::CubeSnapshot`] persists a built cube
//! plus its vertical postings in a versioned, checksummed binary format,
//! [`query::CubeQueryEngine`] answers point / top-k / slice / dice queries
//! from the materialized store with a cached explorer fallback for
//! non-materialized ⋆-combinations, and [`serve::ConcurrentCubeEngine`] is
//! the same engine through `&self` — sharded cell cache, pooled explorer
//! scratches, atomic counters — for multi-threaded serving.
//!
//! And it is *maintained*: an [`update::UpdateBatch`] of appended rows
//! folds into a snapshot or a running engine in place — postings extended
//! at their tails, newly-frequent itemsets promoted, only dirty cells
//! recomputed from incrementally maintained integer histograms —
//! bit-identical to a full rebuild on the concatenated data at a fraction
//! of the cost (the streaming-ingest path; see [`update`]).

pub mod builder;
pub mod coords;
pub mod cube;
pub mod explore;
pub mod query;
pub mod report;
pub mod serve;
pub mod snapshot;
pub mod update;

pub use builder::{CubeBuilder, CubeConfig, Materialize};
pub use coords::CellCoords;
pub use cube::{CubeLabels, SegregationCube};
pub use explore::{CubeExplorer, ExplorerScratch};
pub use query::{
    AtomicQueryStats, CubeQueryEngine, QueryStats, RankedCells, DEFAULT_CACHE_CAPACITY,
};
pub use report::{fig1_grid, radial_series, to_csv, top_contexts};
pub use serve::{ConcurrentCubeEngine, DEFAULT_SHARDS};
pub use snapshot::CubeSnapshot;
pub use update::{UpdateBatch, UpdateStats};
