//! The cube serving layer: cached point, top-k, and slice/dice queries.
//!
//! A [`CubeQueryEngine`] answers any cell the paper's pivot-table UI can ask
//! for, in three tiers:
//!
//! 1. **materialized** — exact hits in the [`SegregationCube`] store are a
//!    hash lookup;
//! 2. **cached** — non-materialized ⋆-combinations already computed this
//!    session come from a bounded LRU cell cache;
//! 3. **explored** — everything else is recomputed exactly from the
//!    [`scube_data::VerticalDb`] postings by the [`CubeExplorer`] and
//!    inserted into the cache.
//!
//! All three tiers return bit-identical values (tested in
//! `tests/query_engine_equivalence.rs`); the tiers only change latency.
//! Engines are built either in memory ([`CubeQueryEngine::from_db`]) or
//! from a loaded [`CubeSnapshot`], which is the `scube save` / `scube
//! query` serving path.
//!
//! This engine is the single-session (`&mut self`) form; the multi-threaded
//! serving layer with the same tiering lives in
//! [`crate::serve::ConcurrentCubeEngine`], and both report through the same
//! [`QueryStats`] / [`AtomicQueryStats`] counters.

use std::sync::atomic::{AtomicU64, Ordering};

use scube_bitmap::{EwahBitmap, Posting};
use scube_common::{FxHashMap, Result, ScubeError};
use scube_data::TransactionDb;
use scube_segindex::{IndexValues, SegIndex};

use crate::builder::CubeBuilder;
use crate::coords::CellCoords;
use crate::cube::{CubeLabels, SegregationCube};
use crate::explore::CubeExplorer;
use crate::snapshot::CubeSnapshot;

/// Default cell-cache capacity: generous for interactive sessions, small
/// next to any real cube.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Cells ranked by one index, descending: `(coords, values, index value)`.
pub type RankedCells = Vec<(CellCoords, IndexValues, f64)>;

/// Cumulative counters of which tier answered each query.
///
/// `materialized + cached + explored` counts point queries;
/// `breakdown_computed + breakdown_cached` counts unit-breakdown
/// drill-downs. This is the plain snapshot form; live engines accumulate
/// into an [`AtomicQueryStats`] so concurrent workers never lose updates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Answered from the materialized cell store.
    pub materialized: u64,
    /// Answered from the LRU cell cache.
    pub cached: u64,
    /// Recomputed from postings by the explorer.
    pub explored: u64,
    /// Unit breakdowns recomputed from postings.
    pub breakdown_computed: u64,
    /// Unit breakdowns served from already-stored per-unit data.
    pub breakdown_cached: u64,
}

impl QueryStats {
    /// Total point queries served.
    pub fn total(&self) -> u64 {
        self.materialized + self.cached + self.explored
    }

    /// Total unit-breakdown drill-downs served.
    pub fn breakdowns(&self) -> u64 {
        self.breakdown_computed + self.breakdown_cached
    }
}

/// [`QueryStats`] as relaxed atomic counters: shared by reference across
/// any number of serving threads; [`Self::load`] takes a plain snapshot.
#[derive(Debug, Default)]
pub struct AtomicQueryStats {
    materialized: AtomicU64,
    cached: AtomicU64,
    explored: AtomicU64,
    breakdown_computed: AtomicU64,
    breakdown_cached: AtomicU64,
}

impl AtomicQueryStats {
    /// Count a materialized-store hit.
    pub fn record_materialized(&self) {
        self.materialized.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a cell-cache hit.
    pub fn record_cached(&self) {
        self.cached.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an explorer recomputation.
    pub fn record_explored(&self) {
        self.explored.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a recomputed unit breakdown.
    pub fn record_breakdown_computed(&self) {
        self.breakdown_computed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a breakdown served from stored per-unit data.
    pub fn record_breakdown_cached(&self) {
        self.breakdown_cached.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn load(&self) -> QueryStats {
        QueryStats {
            materialized: self.materialized.load(Ordering::Relaxed),
            cached: self.cached.load(Ordering::Relaxed),
            explored: self.explored.load(Ordering::Relaxed),
            breakdown_computed: self.breakdown_computed.load(Ordering::Relaxed),
            breakdown_cached: self.breakdown_cached.load(Ordering::Relaxed),
        }
    }
}

/// Resolve attribute/value names against cube labels, enforcing attribute
/// roles: a context attribute on the minority side (or vice versa) would
/// silently address a cell outside the cube's coordinate space, so it is an
/// error rather than a plausible-looking answer. Shared by the serial and
/// concurrent engines.
pub(crate) fn resolve_coords(
    labels: &CubeLabels,
    sa: &[(&str, &str)],
    ca: &[(&str, &str)],
) -> Result<CellCoords> {
    let lookup = |pairs: &[(&str, &str)], want_sa: bool| -> Result<Vec<_>> {
        pairs
            .iter()
            .map(|&(a, v)| {
                let item = labels.find_item(a, v).ok_or_else(|| {
                    ScubeError::InvalidParameter(format!("unknown coordinate {a}={v}"))
                })?;
                if labels.is_sa_item(item) != want_sa {
                    let (is, should) = if want_sa {
                        ("a context attribute", "--ca")
                    } else {
                        ("a segregation attribute", "--sa")
                    };
                    return Err(ScubeError::InvalidParameter(format!(
                        "{a} is {is}; move {a}={v} to the {should} side"
                    )));
                }
                Ok(item)
            })
            .collect()
    };
    Ok(CellCoords::new(lookup(sa, true)?, lookup(ca, false)?))
}

/// Total per-unit triples a breakdown cache may retain. Breakdown values
/// are `Vec`s up to `n_units` long — orders of magnitude bigger than the
/// cell cache's fixed-size [`IndexValues`] — so the cache is budgeted by
/// retained triples (~24 MiB worst case), not by entry count. Since the
/// PR-4 audit the budget is enforced by **exact** per-entry weights (each
/// entry weighs its own triple count, tracked by [`LruCache`]'s
/// `used_weight` counter) rather than by dividing the budget by the
/// worst-case breakdown length — short breakdowns no longer waste
/// capacity, and the counter is decremented for every eviction,
/// replacement, and `retain`-dropped entry (budget-exactness regression
/// tests pin this, including across `apply_update` invalidation).
pub(crate) const BREAKDOWN_TRIPLE_BUDGET: usize = 1 << 20;

/// The weight of one cached breakdown: its retained triples (floored at 1
/// so empty breakdowns still occupy a slot's worth of budget).
pub(crate) fn breakdown_weight(b: &[(u32, u64, u64)]) -> usize {
    b.len().max(1)
}

/// Descending by index value, ties broken by canonical coordinates — a
/// total order, so any partition of the cells ranks deterministically.
pub(crate) fn sort_ranked(rows: &mut RankedCells, k: usize) {
    rows.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.union().cmp(&b.0.union())));
    if k > 0 {
        rows.truncate(k);
    }
}

/// One pass over a set of materialized cells ranking every requested index
/// at once. Shared by the serial engine (whole store) and the concurrent
/// engine (which chunks the store across worker threads and merges).
pub(crate) fn rank_cell_list<'a>(
    cells: impl IntoIterator<Item = (&'a CellCoords, &'a IndexValues)>,
    indexes: &[SegIndex],
    k: usize,
    min_total: u64,
) -> Vec<(SegIndex, RankedCells)> {
    let mut per_index: Vec<(SegIndex, RankedCells)> =
        indexes.iter().map(|&ix| (ix, Vec::new())).collect();
    for (coords, v) in cells {
        if coords.is_sa_star() || v.total < min_total {
            continue;
        }
        for (ix, rows) in &mut per_index {
            if let Some(x) = v.get(*ix) {
                rows.push((coords.clone(), *v, x));
            }
        }
    }
    for (_, rows) in &mut per_index {
        sort_ranked(rows, k);
    }
    per_index
}

/// One pass over the materialized store ranking every requested index.
pub(crate) fn rank_cells(
    cube: &SegregationCube,
    indexes: &[SegIndex],
    k: usize,
    min_total: u64,
) -> Vec<(SegIndex, RankedCells)> {
    rank_cell_list(cube.cells(), indexes, k, min_total)
}

/// Materialized cells fixing the given coordinates, in canonical order.
pub(crate) fn sorted_slice(
    cube: &SegregationCube,
    fixed: &[(&str, &str)],
) -> Vec<(CellCoords, IndexValues)> {
    let mut rows: Vec<(CellCoords, IndexValues)> =
        cube.slice(fixed).map(|(c, v)| (c.clone(), *v)).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// The materialized sub-cube over the listed attributes, in canonical order.
pub(crate) fn sorted_dice(
    cube: &SegregationCube,
    attrs: &[&str],
) -> Vec<(CellCoords, IndexValues)> {
    let mut rows: Vec<(CellCoords, IndexValues)> =
        cube.cells_over(attrs).map(|(c, v)| (c.clone(), *v)).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Serves cube queries from a materialized store with a cached explorer
/// fallback (see the module docs).
///
/// ```
/// use scube_cube::{CubeBuilder, CubeQueryEngine, Materialize};
/// use scube_data::{Attribute, Schema, TransactionDbBuilder};
/// use scube_segindex::SegIndex;
///
/// let schema = Schema::new(vec![Attribute::sa("sex"), Attribute::ca("region")])?;
/// let mut b = TransactionDbBuilder::new(schema);
/// for (sex, region, unit) in
///     [("F", "north", "u0"), ("F", "north", "u0"), ("M", "north", "u1"), ("M", "south", "u1")]
/// {
///     b.add_row(&[vec![sex], vec![region]], unit)?;
/// }
/// let db = b.finish();
///
/// // Serve a *closed* store: non-materialized ⋆-combinations fall back to
/// // the cached explorer, with bit-identical answers.
/// let closed = CubeBuilder::new().materialize(Materialize::ClosedOnly);
/// let mut engine: CubeQueryEngine = CubeQueryEngine::from_db(&db, &closed)?;
/// let women = engine.query_by_names(&[("sex", "F")], &[("region", "north")])?;
/// assert_eq!(women.minority, 2);
/// let top = engine.top_k(SegIndex::Dissimilarity, 3, 1);
/// assert!(!top.is_empty());
/// assert!(engine.stats().total() > 0);
/// # Ok::<(), scube_common::ScubeError>(())
/// ```
#[derive(Debug)]
pub struct CubeQueryEngine<P: Posting = EwahBitmap> {
    cube: SegregationCube,
    explorer: CubeExplorer<P>,
    cache: LruCache<CellCoords, IndexValues>,
    /// Per-unit drill-downs already computed this session: a breakdown of a
    /// cell — materialized or not — is *not* stored in the cube (cells hold
    /// only [`IndexValues`]), so without this cache every repeated
    /// drill-down re-partitioned tidsets from scratch.
    breakdowns: LruCache<CellCoords, Vec<(u32, u64, u64)>>,
    stats: AtomicQueryStats,
}

impl<P: Posting> CubeQueryEngine<P> {
    /// Serve from a snapshot (the persistent path) with the default cache.
    pub fn new(snapshot: CubeSnapshot<P>) -> Self {
        Self::with_cache_capacity(snapshot, DEFAULT_CACHE_CAPACITY)
    }

    /// Serve from a snapshot with an explicit cell-cache capacity
    /// (`0` disables caching: every fallback recomputes).
    pub fn with_cache_capacity(snapshot: CubeSnapshot<P>, capacity: usize) -> Self {
        // The explorer recomputes fallback cells with the Atkinson
        // parameter the cube was built with (recorded since snapshot v2),
        // so the fallback tier stays bit-identical to the store even for
        // non-default `b`.
        let atkinson_b = snapshot.atkinson_b();
        let (cube, vertical) = snapshot.into_parts();
        // Breakdown values are per-unit Vecs, so that cache is bounded by
        // an exact retained-triple budget on top of the entry capacity.
        let breakdowns = LruCache::with_budget(capacity, BREAKDOWN_TRIPLE_BUDGET);
        CubeQueryEngine {
            cube,
            explorer: CubeExplorer::from_vertical(vertical).with_atkinson_b(atkinson_b),
            cache: LruCache::new(capacity),
            breakdowns,
            stats: AtomicQueryStats::default(),
        }
    }

    /// Build cube and engine straight from a transaction database (the
    /// in-memory path; equivalent to snapshotting and serving immediately).
    pub fn from_db(db: &TransactionDb, builder: &CubeBuilder) -> Result<Self>
    where
        P: Send + Sync,
    {
        Ok(Self::new(CubeSnapshot::from_db(db, builder)?))
    }

    /// The materialized cube.
    pub fn cube(&self) -> &SegregationCube {
        &self.cube
    }

    /// Which tier answered each query so far.
    pub fn stats(&self) -> QueryStats {
        self.stats.load()
    }

    /// Point lookup: materialized store, then LRU cache, then exact
    /// recomputation from postings.
    pub fn query(&mut self, coords: &CellCoords) -> Result<IndexValues> {
        if let Some(v) = self.cube.get(coords) {
            self.stats.record_materialized();
            return Ok(*v);
        }
        if let Some(v) = self.cache.get(coords) {
            self.stats.record_cached();
            return Ok(*v);
        }
        let v = self.explorer.values_at(coords)?;
        self.stats.record_explored();
        self.cache.insert(coords.clone(), v);
        Ok(v)
    }

    /// Point lookup by attribute/value names, e.g.
    /// `query_by_names(&[("sex", "F")], &[("region", "north")])`.
    pub fn query_by_names(
        &mut self,
        sa: &[(&str, &str)],
        ca: &[(&str, &str)],
    ) -> Result<IndexValues> {
        let coords = self.resolve(sa, ca)?;
        self.query(&coords)
    }

    /// Resolve attribute/value names against the cube labels, enforcing
    /// attribute roles: a context attribute on the minority side (or vice
    /// versa) errors instead of addressing a cell outside the cube.
    pub fn resolve(&self, sa: &[(&str, &str)], ca: &[(&str, &str)]) -> Result<CellCoords> {
        resolve_coords(self.cube.labels(), sa, ca)
    }

    /// Per-unit `(unit, minority, total)` drill-down of any cell.
    ///
    /// Fast path: a breakdown already computed this session — including for
    /// materialized cells, whose stored [`IndexValues`] do not carry
    /// per-unit data — is served from the breakdown cache instead of being
    /// re-partitioned from postings (regression-tested in
    /// `tests/query_engine_equivalence.rs`).
    pub fn unit_breakdown(&mut self, coords: &CellCoords) -> Vec<(u32, u64, u64)> {
        if let Some(b) = self.breakdowns.get(coords) {
            self.stats.record_breakdown_cached();
            return b.clone();
        }
        let b = self.explorer.unit_breakdown(coords);
        self.stats.record_breakdown_computed();
        self.breakdowns.insert_weighted(coords.clone(), b.clone(), breakdown_weight(&b));
        b
    }

    /// Top-k materialized cells by one index (descending), restricted to
    /// real minorities (non-⋆ SA side) with population at least `min_total`.
    /// `k = 0` returns all matches.
    pub fn top_k(&self, index: SegIndex, k: usize, min_total: u64) -> RankedCells {
        self.top_k_batch(&[index], k, min_total).remove(0).1
    }

    /// Batched top-k: one pass over the materialized store ranking every
    /// requested index at once — what a dashboard refresh issues.
    pub fn top_k_batch(
        &self,
        indexes: &[SegIndex],
        k: usize,
        min_total: u64,
    ) -> Vec<(SegIndex, RankedCells)> {
        rank_cells(&self.cube, indexes, k, min_total)
    }

    /// Slice: materialized cells fixing all the given `(attr, value)`
    /// coordinates, in canonical (sa, ca) order.
    pub fn slice(&self, fixed: &[(&str, &str)]) -> Vec<(CellCoords, IndexValues)> {
        sorted_slice(&self.cube, fixed)
    }

    /// Dice: the materialized sub-cube over the listed attributes only, in
    /// canonical (sa, ca) order.
    pub fn dice(&self, attrs: &[&str]) -> Vec<(CellCoords, IndexValues)> {
        sorted_dice(&self.cube, attrs)
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct LruEntry<K, V> {
    key: K,
    value: V,
    weight: usize,
    prev: usize,
    next: usize,
}

/// A bounded least-recently-used cache over a slab + intrusive list,
/// bounded two ways: by entry count (`capacity`) and by total entry
/// *weight* (`weight_budget`; unlimited unless configured, weight 1 per
/// entry unless given). The breakdown caches weigh entries by their
/// retained triples, so the byte budget is enforced **exactly**: the
/// running `used_weight` counter is decremented for every evicted entry,
/// every in-place replacement, and every entry dropped by [`Self::retain`]
/// — any drift would permanently shrink (or overrun) the effective
/// capacity, which the budget-exactness tests pin down.
///
/// `get` and `insert` are O(1) amortized; evicted slots recycle through a
/// free list, so once warm the cache never allocates. Capacity 0 disables
/// it entirely. Shared with [`crate::serve`], where each shard of the
/// concurrent engine owns one behind its own lock.
#[derive(Debug)]
pub(crate) struct LruCache<K, V> {
    map: FxHashMap<K, usize>,
    entries: Vec<Option<LruEntry<K, V>>>,
    free: Vec<usize>,
    capacity: usize,
    weight_budget: usize,
    used_weight: usize,
    head: usize,
    tail: usize,
}

impl<K: std::hash::Hash + Eq + Clone, V> LruCache<K, V> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self::with_budget(capacity, usize::MAX)
    }

    /// A cache bounded by `capacity` entries *and* `weight_budget` total
    /// weight (whichever bites first).
    pub(crate) fn with_budget(capacity: usize, weight_budget: usize) -> Self {
        LruCache {
            map: scube_common::hash::fx_map_with_capacity(capacity.min(1 << 20)),
            entries: Vec::new(),
            free: Vec::new(),
            capacity,
            weight_budget,
            used_weight: 0,
            head: NIL,
            tail: NIL,
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }

    /// Total weight of the live entries, as tracked incrementally.
    #[cfg(test)]
    pub(crate) fn used_weight(&self) -> usize {
        self.used_weight
    }

    /// Recompute the live weight from scratch and compare with the
    /// tracked counter — the budget-exactness invariant.
    #[cfg(test)]
    pub(crate) fn weight_invariant_holds(&self) -> bool {
        let live: usize = self.entries.iter().flatten().map(|e| e.weight).sum();
        let linked = self.entries.iter().flatten().count();
        live == self.used_weight && linked == self.map.len()
    }

    fn entry(&self, i: usize) -> &LruEntry<K, V> {
        self.entries[i].as_ref().expect("linked slot is occupied")
    }

    fn entry_mut(&mut self, i: usize) -> &mut LruEntry<K, V> {
        self.entries[i].as_mut().expect("linked slot is occupied")
    }

    /// Unlink `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.entry(i).prev, self.entry(i).next);
        match prev {
            NIL => self.head = next,
            p => self.entry_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.entry_mut(n).prev = prev,
        }
    }

    /// Link `i` at the head (most recent).
    fn link_front(&mut self, i: usize) {
        self.entry_mut(i).prev = NIL;
        self.entry_mut(i).next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.entry_mut(h).prev = i,
        }
        self.head = i;
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
    }

    /// Evict the least-recently-used entry, returning its slot to the free
    /// list and its weight to the budget.
    fn evict_tail(&mut self) {
        let i = self.tail;
        debug_assert_ne!(i, NIL, "evict_tail on an empty cache");
        self.unlink(i);
        let e = self.entries[i].take().expect("tail slot is occupied");
        self.map.remove(&e.key);
        self.used_weight -= e.weight;
        self.free.push(i);
    }

    /// Evict from the tail until the weight budget is respected. The entry
    /// just inserted or refreshed sits at the head, so it goes last — and
    /// even it is evicted when it alone exceeds the budget.
    fn enforce_budget(&mut self) {
        while self.used_weight > self.weight_budget && self.tail != NIL {
            self.evict_tail();
        }
    }

    pub(crate) fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        self.touch(i);
        Some(&self.entry(i).value)
    }

    /// Drop every entry the predicate rejects, preserving the recency
    /// order (and weights) of the survivors. Used by the update path to
    /// invalidate exactly the dirty cached cells; O(len), which is
    /// negligible next to the update itself.
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) {
        let mut order = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            order.push(i);
            i = self.entry(i).next;
        }
        let mut slots = std::mem::take(&mut self.entries);
        self.map.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used_weight = 0;
        // Reinsert survivors least-recent first, so the recency list comes
        // back in the original order; dropped entries return their weight
        // by never being re-counted.
        for &i in order.iter().rev() {
            let e = slots[i].take().expect("recency list links each slot once");
            if keep(&e.key, &e.value) {
                self.insert_weighted(e.key, e.value, e.weight);
            }
        }
    }

    pub(crate) fn insert(&mut self, key: K, value: V) {
        self.insert_weighted(key, value, 1);
    }

    /// Insert `key → value` carrying `weight` units of the budget,
    /// evicting least-recently-used entries until both bounds hold.
    pub(crate) fn insert_weighted(&mut self, key: K, value: V, weight: usize) {
        if self.capacity == 0 || self.weight_budget == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            let e = self.entry_mut(i);
            let old = e.weight;
            e.value = value;
            e.weight = weight;
            self.used_weight = self.used_weight - old + weight;
            self.touch(i);
            self.enforce_budget();
            return;
        }
        if self.map.len() == self.capacity {
            self.evict_tail();
        }
        let entry = LruEntry { key: key.clone(), value, weight, prev: NIL, next: NIL };
        let i = match self.free.pop() {
            Some(i) => {
                self.entries[i] = Some(entry);
                i
            }
            None => {
                self.entries.push(Some(entry));
                self.entries.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
        self.used_weight += weight;
        self.enforce_budget();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Materialize;
    use scube_data::{Attribute, Schema, TransactionDbBuilder};

    #[test]
    fn lru_evicts_least_recent() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10)); // 1 now most recent
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_update_in_place() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_capacity_zero_disabled() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn lru_single_slot() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&20));
        c.insert(3, 30);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn lru_retain_preserves_recency_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for k in 0..4 {
            c.insert(k, k * 10);
        }
        assert_eq!(c.get(&0), Some(&0)); // 0 now most recent
        c.retain(|&k, _| k != 1 && k != 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&3), None);
        assert_eq!(c.get(&0), Some(&0));
        assert_eq!(c.get(&2), Some(&20));
        // Recency survived the rebuild: filling the two free slots then one
        // more evicts 2 (least recent of the survivors), not 0.
        c.insert(5, 50);
        c.insert(6, 60);
        assert_eq!(c.get(&0), Some(&0));
        c.insert(7, 70);
        assert_eq!(c.get(&2), None, "2 was the eviction candidate");
        assert_eq!(c.get(&0), Some(&0));
        // Retain-all and retain-none are both fine.
        c.retain(|_, _| true);
        assert_eq!(c.len(), 4);
        c.retain(|_, _| false);
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(&0), None);
    }

    #[test]
    fn lru_eviction_order_under_churn() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for k in 0..10 {
            c.insert(k, k * 10);
        }
        // Only the last three survive.
        for k in 0..7 {
            assert_eq!(c.get(&k), None, "{k}");
        }
        for k in 7..10 {
            assert_eq!(c.get(&k), Some(&(k * 10)), "{k}");
        }
    }

    #[test]
    fn weighted_budget_evicts_exactly() {
        let mut c: LruCache<u32, u32> = LruCache::with_budget(100, 10);
        c.insert_weighted(1, 10, 4);
        c.insert_weighted(2, 20, 4);
        assert_eq!(c.used_weight(), 8);
        // 4 + 4 + 5 > 10: the least-recent entry (1) must go.
        c.insert_weighted(3, 30, 5);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.used_weight(), 9);
        assert!(c.weight_invariant_holds());
        // Replacing in place swaps the weight, not accumulates it.
        c.insert_weighted(3, 31, 2);
        assert_eq!(c.used_weight(), 6);
        assert_eq!(c.get(&3), Some(&31));
        assert!(c.weight_invariant_holds());
        // An entry heavier than the whole budget cannot reside at all.
        c.insert_weighted(4, 40, 11);
        assert_eq!(c.get(&4), None);
        assert!(c.weight_invariant_holds());
        assert_eq!(c.used_weight(), 0, "oversized insert evicts everything, counts nothing");
        // Zero budget disables the cache entirely.
        let mut d: LruCache<u32, u32> = LruCache::with_budget(100, 0);
        d.insert_weighted(1, 10, 1);
        assert_eq!(d.get(&1), None);
    }

    #[test]
    fn budget_accounting_is_exact_under_churn_and_retain() {
        // The audit scenario: the tracked used_weight must equal the sum
        // of live entry weights after arbitrary interleavings of inserts,
        // replacements, capacity evictions, budget evictions, and retain —
        // any drift would permanently shrink (or overrun) the effective
        // cache capacity.
        let mut c: LruCache<u32, u32> = LruCache::with_budget(8, 64);
        for round in 0..400u32 {
            let k = round % 13;
            c.insert_weighted(k, round, 1 + (round as usize * 7) % 23);
            assert!(c.weight_invariant_holds(), "round {round}: insert drifted");
            assert!(c.used_weight() <= 64, "round {round}: budget overrun");
            if round % 5 == 0 {
                c.get(&(round % 7));
            }
            if round % 11 == 0 {
                // Invalidate a slice of the keys, as apply_update does.
                c.retain(|&k, _| k % 3 != 0);
                assert!(c.weight_invariant_holds(), "round {round}: retain drifted");
            }
        }
        c.retain(|_, _| false);
        assert_eq!(c.used_weight(), 0, "empty cache must account zero weight");
        assert!(c.weight_invariant_holds());
    }

    #[test]
    fn weighted_retain_preserves_weights_and_recency() {
        let mut c: LruCache<u32, u32> = LruCache::with_budget(10, 100);
        c.insert_weighted(1, 10, 30);
        c.insert_weighted(2, 20, 30);
        c.insert_weighted(3, 30, 30);
        assert_eq!(c.used_weight(), 90);
        c.retain(|&k, _| k != 2);
        assert_eq!(c.used_weight(), 60, "dropped entry must return its weight");
        // Survivors keep their weights: 60 + 50 overruns the budget of
        // 100, so the least-recent survivor (1) is evicted — exactly one.
        c.insert_weighted(4, 40, 50);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.used_weight(), 80);
        assert!(c.weight_invariant_holds());
    }

    #[test]
    fn atomic_stats_roundtrip() {
        let stats = AtomicQueryStats::default();
        stats.record_materialized();
        stats.record_materialized();
        stats.record_cached();
        stats.record_explored();
        stats.record_breakdown_computed();
        stats.record_breakdown_cached();
        let snap = stats.load();
        assert_eq!(
            snap,
            QueryStats {
                materialized: 2,
                cached: 1,
                explored: 1,
                breakdown_computed: 1,
                breakdown_cached: 1,
            }
        );
        assert_eq!(snap.total(), 4);
        assert_eq!(snap.breakdowns(), 2);
    }

    fn db() -> TransactionDb {
        let schema =
            Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
                .unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        let rows = [
            ("F", "young", "north", "u0"),
            ("F", "young", "north", "u0"),
            ("M", "old", "north", "u0"),
            ("F", "old", "south", "u1"),
            ("M", "young", "south", "u1"),
            ("M", "old", "south", "u1"),
            ("F", "young", "south", "u0"),
            ("M", "young", "north", "u1"),
        ];
        for (s, a, r, u) in rows {
            b.add_row(&[vec![s], vec![a], vec![r]], u).unwrap();
        }
        b.finish()
    }

    #[test]
    fn tiers_agree_and_stats_track() {
        let db = db();
        let full = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        // Closed-only store: some full-cube cells must fall back.
        let mut engine: CubeQueryEngine =
            CubeQueryEngine::from_db(&db, &CubeBuilder::new().materialize(Materialize::ClosedOnly))
                .unwrap();
        for (coords, v) in full.cells() {
            assert_eq!(&engine.query(coords).unwrap(), v, "cold {coords:?}");
        }
        let cold = engine.stats();
        assert!(cold.explored > 0, "closed store must force fallbacks");
        assert!(cold.materialized > 0);
        // Second pass: every fallback now comes from the cache, identically.
        for (coords, v) in full.cells() {
            assert_eq!(&engine.query(coords).unwrap(), v, "warm {coords:?}");
        }
        let warm = engine.stats();
        assert_eq!(warm.explored, cold.explored, "no recomputation on the warm pass");
        assert_eq!(warm.cached, cold.explored);
        assert_eq!(warm.total(), 2 * cold.total());
    }

    #[test]
    fn breakdown_fast_path_serves_stored_data() {
        let db = db();
        let mut engine: CubeQueryEngine =
            CubeQueryEngine::from_db(&db, &CubeBuilder::new().materialize(Materialize::ClosedOnly))
                .unwrap();
        // A materialized cell: its IndexValues are stored, but per-unit
        // data is not, so the first drill-down must compute...
        let coords = engine.resolve(&[("sex", "F")], &[]).unwrap();
        assert!(engine.cube().get(&coords).is_some(), "cell should be materialized");
        let first = engine.unit_breakdown(&coords);
        assert_eq!(engine.stats().breakdown_computed, 1);
        assert_eq!(engine.stats().breakdown_cached, 0);
        // ...and the second must come from the stored breakdown, verbatim.
        let second = engine.unit_breakdown(&coords);
        assert_eq!(first, second);
        assert_eq!(engine.stats().breakdown_computed, 1, "no recomputation");
        assert_eq!(engine.stats().breakdown_cached, 1);
    }

    #[test]
    fn query_by_names_and_errors() {
        let db = db();
        let mut engine: CubeQueryEngine =
            CubeQueryEngine::from_db(&db, &CubeBuilder::new()).unwrap();
        let v = engine.query_by_names(&[("sex", "F")], &[("region", "north")]).unwrap();
        assert!(v.total > 0);
        assert!(engine.query_by_names(&[("sex", "X")], &[]).is_err());
        assert!(engine.query_by_names(&[], &[("nope", "north")]).is_err());
        // Role confusion is an error, not a plausible-looking answer.
        assert!(engine.query_by_names(&[("region", "north")], &[]).is_err());
        assert!(engine.query_by_names(&[], &[("sex", "F")]).is_err());
    }

    #[test]
    fn top_k_matches_report() {
        let db = db();
        let engine: CubeQueryEngine = CubeQueryEngine::from_db(
            &db,
            &CubeBuilder::new().materialize(Materialize::AllFrequent),
        )
        .unwrap();
        let top = engine.top_k(SegIndex::Dissimilarity, 5, 1);
        let reference = crate::report::top_contexts(engine.cube(), SegIndex::Dissimilarity, 5, 1);
        assert_eq!(top.len(), reference.len());
        for ((c1, v1, x1), (c2, v2, x2)) in top.iter().zip(reference) {
            assert_eq!(c1, c2);
            assert_eq!(v1, v2);
            assert_eq!(x1, &x2);
        }
        // Batched form agrees with the single-index form.
        let batch = engine.top_k_batch(&[SegIndex::Dissimilarity, SegIndex::Gini], 5, 1);
        assert_eq!(batch[0].1, top);
        assert_eq!(batch[1].1, engine.top_k(SegIndex::Gini, 5, 1));
    }

    #[test]
    fn slice_and_dice_shapes() {
        let db = db();
        let engine: CubeQueryEngine = CubeQueryEngine::from_db(
            &db,
            &CubeBuilder::new().materialize(Materialize::AllFrequent),
        )
        .unwrap();
        let sliced = engine.slice(&[("region", "north")]);
        assert!(!sliced.is_empty());
        for (coords, _) in &sliced {
            let values = engine.cube().labels().attr_values(coords, "region");
            assert_eq!(values, vec!["north"]);
        }
        let diced = engine.dice(&["sex", "region"]);
        assert!(!diced.is_empty());
        for (coords, _) in &diced {
            assert!(engine.cube().labels().attr_values(coords, "age").is_empty());
        }
        // Canonical order: sorted by (sa, ca).
        for w in diced.windows(2) {
            assert!((&w[0].0.sa, &w[0].0.ca) < (&w[1].0.sa, &w[1].0.ca));
        }
    }
}
