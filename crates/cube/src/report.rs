//! Report generation: paper-shaped renderings of a cube.
//!
//! * [`fig1_grid`] — the 3-dimensional grid of the paper's Fig. 1 (two SA
//!   attributes × one CA attribute, with ⋆ roll-ups);
//! * [`top_contexts`] — the discovery primitive: contexts ranked by a
//!   segregation index (what the analyst scans for candidate segregation);
//! * [`radial_series`] — Fig. 5 (bottom): per-unit one-vs-rest index
//!   profiles (the radial plot's data series);
//! * [`to_csv`] — the cube sheet (Fig. 5 top), CSV instead of OOXML.

use scube_common::table::{fmt_index, Align, TextTable};
use scube_segindex::{IndexValues, SegIndex, UnitCounts};

use crate::coords::CellCoords;
use crate::cube::SegregationCube;

/// Cells ranked by `index` descending — the segregation-discovery list.
///
/// Only cells with a real minority (non-⋆ SA side) and population at least
/// `min_total` are candidates; `k = 0` returns all matches.
pub fn top_contexts(
    cube: &SegregationCube,
    index: SegIndex,
    k: usize,
    min_total: u64,
) -> Vec<(&CellCoords, &IndexValues, f64)> {
    let mut rows: Vec<(&CellCoords, &IndexValues, f64)> = cube
        .cells()
        .filter(|(coords, v)| !coords.is_sa_star() && v.total >= min_total)
        .filter_map(|(coords, v)| v.get(index).map(|x| (coords, v, x)))
        .collect();
    rows.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.union().cmp(&b.0.union())));
    if k > 0 {
        rows.truncate(k);
    }
    rows
}

/// Values of an attribute present in the cube, sorted, for grid axes.
fn attr_values(cube: &SegregationCube, attr: &str) -> Vec<String> {
    let mut values: Vec<String> = cube
        .cells()
        .flat_map(|(coords, _)| {
            cube.labels()
                .attr_values(coords, attr)
                .into_iter()
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        .collect();
    values.sort();
    values.dedup();
    values
}

/// Render the Fig. 1 grid: rows are `ca_attr × row_sa` value combinations
/// (each including ⋆), columns are `col_sa` values plus ⋆, cells show
/// `index` (or `-` when undefined or not materialized).
pub fn fig1_grid(
    cube: &SegregationCube,
    row_sa: &str,
    col_sa: &str,
    ca_attr: &str,
    index: SegIndex,
) -> String {
    let star = "*".to_string();
    let mut col_values = attr_values(cube, col_sa);
    col_values.push(star.clone());
    let mut row_values = attr_values(cube, row_sa);
    row_values.push(star.clone());
    let mut ca_values = attr_values(cube, ca_attr);
    ca_values.push(star.clone());

    let mut header: Vec<String> = vec![ca_attr.to_string(), row_sa.to_string()];
    header.extend(col_values.iter().map(|v| format!("{col_sa}={v}")));
    let mut aligns = vec![Align::Left, Align::Left];
    aligns.extend(std::iter::repeat_n(Align::Right, col_values.len()));
    let mut table = TextTable::new().header(header).aligns(aligns);

    for ca_v in &ca_values {
        for row_v in &row_values {
            let mut cells: Vec<String> = vec![
                if ca_v == &star { star.clone() } else { ca_v.clone() },
                if row_v == &star { star.clone() } else { row_v.clone() },
            ];
            for col_v in &col_values {
                let mut sa: Vec<(&str, &str)> = Vec::new();
                if row_v != &star {
                    sa.push((row_sa, row_v));
                }
                if col_v != &star {
                    sa.push((col_sa, col_v));
                }
                let mut ca: Vec<(&str, &str)> = Vec::new();
                if ca_v != &star {
                    ca.push((ca_attr, ca_v));
                }
                let value = cube.get_by_names(&sa, &ca).and_then(|v| v.get(index));
                cells.push(fmt_index(value));
            }
            table.row(cells);
        }
    }
    table.render()
}

/// One-vs-rest index profile per unit (Fig. 5 bottom).
///
/// For each unit `s`, indexes are computed over the two-unit histogram
/// `{s, everything-else}`: "how segregated is the minority between this
/// sector and the rest of the economy". Input is the per-unit breakdown
/// `(unit, minority, total)` (see `CubeExplorer::unit_breakdown`).
pub fn radial_series(
    breakdown: &[(u32, u64, u64)],
    unit_names: &[String],
) -> Vec<(String, IndexValues)> {
    let total_m: u64 = breakdown.iter().map(|&(_, m, _)| m).sum();
    let total_t: u64 = breakdown.iter().map(|&(_, _, t)| t).sum();
    breakdown
        .iter()
        .map(|&(unit, m, t)| {
            let rest = (1u32, total_m - m, total_t - t);
            let counts = UnitCounts::from_triples([(0u32, m, t), rest])
                .expect("one-vs-rest histogram is consistent by construction");
            let name =
                unit_names.get(unit as usize).cloned().unwrap_or_else(|| format!("unit{unit}"));
            (name, IndexValues::compute(&counts))
        })
        .collect()
}

/// Serialize the cube as CSV (the Fig. 5 "cube sheet"): one row per cell,
/// one column per attribute (`*` = rolled up; multi-valued coordinates are
/// `;`-joined), then population and the six indexes.
pub fn to_csv(cube: &SegregationCube) -> String {
    let labels = cube.labels();
    let mut header: Vec<String> = Vec::new();
    for a in labels.sa_attrs.iter().chain(labels.ca_attrs.iter()) {
        header.push(a.clone());
    }
    header.extend(["M", "T", "P", "units", "D", "G", "H", "xPx", "xPy", "A"].map(str::to_string));

    let mut rows: Vec<Vec<String>> = Vec::with_capacity(cube.len());
    let mut cells: Vec<(&CellCoords, &IndexValues)> = cube.cells().collect();
    cells.sort_by(|a, b| {
        a.0.len()
            .cmp(&b.0.len())
            .then_with(|| a.0.sa.cmp(&b.0.sa))
            .then_with(|| a.0.ca.cmp(&b.0.ca))
    });
    for (coords, v) in cells {
        let mut row: Vec<String> = Vec::with_capacity(header.len());
        for a in labels.sa_attrs.iter().chain(labels.ca_attrs.iter()) {
            let values = labels.attr_values(coords, a);
            row.push(if values.is_empty() { "*".to_string() } else { values.join(";") });
        }
        row.push(v.minority.to_string());
        row.push(v.total.to_string());
        row.push(v.minority_proportion().map(|p| format!("{p:.4}")).unwrap_or_else(|| "-".into()));
        row.push(v.num_units.to_string());
        for idx in SegIndex::ALL {
            row.push(fmt_index(v.get(idx)));
        }
        rows.push(row);
    }
    let all = std::iter::once(header).chain(rows);
    scube_common::csv::to_string(all.map(|r| r.into_iter()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CubeBuilder, Materialize};
    use scube_data::{Attribute, Schema, TransactionDb, TransactionDbBuilder};

    fn db() -> TransactionDb {
        let schema =
            Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
                .unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        let rows = [
            ("F", "young", "north", "u0"),
            ("F", "young", "north", "u0"),
            ("F", "old", "north", "u1"),
            ("M", "old", "north", "u1"),
            ("M", "young", "south", "u0"),
            ("M", "old", "south", "u1"),
            ("F", "young", "south", "u1"),
            ("M", "young", "north", "u0"),
        ];
        for (s, a, r, u) in rows {
            b.add_row(&[vec![s], vec![a], vec![r]], u).unwrap();
        }
        b.finish()
    }

    fn cube() -> SegregationCube {
        CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db()).unwrap()
    }

    #[test]
    fn top_contexts_sorted_and_filtered() {
        let cube = cube();
        let top = top_contexts(&cube, SegIndex::Dissimilarity, 5, 1);
        assert!(!top.is_empty());
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(w[0].2 >= w[1].2, "not sorted descending");
        }
        for (coords, v, _) in &top {
            assert!(!coords.is_sa_star());
            assert!(v.total >= 1);
        }
        // min_total filter.
        let filtered = top_contexts(&cube, SegIndex::Dissimilarity, 0, 100);
        assert!(filtered.is_empty());
    }

    #[test]
    fn fig1_grid_shape() {
        let cube = cube();
        let grid = fig1_grid(&cube, "sex", "age", "region", SegIndex::Dissimilarity);
        let lines: Vec<&str> = grid.lines().collect();
        // Header + rule + (2 regions + ⋆) × (2 sexes + ⋆) rows.
        assert_eq!(lines.len(), 2 + 3 * 3, "grid:\n{grid}");
        // Header contains the age columns plus the ⋆ roll-up column.
        assert!(lines[0].contains("age=young"));
        assert!(lines[0].contains("age=old"));
        assert!(lines[0].contains("age=*"));
        // The fully-rolled-up row renders the apex as '-' (undefined).
        let last = lines.last().unwrap();
        assert!(last.trim_start().starts_with('*'));
        assert!(last.trim_end().ends_with('-'));
    }

    #[test]
    fn radial_series_one_vs_rest() {
        // Two units: u0 = (2F, 3 total), u1 = (1F, 3 total) for minority F.
        let breakdown = vec![(0u32, 2u64, 3u64), (1, 1, 3)];
        let names = vec!["sector_a".to_string(), "sector_b".to_string()];
        let series = radial_series(&breakdown, &names);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, "sector_a");
        // One-vs-rest for u0 is the same histogram as for u1 (two units,
        // complements of each other) → identical index values.
        assert_eq!(series[0].1.dissimilarity, series[1].1.dissimilarity);
        assert!(series[0].1.dissimilarity.is_some());
        // Population bookkeeping: M = 3, T = 6 for both.
        assert_eq!(series[0].1.minority, 3);
        assert_eq!(series[0].1.total, 6);
    }

    #[test]
    fn csv_sheet_roundtrips_through_parser() {
        let cube = cube();
        let csv = to_csv(&cube);
        let records = scube_common::csv::parse_str(&csv).unwrap();
        assert_eq!(records.len(), cube.len() + 1);
        let header = &records[0];
        assert_eq!(
            header,
            &["sex", "age", "region", "M", "T", "P", "units", "D", "G", "H", "xPx", "xPy", "A"]
        );
        // The apex row: all coordinates '*', M = T = 8.
        let apex = records[1..]
            .iter()
            .find(|r| r[0] == "*" && r[1] == "*" && r[2] == "*")
            .expect("apex row missing");
        assert_eq!(apex[3], "8");
        assert_eq!(apex[4], "8");
    }
}
