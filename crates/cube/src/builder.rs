//! `SegregationDataCubeBuilder`: fill the cube from frequent itemsets.
//!
//! The algorithm (from the companion journal paper) in this implementation:
//!
//! 1. build the vertical database (item → tidset bitmap);
//! 2. mine frequent itemsets *with their tidsets* (Eclat-style DFS,
//!    fanned out over threads when `parallel` is on); under
//!    [`Materialize::ClosedOnly`], keep only closed ones;
//! 3. split each itemset `I` into cell coordinates `(A, B)` by attribute
//!    role; the minority histogram is the per-unit partition of `tidset(I)`
//!    and the population histogram the per-unit partition of `tidset(B)`.
//!    Context tidsets are *reused from the miner's output* (a cell's
//!    context `B` is a subset of its itemset, hence itself frequent and
//!    already mined), so no posting is ever re-intersected; histograms are
//!    computed once per distinct context and cached as compact
//!    `(unit, total)` lists;
//! 4. evaluate all six indexes per cell ([`IndexValues`]) into per-worker
//!    reusable [`UnitScratch`] histograms, iterating only the context's
//!    populated units — O(Σ|tidset| + Σ|touched|) overall instead of
//!    O(cells × n_units) — chunked over `std::thread::scope` when
//!    `parallel` is on.
//!
//! The parallel build is bit-identical to the serial one: the miner merges
//! per-subtree outputs deterministically and cell evaluation is pure.

use scube_bitmap::{EwahBitmap, Posting};
use scube_common::{FxHashMap, FxHashSet, Result, ScubeError};
use scube_data::{ItemId, TableMeta, TransactionDb, UnitScratch, VerticalDb};
use scube_fpm::eclat::{mine_vertical_with_tidsets, mine_vertical_with_tidsets_parallel};
use scube_fpm::itemset::FrequentItemset;
use scube_segindex::{IndexValues, MeasureSet, UnitCounts, DEFAULT_ATKINSON_B};

use crate::coords::CellCoords;
use crate::cube::{CubeLabels, SegregationCube};

/// Cell materialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Materialize {
    /// One cell per frequent itemset (the full cube; the default, since
    /// every frequent coordinate combination answers exact lookups).
    #[default]
    AllFrequent,
    /// One cell per **closed** frequent itemset — the compression the
    /// paper's builder applies: a non-closed cell's minority statistics
    /// are recoverable from its closure (resolve arbitrary coordinates
    /// through [`crate::explore::CubeExplorer`]). Far fewer cells on
    /// correlated data; benchmarked in experiment E11.
    ClosedOnly,
}

/// Parameters of a cube build.
#[derive(Debug, Clone, Copy)]
pub struct CubeConfig {
    /// Minimum absolute support (population) of a cell.
    pub min_support: u64,
    /// Materialization strategy.
    pub materialize: Materialize,
    /// Atkinson shape parameter.
    pub atkinson_b: f64,
    /// Which segregation indexes to fold per cell (default: all six).
    pub measures: MeasureSet,
    /// Mine and evaluate on multiple threads.
    pub parallel: bool,
    /// Worker count when `parallel` (`None` = available parallelism).
    pub threads: Option<usize>,
}

impl Default for CubeConfig {
    fn default() -> Self {
        CubeConfig {
            min_support: 1,
            materialize: Materialize::default(),
            atkinson_b: DEFAULT_ATKINSON_B,
            measures: MeasureSet::FULL,
            parallel: false,
            threads: None,
        }
    }
}

/// Compact per-context population histogram: ascending `(unit, total)`
/// pairs over the context's populated units only.
type ContextHist = Vec<(u32, u64)>;

/// Builds [`SegregationCube`]s.
///
/// ```
/// use scube_cube::{CubeBuilder, Materialize};
/// use scube_data::{Attribute, Schema, TransactionDbBuilder};
///
/// // Two units: women fill u0, men fill u1 — complete segregation.
/// let schema = Schema::new(vec![Attribute::sa("sex"), Attribute::ca("region")])?;
/// let mut b = TransactionDbBuilder::new(schema);
/// for (sex, unit) in [("F", "u0"), ("F", "u0"), ("M", "u1"), ("M", "u1")] {
///     b.add_row(&[vec![sex], vec!["north"]], unit)?;
/// }
/// let db = b.finish();
///
/// let cube = CubeBuilder::new()
///     .min_support(1)
///     .materialize(Materialize::AllFrequent)
///     .build(&db)?;
/// let women = cube.get_by_names(&[("sex", "F")], &[]).unwrap();
/// assert_eq!(women.dissimilarity, Some(1.0));
/// assert_eq!(women.minority, 2);
/// # Ok::<(), scube_common::ScubeError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CubeBuilder {
    config: CubeConfig,
}

impl CubeBuilder {
    /// Builder with default configuration.
    pub fn new() -> Self {
        CubeBuilder::default()
    }

    /// Set the minimum cell population.
    pub fn min_support(mut self, min_support: u64) -> Self {
        self.config.min_support = min_support;
        self
    }

    /// Set the materialization strategy.
    pub fn materialize(mut self, m: Materialize) -> Self {
        self.config.materialize = m;
        self
    }

    /// Set the Atkinson shape parameter.
    pub fn atkinson_b(mut self, b: f64) -> Self {
        self.config.atkinson_b = b;
        self
    }

    /// Select which segregation indexes each cell folds (default: all six,
    /// [`MeasureSet::FULL`] — the paper's full suite). A subset build
    /// leaves the unselected `IndexValues` fields `None` and persists as
    /// the compact snapshot v5 layout.
    pub fn measures(mut self, measures: MeasureSet) -> Self {
        self.config.measures = measures;
        self
    }

    /// Toggle parallel mining and histogram evaluation.
    pub fn parallel(mut self, on: bool) -> Self {
        self.config.parallel = on;
        self
    }

    /// Pin the worker count of a parallel build (benchmarks; the default
    /// follows [`std::thread::available_parallelism`]).
    pub fn threads(mut self, n: usize) -> Self {
        self.config.threads = (n > 0).then_some(n);
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &CubeConfig {
        &self.config
    }

    /// Build with the default (EWAH) tidset representation.
    pub fn build(&self, db: &TransactionDb) -> Result<SegregationCube> {
        self.build_with::<EwahBitmap>(db)
    }

    /// Build with an explicit tidset representation (ablation entry point).
    pub fn build_with<P: Posting + Send + Sync>(
        &self,
        db: &TransactionDb,
    ) -> Result<SegregationCube> {
        let vertical: VerticalDb<P> = VerticalDb::build(db);
        self.build_from_vertical(db, &vertical)
    }

    /// Build over a pre-constructed vertical database.
    pub fn build_from_vertical<P: Posting + Send + Sync>(
        &self,
        db: &TransactionDb,
        vertical: &VerticalDb<P>,
    ) -> Result<SegregationCube> {
        if db.num_units() == 0 && !db.is_empty() {
            return Err(ScubeError::Inconsistent("database has rows but no units".into()));
        }
        self.build_from_labels(CubeLabels::from_db(db), vertical)
    }

    /// Build over a chunked construction's output: the vertical database
    /// plus its [`TableMeta`] — no horizontal [`TransactionDb`] anywhere.
    /// Mining, closedness, histograms, and index evaluation all run off the
    /// postings, so a chunked build's cube (and snapshot) is byte-identical
    /// to the resident path's on the same table.
    pub fn build_streaming<P: Posting + Send + Sync>(
        &self,
        meta: &TableMeta,
        vertical: &VerticalDb<P>,
    ) -> Result<SegregationCube> {
        self.build_from_labels(CubeLabels::from_meta(meta), vertical)
    }

    /// The shared build core: everything runs off the vertical database and
    /// the label snapshot (itemset → cell splits use the labels' SA roles).
    fn build_from_labels<P: Posting + Send + Sync>(
        &self,
        labels: CubeLabels,
        vertical: &VerticalDb<P>,
    ) -> Result<SegregationCube> {
        let cfg = &self.config;
        if cfg.min_support == 0 {
            return Err(ScubeError::InvalidParameter("min_support must be >= 1".into()));
        }
        if vertical.num_units() == 0 && vertical.num_transactions() > 0 {
            return Err(ScubeError::Inconsistent("database has rows but no units".into()));
        }

        let n_threads = if cfg.parallel {
            cfg.threads.unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
        } else {
            1
        };

        // 1-2. Mine frequent itemsets with tidsets (fanning prefix subtrees
        // out over workers when parallel; both paths are bit-identical).
        let mut mined: Vec<(FrequentItemset, P)> = if n_threads > 1 {
            mine_vertical_with_tidsets_parallel(vertical, cfg.min_support, n_threads)?
        } else {
            mine_vertical_with_tidsets(vertical, cfg.min_support)?
        };

        // 3. Split every itemset into (A, B) coordinates by attribute role.
        let mut splits: Vec<CellCoords> = mined
            .iter()
            .map(|(set, _)| CellCoords::split_sorted(&set.items, |it| labels.is_sa_item(it)))
            .collect();

        // Under ClosedOnly, mark survivors now but filter *after* harvesting
        // context tidsets: a kept cell's context may itself be non-closed.
        let keep: Option<Vec<bool>> = (cfg.materialize == Materialize::ClosedOnly).then(|| {
            let positions = scube_fpm::closed::closed_positions(mined.len(), |i| {
                (mined[i].0.items.as_slice(), mined[i].0.support)
            });
            let mut mask = vec![false; mined.len()];
            for i in positions {
                mask[i] = true;
            }
            mask
        });

        // Population histogram (context ⋆).
        let n_units = vertical.num_units() as usize;
        let mut population = vec![0u64; n_units];
        for &u in vertical.units() {
            population[u as usize] += 1;
        }

        // Every context B of a cell (A, B) is a subset of the cell's
        // itemset, hence frequent and already mined with its tidset: index
        // the pure-context itemsets instead of re-intersecting postings.
        let mut context_source: FxHashMap<&[ItemId], &P> = FxHashMap::default();
        for ((set, tids), coords) in mined.iter().zip(&splits) {
            if coords.sa.is_empty() && !coords.ca.is_empty() {
                context_source.insert(set.items.as_slice(), tids);
            }
        }

        // Distinct contexts referenced by surviving cells, in first-seen
        // order (deterministic for the parallel chunking below).
        let mut distinct_contexts: Vec<&CellCoords> = Vec::new();
        let mut seen_contexts: FxHashSet<&[ItemId]> = FxHashSet::default();
        for (i, coords) in splits.iter().enumerate() {
            if keep.as_ref().is_some_and(|mask| !mask[i]) {
                continue;
            }
            if !coords.ca.is_empty() && seen_contexts.insert(coords.ca.as_slice()) {
                distinct_contexts.push(coords);
            }
        }

        // Per-context histograms as compact ascending (unit, total) lists,
        // computed in parallel with per-worker scratch buffers.
        let hist_of = |coords: &CellCoords, scratch: &mut UnitScratch| -> ContextHist {
            match context_source.get(coords.ca.as_slice()) {
                Some(tids) => {
                    vertical.unit_histogram_into(tids, scratch);
                    scratch.sorted_pairs()
                }
                // Unreachable for miner-produced cells; kept as a safety
                // net for exotic materializations.
                None => {
                    vertical.unit_histogram_into(&vertical.tidset(&coords.ca), scratch);
                    scratch.sorted_pairs()
                }
            }
        };
        let mut context_hists: FxHashMap<Vec<ItemId>, ContextHist> =
            scube_common::hash::fx_map_with_capacity(distinct_contexts.len() + 1);
        context_hists.insert(
            Vec::new(),
            population
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t > 0)
                .map(|(u, &t)| (u as u32, t))
                .collect(),
        );
        if n_threads > 1 && distinct_contexts.len() > 64 {
            let chunk = distinct_contexts.len().div_ceil(n_threads);
            let results: Vec<Vec<(Vec<ItemId>, ContextHist)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = distinct_contexts
                    .chunks(chunk)
                    .map(|ctx_chunk| {
                        let hist_of = &hist_of;
                        scope.spawn(move || {
                            let mut scratch = UnitScratch::new(n_units as u32);
                            ctx_chunk
                                .iter()
                                .map(|coords| (coords.ca.clone(), hist_of(coords, &mut scratch)))
                                .collect()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            for r in results {
                context_hists.extend(r);
            }
        } else {
            let mut scratch = UnitScratch::new(n_units as u32);
            for coords in &distinct_contexts {
                context_hists.insert(coords.ca.clone(), hist_of(coords, &mut scratch));
            }
        }
        drop(distinct_contexts);
        drop(seen_contexts);
        drop(context_source);

        // Apply the ClosedOnly filter now that contexts are harvested.
        if let Some(mask) = keep {
            let mut keep_iter = mask.iter();
            mined.retain(|_| *keep_iter.next().expect("mask covers mined"));
            let mut keep_iter = mask.iter();
            splits.retain(|_| *keep_iter.next().expect("mask covers splits"));
        }

        // 4. Evaluate cells: per-worker scratch histograms, iterating only
        // the context's populated units.
        let atkinson_b = cfg.atkinson_b;
        let measures = cfg.measures;
        let eval =
            |coords: &CellCoords, tids: &P, scratch: &mut UnitScratch| -> Result<IndexValues> {
                vertical.unit_histogram_into(tids, scratch);
                let total = &context_hists[&coords.ca];
                let counts = UnitCounts::from_triples(
                    total.iter().map(|&(u, t)| (u, scratch.count_of(u), t)),
                )?;
                Ok(IndexValues::compute_masked(&counts, atkinson_b, measures))
            };

        let mut cells: FxHashMap<CellCoords, IndexValues> =
            scube_common::hash::fx_map_with_capacity(mined.len() + 1);
        if n_threads > 1 && mined.len() > 256 {
            let chunk = mined.len().div_ceil(n_threads);
            let results: Vec<Result<Vec<(CellCoords, IndexValues)>>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = mined
                        .chunks(chunk)
                        .zip(splits.chunks(chunk))
                        .map(|(mined_chunk, split_chunk)| {
                            let eval = &eval;
                            scope.spawn(move || {
                                let mut scratch = UnitScratch::new(n_units as u32);
                                mined_chunk
                                    .iter()
                                    .zip(split_chunk.iter())
                                    .map(|((_, tids), coords)| {
                                        Ok((coords.clone(), eval(coords, tids, &mut scratch)?))
                                    })
                                    .collect()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
                });
            for r in results {
                cells.extend(r?);
            }
        } else {
            let mut scratch = UnitScratch::new(n_units as u32);
            for ((_, tids), coords) in mined.iter().zip(splits.iter()) {
                cells.insert(coords.clone(), eval(coords, tids, &mut scratch)?);
            }
        }

        // Apex cell (⋆ | ⋆): whole population vs itself.
        let apex_counts = UnitCounts::from_triples(
            population.iter().enumerate().filter(|&(_, &t)| t > 0).map(|(u, &t)| (u as u32, t, t)),
        )?;
        cells.insert(
            CellCoords::apex(),
            IndexValues::compute_masked(&apex_counts, atkinson_b, measures),
        );

        Ok(SegregationCube::new(cells, labels, vertical.num_units(), cfg.min_support))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scube_data::{Attribute, Schema, TransactionDbBuilder};

    /// 40 individuals across 2 units, engineered so that women concentrate
    /// in unit u0 within the north and are even in the south.
    fn sample_db() -> TransactionDb {
        let schema = Schema::new(vec![Attribute::sa("sex"), Attribute::ca("region")]).unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        let mut add = |sex: &str, region: &str, unit: &str, n: usize| {
            for _ in 0..n {
                b.add_row(&[vec![sex], vec![region]], unit).unwrap();
            }
        };
        // North: u0 = 8F+2M, u1 = 2F+8M  → segregated by sex.
        add("F", "north", "u0", 8);
        add("M", "north", "u0", 2);
        add("F", "north", "u1", 2);
        add("M", "north", "u1", 8);
        // South: u0 = 5F+5M, u1 = 5F+5M → perfectly even.
        add("F", "south", "u0", 5);
        add("M", "south", "u0", 5);
        add("F", "south", "u1", 5);
        add("M", "south", "u1", 5);
        b.finish()
    }

    #[test]
    fn hand_computed_cell_values() {
        let db = sample_db();
        let cube = CubeBuilder::new()
            .min_support(1)
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        // Cell (sex=F | region=north): units (m,t) = (8,10), (2,10).
        // D = ½(|8/10 − 2/10| + |2/10 − 8/10|) = 0.6.
        let v = cube.get_by_names(&[("sex", "F")], &[("region", "north")]).unwrap();
        assert!((v.dissimilarity.unwrap() - 0.6).abs() < 1e-9);
        assert_eq!(v.minority, 10);
        assert_eq!(v.total, 20);
        // Cell (sex=F | region=south): perfectly even → D = 0.
        let v = cube.get_by_names(&[("sex", "F")], &[("region", "south")]).unwrap();
        assert!((v.dissimilarity.unwrap()).abs() < 1e-9);
        // Cell (sex=F | *): overall: u0 = 13F/20? u0 total = 20, F in u0 = 13;
        // u1: F = 7, total 20. D = ½(|13/20−7/20|·2)/... compute directly:
        // m = (13, 7), t = (20, 20), M = 20, T = 40.
        // minority shares (0.65, 0.35), majority ((20−13)/20=0.35, 0.65)/…
        // majority shares = (7/20, 13/20) = (0.35, 0.65).
        // D = ½(|0.65−0.35| + |0.35−0.65|) = 0.3.
        let v = cube.get_by_names(&[("sex", "F")], &[]).unwrap();
        assert!((v.dissimilarity.unwrap() - 0.3).abs() < 1e-9, "{:?}", v.dissimilarity);
    }

    #[test]
    fn apex_cell_present_and_degenerate() {
        let db = sample_db();
        let cube = CubeBuilder::new().build(&db).unwrap();
        let apex = cube.get(&CellCoords::apex()).unwrap();
        assert_eq!(apex.minority, 40);
        assert_eq!(apex.total, 40);
        assert_eq!(apex.dissimilarity, None); // M = T ⇒ evenness undefined
    }

    #[test]
    fn sa_star_cells_have_full_context_population_as_minority() {
        let db = sample_db();
        let cube = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let v = cube.get_by_names(&[], &[("region", "north")]).unwrap();
        assert_eq!(v.minority, v.total);
        assert_eq!(v.total, 20);
    }

    #[test]
    fn min_support_prunes_cells() {
        let db = sample_db();
        let small = CubeBuilder::new()
            .min_support(15)
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        let large = CubeBuilder::new()
            .min_support(1)
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        assert!(small.len() < large.len());
        // Every cell in the small cube is above the support threshold.
        for (coords, v) in small.cells() {
            if !coords.is_empty() {
                assert!(v.minority >= 15, "{}: {}", small.labels().describe(coords), v.minority);
            }
        }
    }

    #[test]
    fn closed_cube_is_a_restriction_of_full_cube() {
        let db = sample_db();
        let full = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let closed = CubeBuilder::new().materialize(Materialize::ClosedOnly).build(&db).unwrap();
        assert!(closed.len() <= full.len());
        for (coords, v) in closed.cells() {
            let in_full = full.get(coords).expect("closed cell missing from full cube");
            assert_eq!(v, in_full, "cell {}", closed.labels().describe(coords));
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let db = sample_db();
        let serial = CubeBuilder::new()
            .materialize(Materialize::AllFrequent)
            .parallel(false)
            .build(&db)
            .unwrap();
        for threads in [0, 2, 3, 8] {
            let parallel = CubeBuilder::new()
                .materialize(Materialize::AllFrequent)
                .parallel(true)
                .threads(threads)
                .build(&db)
                .unwrap();
            assert_eq!(serial.len(), parallel.len(), "threads {threads}");
            for (coords, v) in serial.cells() {
                assert_eq!(parallel.get(coords), Some(v), "threads {threads}");
            }
        }
    }

    #[test]
    fn subset_measures_mask_the_fold_bit_exactly() {
        use scube_segindex::SegIndex;
        let db = sample_db();
        let full = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let set = MeasureSet::only(SegIndex::Gini).with(SegIndex::Isolation);
        let subset = CubeBuilder::new()
            .materialize(Materialize::AllFrequent)
            .measures(set)
            .build(&db)
            .unwrap();
        assert_eq!(full.len(), subset.len(), "measure selection never changes the cell set");
        for (coords, v) in subset.cells() {
            let reference = full.get(coords).expect("same coordinates");
            assert_eq!(v.minority, reference.minority);
            assert_eq!(v.total, reference.total);
            assert_eq!(v.num_units, reference.num_units);
            for idx in SegIndex::ALL {
                let expected = if set.contains(idx) { reference.get(idx) } else { None };
                assert_eq!(v.get(idx).map(f64::to_bits), expected.map(f64::to_bits), "{idx}");
            }
        }
    }

    #[test]
    fn zero_min_support_rejected() {
        let db = sample_db();
        assert!(CubeBuilder::new().min_support(0).build(&db).is_err());
    }

    #[test]
    fn rollup_navigation() {
        let db = sample_db();
        let cube = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let coords = cube.coords_by_names(&[("sex", "F")], &[("region", "north")]).unwrap();
        let rolled = cube.rollup(&coords, "region").unwrap();
        let direct = cube.get_by_names(&[("sex", "F")], &[]).unwrap();
        assert_eq!(rolled, direct);
    }
}
