//! `SegregationDataCubeBuilder`: fill the cube from frequent itemsets.
//!
//! The algorithm (from the companion journal paper) in this implementation:
//!
//! 1. build the vertical database (item → tidset bitmap);
//! 2. mine frequent itemsets *with their tidsets* (Eclat-style DFS); under
//!    [`Materialize::ClosedOnly`], keep only closed ones;
//! 3. split each itemset `I` into cell coordinates `(A, B)` by attribute
//!    role; the minority histogram is the per-unit partition of `tidset(I)`
//!    and the population histogram the per-unit partition of `tidset(B)`
//!    (computed once per distinct context `B` and cached — many cells share
//!    a context);
//! 4. evaluate all six indexes per cell ([`IndexValues`]).
//!
//! Histogram evaluation is embarrassingly parallel across cells and is
//! chunked over `std::thread::scope` when `parallel` is on.

use scube_bitmap::{EwahBitmap, Posting};
use scube_common::{FxHashMap, Result, ScubeError};
use scube_data::{ItemId, TransactionDb, VerticalDb};
use scube_fpm::eclat::mine_vertical_with_tidsets;
use scube_fpm::itemset::FrequentItemset;
use scube_segindex::{IndexValues, UnitCounts, DEFAULT_ATKINSON_B};

use crate::coords::CellCoords;
use crate::cube::{CubeLabels, SegregationCube};

/// Cell materialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Materialize {
    /// One cell per frequent itemset (the full cube; the default, since
    /// every frequent coordinate combination answers exact lookups).
    #[default]
    AllFrequent,
    /// One cell per **closed** frequent itemset — the compression the
    /// paper's builder applies: a non-closed cell's minority statistics
    /// are recoverable from its closure (resolve arbitrary coordinates
    /// through [`crate::explore::CubeExplorer`]). Far fewer cells on
    /// correlated data; benchmarked in experiment E11.
    ClosedOnly,
}

/// Parameters of a cube build.
#[derive(Debug, Clone, Copy)]
pub struct CubeConfig {
    /// Minimum absolute support (population) of a cell.
    pub min_support: u64,
    /// Materialization strategy.
    pub materialize: Materialize,
    /// Atkinson shape parameter.
    pub atkinson_b: f64,
    /// Evaluate cell histograms on multiple threads.
    pub parallel: bool,
}

impl Default for CubeConfig {
    fn default() -> Self {
        CubeConfig {
            min_support: 1,
            materialize: Materialize::default(),
            atkinson_b: DEFAULT_ATKINSON_B,
            parallel: false,
        }
    }
}

/// Builds [`SegregationCube`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct CubeBuilder {
    config: CubeConfig,
}

impl CubeBuilder {
    /// Builder with default configuration.
    pub fn new() -> Self {
        CubeBuilder::default()
    }

    /// Set the minimum cell population.
    pub fn min_support(mut self, min_support: u64) -> Self {
        self.config.min_support = min_support;
        self
    }

    /// Set the materialization strategy.
    pub fn materialize(mut self, m: Materialize) -> Self {
        self.config.materialize = m;
        self
    }

    /// Set the Atkinson shape parameter.
    pub fn atkinson_b(mut self, b: f64) -> Self {
        self.config.atkinson_b = b;
        self
    }

    /// Toggle parallel histogram evaluation.
    pub fn parallel(mut self, on: bool) -> Self {
        self.config.parallel = on;
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &CubeConfig {
        &self.config
    }

    /// Build with the default (EWAH) tidset representation.
    pub fn build(&self, db: &TransactionDb) -> Result<SegregationCube> {
        self.build_with::<EwahBitmap>(db)
    }

    /// Build with an explicit tidset representation (ablation entry point).
    pub fn build_with<P: Posting + Send + Sync>(
        &self,
        db: &TransactionDb,
    ) -> Result<SegregationCube> {
        let vertical: VerticalDb<P> = VerticalDb::build(db);
        self.build_from_vertical(db, &vertical)
    }

    /// Build over a pre-constructed vertical database.
    pub fn build_from_vertical<P: Posting + Send + Sync>(
        &self,
        db: &TransactionDb,
        vertical: &VerticalDb<P>,
    ) -> Result<SegregationCube> {
        let cfg = &self.config;
        if cfg.min_support == 0 {
            return Err(ScubeError::InvalidParameter("min_support must be >= 1".into()));
        }
        if db.num_units() == 0 && !db.is_empty() {
            return Err(ScubeError::Inconsistent("database has rows but no units".into()));
        }

        // 1-2. Mine frequent itemsets with tidsets; optionally keep closed.
        let mut mined: Vec<(FrequentItemset, P)> =
            mine_vertical_with_tidsets(vertical, cfg.min_support)?;
        if cfg.materialize == Materialize::ClosedOnly {
            let keep = scube_fpm::closed::closed_positions(mined.len(), |i| {
                (mined[i].0.items.as_slice(), mined[i].0.support)
            });
            let mut keep_iter = keep.into_iter().peekable();
            let mut idx = 0usize;
            mined.retain(|_| {
                let k = keep_iter.peek() == Some(&idx);
                if k {
                    keep_iter.next();
                }
                idx += 1;
                k
            });
        }

        // 3. Population histogram (context ⋆) and per-context cache.
        let n_units = vertical.num_units() as usize;
        let mut population = vec![0u64; n_units];
        for &u in vertical.units() {
            population[u as usize] += 1;
        }

        // Distinct context parts.
        let mut context_hists: FxHashMap<Vec<ItemId>, Vec<u64>> = FxHashMap::default();
        context_hists.insert(Vec::new(), population.clone());
        let splits: Vec<CellCoords> =
            mined.iter().map(|(set, _)| CellCoords::from_itemset(&set.items, db)).collect();
        for coords in &splits {
            context_hists
                .entry(coords.ca.clone())
                .or_insert_with(|| vertical.unit_histogram(&vertical.tidset(&coords.ca)));
        }

        // 4. Evaluate cells.
        let atkinson_b = cfg.atkinson_b;
        let eval = |coords: &CellCoords, tids: &P| -> Result<IndexValues> {
            let minority = vertical.unit_histogram(tids);
            let total = &context_hists[&coords.ca];
            let counts = UnitCounts::from_triples(
                (0..n_units as u32).filter_map(|u| {
                    let t = total[u as usize];
                    (t > 0).then(|| (u, minority[u as usize], t))
                }),
            )?;
            Ok(IndexValues::compute_with(&counts, atkinson_b))
        };

        let mut cells: FxHashMap<CellCoords, IndexValues> =
            scube_common::hash::fx_map_with_capacity(mined.len() + 1);
        if cfg.parallel && mined.len() > 256 {
            let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            let chunk = mined.len().div_ceil(n_threads);
            let results: Vec<Result<Vec<(CellCoords, IndexValues)>>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = mined
                        .chunks(chunk)
                        .zip(splits.chunks(chunk))
                        .map(|(mined_chunk, split_chunk)| {
                            let eval = &eval;
                            scope.spawn(move || {
                                mined_chunk
                                    .iter()
                                    .zip(split_chunk.iter())
                                    .map(|((_, tids), coords)| {
                                        Ok((coords.clone(), eval(coords, tids)?))
                                    })
                                    .collect()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
                });
            for r in results {
                cells.extend(r?);
            }
        } else {
            for ((_, tids), coords) in mined.iter().zip(splits.iter()) {
                cells.insert(coords.clone(), eval(coords, tids)?);
            }
        }

        // Apex cell (⋆ | ⋆): whole population vs itself.
        let apex_counts = UnitCounts::from_triples(
            population
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t > 0)
                .map(|(u, &t)| (u as u32, t, t)),
        )?;
        cells.insert(CellCoords::apex(), IndexValues::compute_with(&apex_counts, atkinson_b));

        Ok(SegregationCube::new(
            cells,
            CubeLabels::from_db(db),
            vertical.num_units(),
            cfg.min_support,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scube_data::{Attribute, Schema, TransactionDbBuilder};

    /// 40 individuals across 2 units, engineered so that women concentrate
    /// in unit u0 within the north and are even in the south.
    fn sample_db() -> TransactionDb {
        let schema =
            Schema::new(vec![Attribute::sa("sex"), Attribute::ca("region")]).unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        let mut add = |sex: &str, region: &str, unit: &str, n: usize| {
            for _ in 0..n {
                b.add_row(&[vec![sex], vec![region]], unit).unwrap();
            }
        };
        // North: u0 = 8F+2M, u1 = 2F+8M  → segregated by sex.
        add("F", "north", "u0", 8);
        add("M", "north", "u0", 2);
        add("F", "north", "u1", 2);
        add("M", "north", "u1", 8);
        // South: u0 = 5F+5M, u1 = 5F+5M → perfectly even.
        add("F", "south", "u0", 5);
        add("M", "south", "u0", 5);
        add("F", "south", "u1", 5);
        add("M", "south", "u1", 5);
        b.finish()
    }

    #[test]
    fn hand_computed_cell_values() {
        let db = sample_db();
        let cube = CubeBuilder::new()
            .min_support(1)
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        // Cell (sex=F | region=north): units (m,t) = (8,10), (2,10).
        // D = ½(|8/10 − 2/10| + |2/10 − 8/10|) = 0.6.
        let v = cube.get_by_names(&[("sex", "F")], &[("region", "north")]).unwrap();
        assert!((v.dissimilarity.unwrap() - 0.6).abs() < 1e-9);
        assert_eq!(v.minority, 10);
        assert_eq!(v.total, 20);
        // Cell (sex=F | region=south): perfectly even → D = 0.
        let v = cube.get_by_names(&[("sex", "F")], &[("region", "south")]).unwrap();
        assert!((v.dissimilarity.unwrap()).abs() < 1e-9);
        // Cell (sex=F | *): overall: u0 = 13F/20? u0 total = 20, F in u0 = 13;
        // u1: F = 7, total 20. D = ½(|13/20−7/20|·2)/... compute directly:
        // m = (13, 7), t = (20, 20), M = 20, T = 40.
        // minority shares (0.65, 0.35), majority ((20−13)/20=0.35, 0.65)/…
        // majority shares = (7/20, 13/20) = (0.35, 0.65).
        // D = ½(|0.65−0.35| + |0.35−0.65|) = 0.3.
        let v = cube.get_by_names(&[("sex", "F")], &[]).unwrap();
        assert!((v.dissimilarity.unwrap() - 0.3).abs() < 1e-9, "{:?}", v.dissimilarity);
    }

    #[test]
    fn apex_cell_present_and_degenerate() {
        let db = sample_db();
        let cube = CubeBuilder::new().build(&db).unwrap();
        let apex = cube.get(&CellCoords::apex()).unwrap();
        assert_eq!(apex.minority, 40);
        assert_eq!(apex.total, 40);
        assert_eq!(apex.dissimilarity, None); // M = T ⇒ evenness undefined
    }

    #[test]
    fn sa_star_cells_have_full_context_population_as_minority() {
        let db = sample_db();
        let cube = CubeBuilder::new()
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        let v = cube.get_by_names(&[], &[("region", "north")]).unwrap();
        assert_eq!(v.minority, v.total);
        assert_eq!(v.total, 20);
    }

    #[test]
    fn min_support_prunes_cells() {
        let db = sample_db();
        let small = CubeBuilder::new()
            .min_support(15)
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        let large = CubeBuilder::new()
            .min_support(1)
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        assert!(small.len() < large.len());
        // Every cell in the small cube is above the support threshold.
        for (coords, v) in small.cells() {
            if !coords.is_empty() {
                assert!(v.minority >= 15, "{}: {}", small.labels().describe(coords), v.minority);
            }
        }
    }

    #[test]
    fn closed_cube_is_a_restriction_of_full_cube() {
        let db = sample_db();
        let full = CubeBuilder::new()
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        let closed = CubeBuilder::new()
            .materialize(Materialize::ClosedOnly)
            .build(&db)
            .unwrap();
        assert!(closed.len() <= full.len());
        for (coords, v) in closed.cells() {
            let in_full = full.get(coords).expect("closed cell missing from full cube");
            assert_eq!(v, in_full, "cell {}", closed.labels().describe(coords));
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let db = sample_db();
        let serial = CubeBuilder::new()
            .materialize(Materialize::AllFrequent)
            .parallel(false)
            .build(&db)
            .unwrap();
        let parallel = CubeBuilder::new()
            .materialize(Materialize::AllFrequent)
            .parallel(true)
            .build(&db)
            .unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (coords, v) in serial.cells() {
            assert_eq!(parallel.get(coords), Some(v));
        }
    }

    #[test]
    fn zero_min_support_rejected() {
        let db = sample_db();
        assert!(CubeBuilder::new().min_support(0).build(&db).is_err());
    }

    #[test]
    fn rollup_navigation() {
        let db = sample_db();
        let cube = CubeBuilder::new()
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        let coords = cube.coords_by_names(&[("sex", "F")], &[("region", "north")]).unwrap();
        let rolled = cube.rollup(&coords, "region").unwrap();
        let direct = cube.get_by_names(&[("sex", "F")], &[]).unwrap();
        assert_eq!(rolled, direct);
    }
}
