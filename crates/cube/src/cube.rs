//! The materialized segregation data cube.

use scube_common::FxHashMap;
use scube_data::{ItemId, TransactionDb};
use scube_segindex::IndexValues;

use crate::coords::CellCoords;

/// Self-describing label set copied from the source database, so a cube can
/// be rendered (or serialized) after the database is gone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CubeLabels {
    /// `item id → (attribute name, value, is_sa)`.
    pub(crate) items: Vec<(String, String, bool)>,
    /// Segregation attribute names, in schema order.
    pub sa_attrs: Vec<String>,
    /// Context attribute names, in schema order.
    pub ca_attrs: Vec<String>,
    /// Organizational unit names.
    pub unit_names: Vec<String>,
}

impl CubeLabels {
    /// Snapshot the labels of a transaction database.
    pub fn from_db(db: &TransactionDb) -> Self {
        let dict = db.dictionary();
        let schema = db.schema();
        let items = (0..dict.len() as ItemId)
            .map(|it| {
                let attr = dict.attr_of(it);
                (schema.attr(attr).name.clone(), dict.value_of(it).to_string(), db.is_sa_item(it))
            })
            .collect();
        CubeLabels {
            items,
            sa_attrs: schema.sa_ids().iter().map(|&a| schema.attr(a).name.clone()).collect(),
            ca_attrs: schema.ca_ids().iter().map(|&a| schema.attr(a).name.clone()).collect(),
            unit_names: db.unit_names().to_vec(),
        }
    }

    /// Snapshot the labels of a chunked build's [`scube_data::TableMeta`] —
    /// identical to what [`Self::from_db`] produces on the equivalent
    /// resident database, because both paths intern dictionary and unit
    /// names through the same code in the same first-occurrence order.
    pub fn from_meta(meta: &scube_data::TableMeta) -> Self {
        let dict = meta.dictionary();
        let schema = meta.schema();
        let items = (0..dict.len() as ItemId)
            .map(|it| {
                let attr = dict.attr_of(it);
                (schema.attr(attr).name.clone(), dict.value_of(it).to_string(), meta.is_sa_item(it))
            })
            .collect();
        CubeLabels {
            items,
            sa_attrs: schema.sa_ids().iter().map(|&a| schema.attr(a).name.clone()).collect(),
            ca_attrs: schema.ca_ids().iter().map(|&a| schema.attr(a).name.clone()).collect(),
            unit_names: meta.unit_names().to_vec(),
        }
    }

    /// Attribute name of an item.
    pub fn attr_of(&self, item: ItemId) -> &str {
        &self.items[item as usize].0
    }

    /// Whether an item is over a segregation attribute.
    pub fn is_sa_item(&self, item: ItemId) -> bool {
        self.items[item as usize].2
    }

    /// Number of labelled items.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Value of an item.
    pub fn value_of(&self, item: ItemId) -> &str {
        &self.items[item as usize].1
    }

    /// `attr=value` label of an item.
    pub fn label(&self, item: ItemId) -> String {
        let (attr, value, _) = &self.items[item as usize];
        format!("{attr}={value}")
    }

    /// Render coordinates like `sex=female ∧ age=young | region=north`,
    /// with `*` for empty sides.
    pub fn describe(&self, coords: &CellCoords) -> String {
        let side = |items: &[ItemId]| -> String {
            if items.is_empty() {
                "*".to_string()
            } else {
                items.iter().map(|&i| self.label(i)).collect::<Vec<_>>().join(" & ")
            }
        };
        format!("{} | {}", side(&coords.sa), side(&coords.ca))
    }

    /// Values of the given attribute among the items of `coords` (an
    /// attribute can contribute several items when multi-valued).
    pub fn attr_values<'a>(&'a self, coords: &CellCoords, attr: &str) -> Vec<&'a str> {
        coords
            .sa
            .iter()
            .chain(coords.ca.iter())
            .filter(|&&i| self.attr_of(i) == attr)
            .map(|&i| self.value_of(i))
            .collect()
    }

    /// Look up an item id by attribute name and value.
    pub fn find_item(&self, attr: &str, value: &str) -> Option<ItemId> {
        self.items.iter().position(|(a, v, _)| a == attr && v == value).map(|i| i as ItemId)
    }

    /// Append a new item label, returning its id (delta ingest: values
    /// first seen in an [`crate::update::UpdateBatch`] extend the
    /// dictionary at the tail, never renumbering existing items).
    pub(crate) fn push_item(&mut self, attr: String, value: String, is_sa: bool) -> ItemId {
        self.items.push((attr, value, is_sa));
        (self.items.len() - 1) as ItemId
    }
}

/// A materialized segregation data cube.
#[derive(Debug, Clone, PartialEq)]
pub struct SegregationCube {
    cells: FxHashMap<CellCoords, IndexValues>,
    labels: CubeLabels,
    n_units: u32,
    min_support: u64,
}

impl SegregationCube {
    pub(crate) fn new(
        cells: FxHashMap<CellCoords, IndexValues>,
        labels: CubeLabels,
        n_units: u32,
        min_support: u64,
    ) -> Self {
        SegregationCube { cells, labels, n_units, min_support }
    }

    /// Number of materialized cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are materialized.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The labels snapshot.
    pub fn labels(&self) -> &CubeLabels {
        &self.labels
    }

    /// Number of organizational units the indexes were computed over.
    pub fn num_units(&self) -> u32 {
        self.n_units
    }

    /// The min-support the cube was built with.
    pub fn min_support(&self) -> u64 {
        self.min_support
    }

    /// Exact-cell lookup.
    pub fn get(&self, coords: &CellCoords) -> Option<&IndexValues> {
        self.cells.get(coords)
    }

    /// Look up by attribute/value names, e.g.
    /// `value_by_names(&[("sex","female")], &[("region","north")])`.
    pub fn get_by_names(&self, sa: &[(&str, &str)], ca: &[(&str, &str)]) -> Option<&IndexValues> {
        let coords = self.coords_by_names(sa, ca)?;
        self.get(&coords)
    }

    /// Resolve attribute/value names into [`CellCoords`].
    pub fn coords_by_names(&self, sa: &[(&str, &str)], ca: &[(&str, &str)]) -> Option<CellCoords> {
        let mut sa_items = Vec::with_capacity(sa.len());
        for (a, v) in sa {
            sa_items.push(self.labels.find_item(a, v)?);
        }
        let mut ca_items = Vec::with_capacity(ca.len());
        for (a, v) in ca {
            ca_items.push(self.labels.find_item(a, v)?);
        }
        Some(CellCoords::new(sa_items, ca_items))
    }

    /// Iterate all `(coords, values)` cells (unordered).
    pub fn cells(&self) -> impl Iterator<Item = (&CellCoords, &IndexValues)> {
        self.cells.iter()
    }

    /// Mutable view of the update path (`crate::update`): labels, cell
    /// store, and the global unit count, in one borrow.
    pub(crate) fn update_parts(
        &mut self,
    ) -> (&mut CubeLabels, &mut FxHashMap<CellCoords, IndexValues>, &mut u32) {
        (&mut self.labels, &mut self.cells, &mut self.n_units)
    }

    /// Cells whose coordinates only use the listed attributes (the cells of
    /// a sub-cube view, e.g. Fig. 1's `(sex, age) × region`).
    pub fn cells_over<'a>(
        &'a self,
        attrs: &'a [&'a str],
    ) -> impl Iterator<Item = (&'a CellCoords, &'a IndexValues)> + 'a {
        self.cells.iter().filter(move |(coords, _)| {
            coords
                .sa
                .iter()
                .chain(coords.ca.iter())
                .all(|&i| attrs.contains(&self.labels.attr_of(i)))
        })
    }

    /// Slice: cells that fix all the given `(attr, value)` coordinates
    /// (and possibly more).
    pub fn slice<'a>(
        &'a self,
        fixed: &'a [(&'a str, &'a str)],
    ) -> impl Iterator<Item = (&'a CellCoords, &'a IndexValues)> + 'a {
        self.cells.iter().filter(move |(coords, _)| {
            fixed.iter().all(|(a, v)| {
                coords
                    .sa
                    .iter()
                    .chain(coords.ca.iter())
                    .any(|&i| self.labels.attr_of(i) == *a && self.labels.value_of(i) == *v)
            })
        })
    }

    /// Roll up: the cell obtained from `coords` by dropping every
    /// coordinate of attribute `attr` (⋆ granularity on that dimension).
    pub fn rollup(&self, coords: &CellCoords, attr: &str) -> Option<&IndexValues> {
        let keep = |items: &[ItemId]| {
            items.iter().copied().filter(|&i| self.labels.attr_of(i) != attr).collect::<Vec<_>>()
        };
        self.get(&CellCoords { sa: keep(&coords.sa), ca: keep(&coords.ca) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scube_data::{Attribute, Schema, TransactionDbBuilder};

    fn db() -> TransactionDb {
        let schema = Schema::new(vec![Attribute::sa("sex"), Attribute::ca("region")]).unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        b.add_row(&[vec!["female"], vec!["north"]], "u0").unwrap();
        b.add_row(&[vec!["male"], vec!["south"]], "u1").unwrap();
        b.finish()
    }

    #[test]
    fn labels_snapshot() {
        let labels = CubeLabels::from_db(&db());
        assert_eq!(labels.sa_attrs, vec!["sex"]);
        assert_eq!(labels.ca_attrs, vec!["region"]);
        assert_eq!(labels.unit_names, vec!["u0", "u1"]);
        let f = labels.find_item("sex", "female").unwrap();
        assert_eq!(labels.label(f), "sex=female");
        assert!(labels.find_item("sex", "other").is_none());
    }

    #[test]
    fn describe_renders_stars() {
        let labels = CubeLabels::from_db(&db());
        let f = labels.find_item("sex", "female").unwrap();
        let c = CellCoords::new(vec![f], vec![]);
        assert_eq!(labels.describe(&c), "sex=female | *");
        assert_eq!(labels.describe(&CellCoords::apex()), "* | *");
    }

    #[test]
    fn attr_values_extracts() {
        let labels = CubeLabels::from_db(&db());
        let f = labels.find_item("sex", "female").unwrap();
        let n = labels.find_item("region", "north").unwrap();
        let c = CellCoords::new(vec![f], vec![n]);
        assert_eq!(labels.attr_values(&c, "sex"), vec!["female"]);
        assert_eq!(labels.attr_values(&c, "region"), vec!["north"]);
        assert!(labels.attr_values(&c, "age").is_empty());
    }
}
