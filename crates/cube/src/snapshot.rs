//! Versioned binary snapshots of a built cube (`scube-cube::snapshot`).
//!
//! SCube's whole point is *interactive* exploration of a materialized cube,
//! but a cube used to die with the process: every session re-mined and
//! re-built. A [`CubeSnapshot`] persists everything a serving session needs
//! — the [`SegregationCube`] (cells + [`crate::cube::CubeLabels`]) *and* the
//! [`VerticalDb`] postings behind it — so `load` restores both exact lookups
//! and the explorer fallback for non-materialized ⋆-combinations without
//! re-mining anything.
//!
//! ## Format (versions 4 and 5)
//!
//! All integers are little-endian; strings are `u32` length + UTF-8 bytes.
//! The data region is laid out as fixed-width tables behind an offset
//! directory, so a reader can either *decode* the file onto the heap
//! ([`CubeSnapshot::load`], any host) or *map* it and serve postings
//! straight out of the page cache ([`CubeSnapshot::open_mmap`],
//! little-endian hosts — N daemons then share one physical copy):
//!
//! ```text
//! [0..8)    magic  "SCUBESNP"
//! [8..12)   format version (u32, currently 4)
//! [12]      posting representation tag (Posting::SERIAL_TAG)
//! [13..21)  FxHash checksum (u64) of bytes [24..)   — the full checksum
//! [21..24)  zero padding
//! [24..96)  offset directory: nine u64s
//!             meta_off, meta_len, postdir_off, n_postings,
//!             slots_off, slots_len, store_off, store_len, meta_sum
//! meta      build cfg (materialization tag u8, Atkinson b f64), labels,
//!           n_units (u32), min_support (u64), cells (sorted by (sa, ca)),
//!           n_transactions (u32), v_units (u32), tid → unit map (u32 each)
//! postdir   n_postings × (slot offset u64, slot length u64, cardinality u64)
//! slots     posting slots (Posting::write_slot), each at an 8-aligned
//!           file offset, zero padding between slots
//! store     maintenance store: context totals + cell minorities, in the
//!           same encoding as the v3 payload tail
//! ```
//!
//! `meta_sum` is an FxHash over the directory (sans itself), the meta
//! region, and the posting directory — everything `open_mmap` must trust
//! *eagerly*. Verifying it costs O(metadata), not O(file): posting slots
//! are validated structurally per slot ([`Posting::map_slot`], enough to
//! rule out panics and out-of-universe tids, in time proportional to slot
//! metadata), and the maintenance-store region stays raw bytes: the first
//! update runs an O(keys) index scan over it, after which each histogram
//! is decoded (and validated) individually when an update dirties its
//! entry — a small batch touches a handful of entries, never the whole
//! store (`LazyStore`). That keeps a cold `open_mmap` at milliseconds
//! even for multi-gigabyte snapshots. The
//! full checksum at [13..21) covers every byte after the header and is
//! what the heap loader checks; [`CubeSnapshot::open_mmap_verified`]
//! checks it too for paranoid opens.
//!
//! ## Version 5: partial measure suites
//!
//! A cube built with a proper subset of the six indexes
//! ([`MeasureSet`], `CubeBuilder::measures`) persists as **version 5** —
//! same header, directory, posting, and store layout, two meta changes:
//!
//! * a measure-set byte (bit `i` = `SegIndex::ALL[i]`) follows the
//!   Atkinson parameter;
//! * cells store only coordinates + `minority u64` + `total u64` +
//!   `num_units u32` inline; the selected measures' values follow as
//!   columnar fixed-width tables — per measure (in `SegIndex::ALL`
//!   order), `n_cells` × 9-byte slots (presence byte + f64 bits, zero
//!   when absent), cells in the same sorted coordinate order.
//!
//! The full suite **always** writes v4 — bit-identical to pre-v5
//! releases — and a v5 file declaring the full set is rejected as
//! non-canonical, so each logical snapshot still has exactly one byte
//! representation. v1–v4 readers imply [`MeasureSet::FULL`].
//! [`CubeSnapshot::open_mmap`] accepts v5: the meta region was always
//! heap-decoded, and posting slots stay zero-copy.
//!
//! Versions 1–3 (a single length-prefixed payload, no directory) still
//! load via [`CubeSnapshot::load`]; the writer only emits v4/v5. v1 predates
//! the build-configuration section and the maintenance store (the builder
//! defaults `AllFrequent` / [`DEFAULT_ATKINSON_B`] apply and the store is
//! recomputed); v2 added both; v3 marked the retraction-capable
//! maintenance era. Unknown versions error — never panic
//! (`tests/snapshot_compat.rs`, which also pins v1 and v3 golden bytes).
//!
//! Cells are written in sorted coordinate order, postings in item order,
//! and store entries in canonical key order, so serialization is
//! *canonical*: saving, loading, and saving again reproduces identical
//! bytes — and a mapped snapshot re-saves to exactly the bytes it was
//! opened from (property-tested in `tests/snapshot_roundtrip.rs` and
//! `tests/mmap_differential.rs`). [`CubeSnapshot::save`] writes through a
//! same-directory temp file, fsyncs, and renames over the target, so a
//! crash mid-save leaves the previous snapshot bytes intact instead of a
//! torn file.

use std::path::Path;
use std::sync::Arc;

use scube_bitmap::{EwahBitmap, Posting};
use scube_common::mmap::{ByteRegion, MmapFile};
use scube_common::{FxHashMap, Result, ScubeError};
use scube_data::{ItemId, TransactionDb, VerticalDb};
use scube_segindex::{IndexValues, MeasureSet, DEFAULT_ATKINSON_B};

use crate::builder::{CubeBuilder, Materialize};
use crate::coords::CellCoords;
use crate::cube::{CubeLabels, SegregationCube};
use crate::update::{MaintenanceStore, UpdateBatch, UpdateOutcome, UpdateStats};

const MAGIC: &[u8; 8] = b"SCUBESNP";
const VERSION_5: u32 = 5;
const VERSION: u32 = 4;
const VERSION_3: u32 = 3;
const VERSION_2: u32 = 2;
const VERSION_1: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 1 + 8;
/// v4 offset directory: starts 8-aligned after the header + 3 pad bytes.
const DIR_OFF: usize = HEADER_LEN + 3;
const DIR_WORDS: usize = 9;
/// v4 meta region: starts right after the directory.
const META_OFF: usize = DIR_OFF + DIR_WORDS * 8;
/// One v4 posting-directory entry: slot offset, slot length, cardinality.
const POSTDIR_ENTRY: usize = 24;
/// Ceiling on length-field-driven preallocations while decoding: the
/// checksum is not cryptographic, so a crafted file could otherwise declare
/// a 4-billion-element vector and abort the process on allocation instead
/// of returning a decode error. Vectors still grow to any genuine size.
const PREALLOC_CAP: usize = 1 << 16;

/// A persistable pairing of a built cube with the vertical database it was
/// built from — everything the query engine needs to serve both
/// materialized and non-materialized cells.
#[derive(Debug, Clone)]
pub struct CubeSnapshot<P: Posting = EwahBitmap> {
    cube: SegregationCube,
    vertical: VerticalDb<P>,
    /// Materialization strategy the cube was built with — recorded so an
    /// [`UpdateBatch`] can decide whether promoted itemsets need a
    /// closedness check.
    materialize: Materialize,
    /// Atkinson shape parameter the cube was built with — recorded so
    /// re-evaluated dirty cells reproduce the original floats bit for bit.
    atkinson_b: f64,
    /// The measure subset the cube was built with — recorded so updates
    /// re-fold exactly the selected indexes. [`MeasureSet::FULL`] persists
    /// as format v4 (byte-identical to pre-measure-layer snapshots); any
    /// proper subset persists as the compact v5 value-table layout.
    measures: MeasureSet,
    /// The integer per-unit histograms behind every cell value, kept so
    /// updates fold deltas in instead of re-deriving from full postings.
    /// Mapped snapshots leave it lazy ([`LazyStore`]): entries decode one
    /// by one as updates dirty them.
    maintenance: MaintenanceStore,
}

/// The undecoded remainder of a mapped snapshot's maintenance-store
/// region. `open_mmap` attaches the raw region without even scanning it —
/// queries never touch the store, so a cold open stays O(metadata). The
/// first update runs the O(keys) *index* scan ([`MaintenanceStore::
/// ensure_indexed`]): every key is parsed and validated, every histogram
/// blob is bounds-checked and recorded as a byte range, nothing is
/// decoded. From then on each entry moves from a range here to a decoded
/// map entry exactly when an update dirties it — a small [`UpdateBatch`]
/// on a million-context store decodes a handful of histograms, not the
/// store. Histogram contents are validated per entry at decode time (unit
/// range, ascending units, nonzero counts — the same [`Reader::pairs`]
/// rejections the eager loaders apply), so corruption in an entry is
/// caught the moment that entry is first trusted.
#[derive(Debug, Clone)]
pub(crate) struct LazyStore {
    region: ByteRegion,
    n_items: usize,
    n_units: u32,
    /// Context key → byte range of its totals blob (count prefix
    /// included) within `region`. Keys here and in the decoded map are
    /// disjoint.
    pub(crate) ctx_ranges: FxHashMap<Vec<ItemId>, (usize, usize)>,
    /// Cell coordinates → byte range of its minority blob.
    pub(crate) min_ranges: FxHashMap<CellCoords, (usize, usize)>,
    /// False until the index scan has run (the maps above are empty and
    /// the whole region is still authoritative).
    pub(crate) indexed: bool,
}

impl MaintenanceStore {
    /// A store whose entries all still live in a mapped region,
    /// undecoded and unscanned.
    pub(crate) fn deferred(region: ByteRegion, n_items: usize, n_units: u32) -> Self {
        MaintenanceStore {
            contexts: FxHashMap::default(),
            minorities: FxHashMap::default(),
            lazy: Some(LazyStore {
                region,
                n_items,
                n_units,
                ctx_ranges: FxHashMap::default(),
                min_ranges: FxHashMap::default(),
                indexed: false,
            }),
        }
    }

    /// Build the per-entry byte index over a mapped store region: parse
    /// (and validate) every key, bounds-check and skip every histogram
    /// blob, record its range. O(keys + entry count), no histogram
    /// decoding. No-op for heap stores and already-indexed regions.
    pub(crate) fn ensure_indexed(&mut self) -> Result<()> {
        let Some(lazy) = &mut self.lazy else { return Ok(()) };
        if lazy.indexed {
            return Ok(());
        }
        let mut r = Reader { bytes: lazy.region.as_slice(), pos: 0 };
        let n_contexts = r.u32()? as usize;
        for _ in 0..n_contexts {
            let key = r.ids(lazy.n_items)?;
            let range = r.skip_pairs()?;
            if lazy.ctx_ranges.insert(key, range).is_some() {
                return Err(corrupt("duplicate maintenance context"));
            }
        }
        let n_minorities = r.u32()? as usize;
        for _ in 0..n_minorities {
            let sa = r.ids(lazy.n_items)?;
            let ca = r.ids(lazy.n_items)?;
            let range = r.skip_pairs()?;
            if lazy.min_ranges.insert(CellCoords { sa, ca }, range).is_some() {
                return Err(corrupt("duplicate maintenance cell"));
            }
        }
        if r.pos != r.bytes.len() {
            return Err(corrupt("trailing bytes after the maintenance store"));
        }
        lazy.indexed = true;
        Ok(())
    }

    /// Decode one histogram blob out of a lazy region, validating it
    /// exactly as the eager loader would.
    fn decode_lazy_pairs(lazy: &LazyStore, range: (usize, usize)) -> Result<Vec<(u32, u64)>> {
        let blob = lazy
            .region
            .as_slice()
            .get(range.0..range.1)
            .ok_or_else(|| corrupt("histogram range out of bounds"))?;
        let mut r = Reader { bytes: blob, pos: 0 };
        let pairs = r.pairs(lazy.n_units)?;
        if r.pos != blob.len() {
            return Err(corrupt("trailing bytes in a histogram blob"));
        }
        Ok(pairs)
    }

    /// Move a context's totals from the lazy region into the decoded map
    /// if they are still lazy; no-op when already decoded or absent.
    pub(crate) fn ensure_context(&mut self, ca: &[ItemId]) -> Result<()> {
        if self.contexts.contains_key(ca) {
            return Ok(());
        }
        if let Some(lazy) = &mut self.lazy {
            if let Some(range) = lazy.ctx_ranges.remove(ca) {
                let pairs = Self::decode_lazy_pairs(lazy, range)?;
                self.contexts.insert(ca.to_vec(), pairs);
            }
        }
        Ok(())
    }

    /// Move a cell's minority counts from the lazy region into the
    /// decoded map if they are still lazy; no-op otherwise.
    pub(crate) fn ensure_minority(&mut self, coords: &CellCoords) -> Result<()> {
        if self.minorities.contains_key(coords) {
            return Ok(());
        }
        if let Some(lazy) = &mut self.lazy {
            if let Some(range) = lazy.min_ranges.remove(coords) {
                let pairs = Self::decode_lazy_pairs(lazy, range)?;
                self.minorities.insert(coords.clone(), pairs);
            }
        }
        Ok(())
    }

    /// Decode every still-lazy entry and drop the mapped region — what
    /// the wholesale relabel path needs (it rebuilds both maps under new
    /// ids, so nothing may stay as bytes).
    pub(crate) fn materialize_all(&mut self) -> Result<()> {
        self.ensure_indexed()?;
        let Some(mut lazy) = self.lazy.take() else { return Ok(()) };
        for (key, range) in std::mem::take(&mut lazy.ctx_ranges) {
            let pairs = Self::decode_lazy_pairs(&lazy, range)?;
            self.contexts.insert(key, pairs);
        }
        for (coords, range) in std::mem::take(&mut lazy.min_ranges) {
            let pairs = Self::decode_lazy_pairs(&lazy, range)?;
            self.minorities.insert(coords, pairs);
        }
        Ok(())
    }
}

impl<P: Posting> CubeSnapshot<P> {
    /// Pair a cube with its vertical database.
    ///
    /// Fails when the two disagree on shape (unit count, item count): a
    /// mismatched pairing would serve materialized lookups from one dataset
    /// and explorer fallbacks from another.
    pub fn new(cube: SegregationCube, vertical: VerticalDb<P>) -> Result<Self> {
        Self::validate_pairing(&cube, &vertical)?;
        let maintenance = MaintenanceStore::compute(&cube, &vertical);
        Ok(CubeSnapshot {
            cube,
            vertical,
            materialize: Materialize::default(),
            atkinson_b: DEFAULT_ATKINSON_B,
            measures: MeasureSet::FULL,
            maintenance,
        })
    }

    /// The shape checks behind [`Self::new`], shared with the
    /// deserializer (which carries its own, already-validated store).
    fn validate_pairing(cube: &SegregationCube, vertical: &VerticalDb<P>) -> Result<()> {
        if cube.num_units() != vertical.num_units() {
            return Err(ScubeError::Inconsistent(format!(
                "snapshot: cube has {} units but vertical database has {}",
                cube.num_units(),
                vertical.num_units()
            )));
        }
        if cube.labels().num_items() != vertical.num_items() {
            return Err(ScubeError::Inconsistent(format!(
                "snapshot: cube labels {} items but vertical database has {}",
                cube.labels().num_items(),
                vertical.num_items()
            )));
        }
        if cube.labels().unit_names.len() != cube.num_units() as usize {
            return Err(ScubeError::Inconsistent(format!(
                "snapshot: {} unit names for {} units",
                cube.labels().unit_names.len(),
                cube.num_units()
            )));
        }
        Ok(())
    }

    /// Record the build configuration (materialization strategy, Atkinson
    /// parameter, and measure subset) the cube was built with.
    /// [`Self::from_db`] does this automatically; use it when pairing a
    /// cube and vertical database by hand so later [`Self::apply_update`]
    /// calls maintain the cube under the same parameters.
    pub fn with_build_config(
        mut self,
        materialize: Materialize,
        atkinson_b: f64,
        measures: MeasureSet,
    ) -> Self {
        self.materialize = materialize;
        self.atkinson_b = atkinson_b;
        self.measures = measures;
        self
    }

    /// Build both halves from a transaction database in one pass: the
    /// vertical database is constructed once and shared with the builder,
    /// and the builder's configuration is recorded for later updates.
    pub fn from_db(db: &TransactionDb, builder: &CubeBuilder) -> Result<Self>
    where
        P: Send + Sync,
    {
        let vertical: VerticalDb<P> = VerticalDb::build(db);
        let cube = builder.build_from_vertical(db, &vertical)?;
        let cfg = builder.config();
        Ok(CubeSnapshot::new(cube, vertical)?.with_build_config(
            cfg.materialize,
            cfg.atkinson_b,
            cfg.measures,
        ))
    }

    /// Fold a batch of appended rows and retractions into the snapshot in
    /// place: postings extended at their tails (or shrunk), newly-frequent
    /// itemsets promoted, below-threshold or no-longer-closed cells
    /// demoted, and exactly the dirty cells re-evaluated under the
    /// recorded build configuration — bit-identical to a full rebuild on
    /// the edited data for single-valued-per-row attributes; see
    /// [`UpdateBatch`] for the narrow multi-valued dictionary-order caveat
    /// (cell values are exact in every case) and [`crate::update`] for the
    /// machinery.
    ///
    /// ```
    /// use scube_cube::{CubeBuilder, CubeSnapshot, UpdateBatch};
    /// use scube_data::{Attribute, Schema, TransactionDbBuilder};
    ///
    /// let schema = Schema::new(vec![Attribute::sa("sex"), Attribute::ca("region")])?;
    /// let mut b = TransactionDbBuilder::new(schema);
    /// for (sex, unit) in [("F", "u0"), ("F", "u0"), ("M", "u1")] {
    ///     b.add_row(&[vec![sex], vec!["north"]], unit)?;
    /// }
    /// let mut snap: CubeSnapshot = CubeSnapshot::from_db(&b.finish(), &CubeBuilder::new())?;
    /// assert_eq!(snap.cube().get_by_names(&[("sex", "F")], &[]).unwrap().total, 3);
    ///
    /// // A new individual arrives — in a brand-new unit.
    /// let mut batch = UpdateBatch::new();
    /// batch.add_row(&[("sex", "F"), ("region", "north")], "u2");
    /// let stats = snap.apply_update(&batch)?;
    /// assert_eq!((stats.rows_added, stats.new_units), (1, 1));
    /// let women = snap.cube().get_by_names(&[("sex", "F")], &[]).unwrap();
    /// assert_eq!((women.minority, women.total), (3, 4));
    /// # Ok::<(), scube_common::ScubeError>(())
    /// ```
    pub fn apply_update(&mut self, batch: &UpdateBatch) -> Result<UpdateStats>
    where
        P: Send + Sync,
    {
        self.apply_update_threads(batch, 1)
    }

    /// As [`Self::apply_update`], fanning dirty-cell re-evaluation over up
    /// to `threads` scoped worker threads (per-worker scratches,
    /// deterministic results — the parallel update is bit-identical to the
    /// serial one, property-tested in `tests/cube_update_equivalence.rs`).
    pub fn apply_update_threads(
        &mut self,
        batch: &UpdateBatch,
        threads: usize,
    ) -> Result<UpdateStats>
    where
        P: Send + Sync,
    {
        Ok(self.apply_update_outcome(batch, threads)?.stats)
    }

    /// As [`Self::apply_update_threads`], also returning the dirtiness
    /// probe the serving layers use to invalidate exactly the affected
    /// cache entries.
    pub(crate) fn apply_update_outcome(
        &mut self,
        batch: &UpdateBatch,
        threads: usize,
    ) -> Result<UpdateOutcome<P>>
    where
        P: Send + Sync,
    {
        crate::update::apply_update(
            &mut self.cube,
            &mut self.vertical,
            &mut self.maintenance,
            batch,
            self.materialize,
            self.atkinson_b,
            self.measures,
            threads,
        )
    }

    /// Serving-layer constructor parts: both halves plus the build
    /// configuration and maintenance store (the concurrent engine keeps
    /// the store so [`crate::serve::ConcurrentCubeEngine::apply_update`]
    /// folds deltas at the same cost as the snapshot path).
    pub(crate) fn into_serving_parts(
        self,
    ) -> (SegregationCube, VerticalDb<P>, MaintenanceStore, Materialize, f64, MeasureSet) {
        (
            self.cube,
            self.vertical,
            self.maintenance,
            self.materialize,
            self.atkinson_b,
            self.measures,
        )
    }

    /// The materialization strategy the cube was built with (recorded in
    /// snapshot format v2; `AllFrequent` for loaded v1 files).
    pub fn materialize(&self) -> Materialize {
        self.materialize
    }

    /// The Atkinson shape parameter the cube was built with (recorded in
    /// snapshot format v2; the default for loaded v1 files).
    pub fn atkinson_b(&self) -> f64 {
        self.atkinson_b
    }

    /// The measure subset the cube was built with (recorded in snapshot
    /// format v5; [`MeasureSet::FULL`] for v1–v4 files).
    pub fn measures(&self) -> MeasureSet {
        self.measures
    }

    /// The materialized cube.
    pub fn cube(&self) -> &SegregationCube {
        &self.cube
    }

    /// The vertical database (item postings + tid → unit map).
    pub fn vertical(&self) -> &VerticalDb<P> {
        &self.vertical
    }

    /// Take ownership of both halves.
    pub fn into_parts(self) -> (SegregationCube, VerticalDb<P>) {
        (self.cube, self.vertical)
    }

    /// Serialize into the version-4 binary format (module docs): offset
    /// directory, meta region, posting directory, 8-aligned posting slots,
    /// maintenance-store region. Canonical — identical snapshots produce
    /// identical bytes, whatever path (build, load, update, mmap) produced
    /// the value.
    pub fn to_bytes(&self) -> Vec<u8> {
        let meta = self.encode_meta();

        // Posting slots (8-aligned, zero padding between) + directory.
        let n_postings = self.vertical.num_items();
        let postdir_off = META_OFF + meta.len();
        let slots_off = (postdir_off + n_postings * POSTDIR_ENTRY).next_multiple_of(8);
        let mut postdir = Vec::with_capacity(n_postings * POSTDIR_ENTRY);
        let mut slots = Vec::new();
        for posting in self.vertical.postings() {
            slots.resize(slots.len().next_multiple_of(8), 0);
            let start = slots.len();
            posting.write_slot(&mut slots);
            put_u64(&mut postdir, (slots_off + start) as u64);
            put_u64(&mut postdir, (slots.len() - start) as u64);
            put_u64(&mut postdir, posting.cardinality());
        }
        let store_off = slots_off + slots.len();

        let mut out = Vec::with_capacity(store_off + 1024);
        out.extend_from_slice(MAGIC);
        let version = if self.measures.is_full() { VERSION } else { VERSION_5 };
        out.extend_from_slice(&version.to_le_bytes());
        out.push(P::SERIAL_TAG);
        out.extend_from_slice(&[0u8; 8]); // full checksum, patched below
        out.extend_from_slice(&[0u8; 3]); // padding to an 8-aligned directory
        for word in [
            META_OFF as u64,
            meta.len() as u64,
            postdir_off as u64,
            n_postings as u64,
            slots_off as u64,
            slots.len() as u64,
            store_off as u64,
            0, // store length, patched below
            0, // meta checksum, patched below
        ] {
            put_u64(&mut out, word);
        }
        out.extend_from_slice(&meta);
        out.extend_from_slice(&postdir);
        out.resize(slots_off, 0); // alignment padding before the first slot
        out.extend_from_slice(&slots);
        encode_store(&self.maintenance, &mut out);
        let store_len = (out.len() - store_off) as u64;
        out[DIR_OFF + 7 * 8..DIR_OFF + 8 * 8].copy_from_slice(&store_len.to_le_bytes());
        let meta_sum = checksum2(&out[DIR_OFF..DIR_OFF + 8 * 8], &out[META_OFF..slots_off]);
        out[DIR_OFF + 8 * 8..META_OFF].copy_from_slice(&meta_sum.to_le_bytes());
        let full_sum = checksum(&out[DIR_OFF..]);
        out[13..21].copy_from_slice(&full_sum.to_le_bytes());
        out
    }

    /// The v4/v5 meta region: build configuration, labels, cube metadata,
    /// cells in canonical (sa, ca) order, and the tid → unit map. A full
    /// measure suite writes the v4 layout (values inline per cell); a
    /// subset writes the v5 layout (measure-set byte, population summary
    /// per cell, then one fixed-width value table per selected measure).
    fn encode_meta(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        let labels = self.cube.labels();

        // Build configuration.
        meta.push(match self.materialize {
            Materialize::AllFrequent => 0,
            Materialize::ClosedOnly => 1,
        });
        put_u64(&mut meta, self.atkinson_b.to_bits());
        if !self.measures.is_full() {
            meta.push(self.measures.bits());
        }

        // Labels.
        put_u32(&mut meta, labels.num_items() as u32);
        for item in 0..labels.num_items() as ItemId {
            put_str(&mut meta, labels.attr_of(item));
            put_str(&mut meta, labels.value_of(item));
            meta.push(labels.is_sa_item(item) as u8);
        }
        put_str_list(&mut meta, &labels.sa_attrs);
        put_str_list(&mut meta, &labels.ca_attrs);
        put_str_list(&mut meta, &labels.unit_names);

        // Cube metadata.
        put_u32(&mut meta, self.cube.num_units());
        put_u64(&mut meta, self.cube.min_support());

        // Cells in canonical (sa, ca) order.
        let mut cells: Vec<(&CellCoords, &IndexValues)> = self.cube.cells().collect();
        cells.sort_by(|a, b| a.0.cmp(b.0));
        put_u32(&mut meta, cells.len() as u32);
        if self.measures.is_full() {
            for (coords, values) in &cells {
                put_ids(&mut meta, &coords.sa);
                put_ids(&mut meta, &coords.ca);
                put_values(&mut meta, values);
            }
        } else {
            // v5: coordinates + population summary inline, then one
            // fixed-width little-endian value table per selected measure
            // (9 bytes per cell: presence byte + f64 bits, zero when
            // absent), in `SegIndex::ALL` order — columnar, so a reader
            // interested in one index touches one contiguous table.
            for (coords, values) in &cells {
                put_ids(&mut meta, &coords.sa);
                put_ids(&mut meta, &coords.ca);
                put_u64(&mut meta, values.minority);
                put_u64(&mut meta, values.total);
                put_u32(&mut meta, values.num_units);
            }
            for index in self.measures.iter() {
                for (_, values) in &cells {
                    put_f64_slot(&mut meta, values.get(index));
                }
            }
        }

        // Transaction space and tid → unit map.
        put_u32(&mut meta, self.vertical.num_transactions());
        put_u32(&mut meta, self.vertical.num_units());
        for &u in self.vertical.units() {
            put_u32(&mut meta, u);
        }
        meta
    }

    /// Deserialize a snapshot, verifying magic, version, representation
    /// tag, and checksum before trusting any field. The current v4/v5
    /// formats and legacy v1–v3 files all load; any other version is an
    /// error, never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < HEADER_LEN {
            return Err(corrupt("shorter than the fixed header"));
        }
        if &bytes[..8] != MAGIC {
            return Err(corrupt("bad magic (not a scube snapshot)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        match version {
            VERSION | VERSION_5 => Self::from_bytes_v4(bytes, version),
            VERSION_1 | VERSION_2 | VERSION_3 => Self::from_bytes_legacy(bytes, version),
            _ => Err(corrupt(&format!(
                "unsupported format version {version} (want {VERSION_1}..={VERSION_5})"
            ))),
        }
    }

    /// Check the representation-tag byte at offset 12 (all versions).
    fn check_tag(bytes: &[u8]) -> Result<()> {
        let tag = bytes[12];
        if tag != P::SERIAL_TAG {
            return Err(corrupt(&format!(
                "posting representation tag {tag} does not match the requested \
                 representation (tag {})",
                P::SERIAL_TAG
            )));
        }
        Ok(())
    }

    /// The v1–v3 single-payload decoder (fully validating; the only read
    /// path these versions have).
    fn from_bytes_legacy(bytes: &[u8], version: u32) -> Result<Self> {
        Self::check_tag(bytes)?;
        let stored_sum = u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if checksum(payload) != stored_sum {
            return Err(corrupt("checksum mismatch (truncated or corrupted payload)"));
        }

        let mut r = Reader { bytes: payload, pos: 0 };

        // Build configuration (since v2; v1 predates it and gets the
        // builder defaults).
        let (materialize, atkinson_b) = if version >= VERSION_2 {
            let materialize = match r.u8()? {
                0 => Materialize::AllFrequent,
                1 => Materialize::ClosedOnly,
                t => return Err(corrupt(&format!("unknown materialization tag {t}"))),
            };
            let b = f64::from_bits(r.u64()?);
            if !b.is_finite() {
                return Err(corrupt("non-finite Atkinson parameter"));
            }
            (materialize, b)
        } else {
            (Materialize::default(), DEFAULT_ATKINSON_B)
        };

        // Labels. Like every length below, the declared count only seeds a
        // *capped* preallocation: a crafted length cannot force a huge
        // up-front allocation — the loop hits end-of-data first.
        let n_items = r.u32()? as usize;
        let mut items = Vec::with_capacity(n_items.min(PREALLOC_CAP));
        for _ in 0..n_items {
            let attr = r.str()?;
            let value = r.str()?;
            let is_sa = r.u8()? != 0;
            items.push((attr, value, is_sa));
        }
        let labels = CubeLabels {
            items,
            sa_attrs: r.str_list()?,
            ca_attrs: r.str_list()?,
            unit_names: r.str_list()?,
        };

        // Cube metadata.
        let n_units = r.u32()?;
        let min_support = r.u64()?;

        // Cells.
        let n_cells = r.u32()? as usize;
        let mut cells: FxHashMap<CellCoords, IndexValues> =
            scube_common::hash::fx_map_with_capacity(n_cells.min(PREALLOC_CAP));
        for _ in 0..n_cells {
            let sa = r.ids(n_items)?;
            let ca = r.ids(n_items)?;
            let values = r.values()?;
            if cells.insert(CellCoords { sa, ca }, values).is_some() {
                return Err(corrupt("duplicate cell coordinates"));
            }
        }
        let cube = SegregationCube::new(cells, labels, n_units, min_support);

        // Vertical database.
        let n_transactions = r.u32()?;
        let v_units = r.u32()?;
        let mut unit_of = Vec::with_capacity((n_transactions as usize).min(PREALLOC_CAP));
        for _ in 0..n_transactions {
            unit_of.push(r.u32()?);
        }
        let n_postings = r.u32()? as usize;
        if n_postings != n_items {
            return Err(corrupt("posting count does not match item count"));
        }
        let mut postings = Vec::with_capacity(n_postings.min(PREALLOC_CAP));
        for _ in 0..n_postings {
            let (posting, consumed) = P::read_bytes(&r.bytes[r.pos..])
                .ok_or_else(|| corrupt("malformed posting payload"))?;
            r.pos += consumed;
            postings.push(posting);
        }

        // Maintenance store: stored since v2, reconstructed for v1 files.
        let maintenance =
            if version >= VERSION_2 { Some(decode_store(&mut r, n_items, v_units)?) } else { None };
        if r.pos != r.bytes.len() {
            return Err(corrupt("trailing bytes after the payload"));
        }
        let vertical = VerticalDb::from_parts(postings, n_transactions, unit_of, v_units)
            .ok_or_else(|| corrupt("inconsistent vertical database parts"))?;

        Self::validate_pairing(&cube, &vertical)?;
        let maintenance = match maintenance {
            Some(store) => {
                if !store.covers(&cube) {
                    return Err(corrupt("maintenance store does not cover the cube"));
                }
                store
            }
            None => MaintenanceStore::compute(&cube, &vertical),
        };
        Ok(CubeSnapshot {
            cube,
            vertical,
            materialize,
            atkinson_b,
            measures: MeasureSet::FULL,
            maintenance,
        })
    }

    /// The v4/v5 heap decoder: verify the full checksum, walk the
    /// directory, decode every region, and validate exactly as strictly as
    /// the legacy path (owned postings via [`Posting::read_slot`], full
    /// [`VerticalDb::from_parts`] and store-coverage checks).
    fn from_bytes_v4(bytes: &[u8], version: u32) -> Result<Self> {
        if bytes.len() < META_OFF {
            return Err(corrupt("shorter than the fixed v4 header"));
        }
        Self::check_tag(bytes)?;
        let stored_sum = u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes"));
        if checksum(&bytes[DIR_OFF..]) != stored_sum {
            return Err(corrupt("checksum mismatch (truncated or corrupted payload)"));
        }
        if bytes[HEADER_LEN..DIR_OFF] != [0u8; 3] {
            return Err(corrupt("nonzero header padding"));
        }
        let d = Directory::parse(bytes)?;
        let meta = decode_meta(&bytes[META_OFF..d.postdir_off], version)?;
        if d.n_postings != meta.n_items {
            return Err(corrupt("posting count does not match item count"));
        }
        let mut postings = Vec::with_capacity(d.n_postings.min(PREALLOC_CAP));
        for i in 0..d.n_postings {
            let (off, len, card) = d.postdir_entry(bytes, i)?;
            let posting = P::read_slot(&bytes[off..off + len], card)
                .ok_or_else(|| corrupt("malformed posting slot"))?;
            postings.push(posting);
        }
        let store = {
            let mut r = Reader { bytes: &bytes[d.store_off..d.store_off + d.store_len], pos: 0 };
            let store = decode_store(&mut r, meta.n_items, meta.v_units)?;
            if r.pos != r.bytes.len() {
                return Err(corrupt("trailing bytes after the maintenance store"));
            }
            store
        };
        let vertical =
            VerticalDb::from_parts(postings, meta.n_transactions, meta.unit_of, meta.v_units)
                .ok_or_else(|| corrupt("inconsistent vertical database parts"))?;
        Self::validate_pairing(&meta.cube, &vertical)?;
        if !store.covers(&meta.cube) {
            return Err(corrupt("maintenance store does not cover the cube"));
        }
        Ok(CubeSnapshot {
            cube: meta.cube,
            vertical,
            materialize: meta.materialize,
            atkinson_b: meta.atkinson_b,
            measures: meta.measures,
            maintenance: store,
        })
    }

    /// Map a v4 snapshot file and serve its postings zero-copy out of the
    /// page cache — every daemon that opens the same file shares one
    /// physical copy.
    ///
    /// Validation is O(metadata), which is what keeps a cold open at
    /// milliseconds regardless of file size: the header, the offset
    /// directory, the meta region, and the posting directory are verified
    /// against `meta_sum`; each posting slot is checked *structurally*
    /// ([`Posting::map_slot`] — panic-freedom and tid range, not content),
    /// and the maintenance-store region is decoded and fully validated
    /// only when an update first needs it. Bit rot inside a slot that
    /// happens to keep a valid structure is the one corruption class this
    /// cannot catch — [`Self::open_mmap_verified`] reads the whole file
    /// and checks the full checksum for that.
    ///
    /// Errors (never panics, never UB) on truncated or corrupted files, on
    /// v1–v3 files (load and re-save to convert them to v4), and on
    /// big-endian hosts, where the fixed-width tables cannot be
    /// reinterpreted in place — [`Self::load`] works everywhere.
    ///
    /// The returned snapshot behaves exactly like a loaded one: queries
    /// are answered bit-identically (`tests/mmap_differential.rs`), and
    /// mutation (`apply_update`) transparently copies the touched postings
    /// onto the heap.
    pub fn open_mmap(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_mmap_inner(path.as_ref(), false)
    }

    /// As [`Self::open_mmap`], additionally verifying the full-payload
    /// checksum — an O(file) read that rules out bit rot everywhere, for
    /// callers that prefer eager certainty over a milliseconds open.
    pub fn open_mmap_verified(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_mmap_inner(path.as_ref(), true)
    }

    fn open_mmap_inner(path: &Path, verify_full: bool) -> Result<Self> {
        if cfg!(target_endian = "big") {
            return Err(ScubeError::Inconsistent(
                "snapshot: open_mmap requires a little-endian host (use load)".into(),
            ));
        }
        let file = Arc::new(MmapFile::open(path)?);
        let whole = ByteRegion::whole(Arc::clone(&file));
        let bytes = file.as_bytes();
        if bytes.len() < META_OFF {
            return Err(corrupt("shorter than the fixed v4 header"));
        }
        if &bytes[..8] != MAGIC {
            return Err(corrupt("bad magic (not a scube snapshot)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if (VERSION_1..=VERSION_3).contains(&version) {
            return Err(corrupt(&format!(
                "format v{version} predates mapped serving — load and re-save to convert to v4"
            )));
        }
        if version != VERSION && version != VERSION_5 {
            return Err(corrupt(&format!(
                "unsupported format version {version} (want {VERSION_1}..={VERSION_5})"
            )));
        }
        Self::check_tag(bytes)?;
        if bytes[HEADER_LEN..DIR_OFF] != [0u8; 3] {
            return Err(corrupt("nonzero header padding"));
        }
        if verify_full {
            let stored_sum = u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes"));
            if checksum(&bytes[DIR_OFF..]) != stored_sum {
                return Err(corrupt("checksum mismatch (truncated or corrupted payload)"));
            }
        }
        let d = Directory::parse(bytes)?;
        if checksum2(&bytes[DIR_OFF..DIR_OFF + 8 * 8], &bytes[META_OFF..d.slots_off]) != d.meta_sum
        {
            return Err(corrupt("meta checksum mismatch (corrupted directory or meta region)"));
        }
        let meta = decode_meta(&bytes[META_OFF..d.postdir_off], version)?;
        if d.n_postings != meta.n_items {
            return Err(corrupt("posting count does not match item count"));
        }
        let mut postings = Vec::with_capacity(d.n_postings.min(PREALLOC_CAP));
        for i in 0..d.n_postings {
            let (off, len, card) = d.postdir_entry(bytes, i)?;
            let region =
                whole.slice(off, len).ok_or_else(|| corrupt("posting slot out of bounds"))?;
            let posting = P::map_slot(region, card, meta.n_transactions)
                .ok_or_else(|| corrupt("malformed posting slot"))?;
            postings.push(posting);
        }
        // `map_slot` guaranteed every posting stays below `n_transactions`,
        // so the O(data) posting re-scan of `from_parts` is unnecessary —
        // that scan is precisely what would make a cold open O(file).
        let vertical = VerticalDb::from_validated_parts(
            postings,
            meta.n_transactions,
            meta.unit_of,
            meta.v_units,
        )
        .ok_or_else(|| corrupt("inconsistent vertical database parts"))?;
        Self::validate_pairing(&meta.cube, &vertical)?;
        let store_region =
            whole.slice(d.store_off, d.store_len).ok_or_else(|| corrupt("store out of bounds"))?;
        Ok(CubeSnapshot {
            cube: meta.cube,
            vertical,
            materialize: meta.materialize,
            atkinson_b: meta.atkinson_b,
            measures: meta.measures,
            maintenance: MaintenanceStore::deferred(store_region, meta.n_items, meta.v_units),
        })
    }

    /// Write the snapshot to a file, atomically: the bytes go to a
    /// same-directory temp file, are fsynced, and are renamed over the
    /// target. A crash, kill, or full disk mid-save therefore never
    /// replaces an existing snapshot with a torn one — the target path
    /// holds either the previous bytes or the complete new ones
    /// (`tests/snapshot_atomic_save.rs` kills a writer mid-save to prove
    /// it). On error the temp file is removed best-effort.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        write_atomic(path, &self.to_bytes())
    }

    /// Load a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| ScubeError::io_at(path.display().to_string(), e))?;
        Self::from_bytes(&bytes)
    }
}

/// FxHash over the whole payload — fast, deterministic, and plenty for
/// detecting truncation and bit rot (this is an integrity check, not an
/// authenticity one).
fn checksum(payload: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = scube_common::hash::FxHasher::default();
    h.write(payload);
    // Fold the length in so a truncated all-zero tail cannot collide.
    h.write_u64(payload.len() as u64);
    h.finish()
}

/// FxHash over two concatenated slices (the v4 `meta_sum`, whose coverage
/// skips the `meta_sum` word itself). Length-folded like [`checksum`].
fn checksum2(a: &[u8], b: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = scube_common::hash::FxHasher::default();
    h.write(a);
    h.write(b);
    h.write_u64((a.len() + b.len()) as u64);
    h.finish()
}

/// Atomic, durable file replacement: write to a unique same-directory temp
/// file, fsync, rename over `path`. The rename is what makes an
/// interrupted save harmless — POSIX guarantees the target names either
/// the old or the new bytes, never a mixture.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let io = |e: std::io::Error| ScubeError::io_at(path.display().to_string(), e);
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let base = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".into());
    let tmp = dir.join(format!(
        ".{base}.{}.{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(io)
}

/// The v4 offset directory, parsed and cross-validated: every region must
/// tile the file exactly (header, directory, meta, posting directory,
/// alignment padding, slots, store — in that order, no gaps, no overlap),
/// so a reader can trust offsets before trusting contents.
struct Directory {
    postdir_off: usize,
    n_postings: usize,
    slots_off: usize,
    store_off: usize,
    store_len: usize,
    meta_sum: u64,
}

impl Directory {
    fn parse(bytes: &[u8]) -> Result<Directory> {
        let mut w = [0u64; DIR_WORDS];
        for (i, word) in w.iter_mut().enumerate() {
            let at = DIR_OFF + 8 * i;
            *word = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        }
        let [meta_off, meta_len, postdir_off, n_postings, slots_off, slots_len, store_off, store_len, meta_sum] =
            w;
        let bad = |msg: &str| corrupt(&format!("directory: {msg}"));
        if meta_off != META_OFF as u64 {
            return Err(bad("bad meta offset"));
        }
        if meta_off.checked_add(meta_len) != Some(postdir_off) {
            return Err(bad("meta region and posting directory disagree"));
        }
        let postdir_end = n_postings
            .checked_mul(POSTDIR_ENTRY as u64)
            .and_then(|l| postdir_off.checked_add(l))
            .ok_or_else(|| bad("posting directory length overflow"))?;
        if postdir_end.checked_next_multiple_of(8) != Some(slots_off) {
            return Err(bad("posting directory and slots disagree"));
        }
        if slots_off.checked_add(slots_len) != Some(store_off) {
            return Err(bad("slots and store disagree"));
        }
        if store_off.checked_add(store_len) != Some(bytes.len() as u64) {
            return Err(bad("regions do not span the file"));
        }
        Ok(Directory {
            postdir_off: postdir_off as usize,
            n_postings: n_postings as usize,
            slots_off: slots_off as usize,
            store_off: store_off as usize,
            store_len: store_len as usize,
            meta_sum,
        })
    }

    /// Entry `i` of the posting directory: absolute slot offset, slot
    /// length, cardinality — with the slot range checked to lie inside the
    /// slots region.
    fn postdir_entry(&self, bytes: &[u8], i: usize) -> Result<(usize, usize, u64)> {
        let at = self.postdir_off + i * POSTDIR_ENTRY;
        let word =
            |k: usize| u64::from_le_bytes(bytes[at + 8 * k..at + 8 * k + 8].try_into().expect("8"));
        let (off, len, card) = (word(0), word(1), word(2));
        let end = off.checked_add(len).ok_or_else(|| corrupt("posting slot overflow"))?;
        if off < self.slots_off as u64 || end > self.store_off as u64 {
            return Err(corrupt("posting slot outside the slots region"));
        }
        Ok((off as usize, len as usize, card))
    }
}

/// The decoded v4/v5 meta region — everything but postings and the
/// maintenance store.
struct MetaParts {
    materialize: Materialize,
    atkinson_b: f64,
    measures: MeasureSet,
    cube: SegregationCube,
    n_items: usize,
    n_transactions: u32,
    v_units: u32,
    unit_of: Vec<u32>,
}

/// Decode the v4/v5 meta region (exactly; trailing bytes are an error).
/// v4 carries no measure-set byte (the set is implicitly full) and stores
/// every cell's six tagged-optional values inline; v5 adds the measure
/// byte after the Atkinson parameter and moves the per-cell values into
/// columnar fixed-width tables, one per selected measure.
fn decode_meta(bytes: &[u8], version: u32) -> Result<MetaParts> {
    let mut r = Reader { bytes, pos: 0 };

    // Build configuration.
    let materialize = match r.u8()? {
        0 => Materialize::AllFrequent,
        1 => Materialize::ClosedOnly,
        t => return Err(corrupt(&format!("unknown materialization tag {t}"))),
    };
    let atkinson_b = f64::from_bits(r.u64()?);
    if !atkinson_b.is_finite() {
        return Err(corrupt("non-finite Atkinson parameter"));
    }
    let measures = if version >= VERSION_5 {
        let bits = r.u8()?;
        let set = MeasureSet::from_bits(bits)
            .ok_or_else(|| corrupt(&format!("invalid measure-set byte {bits:#04x}")))?;
        if set.is_full() {
            // Canonical form: a full set is always written as v4.
            return Err(corrupt("v5 snapshot declares the full measure set (must be v4)"));
        }
        set
    } else {
        MeasureSet::FULL
    };

    // Labels.
    let n_items = r.u32()? as usize;
    let mut items = Vec::with_capacity(n_items.min(PREALLOC_CAP));
    for _ in 0..n_items {
        let attr = r.str()?;
        let value = r.str()?;
        let is_sa = r.u8()? != 0;
        items.push((attr, value, is_sa));
    }
    let labels = CubeLabels {
        items,
        sa_attrs: r.str_list()?,
        ca_attrs: r.str_list()?,
        unit_names: r.str_list()?,
    };

    // Cube metadata and cells.
    let n_units = r.u32()?;
    let min_support = r.u64()?;
    let n_cells = r.u32()? as usize;
    let mut cells: FxHashMap<CellCoords, IndexValues> =
        scube_common::hash::fx_map_with_capacity(n_cells.min(PREALLOC_CAP));
    if measures.is_full() {
        for _ in 0..n_cells {
            let sa = r.ids(n_items)?;
            let ca = r.ids(n_items)?;
            let values = r.values()?;
            if cells.insert(CellCoords { sa, ca }, values).is_some() {
                return Err(corrupt("duplicate cell coordinates"));
            }
        }
    } else {
        // v5: coordinates and counts first, in canonical cell order, then
        // one fixed-width value column per selected measure.
        let mut order = Vec::with_capacity(n_cells.min(PREALLOC_CAP));
        for _ in 0..n_cells {
            let sa = r.ids(n_items)?;
            let ca = r.ids(n_items)?;
            let values = IndexValues {
                minority: r.u64()?,
                total: r.u64()?,
                num_units: r.u32()?,
                ..IndexValues::default()
            };
            order.push((CellCoords { sa, ca }, values));
        }
        for index in measures.iter() {
            for (_, values) in order.iter_mut() {
                values.set(index, r.f64_slot()?);
            }
        }
        for (coords, values) in order {
            if cells.insert(coords, values).is_some() {
                return Err(corrupt("duplicate cell coordinates"));
            }
        }
    }
    let cube = SegregationCube::new(cells, labels, n_units, min_support);

    // Transaction space and tid → unit map.
    let n_transactions = r.u32()?;
    let v_units = r.u32()?;
    let mut unit_of = Vec::with_capacity((n_transactions as usize).min(PREALLOC_CAP));
    for _ in 0..n_transactions {
        unit_of.push(r.u32()?);
    }
    if r.pos != r.bytes.len() {
        return Err(corrupt("trailing bytes in the meta region"));
    }
    Ok(MetaParts {
        materialize,
        atkinson_b,
        measures,
        cube,
        n_items,
        n_transactions,
        v_units,
        unit_of,
    })
}

/// Encode the maintenance store: context totals then cell minorities, in
/// canonical key order so serialization stays path-independent — an
/// updated snapshot and a rebuilt one produce identical bytes. This is
/// both the v4 store region and the tail of the v2/v3 payload.
///
/// A partially-decoded mapped store stays canonical without decoding the
/// rest: still-lazy entries splice their histogram bytes verbatim out of
/// the mapped region (they came from this writer, so the bytes *are* the
/// canonical encoding), interleaved with re-encoded decoded entries in
/// one sorted key order. An untouched region skips even the merge and is
/// spliced whole.
/// A store key paired with `Some(byte range)` when it lives undecoded in
/// the lazy region, `None` when it was decoded (and possibly mutated).
type KeyedRanges<'a, K> = Vec<(&'a K, Option<(usize, usize)>)>;

fn encode_store(store: &MaintenanceStore, out: &mut Vec<u8>) {
    if let Some(lazy) = &store.lazy {
        if !lazy.indexed {
            debug_assert!(store.contexts.is_empty() && store.minorities.is_empty());
            out.extend_from_slice(lazy.region.as_slice());
            return;
        }
    }
    let lazy_bytes = store.lazy.as_ref().map(|l| l.region.as_slice());
    let splice = |out: &mut Vec<u8>, range: (usize, usize)| {
        out.extend_from_slice(
            &lazy_bytes.expect("lazy range implies lazy region")[range.0..range.1],
        );
    };

    let mut ctx_keys: KeyedRanges<Vec<ItemId>> = store.contexts.keys().map(|k| (k, None)).collect();
    if let Some(lazy) = &store.lazy {
        ctx_keys.extend(lazy.ctx_ranges.iter().map(|(k, &r)| (k, Some(r))));
    }
    ctx_keys.sort_unstable_by(|a, b| a.0.cmp(b.0));
    put_u32(out, ctx_keys.len() as u32);
    for (key, range) in ctx_keys {
        put_ids(out, key);
        match range {
            None => put_pairs(out, &store.contexts[key]),
            Some(r) => splice(out, r),
        }
    }

    let mut cell_keys: KeyedRanges<CellCoords> =
        store.minorities.keys().map(|k| (k, None)).collect();
    if let Some(lazy) = &store.lazy {
        cell_keys.extend(lazy.min_ranges.iter().map(|(k, &r)| (k, Some(r))));
    }
    cell_keys.sort_unstable_by(|a, b| a.0.cmp(b.0));
    put_u32(out, cell_keys.len() as u32);
    for (coords, range) in cell_keys {
        put_ids(out, &coords.sa);
        put_ids(out, &coords.ca);
        match range {
            None => put_pairs(out, &store.minorities[coords]),
            Some(r) => splice(out, r),
        }
    }
}

/// Decode a maintenance store from `r` (same validation whatever the
/// enclosing version: sorted keys' structure, unit range, nonzero counts).
fn decode_store(r: &mut Reader<'_>, n_items: usize, v_units: u32) -> Result<MaintenanceStore> {
    let mut store = MaintenanceStore::default();
    let n_contexts = r.u32()? as usize;
    for _ in 0..n_contexts {
        let key = r.ids(n_items)?;
        let pairs = r.pairs(v_units)?;
        if store.contexts.insert(key, pairs).is_some() {
            return Err(corrupt("duplicate maintenance context"));
        }
    }
    let n_minorities = r.u32()? as usize;
    for _ in 0..n_minorities {
        let sa = r.ids(n_items)?;
        let ca = r.ids(n_items)?;
        let pairs = r.pairs(v_units)?;
        if store.minorities.insert(CellCoords { sa, ca }, pairs).is_some() {
            return Err(corrupt("duplicate maintenance cell"));
        }
    }
    Ok(store)
}

fn corrupt(msg: &str) -> ScubeError {
    ScubeError::Inconsistent(format!("snapshot: {msg}"))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_str_list(out: &mut Vec<u8>, list: &[String]) {
    put_u32(out, list.len() as u32);
    for s in list {
        put_str(out, s);
    }
}

fn put_ids(out: &mut Vec<u8>, ids: &[ItemId]) {
    put_u32(out, ids.len() as u32);
    for &id in ids {
        put_u32(out, id);
    }
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[(u32, u64)]) {
    put_u32(out, pairs.len() as u32);
    for &(unit, count) in pairs {
        put_u32(out, unit);
        put_u64(out, count);
    }
}

fn put_f64_opt(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        None => out.push(0),
    }
}

/// Fixed-width (9-byte) optional value for the v5 columnar tables:
/// presence byte then the f64 bits, zero bits when absent. Fixed width
/// keeps every column the same length, so a value can be located by
/// `column_base + 9 * cell_index` without scanning.
fn put_f64_slot(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        None => {
            out.push(0);
            out.extend_from_slice(&[0u8; 8]);
        }
    }
}

fn put_values(out: &mut Vec<u8>, v: &IndexValues) {
    put_f64_opt(out, v.dissimilarity);
    put_f64_opt(out, v.gini);
    put_f64_opt(out, v.information);
    put_f64_opt(out, v.isolation);
    put_f64_opt(out, v.interaction);
    put_f64_opt(out, v.atkinson);
    put_u64(out, v.minority);
    put_u64(out, v.total);
    put_u32(out, v.num_units);
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| corrupt("length overflow"))?;
        let s = self.bytes.get(self.pos..end).ok_or_else(|| corrupt("unexpected end of data"))?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid UTF-8 in string"))
    }

    fn str_list(&mut self) -> Result<Vec<String>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }

    /// A sorted id list whose entries must reference known items.
    fn ids(&mut self, n_items: usize) -> Result<Vec<ItemId>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        let mut prev: Option<ItemId> = None;
        for _ in 0..n {
            let id = self.u32()?;
            if id as usize >= n_items {
                return Err(corrupt("cell coordinate references an unknown item"));
            }
            if prev.is_some_and(|p| id <= p) {
                return Err(corrupt("cell coordinates not strictly increasing"));
            }
            prev = Some(id);
            out.push(id);
        }
        Ok(out)
    }

    /// Skip an ascending-pairs blob without decoding it, returning its
    /// byte range (count prefix included) within the reader's buffer —
    /// the structural half of [`Self::pairs`], used by the lazy store's
    /// index scan.
    fn skip_pairs(&mut self) -> Result<(usize, usize)> {
        let start = self.pos;
        let n = self.u32()? as usize;
        let len = n.checked_mul(12).ok_or_else(|| corrupt("length overflow"))?;
        self.take(len)?;
        Ok((start, self.pos))
    }

    /// Ascending `(unit, count)` pairs over known units, counts nonzero.
    fn pairs(&mut self, n_units: u32) -> Result<Vec<(u32, u64)>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let unit = self.u32()?;
            let count = self.u64()?;
            if unit >= n_units {
                return Err(corrupt("histogram references an unknown unit"));
            }
            if prev.is_some_and(|p| unit <= p) {
                return Err(corrupt("histogram units not strictly increasing"));
            }
            if count == 0 {
                return Err(corrupt("histogram stores a zero count"));
            }
            prev = Some(unit);
            out.push((unit, count));
        }
        Ok(out)
    }

    fn f64_opt(&mut self) -> Result<Option<f64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f64::from_bits(self.u64()?))),
            _ => Err(corrupt("bad optional-value tag")),
        }
    }

    /// Fixed-width counterpart of [`Self::f64_opt`] for the v5 columnar
    /// value tables. An absent slot must carry zero payload bits so the
    /// encoding stays canonical (one byte pattern per logical value).
    fn f64_slot(&mut self) -> Result<Option<f64>> {
        let tag = self.u8()?;
        let bits = self.u64()?;
        match tag {
            0 if bits == 0 => Ok(None),
            0 => Err(corrupt("absent value slot with nonzero payload")),
            1 => Ok(Some(f64::from_bits(bits))),
            _ => Err(corrupt("bad value-slot tag")),
        }
    }

    fn values(&mut self) -> Result<IndexValues> {
        Ok(IndexValues {
            dissimilarity: self.f64_opt()?,
            gini: self.f64_opt()?,
            information: self.f64_opt()?,
            isolation: self.f64_opt()?,
            interaction: self.f64_opt()?,
            atkinson: self.f64_opt()?,
            minority: self.u64()?,
            total: self.u64()?,
            num_units: self.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Materialize;
    use scube_bitmap::{DenseBitmap, TidVec};
    use scube_data::{Attribute, Schema, TransactionDbBuilder};

    fn db() -> TransactionDb {
        let schema =
            Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
                .unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        let rows = [
            ("F", "young", "north", "u0"),
            ("F", "young", "north", "u0"),
            ("M", "old", "north", "u0"),
            ("F", "old", "south", "u1"),
            ("M", "young", "south", "u1"),
            ("M", "old", "south", "u1"),
            ("F", "young", "south", "u0"),
            ("M", "young", "north", "u1"),
        ];
        for (s, a, r, u) in rows {
            b.add_row(&[vec![s], vec![a], vec![r]], u).unwrap();
        }
        b.finish()
    }

    fn roundtrip<P: Posting + Send + Sync + PartialEq + std::fmt::Debug>() {
        let db = db();
        let snap: CubeSnapshot<P> =
            CubeSnapshot::from_db(&db, &CubeBuilder::new().materialize(Materialize::ClosedOnly))
                .unwrap();
        let bytes = snap.to_bytes();
        let loaded = CubeSnapshot::<P>::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.cube(), snap.cube());
        assert_eq!(loaded.vertical().units(), snap.vertical().units());
        assert_eq!(loaded.vertical().postings(), snap.vertical().postings());
        // Canonical: saving the loaded snapshot reproduces the same bytes.
        assert_eq!(loaded.to_bytes(), bytes);
    }

    #[test]
    fn roundtrip_all_representations() {
        roundtrip::<EwahBitmap>();
        roundtrip::<DenseBitmap>();
        roundtrip::<TidVec>();
    }

    #[test]
    fn file_roundtrip() {
        let db = db();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
        let path = std::env::temp_dir().join("scube_snapshot_file_roundtrip.scube");
        snap.save(&path).unwrap();
        let loaded: CubeSnapshot = CubeSnapshot::load(&path).unwrap();
        assert_eq!(loaded.cube(), snap.cube());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_update_decodes_only_dirty_store_entries() {
        let db = db();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
        let path =
            std::env::temp_dir().join(format!("scube_lazy_store_{}.scube", std::process::id()));
        snap.save(&path).unwrap();

        // Heap path: load, update, serialize — the reference bytes.
        let mut batch = UpdateBatch::new();
        batch.add_row(&[("sex", "F"), ("age", "young"), ("region", "north")], "u0");
        let mut heap = CubeSnapshot::<EwahBitmap>::load(&path).unwrap();
        heap.apply_update(&batch).unwrap();
        let want = heap.to_bytes();

        // Mapped path: the same batch only touches "north"-side entries,
        // so the "south" contexts and cells must stay undecoded ranges.
        let mut mapped = CubeSnapshot::<EwahBitmap>::open_mmap(&path).unwrap();
        assert!(
            !mapped.maintenance.lazy.as_ref().unwrap().indexed,
            "open stays O(metadata): not even the index scan runs"
        );
        mapped.apply_update(&batch).unwrap();
        let lazy = mapped.maintenance.lazy.as_ref().expect("undirtied entries stay mapped");
        assert!(lazy.indexed);
        assert!(!lazy.ctx_ranges.is_empty(), "delta-clean contexts stay undecoded");
        assert!(!lazy.min_ranges.is_empty(), "delta-clean cells stay undecoded");
        assert!(!mapped.maintenance.contexts.is_empty(), "dirty contexts were decoded and updated");
        // Decoded and lazy key sets partition the store.
        for ca in mapped.maintenance.contexts.keys() {
            assert!(!lazy.ctx_ranges.contains_key(ca), "context {ca:?} both decoded and lazy");
        }
        for coords in mapped.maintenance.minorities.keys() {
            assert!(!lazy.min_ranges.contains_key(coords), "cell both decoded and lazy");
        }
        // The mixed writer (re-encoded dirty entries + verbatim-spliced
        // clean ranges) is still canonical: byte-identical to the heap
        // path's fully-decoded store.
        assert_eq!(mapped.to_bytes(), want, "partially-decoded store serializes canonically");
        assert_eq!(mapped.cube(), heap.cube());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v5_subset_roundtrip_all_representations() {
        use scube_segindex::SegIndex;
        fn check<P: Posting + Send + Sync + PartialEq + std::fmt::Debug>() {
            let db = db();
            let measures = MeasureSet::only(SegIndex::Gini).with(SegIndex::Isolation);
            let snap: CubeSnapshot<P> =
                CubeSnapshot::from_db(&db, &CubeBuilder::new().measures(measures)).unwrap();
            let bytes = snap.to_bytes();
            assert_eq!(&bytes[8..12], &VERSION_5.to_le_bytes(), "subset builds persist as v5");
            let loaded = CubeSnapshot::<P>::from_bytes(&bytes).unwrap();
            assert_eq!(loaded.measures(), measures);
            assert_eq!(loaded.cube(), snap.cube());
            assert_eq!(loaded.vertical().postings(), snap.vertical().postings());
            // Canonical: resaving reproduces identical bytes.
            assert_eq!(loaded.to_bytes(), bytes);
            // Unselected measures are absent in every cell.
            for (_, v) in loaded.cube().cells() {
                assert!(v.dissimilarity.is_none() && v.information.is_none());
                assert!(v.interaction.is_none() && v.atkinson.is_none());
            }
        }
        check::<EwahBitmap>();
        check::<DenseBitmap>();
        check::<TidVec>();
    }

    #[test]
    fn full_measure_set_always_writes_v4() {
        let db = db();
        let snap: CubeSnapshot =
            CubeSnapshot::from_db(&db, &CubeBuilder::new().measures(MeasureSet::FULL)).unwrap();
        let bytes = snap.to_bytes();
        assert_eq!(&bytes[8..12], &VERSION.to_le_bytes());
        let loaded = CubeSnapshot::<EwahBitmap>::from_bytes(&bytes).unwrap();
        assert!(loaded.measures().is_full());
    }

    #[test]
    fn v5_declaring_full_set_is_rejected_as_non_canonical() {
        // Take a real v4 snapshot, stamp version 5 (whose meta would then
        // need a measure byte), and fix the checksums: the reader must
        // reject it — a full suite has exactly one canonical encoding (v4).
        let db = db();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
        let mut bytes = snap.to_bytes();
        bytes[8..12].copy_from_slice(&VERSION_5.to_le_bytes());
        let sum = checksum(&bytes[DIR_OFF..]);
        bytes[13..21].copy_from_slice(&sum.to_le_bytes());
        assert!(CubeSnapshot::<EwahBitmap>::from_bytes(&bytes).is_err());

        // And directly: a v5 meta region declaring the full measure byte.
        let mut meta = Vec::new();
        meta.push(0); // AllFrequent
        put_u64(&mut meta, DEFAULT_ATKINSON_B.to_bits());
        meta.push(MeasureSet::FULL.bits());
        let err = decode_meta(&meta, VERSION_5).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("full measure set"), "{err}");
    }

    #[test]
    fn v5_bad_measure_byte_and_bad_slots_error() {
        // Measure byte 0 (empty) and 0xFF (unknown bits) are both invalid.
        for bits in [0u8, 0xFF] {
            let mut meta = Vec::new();
            meta.push(0);
            put_u64(&mut meta, DEFAULT_ATKINSON_B.to_bits());
            meta.push(bits);
            assert!(decode_meta(&meta, VERSION_5).is_err(), "measure byte {bits:#04x}");
        }
        // An absent value slot must carry zero payload bits.
        let mut r = Reader { bytes: &[0u8, 1, 0, 0, 0, 0, 0, 0, 0], pos: 0 };
        assert!(r.f64_slot().is_err(), "absent slot with nonzero payload");
        let mut r = Reader { bytes: &[2u8, 0, 0, 0, 0, 0, 0, 0, 0], pos: 0 };
        assert!(r.f64_slot().is_err(), "bad slot tag");
    }

    #[test]
    fn rejects_wrong_magic_version_tag() {
        let db = db();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
        let good = snap.to_bytes();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(CubeSnapshot::<EwahBitmap>::from_bytes(&bad).is_err(), "magic");

        let mut bad = good.clone();
        bad[8] = 99;
        assert!(CubeSnapshot::<EwahBitmap>::from_bytes(&bad).is_err(), "version");

        // An EWAH snapshot must not load as TidVec.
        assert!(CubeSnapshot::<TidVec>::from_bytes(&good).is_err(), "tag");
    }

    #[test]
    fn rejects_corruption_and_truncation() {
        let db = db();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
        let good = snap.to_bytes();

        // Flip one payload byte: the checksum must catch it.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        assert!(CubeSnapshot::<EwahBitmap>::from_bytes(&bad).is_err(), "bit flip");

        // Truncations anywhere must error, never panic.
        for cut in [0, 5, HEADER_LEN, HEADER_LEN + 3, good.len() / 2, good.len() - 1] {
            assert!(
                CubeSnapshot::<EwahBitmap>::from_bytes(&good[..cut]).is_err(),
                "truncate at {cut}"
            );
        }
    }

    #[test]
    fn crafted_huge_lengths_error_instead_of_allocating() {
        // A syntactically valid header and checksum around a payload whose
        // length fields promise billions of elements: decoding must return
        // an error (end of data), not attempt the allocation.
        for payload in [
            u32::MAX.to_le_bytes().to_vec(), // n_items = 4 billion
            {
                // Empty labels/cells, then n_transactions = 4 billion.
                let mut p = Vec::new();
                put_u32(&mut p, 0); // items
                put_u32(&mut p, 0); // sa_attrs
                put_u32(&mut p, 0); // ca_attrs
                put_u32(&mut p, 0); // unit_names
                put_u32(&mut p, 0); // n_units
                put_u64(&mut p, 1); // min_support
                put_u32(&mut p, 0); // cells
                put_u32(&mut p, u32::MAX); // n_transactions
                p
            },
        ] {
            // Legacy (v3) framing: a single checksummed payload.
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC);
            bytes.extend_from_slice(&VERSION_3.to_le_bytes());
            bytes.push(EwahBitmap::SERIAL_TAG);
            bytes.extend_from_slice(&checksum(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
            assert!(CubeSnapshot::<EwahBitmap>::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn crafted_v4_directory_errors_instead_of_allocating() {
        // A well-formed v4 header whose directory promises 2^60 postings:
        // parsing must reject the directory (regions cannot tile the
        // file), not attempt the allocation.
        let mut bytes = vec![0u8; META_OFF];
        bytes[..8].copy_from_slice(MAGIC);
        bytes[8..12].copy_from_slice(&VERSION.to_le_bytes());
        bytes[12] = EwahBitmap::SERIAL_TAG;
        let dir: [u64; DIR_WORDS] = [META_OFF as u64, 0, META_OFF as u64, 1 << 60, 0, 0, 0, 0, 0];
        for (i, w) in dir.iter().enumerate() {
            bytes[DIR_OFF + 8 * i..DIR_OFF + 8 * i + 8].copy_from_slice(&w.to_le_bytes());
        }
        let sum = checksum(&bytes[DIR_OFF..]);
        bytes[13..21].copy_from_slice(&sum.to_le_bytes());
        let err = CubeSnapshot::<EwahBitmap>::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("directory"), "{err}");
    }

    #[test]
    fn v4_layout_directory_is_consistent() {
        let db = db();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
        let bytes = snap.to_bytes();
        assert_eq!(&bytes[8..12], &VERSION.to_le_bytes());
        let word = |i: usize| {
            u64::from_le_bytes(bytes[DIR_OFF + 8 * i..DIR_OFF + 8 * i + 8].try_into().unwrap())
        };
        assert_eq!(word(0), META_OFF as u64, "meta_off");
        assert_eq!(word(2), META_OFF as u64 + word(1), "postdir_off");
        assert_eq!(word(3), snap.vertical().num_items() as u64, "n_postings");
        assert_eq!(word(4) % 8, 0, "slots 8-aligned");
        assert_eq!(word(6), word(4) + word(5), "store_off");
        assert_eq!(word(6) + word(7), bytes.len() as u64, "regions span the file");
        // Every posting slot sits 8-aligned inside the slots region.
        let postdir = word(2) as usize;
        for i in 0..word(3) as usize {
            let at = postdir + i * POSTDIR_ENTRY;
            let off = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
            assert_eq!(off % 8, 0, "slot {i} aligned");
            assert!(off >= word(4) && off + len <= word(6), "slot {i} in bounds");
        }
    }

    #[test]
    fn save_is_atomic_over_existing_snapshot() {
        // Make the save fail *after* the target exists (target becomes a
        // directory → rename fails): the original bytes must be untouched
        // and no temp file may linger.
        let db = db();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
        let dir = std::env::temp_dir().join("scube_snapshot_atomic_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.scube");
        snap.save(&path).unwrap();
        let original = std::fs::read(&path).unwrap();
        // A save onto a path whose parent vanished fails cleanly.
        let gone = dir.join("nope").join("snap.scube");
        assert!(snap.save(&gone).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), original, "target untouched");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files cleaned up: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_parts_rejected() {
        let db = db();
        let vertical: VerticalDb = VerticalDb::build(&db);
        let cube = CubeBuilder::new().build(&db).unwrap();
        // A vertical database over different data (one fewer unit).
        let schema = Schema::new(vec![Attribute::sa("sex"), Attribute::ca("region")]).unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        b.add_row(&[vec!["F"], vec!["north"]], "solo").unwrap();
        let other: VerticalDb = VerticalDb::build(&b.finish());
        assert!(CubeSnapshot::new(cube.clone(), other).is_err());
        assert!(CubeSnapshot::new(cube, vertical).is_ok());
    }
}
