//! Versioned binary snapshots of a built cube (`scube-cube::snapshot`).
//!
//! SCube's whole point is *interactive* exploration of a materialized cube,
//! but a cube used to die with the process: every session re-mined and
//! re-built. A [`CubeSnapshot`] persists everything a serving session needs
//! — the [`SegregationCube`] (cells + [`crate::cube::CubeLabels`]) *and* the
//! [`VerticalDb`] postings behind it — so `load` restores both exact lookups
//! and the explorer fallback for non-materialized ⋆-combinations without
//! re-mining anything.
//!
//! ## Format (version 3)
//!
//! All integers are little-endian; strings are `u32` length + UTF-8 bytes.
//!
//! ```text
//! [0..8)    magic  "SCUBESNP"
//! [8..12)   format version (u32, currently 3)
//! [12]      posting representation tag (Posting::SERIAL_TAG)
//! [13..21)  FxHash checksum (u64) of the payload
//! [21..]    payload:
//!   build cfg  materialization tag (u8), Atkinson b (f64)     — since v2
//!   labels     n_items × (attr, value, is_sa), sa_attrs, ca_attrs, unit_names
//!   cube meta  n_units (u32), min_support (u64)
//!   cells      n_cells × (sa ids, ca ids, IndexValues)   — sorted by (sa, ca)
//!   vertical   n_transactions, n_units, tid → unit map, item postings
//!   store      context totals + cell minorities            — since v2
//! ```
//!
//! Version 2 prepended the **build configuration** (materialization
//! strategy and Atkinson shape parameter) and the maintenance store to the
//! payload, which is what lets `scube update` fold an
//! [`crate::update::UpdateBatch`] into a loaded snapshot and re-evaluate
//! dirty cells with exactly the parameters the cube was built with.
//! Version 3 keeps the identical layout and marks the retraction-capable
//! maintenance era: a v3 file may have been produced by demoting updates
//! (cells evicted, dictionary entries dropped and renumbered), states no
//! pre-v3 reader was ever exercised against — the bump makes old readers
//! reject such files up front instead of trusting untested invariants.
//! Version-1 and version-2 files still load (the writer only emits v3);
//! v1 build configuration defaults to `AllFrequent` /
//! [`DEFAULT_ATKINSON_B`], the builder defaults. Unknown versions error —
//! never panic (`tests/snapshot_compat.rs`).
//!
//! Cells are written in sorted coordinate order and postings in item order,
//! so serialization is *canonical*: saving, loading, and saving again
//! reproduces identical bytes (property-tested in
//! `tests/snapshot_roundtrip.rs`). The checksum rejects bit rot and
//! truncation before any value is trusted; posting payloads are validated
//! structurally on top of that (see [`Posting::read_bytes`]).

use std::path::Path;

use scube_bitmap::{EwahBitmap, Posting};
use scube_common::{FxHashMap, Result, ScubeError};
use scube_data::{ItemId, TransactionDb, VerticalDb};
use scube_segindex::{IndexValues, DEFAULT_ATKINSON_B};

use crate::builder::{CubeBuilder, Materialize};
use crate::coords::CellCoords;
use crate::cube::{CubeLabels, SegregationCube};
use crate::update::{MaintenanceStore, UpdateBatch, UpdateOutcome, UpdateStats};

const MAGIC: &[u8; 8] = b"SCUBESNP";
const VERSION: u32 = 3;
const VERSION_2: u32 = 2;
const VERSION_1: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 1 + 8;
/// Ceiling on length-field-driven preallocations while decoding: the
/// checksum is not cryptographic, so a crafted file could otherwise declare
/// a 4-billion-element vector and abort the process on allocation instead
/// of returning a decode error. Vectors still grow to any genuine size.
const PREALLOC_CAP: usize = 1 << 16;

/// A persistable pairing of a built cube with the vertical database it was
/// built from — everything the query engine needs to serve both
/// materialized and non-materialized cells.
#[derive(Debug, Clone)]
pub struct CubeSnapshot<P: Posting = EwahBitmap> {
    cube: SegregationCube,
    vertical: VerticalDb<P>,
    /// Materialization strategy the cube was built with — recorded so an
    /// [`UpdateBatch`] can decide whether promoted itemsets need a
    /// closedness check.
    materialize: Materialize,
    /// Atkinson shape parameter the cube was built with — recorded so
    /// re-evaluated dirty cells reproduce the original floats bit for bit.
    atkinson_b: f64,
    /// The integer per-unit histograms behind every cell value, kept so
    /// updates fold deltas in instead of re-deriving from full postings.
    maintenance: MaintenanceStore,
}

impl<P: Posting> CubeSnapshot<P> {
    /// Pair a cube with its vertical database.
    ///
    /// Fails when the two disagree on shape (unit count, item count): a
    /// mismatched pairing would serve materialized lookups from one dataset
    /// and explorer fallbacks from another.
    pub fn new(cube: SegregationCube, vertical: VerticalDb<P>) -> Result<Self> {
        Self::validate_pairing(&cube, &vertical)?;
        let maintenance = MaintenanceStore::compute(&cube, &vertical);
        Ok(CubeSnapshot {
            cube,
            vertical,
            materialize: Materialize::default(),
            atkinson_b: DEFAULT_ATKINSON_B,
            maintenance,
        })
    }

    /// The shape checks behind [`Self::new`], shared with the
    /// deserializer (which carries its own, already-validated store).
    fn validate_pairing(cube: &SegregationCube, vertical: &VerticalDb<P>) -> Result<()> {
        if cube.num_units() != vertical.num_units() {
            return Err(ScubeError::Inconsistent(format!(
                "snapshot: cube has {} units but vertical database has {}",
                cube.num_units(),
                vertical.num_units()
            )));
        }
        if cube.labels().num_items() != vertical.num_items() {
            return Err(ScubeError::Inconsistent(format!(
                "snapshot: cube labels {} items but vertical database has {}",
                cube.labels().num_items(),
                vertical.num_items()
            )));
        }
        if cube.labels().unit_names.len() != cube.num_units() as usize {
            return Err(ScubeError::Inconsistent(format!(
                "snapshot: {} unit names for {} units",
                cube.labels().unit_names.len(),
                cube.num_units()
            )));
        }
        Ok(())
    }

    /// Record the build configuration (materialization strategy and
    /// Atkinson parameter) the cube was built with. [`Self::from_db`] does
    /// this automatically; use it when pairing a cube and vertical database
    /// by hand so later [`Self::apply_update`] calls maintain the cube
    /// under the same parameters.
    pub fn with_build_config(mut self, materialize: Materialize, atkinson_b: f64) -> Self {
        self.materialize = materialize;
        self.atkinson_b = atkinson_b;
        self
    }

    /// Build both halves from a transaction database in one pass: the
    /// vertical database is constructed once and shared with the builder,
    /// and the builder's configuration is recorded for later updates.
    pub fn from_db(db: &TransactionDb, builder: &CubeBuilder) -> Result<Self>
    where
        P: Send + Sync,
    {
        let vertical: VerticalDb<P> = VerticalDb::build(db);
        let cube = builder.build_from_vertical(db, &vertical)?;
        Ok(CubeSnapshot::new(cube, vertical)?
            .with_build_config(builder.config().materialize, builder.config().atkinson_b))
    }

    /// Fold a batch of appended rows and retractions into the snapshot in
    /// place: postings extended at their tails (or shrunk), newly-frequent
    /// itemsets promoted, below-threshold or no-longer-closed cells
    /// demoted, and exactly the dirty cells re-evaluated under the
    /// recorded build configuration — bit-identical to a full rebuild on
    /// the edited data for single-valued-per-row attributes; see
    /// [`UpdateBatch`] for the narrow multi-valued dictionary-order caveat
    /// (cell values are exact in every case) and [`crate::update`] for the
    /// machinery.
    ///
    /// ```
    /// use scube_cube::{CubeBuilder, CubeSnapshot, UpdateBatch};
    /// use scube_data::{Attribute, Schema, TransactionDbBuilder};
    ///
    /// let schema = Schema::new(vec![Attribute::sa("sex"), Attribute::ca("region")])?;
    /// let mut b = TransactionDbBuilder::new(schema);
    /// for (sex, unit) in [("F", "u0"), ("F", "u0"), ("M", "u1")] {
    ///     b.add_row(&[vec![sex], vec!["north"]], unit)?;
    /// }
    /// let mut snap: CubeSnapshot = CubeSnapshot::from_db(&b.finish(), &CubeBuilder::new())?;
    /// assert_eq!(snap.cube().get_by_names(&[("sex", "F")], &[]).unwrap().total, 3);
    ///
    /// // A new individual arrives — in a brand-new unit.
    /// let mut batch = UpdateBatch::new();
    /// batch.add_row(&[("sex", "F"), ("region", "north")], "u2");
    /// let stats = snap.apply_update(&batch)?;
    /// assert_eq!((stats.rows_added, stats.new_units), (1, 1));
    /// let women = snap.cube().get_by_names(&[("sex", "F")], &[]).unwrap();
    /// assert_eq!((women.minority, women.total), (3, 4));
    /// # Ok::<(), scube_common::ScubeError>(())
    /// ```
    pub fn apply_update(&mut self, batch: &UpdateBatch) -> Result<UpdateStats>
    where
        P: Send + Sync,
    {
        self.apply_update_threads(batch, 1)
    }

    /// As [`Self::apply_update`], fanning dirty-cell re-evaluation over up
    /// to `threads` scoped worker threads (per-worker scratches,
    /// deterministic results — the parallel update is bit-identical to the
    /// serial one, property-tested in `tests/cube_update_equivalence.rs`).
    pub fn apply_update_threads(
        &mut self,
        batch: &UpdateBatch,
        threads: usize,
    ) -> Result<UpdateStats>
    where
        P: Send + Sync,
    {
        Ok(self.apply_update_outcome(batch, threads)?.stats)
    }

    /// As [`Self::apply_update_threads`], also returning the dirtiness
    /// probe the serving layers use to invalidate exactly the affected
    /// cache entries.
    pub(crate) fn apply_update_outcome(
        &mut self,
        batch: &UpdateBatch,
        threads: usize,
    ) -> Result<UpdateOutcome<P>>
    where
        P: Send + Sync,
    {
        crate::update::apply_update(
            &mut self.cube,
            &mut self.vertical,
            &mut self.maintenance,
            batch,
            self.materialize,
            self.atkinson_b,
            threads,
        )
    }

    /// Serving-layer constructor parts: both halves plus the build
    /// configuration and maintenance store (the concurrent engine keeps
    /// the store so [`crate::serve::ConcurrentCubeEngine::apply_update`]
    /// folds deltas at the same cost as the snapshot path).
    pub(crate) fn into_serving_parts(
        self,
    ) -> (SegregationCube, VerticalDb<P>, MaintenanceStore, Materialize, f64) {
        (self.cube, self.vertical, self.maintenance, self.materialize, self.atkinson_b)
    }

    /// The materialization strategy the cube was built with (recorded in
    /// snapshot format v2; `AllFrequent` for loaded v1 files).
    pub fn materialize(&self) -> Materialize {
        self.materialize
    }

    /// The Atkinson shape parameter the cube was built with (recorded in
    /// snapshot format v2; the default for loaded v1 files).
    pub fn atkinson_b(&self) -> f64 {
        self.atkinson_b
    }

    /// The materialized cube.
    pub fn cube(&self) -> &SegregationCube {
        &self.cube
    }

    /// The vertical database (item postings + tid → unit map).
    pub fn vertical(&self) -> &VerticalDb<P> {
        &self.vertical
    }

    /// Take ownership of both halves.
    pub fn into_parts(self) -> (SegregationCube, VerticalDb<P>) {
        (self.cube, self.vertical)
    }

    /// Serialize into the version-2 binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        let labels = self.cube.labels();

        // Build configuration (v2).
        payload.push(match self.materialize {
            Materialize::AllFrequent => 0,
            Materialize::ClosedOnly => 1,
        });
        put_u64(&mut payload, self.atkinson_b.to_bits());

        // Labels.
        put_u32(&mut payload, labels.num_items() as u32);
        for item in 0..labels.num_items() as ItemId {
            put_str(&mut payload, labels.attr_of(item));
            put_str(&mut payload, labels.value_of(item));
            payload.push(labels.is_sa_item(item) as u8);
        }
        put_str_list(&mut payload, &labels.sa_attrs);
        put_str_list(&mut payload, &labels.ca_attrs);
        put_str_list(&mut payload, &labels.unit_names);

        // Cube metadata.
        put_u32(&mut payload, self.cube.num_units());
        put_u64(&mut payload, self.cube.min_support());

        // Cells in canonical (sa, ca) order.
        let mut cells: Vec<(&CellCoords, &IndexValues)> = self.cube.cells().collect();
        cells.sort_by(|a, b| a.0.cmp(b.0));
        put_u32(&mut payload, cells.len() as u32);
        for (coords, values) in cells {
            put_ids(&mut payload, &coords.sa);
            put_ids(&mut payload, &coords.ca);
            put_values(&mut payload, values);
        }

        // Vertical database.
        put_u32(&mut payload, self.vertical.num_transactions());
        put_u32(&mut payload, self.vertical.num_units());
        for &u in self.vertical.units() {
            put_u32(&mut payload, u);
        }
        put_u32(&mut payload, self.vertical.num_items() as u32);
        for posting in self.vertical.postings() {
            posting.write_bytes(&mut payload);
        }

        // Maintenance store (v2): context totals then cell minorities, in
        // canonical key order so serialization stays path-independent —
        // an updated snapshot and a rebuilt one produce identical bytes.
        let mut ctx_keys: Vec<&Vec<ItemId>> = self.maintenance.contexts.keys().collect();
        ctx_keys.sort();
        put_u32(&mut payload, ctx_keys.len() as u32);
        for key in ctx_keys {
            put_ids(&mut payload, key);
            put_pairs(&mut payload, &self.maintenance.contexts[key]);
        }
        let mut cell_keys: Vec<&CellCoords> = self.maintenance.minorities.keys().collect();
        cell_keys.sort();
        put_u32(&mut payload, cell_keys.len() as u32);
        for coords in cell_keys {
            put_ids(&mut payload, &coords.sa);
            put_ids(&mut payload, &coords.ca);
            put_pairs(&mut payload, &self.maintenance.minorities[coords]);
        }

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(P::SERIAL_TAG);
        out.extend_from_slice(&checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Deserialize a snapshot, verifying magic, version, representation
    /// tag, and checksum before trusting any field. Both the current v2
    /// format and legacy v1 files (no build-configuration section) load;
    /// any other version is an error, never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < HEADER_LEN {
            return Err(corrupt("shorter than the fixed header"));
        }
        if &bytes[..8] != MAGIC {
            return Err(corrupt("bad magic (not a scube snapshot)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION && version != VERSION_2 && version != VERSION_1 {
            return Err(corrupt(&format!(
                "unsupported format version {version} (want {VERSION_1}..={VERSION})"
            )));
        }
        let tag = bytes[12];
        if tag != P::SERIAL_TAG {
            return Err(corrupt(&format!(
                "posting representation tag {tag} does not match the requested \
                 representation (tag {})",
                P::SERIAL_TAG
            )));
        }
        let stored_sum = u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if checksum(payload) != stored_sum {
            return Err(corrupt("checksum mismatch (truncated or corrupted payload)"));
        }

        let mut r = Reader { bytes: payload, pos: 0 };

        // Build configuration (since v2; v1 predates it and gets the
        // builder defaults).
        let (materialize, atkinson_b) = if version >= VERSION_2 {
            let materialize = match r.u8()? {
                0 => Materialize::AllFrequent,
                1 => Materialize::ClosedOnly,
                t => return Err(corrupt(&format!("unknown materialization tag {t}"))),
            };
            let b = f64::from_bits(r.u64()?);
            if !b.is_finite() {
                return Err(corrupt("non-finite Atkinson parameter"));
            }
            (materialize, b)
        } else {
            (Materialize::default(), DEFAULT_ATKINSON_B)
        };

        // Labels. Like every length below, the declared count only seeds a
        // *capped* preallocation: a crafted length cannot force a huge
        // up-front allocation — the loop hits end-of-data first.
        let n_items = r.u32()? as usize;
        let mut items = Vec::with_capacity(n_items.min(PREALLOC_CAP));
        for _ in 0..n_items {
            let attr = r.str()?;
            let value = r.str()?;
            let is_sa = r.u8()? != 0;
            items.push((attr, value, is_sa));
        }
        let labels = CubeLabels {
            items,
            sa_attrs: r.str_list()?,
            ca_attrs: r.str_list()?,
            unit_names: r.str_list()?,
        };

        // Cube metadata.
        let n_units = r.u32()?;
        let min_support = r.u64()?;

        // Cells.
        let n_cells = r.u32()? as usize;
        let mut cells: FxHashMap<CellCoords, IndexValues> =
            scube_common::hash::fx_map_with_capacity(n_cells.min(PREALLOC_CAP));
        for _ in 0..n_cells {
            let sa = r.ids(n_items)?;
            let ca = r.ids(n_items)?;
            let values = r.values()?;
            if cells.insert(CellCoords { sa, ca }, values).is_some() {
                return Err(corrupt("duplicate cell coordinates"));
            }
        }
        let cube = SegregationCube::new(cells, labels, n_units, min_support);

        // Vertical database.
        let n_transactions = r.u32()?;
        let v_units = r.u32()?;
        let mut unit_of = Vec::with_capacity((n_transactions as usize).min(PREALLOC_CAP));
        for _ in 0..n_transactions {
            unit_of.push(r.u32()?);
        }
        let n_postings = r.u32()? as usize;
        if n_postings != n_items {
            return Err(corrupt("posting count does not match item count"));
        }
        let mut postings = Vec::with_capacity(n_postings.min(PREALLOC_CAP));
        for _ in 0..n_postings {
            let (posting, consumed) = P::read_bytes(&r.bytes[r.pos..])
                .ok_or_else(|| corrupt("malformed posting payload"))?;
            r.pos += consumed;
            postings.push(posting);
        }

        // Maintenance store: stored since v2, reconstructed for v1 files.
        let maintenance = if version >= VERSION_2 {
            let mut store = MaintenanceStore::default();
            let n_contexts = r.u32()? as usize;
            for _ in 0..n_contexts {
                let key = r.ids(n_items)?;
                let pairs = r.pairs(v_units)?;
                if store.contexts.insert(key, pairs).is_some() {
                    return Err(corrupt("duplicate maintenance context"));
                }
            }
            let n_minorities = r.u32()? as usize;
            for _ in 0..n_minorities {
                let sa = r.ids(n_items)?;
                let ca = r.ids(n_items)?;
                let pairs = r.pairs(v_units)?;
                if store.minorities.insert(CellCoords { sa, ca }, pairs).is_some() {
                    return Err(corrupt("duplicate maintenance cell"));
                }
            }
            Some(store)
        } else {
            None
        };
        if r.pos != r.bytes.len() {
            return Err(corrupt("trailing bytes after the payload"));
        }
        let vertical = VerticalDb::from_parts(postings, n_transactions, unit_of, v_units)
            .ok_or_else(|| corrupt("inconsistent vertical database parts"))?;

        Self::validate_pairing(&cube, &vertical)?;
        let maintenance = match maintenance {
            Some(store) => {
                if !store.covers(&cube) {
                    return Err(corrupt("maintenance store does not cover the cube"));
                }
                store
            }
            None => MaintenanceStore::compute(&cube, &vertical),
        };
        Ok(CubeSnapshot { cube, vertical, materialize, atkinson_b, maintenance })
    }

    /// Write the snapshot to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes())
            .map_err(|e| ScubeError::io_at(path.display().to_string(), e))
    }

    /// Load a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| ScubeError::io_at(path.display().to_string(), e))?;
        Self::from_bytes(&bytes)
    }
}

/// FxHash over the whole payload — fast, deterministic, and plenty for
/// detecting truncation and bit rot (this is an integrity check, not an
/// authenticity one).
fn checksum(payload: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = scube_common::hash::FxHasher::default();
    h.write(payload);
    // Fold the length in so a truncated all-zero tail cannot collide.
    h.write_u64(payload.len() as u64);
    h.finish()
}

fn corrupt(msg: &str) -> ScubeError {
    ScubeError::Inconsistent(format!("snapshot: {msg}"))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_str_list(out: &mut Vec<u8>, list: &[String]) {
    put_u32(out, list.len() as u32);
    for s in list {
        put_str(out, s);
    }
}

fn put_ids(out: &mut Vec<u8>, ids: &[ItemId]) {
    put_u32(out, ids.len() as u32);
    for &id in ids {
        put_u32(out, id);
    }
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[(u32, u64)]) {
    put_u32(out, pairs.len() as u32);
    for &(unit, count) in pairs {
        put_u32(out, unit);
        put_u64(out, count);
    }
}

fn put_f64_opt(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        None => out.push(0),
    }
}

fn put_values(out: &mut Vec<u8>, v: &IndexValues) {
    put_f64_opt(out, v.dissimilarity);
    put_f64_opt(out, v.gini);
    put_f64_opt(out, v.information);
    put_f64_opt(out, v.isolation);
    put_f64_opt(out, v.interaction);
    put_f64_opt(out, v.atkinson);
    put_u64(out, v.minority);
    put_u64(out, v.total);
    put_u32(out, v.num_units);
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| corrupt("length overflow"))?;
        let s = self.bytes.get(self.pos..end).ok_or_else(|| corrupt("unexpected end of data"))?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid UTF-8 in string"))
    }

    fn str_list(&mut self) -> Result<Vec<String>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }

    /// A sorted id list whose entries must reference known items.
    fn ids(&mut self, n_items: usize) -> Result<Vec<ItemId>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        let mut prev: Option<ItemId> = None;
        for _ in 0..n {
            let id = self.u32()?;
            if id as usize >= n_items {
                return Err(corrupt("cell coordinate references an unknown item"));
            }
            if prev.is_some_and(|p| id <= p) {
                return Err(corrupt("cell coordinates not strictly increasing"));
            }
            prev = Some(id);
            out.push(id);
        }
        Ok(out)
    }

    /// Ascending `(unit, count)` pairs over known units, counts nonzero.
    fn pairs(&mut self, n_units: u32) -> Result<Vec<(u32, u64)>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(PREALLOC_CAP));
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let unit = self.u32()?;
            let count = self.u64()?;
            if unit >= n_units {
                return Err(corrupt("histogram references an unknown unit"));
            }
            if prev.is_some_and(|p| unit <= p) {
                return Err(corrupt("histogram units not strictly increasing"));
            }
            if count == 0 {
                return Err(corrupt("histogram stores a zero count"));
            }
            prev = Some(unit);
            out.push((unit, count));
        }
        Ok(out)
    }

    fn f64_opt(&mut self) -> Result<Option<f64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f64::from_bits(self.u64()?))),
            _ => Err(corrupt("bad optional-value tag")),
        }
    }

    fn values(&mut self) -> Result<IndexValues> {
        Ok(IndexValues {
            dissimilarity: self.f64_opt()?,
            gini: self.f64_opt()?,
            information: self.f64_opt()?,
            isolation: self.f64_opt()?,
            interaction: self.f64_opt()?,
            atkinson: self.f64_opt()?,
            minority: self.u64()?,
            total: self.u64()?,
            num_units: self.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Materialize;
    use scube_bitmap::{DenseBitmap, TidVec};
    use scube_data::{Attribute, Schema, TransactionDbBuilder};

    fn db() -> TransactionDb {
        let schema =
            Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
                .unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        let rows = [
            ("F", "young", "north", "u0"),
            ("F", "young", "north", "u0"),
            ("M", "old", "north", "u0"),
            ("F", "old", "south", "u1"),
            ("M", "young", "south", "u1"),
            ("M", "old", "south", "u1"),
            ("F", "young", "south", "u0"),
            ("M", "young", "north", "u1"),
        ];
        for (s, a, r, u) in rows {
            b.add_row(&[vec![s], vec![a], vec![r]], u).unwrap();
        }
        b.finish()
    }

    fn roundtrip<P: Posting + Send + Sync + PartialEq + std::fmt::Debug>() {
        let db = db();
        let snap: CubeSnapshot<P> =
            CubeSnapshot::from_db(&db, &CubeBuilder::new().materialize(Materialize::ClosedOnly))
                .unwrap();
        let bytes = snap.to_bytes();
        let loaded = CubeSnapshot::<P>::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.cube(), snap.cube());
        assert_eq!(loaded.vertical().units(), snap.vertical().units());
        assert_eq!(loaded.vertical().postings(), snap.vertical().postings());
        // Canonical: saving the loaded snapshot reproduces the same bytes.
        assert_eq!(loaded.to_bytes(), bytes);
    }

    #[test]
    fn roundtrip_all_representations() {
        roundtrip::<EwahBitmap>();
        roundtrip::<DenseBitmap>();
        roundtrip::<TidVec>();
    }

    #[test]
    fn file_roundtrip() {
        let db = db();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
        let path = std::env::temp_dir().join("scube_snapshot_file_roundtrip.scube");
        snap.save(&path).unwrap();
        let loaded: CubeSnapshot = CubeSnapshot::load(&path).unwrap();
        assert_eq!(loaded.cube(), snap.cube());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic_version_tag() {
        let db = db();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
        let good = snap.to_bytes();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(CubeSnapshot::<EwahBitmap>::from_bytes(&bad).is_err(), "magic");

        let mut bad = good.clone();
        bad[8] = 99;
        assert!(CubeSnapshot::<EwahBitmap>::from_bytes(&bad).is_err(), "version");

        // An EWAH snapshot must not load as TidVec.
        assert!(CubeSnapshot::<TidVec>::from_bytes(&good).is_err(), "tag");
    }

    #[test]
    fn rejects_corruption_and_truncation() {
        let db = db();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
        let good = snap.to_bytes();

        // Flip one payload byte: the checksum must catch it.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        assert!(CubeSnapshot::<EwahBitmap>::from_bytes(&bad).is_err(), "bit flip");

        // Truncations anywhere must error, never panic.
        for cut in [0, 5, HEADER_LEN, HEADER_LEN + 3, good.len() / 2, good.len() - 1] {
            assert!(
                CubeSnapshot::<EwahBitmap>::from_bytes(&good[..cut]).is_err(),
                "truncate at {cut}"
            );
        }
    }

    #[test]
    fn crafted_huge_lengths_error_instead_of_allocating() {
        // A syntactically valid header and checksum around a payload whose
        // length fields promise billions of elements: decoding must return
        // an error (end of data), not attempt the allocation.
        for payload in [
            u32::MAX.to_le_bytes().to_vec(), // n_items = 4 billion
            {
                // Empty labels/cells, then n_transactions = 4 billion.
                let mut p = Vec::new();
                put_u32(&mut p, 0); // items
                put_u32(&mut p, 0); // sa_attrs
                put_u32(&mut p, 0); // ca_attrs
                put_u32(&mut p, 0); // unit_names
                put_u32(&mut p, 0); // n_units
                put_u64(&mut p, 1); // min_support
                put_u32(&mut p, 0); // cells
                put_u32(&mut p, u32::MAX); // n_transactions
                p
            },
        ] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC);
            bytes.extend_from_slice(&VERSION.to_le_bytes());
            bytes.push(EwahBitmap::SERIAL_TAG);
            bytes.extend_from_slice(&checksum(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
            assert!(CubeSnapshot::<EwahBitmap>::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn mismatched_parts_rejected() {
        let db = db();
        let vertical: VerticalDb = VerticalDb::build(&db);
        let cube = CubeBuilder::new().build(&db).unwrap();
        // A vertical database over different data (one fewer unit).
        let schema = Schema::new(vec![Attribute::sa("sex"), Attribute::ca("region")]).unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        b.add_row(&[vec!["F"], vec!["north"]], "solo").unwrap();
        let other: VerticalDb = VerticalDb::build(&b.finish());
        assert!(CubeSnapshot::new(cube.clone(), other).is_err());
        assert!(CubeSnapshot::new(cube, vertical).is_ok());
    }
}
