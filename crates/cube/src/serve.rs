//! Concurrent cube serving: the multi-analyst form of the query engine.
//!
//! [`crate::query::CubeQueryEngine`] is single-writer — `query(&mut self)`
//! funnels every caller through one unsharded LRU — which caps an
//! interactive deployment at one analyst per engine. A
//! [`ConcurrentCubeEngine`] answers the same three bit-identical tiers
//! through `&self`, so one engine serves any number of threads:
//!
//! * **materialized** — the [`SegregationCube`] store is immutable after
//!   construction, so store hits are lock-free hash lookups;
//! * **cached** — the fallback cell cache is split into N shards (shard
//!   chosen by [`CellCoords`] hash), each an independent slab-LRU behind
//!   its own [`SpinLock`]: two threads only contend when their cells land
//!   in the same shard, and critical sections are O(1) probes/inserts —
//!   never recomputation;
//! * **explored** — cold cells are recomputed exactly by a shared
//!   [`CubeExplorer`] through `&self`, with the mutable histogram state
//!   checked out of a pool of reusable [`ExplorerScratch`]es, so steady-
//!   state recomputation allocates nothing per query.
//!
//! Two threads racing on the same cold cell may both recompute it; cell
//! evaluation is pure, so both insert the *same* value and the answer stays
//! bit-identical to the serial engine (property-tested in
//! `tests/concurrent_equivalence.rs`, stress-tested in
//! `tests/concurrent_stress.rs`). Counters are [`AtomicQueryStats`], so no
//! update is lost under contention.

use scube_bitmap::{EwahBitmap, Posting};
use scube_common::{Result, ScubeError, SpinLock};
use scube_data::TransactionDb;
use scube_segindex::{IndexValues, MeasureSet, SegIndex};

use crate::builder::{CubeBuilder, Materialize};
use crate::coords::CellCoords;
use crate::cube::SegregationCube;
use crate::explore::{CubeExplorer, ExplorerScratch};
use crate::query::{
    breakdown_weight, rank_cell_list, rank_cells, resolve_coords, sort_ranked, sorted_dice,
    sorted_slice, AtomicQueryStats, LruCache, QueryStats, RankedCells, BREAKDOWN_TRIPLE_BUDGET,
    DEFAULT_CACHE_CAPACITY,
};
use crate::snapshot::CubeSnapshot;
use crate::update::{MaintenanceStore, UpdateBatch, UpdateStats};

/// Default shard count of the fallback cell cache: enough that a handful of
/// worker threads rarely collide, small enough to be negligible memory.
pub const DEFAULT_SHARDS: usize = 16;

/// One per-unit drill-down: ascending `(unit, minority, total)` triples.
/// Shared, not owned, inside the cache: cloning an `Arc` is O(1), so cache
/// probes and inserts stay O(1) *inside the shard lock* — the big value
/// copy happens outside the critical section.
type Breakdown = std::sync::Arc<[(u32, u64, u64)]>;

/// One lock-guarded shard of an LRU cache.
type Shard<V> = SpinLock<LruCache<CellCoords, V>>;

/// Worker threads one batch call will actually spawn: at least the
/// requested count up to 8× the host's parallelism (floor 8, so concurrency
/// tests exercise real threads even on a 1-CPU host), never more than one
/// per item. A runaway request (`--threads 1000000`) must not translate
/// into thousands of OS threads — `thread::scope` aborts on spawn failure
/// rather than returning an error.
fn clamp_threads(requested: usize, items: usize) -> usize {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    requested.max(1).min((8 * host).max(8)).min(items.max(1))
}

/// Convert a worker-thread join result into an error instead of
/// re-panicking. A long-running serving process must survive one poisoned
/// query: the batch that hit the panic fails with
/// [`ScubeError::Inconsistent`] (carrying the panic message), the engine
/// stays healthy, and the panicked worker's scratch is simply not returned
/// to the pool (the pool regrows on demand).
fn join_worker<T>(joined: std::thread::Result<T>, what: &str) -> Result<T> {
    joined.map_err(|payload| {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            s
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.as_str()
        } else {
            "non-string panic payload"
        };
        ScubeError::Inconsistent(format!("{what} worker panicked: {msg}"))
    })
}

/// A `Sync` serving layer over a cube snapshot: shared-reference point,
/// batch, top-k, slice, dice, and breakdown queries from any number of
/// threads (see the module docs).
///
/// ```
/// use scube_cube::{ConcurrentCubeEngine, CubeBuilder};
/// use scube_data::{Attribute, Schema, TransactionDbBuilder};
///
/// let schema = Schema::new(vec![Attribute::sa("sex"), Attribute::ca("region")])?;
/// let mut b = TransactionDbBuilder::new(schema);
/// for (sex, unit) in [("F", "u0"), ("F", "u1"), ("M", "u0"), ("M", "u1")] {
///     b.add_row(&[vec![sex], vec!["north"]], unit)?;
/// }
/// let db = b.finish();
///
/// let engine: ConcurrentCubeEngine = ConcurrentCubeEngine::from_db(&db, &CubeBuilder::new())?;
/// // `query` takes `&self`: one engine serves any number of threads.
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         let engine = &engine;
///         scope.spawn(move || {
///             let v = engine.query_by_names(&[("sex", "F")], &[]).unwrap();
///             assert_eq!(v.dissimilarity, Some(0.0)); // perfectly even
///         });
///     }
/// });
/// assert_eq!(engine.stats().total(), 4);
/// # Ok::<(), scube_common::ScubeError>(())
/// ```
#[derive(Debug)]
pub struct ConcurrentCubeEngine<P: Posting = EwahBitmap> {
    cube: SegregationCube,
    explorer: CubeExplorer<P>,
    shards: Vec<Shard<IndexValues>>,
    breakdown_shards: Vec<Shard<Breakdown>>,
    scratches: SpinLock<Vec<ExplorerScratch>>,
    stats: AtomicQueryStats,
    /// Build configuration and maintenance store carried over from the
    /// snapshot, so [`Self::apply_update`] maintains the cube under the
    /// parameters it was built with, at delta cost. A mapped snapshot
    /// hands the store over undecoded; updates index it once and then
    /// decode exactly the entries they dirty.
    materialize: Materialize,
    atkinson_b: f64,
    measures: MeasureSet,
    maintenance: MaintenanceStore,
}

impl<P: Posting> ConcurrentCubeEngine<P> {
    /// Serve from a snapshot with the default shard count and cache
    /// capacity.
    pub fn new(snapshot: CubeSnapshot<P>) -> Self {
        Self::with_config(snapshot, DEFAULT_SHARDS, DEFAULT_CACHE_CAPACITY)
    }

    /// Serve from a snapshot with an explicit shard count and *total*
    /// fallback-cache capacity, split evenly across shards (rounded up, so
    /// e.g. 16 shards × capacity 100 hold up to 7 cells each; capacity 0
    /// disables caching entirely).
    pub fn with_config(snapshot: CubeSnapshot<P>, shards: usize, capacity: usize) -> Self {
        let (cube, vertical, maintenance, materialize, atkinson_b, measures) =
            snapshot.into_serving_parts();
        let n_shards = shards.max(1);
        let per_shard = if capacity == 0 { 0 } else { capacity.div_ceil(n_shards) };
        // Breakdown values are per-unit Vecs, so that cache is bounded by
        // an exact retained-triple budget (each entry weighs its own
        // triples), split across shards like the cell cache.
        let bd_budget = if capacity == 0 { 0 } else { BREAKDOWN_TRIPLE_BUDGET.div_ceil(n_shards) };
        // Recompute fallback cells with the Atkinson parameter and measure
        // set the cube was built with (recorded since snapshot v2 and v5
        // respectively): the cold tier stays bit-identical to the store
        // even for non-default `b` or a partial measure suite.
        let explorer = CubeExplorer::from_vertical(vertical)
            .with_atkinson_b(atkinson_b)
            .with_measures(measures);
        // Seed the scratch pool for the host's parallelism so even the
        // first wave of cold queries finds a scratch waiting; the pool
        // still grows (one allocation, once) if more threads ever query
        // simultaneously.
        let seed = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let scratches = (0..seed).map(|_| explorer.new_scratch()).collect();
        ConcurrentCubeEngine {
            cube,
            explorer,
            shards: (0..n_shards).map(|_| SpinLock::new(LruCache::new(per_shard))).collect(),
            breakdown_shards: (0..n_shards)
                .map(|_| SpinLock::new(LruCache::with_budget(per_shard, bd_budget)))
                .collect(),
            scratches: SpinLock::new(scratches),
            stats: AtomicQueryStats::default(),
            materialize,
            atkinson_b,
            measures,
            maintenance,
        }
    }

    /// Fold a batch of appended rows and retractions into the serving
    /// engine: the cube and postings are updated in place (bit-identical
    /// to a full rebuild on the edited data, see [`crate::update`]) and
    /// **exactly** the dirty cache entries — fallback cells and breakdowns
    /// whose context gained or lost transactions — are invalidated, shard
    /// by shard; clean cached values stay resident and stay correct. When
    /// a retraction relabels the id space (values or units dropped or
    /// reordered, materialized cells demoted away), every cached entry is
    /// invalidated: pre-update coordinates are meaningless — and may alias
    /// different cells — under the new ids.
    ///
    /// Taking `&mut self` is what makes the swap atomic: the borrow
    /// checker guarantees no in-flight query can observe a half-applied
    /// update, with no extra locking on the read path. Deployments that
    /// serve during updates wrap the engine in an `RwLock` (or swap an
    /// `Arc`) at the layer above.
    pub fn apply_update(&mut self, batch: &UpdateBatch) -> Result<UpdateStats>
    where
        P: Send + Sync,
    {
        // Dirty-cell re-evaluation is CPU-bound: clamp to min(8, host
        // cores), matching the bench configuration — more workers than
        // cores only buys scheduling overhead.
        let threads = std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1);
        self.apply_update_threads(batch, threads)
    }

    /// As [`Self::apply_update`], with an explicit worker-thread count for
    /// the dirty-cell re-evaluation phase (answers are bit-identical for
    /// any count).
    pub fn apply_update_threads(
        &mut self,
        batch: &UpdateBatch,
        threads: usize,
    ) -> Result<UpdateStats>
    where
        P: Send + Sync,
    {
        let outcome = crate::update::apply_update(
            &mut self.cube,
            self.explorer.vertical_mut(),
            &mut self.maintenance,
            batch,
            self.materialize,
            self.atkinson_b,
            self.measures,
            threads,
        )?;
        // The unit space may have grown or shrunk: refresh every pooled
        // scratch (and the explorer's own) to the new size.
        self.explorer.refresh_scratch();
        let pool_size = self.scratches.lock().len();
        *self.scratches.lock() = (0..pool_size).map(|_| self.explorer.new_scratch()).collect();
        // Surgical invalidation: a cached value is stale iff its context
        // gained transactions — the same dirtiness rule the update itself
        // used for materialized cells.
        let probe = &outcome.probe;
        for shard in &self.shards {
            shard.lock().retain(|coords, _| !probe.is_dirty(coords));
        }
        for shard in &self.breakdown_shards {
            shard.lock().retain(|coords, _| !probe.is_dirty(coords));
        }
        Ok(outcome.stats)
    }

    /// Build cube and engine straight from a transaction database (the
    /// in-memory path; equivalent to snapshotting and serving immediately).
    pub fn from_db(db: &TransactionDb, builder: &CubeBuilder) -> Result<Self>
    where
        P: Send + Sync,
    {
        Ok(Self::new(CubeSnapshot::from_db(db, builder)?))
    }

    /// The materialized cube.
    pub fn cube(&self) -> &SegregationCube {
        &self.cube
    }

    /// Number of cell-cache shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which tier answered each query so far, across all threads.
    pub fn stats(&self) -> QueryStats {
        self.stats.load()
    }

    fn shard_index(&self, coords: &CellCoords) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = scube_common::hash::FxHasher::default();
        coords.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn shard_of(&self, coords: &CellCoords) -> &Shard<IndexValues> {
        &self.shards[self.shard_index(coords)]
    }

    fn breakdown_shard_of(&self, coords: &CellCoords) -> &Shard<Breakdown> {
        &self.breakdown_shards[self.shard_index(coords)]
    }

    /// Check a scratch out of the pool (allocating a fresh one only if
    /// every pooled scratch is in use right now).
    fn checkout(&self) -> ExplorerScratch {
        self.scratches.lock().pop().unwrap_or_else(|| self.explorer.new_scratch())
    }

    fn check_in(&self, scratch: ExplorerScratch) {
        self.scratches.lock().push(scratch);
    }

    /// The cold tier: recompute from postings, record, insert into the
    /// cell's shard. Called only after the store and cache tiers missed.
    fn explore(&self, coords: &CellCoords, scratch: &mut ExplorerScratch) -> Result<IndexValues> {
        let v = self.explorer.values_at_with(coords, scratch)?;
        self.stats.record_explored();
        // Clone the key before taking the lock: critical sections stay O(1).
        let key = coords.clone();
        self.shard_of(coords).lock().insert(key, v);
        Ok(v)
    }

    /// The two warm tiers shared by single and batch lookups: materialized
    /// store (lock-free), then the cell's cache shard.
    fn warm_hit(&self, coords: &CellCoords) -> Option<IndexValues> {
        if let Some(v) = self.cube.get(coords) {
            self.stats.record_materialized();
            return Some(*v);
        }
        if let Some(v) = self.shard_of(coords).lock().get(coords).copied() {
            self.stats.record_cached();
            return Some(v);
        }
        None
    }

    /// Point lookup with a caller-held scratch: what batch workers use so a
    /// whole chunk of queries shares one checkout.
    fn query_with(
        &self,
        coords: &CellCoords,
        scratch: &mut ExplorerScratch,
    ) -> Result<IndexValues> {
        match self.warm_hit(coords) {
            Some(v) => Ok(v),
            None => self.explore(coords, scratch),
        }
    }

    /// Point lookup: materialized store (lock-free), then the cell's cache
    /// shard, then exact recomputation from postings — all through `&self`.
    pub fn query(&self, coords: &CellCoords) -> Result<IndexValues> {
        if let Some(v) = self.warm_hit(coords) {
            return Ok(v);
        }
        // Only the cold path needs histogram state.
        let mut scratch = self.checkout();
        let out = self.explore(coords, &mut scratch);
        self.check_in(scratch);
        out
    }

    /// Point lookup by attribute/value names, e.g.
    /// `query_by_names(&[("sex", "F")], &[("region", "north")])`.
    pub fn query_by_names(&self, sa: &[(&str, &str)], ca: &[(&str, &str)]) -> Result<IndexValues> {
        self.query(&self.resolve(sa, ca)?)
    }

    /// Resolve attribute/value names against the cube labels, enforcing
    /// attribute roles (shared with the serial engine).
    pub fn resolve(&self, sa: &[(&str, &str)], ca: &[(&str, &str)]) -> Result<CellCoords> {
        resolve_coords(self.cube.labels(), sa, ca)
    }

    /// Per-unit `(unit, minority, total)` drill-down of any cell.
    ///
    /// Like the serial engine, repeated drill-downs — including of
    /// materialized cells, whose stored [`IndexValues`] carry no per-unit
    /// data — are served from a sharded breakdown cache instead of being
    /// re-partitioned from postings on every ask.
    pub fn unit_breakdown(&self, coords: &CellCoords) -> Vec<(u32, u64, u64)> {
        let shard = self.breakdown_shard_of(coords);
        // Under the lock only an O(1) `Arc` clone; the value copy for the
        // caller happens after release.
        let cached: Option<Breakdown> = shard.lock().get(coords).cloned();
        if let Some(b) = cached {
            self.stats.record_breakdown_cached();
            return b.to_vec();
        }
        let mut scratch = self.checkout();
        let b = self.explorer.unit_breakdown_with(coords, &mut scratch);
        self.check_in(scratch);
        self.stats.record_breakdown_computed();
        let (key, value): (CellCoords, Breakdown) = (coords.clone(), b.as_slice().into());
        let weight = breakdown_weight(&value);
        shard.lock().insert_weighted(key, value, weight);
        b
    }

    /// Answer a batch of point queries, fanning contiguous chunks out over
    /// `threads` scoped worker threads (each with one checked-out scratch
    /// for its whole chunk). Results come back in input order and are
    /// bit-identical to issuing the queries serially; the first error wins.
    pub fn query_batch(&self, coords: &[CellCoords], threads: usize) -> Result<Vec<IndexValues>>
    where
        P: Send + Sync,
    {
        let threads = clamp_threads(threads, coords.len());
        if threads == 1 {
            let mut scratch = self.checkout();
            let out: Result<Vec<IndexValues>> =
                coords.iter().map(|c| self.query_with(c, &mut scratch)).collect();
            self.check_in(scratch);
            return out;
        }
        let chunk = coords.len().div_ceil(threads);
        let results: Vec<Result<Vec<IndexValues>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = coords
                .chunks(chunk)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut scratch = self.checkout();
                        let out: Result<Vec<IndexValues>> =
                            chunk.iter().map(|c| self.query_with(c, &mut scratch)).collect();
                        self.check_in(scratch);
                        out
                    })
                })
                .collect();
            // Every handle must be joined — an unjoined panicked scoped
            // thread re-panics at scope exit, which would abort a daemon.
            handles.into_iter().map(|h| join_worker(h.join(), "query").and_then(|r| r)).collect()
        });
        let mut out = Vec::with_capacity(coords.len());
        for r in results {
            out.extend(r?);
        }
        Ok(out)
    }

    /// Top-k materialized cells by one index (descending), as in the serial
    /// engine.
    pub fn top_k(&self, index: SegIndex, k: usize, min_total: u64) -> RankedCells {
        rank_cells(&self.cube, &[index], k, min_total).remove(0).1
    }

    /// Batched top-k over the materialized store, fanned out over up to
    /// `threads` scoped worker threads by chunking the *store*: each worker
    /// ranks its chunk of cells for every requested index (keeping its
    /// local top-k), and the partial rankings merge under the same total
    /// order — so even a single-index `--top` query parallelizes, and the
    /// output is bit-identical to the serial engine's, in `indexes` order.
    ///
    /// A panicking worker fails only this call with
    /// [`ScubeError::Inconsistent`]; the engine stays healthy for later
    /// queries.
    pub fn top_k_batch(
        &self,
        indexes: &[SegIndex],
        k: usize,
        min_total: u64,
        threads: usize,
    ) -> Result<Vec<(SegIndex, RankedCells)>>
    where
        P: Send + Sync,
    {
        let threads = clamp_threads(threads, self.cube.len());
        if threads == 1 || indexes.is_empty() {
            return Ok(rank_cells(&self.cube, indexes, k, min_total));
        }
        let cells: Vec<(&CellCoords, &IndexValues)> = self.cube.cells().collect();
        let chunk = cells.len().div_ceil(threads);
        let partials: Vec<Result<Vec<(SegIndex, RankedCells)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = cells
                .chunks(chunk)
                .map(|chunk| {
                    scope
                        .spawn(move || rank_cell_list(chunk.iter().copied(), indexes, k, min_total))
                })
                .collect();
            // Join every handle (see `query_batch`) so a panicking ranking
            // worker becomes an error instead of aborting the process.
            handles.into_iter().map(|h| join_worker(h.join(), "ranking")).collect()
        });
        // Each worker's local top-k contains every global top-k member of
        // its chunk, so concatenating and re-sorting loses nothing.
        let mut merged: Vec<(SegIndex, RankedCells)> =
            indexes.iter().map(|&ix| (ix, Vec::new())).collect();
        for partial in partials {
            for ((_, rows), (_, out)) in partial?.into_iter().zip(&mut merged) {
                out.extend(rows);
            }
        }
        for (_, rows) in &mut merged {
            sort_ranked(rows, k);
        }
        Ok(merged)
    }

    /// Slice: materialized cells fixing all the given `(attr, value)`
    /// coordinates, in canonical (sa, ca) order.
    pub fn slice(&self, fixed: &[(&str, &str)]) -> Vec<(CellCoords, IndexValues)> {
        sorted_slice(&self.cube, fixed)
    }

    /// Dice: the materialized sub-cube over the listed attributes only, in
    /// canonical (sa, ca) order.
    pub fn dice(&self, attrs: &[&str]) -> Vec<(CellCoords, IndexValues)> {
        sorted_dice(&self.cube, attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Materialize;
    use crate::query::CubeQueryEngine;
    use scube_data::{Attribute, Schema, TransactionDbBuilder};

    fn db() -> TransactionDb {
        let schema =
            Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
                .unwrap();
        let mut b = TransactionDbBuilder::new(schema);
        let rows = [
            ("F", "young", "north", "u0"),
            ("F", "young", "north", "u0"),
            ("M", "old", "north", "u0"),
            ("F", "old", "south", "u1"),
            ("M", "young", "south", "u1"),
            ("M", "old", "south", "u1"),
            ("F", "young", "south", "u0"),
            ("M", "young", "north", "u1"),
        ];
        for (s, a, r, u) in rows {
            b.add_row(&[vec![s], vec![a], vec![r]], u).unwrap();
        }
        b.finish()
    }

    fn engines() -> (SegregationCube, CubeQueryEngine, ConcurrentCubeEngine) {
        let db = db();
        let full = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let closed = CubeBuilder::new().materialize(Materialize::ClosedOnly);
        let serial = CubeQueryEngine::from_db(&db, &closed).unwrap();
        let concurrent = ConcurrentCubeEngine::from_db(&db, &closed).unwrap();
        (full, serial, concurrent)
    }

    #[test]
    fn shared_ref_queries_match_serial_engine() {
        let (full, mut serial, concurrent) = engines();
        for (coords, v) in full.cells() {
            assert_eq!(serial.query(coords).unwrap(), *v);
            assert_eq!(concurrent.query(coords).unwrap(), *v, "cold {coords:?}");
            assert_eq!(concurrent.query(coords).unwrap(), *v, "warm {coords:?}");
        }
        let stats = concurrent.stats();
        assert_eq!(stats.total(), 2 * full.len() as u64);
        assert!(stats.explored > 0, "closed store must force fallbacks");
        assert_eq!(stats.cached, stats.explored, "second pass hits the shards");
    }

    #[test]
    fn batch_matches_pointwise_and_preserves_order() {
        let (full, _, concurrent) = engines();
        let mut coords: Vec<CellCoords> = full.cells().map(|(c, _)| c.clone()).collect();
        coords.sort();
        for threads in [1, 2, 5] {
            let batch = concurrent.query_batch(&coords, threads).unwrap();
            assert_eq!(batch.len(), coords.len());
            for (c, got) in coords.iter().zip(&batch) {
                assert_eq!(full.get(c), Some(got), "threads {threads}: {c:?}");
            }
        }
        // Empty batch is fine.
        assert!(concurrent.query_batch(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn threads_share_one_engine() {
        let (full, _, concurrent) = engines();
        let coords: Vec<CellCoords> = full.cells().map(|(c, _)| c.clone()).collect();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let coords = &coords;
                let engine = &concurrent;
                let full = &full;
                scope.spawn(move || {
                    // Interleaved stripes: all threads collide on shards.
                    for c in coords.iter().skip(t).step_by(4) {
                        assert_eq!(engine.query(c).unwrap(), *full.get(c).unwrap());
                    }
                });
            }
        });
        assert_eq!(concurrent.stats().total(), coords.len() as u64);
    }

    #[test]
    fn ranking_and_views_match_serial_engine() {
        let (_, serial, concurrent) = engines();
        let indexes =
            [SegIndex::Dissimilarity, SegIndex::Gini, SegIndex::Isolation, SegIndex::Atkinson];
        for threads in [1, 3, 8] {
            let par = concurrent.top_k_batch(&indexes, 4, 1, threads).unwrap();
            let ser = serial.top_k_batch(&indexes, 4, 1);
            assert_eq!(par, ser, "threads {threads}");
            // A single index must also rank in parallel (the store is
            // chunked, not the index list) and merge bit-identically —
            // including k = 0 (return all).
            for k in [0, 3] {
                assert_eq!(
                    concurrent.top_k_batch(&[SegIndex::Gini], k, 1, threads).unwrap(),
                    serial.top_k_batch(&[SegIndex::Gini], k, 1),
                    "single index, threads {threads}, k {k}"
                );
            }
        }
        assert_eq!(
            concurrent.top_k(SegIndex::Dissimilarity, 3, 1),
            serial.top_k(SegIndex::Dissimilarity, 3, 1)
        );
        assert_eq!(concurrent.slice(&[("region", "north")]), serial.slice(&[("region", "north")]));
        assert_eq!(concurrent.dice(&["sex", "region"]), serial.dice(&["sex", "region"]));
    }

    #[test]
    fn breakdown_and_names_resolve() {
        let (_, mut serial, concurrent) = engines();
        let coords = concurrent.resolve(&[("sex", "F")], &[("region", "north")]).unwrap();
        let first = concurrent.unit_breakdown(&coords);
        assert_eq!(first, serial.unit_breakdown(&coords));
        assert_eq!(concurrent.stats().breakdown_computed, 1);
        // Repeated drill-downs come from the sharded breakdown cache.
        assert_eq!(concurrent.unit_breakdown(&coords), first);
        assert_eq!(concurrent.stats().breakdown_computed, 1, "no recomputation");
        assert_eq!(concurrent.stats().breakdown_cached, 1);
        assert_eq!(
            concurrent.query_by_names(&[("sex", "F")], &[]).unwrap(),
            serial.query_by_names(&[("sex", "F")], &[]).unwrap()
        );
        assert!(concurrent.query_by_names(&[("region", "north")], &[]).is_err(), "role confusion");
    }

    #[test]
    fn capacity_zero_disables_shard_caching() {
        let db = db();
        let closed = CubeBuilder::new().materialize(Materialize::ClosedOnly);
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &closed).unwrap();
        let full = CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let engine = ConcurrentCubeEngine::with_config(snap, 4, 0);
        for round in 0..2 {
            for (coords, v) in full.cells() {
                assert_eq!(engine.query(coords).unwrap(), *v, "round {round}");
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.cached, 0, "no cache to hit");
        assert!(stats.explored > 0);
        assert_eq!(stats.total(), 2 * full.len() as u64);
    }

    #[test]
    fn runaway_thread_requests_are_clamped() {
        // Never more workers than items, never a thread explosion from a
        // user-supplied count, always at least 1 — and at least 8 allowed
        // even on a 1-CPU host so concurrency tests stay real.
        assert_eq!(clamp_threads(1_000_000, 3), 3);
        assert_eq!(clamp_threads(1_000_000, 100_000) % 8, 0, "cap is a multiple of 8×host");
        assert!(clamp_threads(1_000_000, 100_000) >= 8);
        assert!(clamp_threads(1_000_000, 100_000) < 100_000);
        assert_eq!(clamp_threads(0, 10), 1);
        assert_eq!(clamp_threads(4, 0), 1);
        assert_eq!(clamp_threads(8, 100), 8);

        // And end-to-end: an absurd request still answers correctly.
        let (full, _, concurrent) = engines();
        let coords: Vec<CellCoords> = full.cells().map(|(c, _)| c.clone()).collect();
        let batch = concurrent.query_batch(&coords, usize::MAX).unwrap();
        for (c, got) in coords.iter().zip(&batch) {
            assert_eq!(full.get(c), Some(got));
        }
    }

    /// Regression: a worker panic (here injected via a poisoned query whose
    /// `ItemId` is out of range for the postings store) used to abort the
    /// whole process through `.expect("query worker panicked")`. It must
    /// instead fail only that batch with a proper error and leave the
    /// engine healthy for subsequent queries.
    #[test]
    fn worker_panic_fails_batch_not_process() {
        let (full, _, concurrent) = engines();
        let good: Vec<CellCoords> = full.cells().map(|(c, _)| c.clone()).collect();
        let poisoned = CellCoords::new(vec![u32::MAX - 1], vec![]);
        assert!(full.get(&poisoned).is_none(), "poison must miss the store");

        // Seed a batch with the poisoned query somewhere in the middle so a
        // mid-stream worker panics while others succeed.
        let mut batch: Vec<CellCoords> = good.clone();
        batch.insert(good.len() / 2, poisoned.clone());
        for threads in [2, 4, 8] {
            let err = concurrent.query_batch(&batch, threads).unwrap_err();
            assert!(
                err.to_string().contains("worker panicked"),
                "error should carry the panic: {err}"
            );
        }

        // The engine is still healthy: every valid query answers, results
        // stay bit-identical to the store, and ranking still works.
        let after = concurrent.query_batch(&good, 4).unwrap();
        for (c, got) in good.iter().zip(&after) {
            assert_eq!(full.get(c), Some(got));
        }
        assert!(!concurrent.top_k_batch(&[SegIndex::Gini], 3, 1, 4).unwrap().is_empty());

        // Single-threaded batches take the non-spawning path, where the
        // same poison is a plain (catchable) panic in the calling thread —
        // the daemon layer guards that with `catch_unwind`; here we only
        // pin down that multi-threaded batches never re-panic.
    }

    #[test]
    fn apply_update_invalidates_exactly_the_dirty_entries() {
        let db = db();
        let closed = CubeBuilder::new().materialize(Materialize::ClosedOnly);
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &closed).unwrap();
        let base_full =
            CubeBuilder::new().materialize(Materialize::AllFrequent).build(&db).unwrap();
        let mut engine = ConcurrentCubeEngine::new(snap);
        // Warm every fallback cell (and one breakdown) before the update.
        for (coords, _) in base_full.cells() {
            engine.query(coords).unwrap();
        }
        let south = engine.resolve(&[("sex", "F")], &[("region", "south")]).unwrap();
        engine.unit_breakdown(&south);
        let warm = engine.stats();

        // Append rows that only touch the north: south contexts stay clean.
        let mut batch = UpdateBatch::new();
        batch.add_row(&[("sex", "F"), ("age", "old"), ("region", "north")], "u0");
        batch.add_row(&[("sex", "M"), ("age", "old"), ("region", "north")], "u2");
        let stats = engine.apply_update(&batch).unwrap();
        assert_eq!(stats.rows_added, 2);
        assert_eq!(stats.new_units, 1);
        assert!(stats.clean_cells > 0);

        // Every answer now matches a rebuild of the concatenated data.
        let mut b = TransactionDbBuilder::new(db.schema().clone());
        for (items, unit) in db.iter() {
            let labels: Vec<Vec<String>> = {
                let mut per_attr = vec![Vec::new(); db.schema().len()];
                for &it in items {
                    let attr = db.dictionary().attr_of(it);
                    per_attr[attr as usize].push(db.dictionary().value_of(it).to_string());
                }
                per_attr
            };
            b.add_row(&labels, db.unit_name(unit)).unwrap();
        }
        b.add_row(&[vec!["F"], vec!["old"], vec!["north"]], "u0").unwrap();
        b.add_row(&[vec!["M"], vec!["old"], vec!["north"]], "u2").unwrap();
        let grown = b.finish();
        let after_full =
            CubeBuilder::new().materialize(Materialize::AllFrequent).build(&grown).unwrap();
        for (coords, v) in after_full.cells() {
            assert_eq!(engine.query(coords).unwrap(), *v, "stale {coords:?}");
        }

        // Exactness of the invalidation: the south breakdown was cached
        // before the update, its context gained nothing, so it must still
        // be served from the cache — not recomputed.
        engine.unit_breakdown(&south);
        assert_eq!(
            engine.stats().breakdown_cached,
            warm.breakdown_cached + 1,
            "clean breakdown must still be cached"
        );
    }

    #[test]
    fn cache_budget_accounting_survives_apply_update() {
        // The PR-4 audit scenario: warm the sharded cell and breakdown
        // caches, churn the snapshot (appends + a demoting retraction),
        // let retain-based invalidation run, then verify every shard's
        // tracked weight still equals the sum of its live entry weights.
        // Drift here would silently shrink the effective cache capacity
        // for the rest of the process lifetime.
        let db = db();
        let closed = CubeBuilder::new().materialize(Materialize::ClosedOnly).min_support(2);
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &closed).unwrap();
        let full = CubeBuilder::new()
            .min_support(2)
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        let mut engine = ConcurrentCubeEngine::with_config(snap, 4, 64);
        for (coords, _) in full.cells() {
            engine.query(coords).unwrap();
            engine.unit_breakdown(coords);
        }
        let check = |engine: &ConcurrentCubeEngine, when: &str| {
            for (i, shard) in engine.shards.iter().enumerate() {
                assert!(shard.lock().weight_invariant_holds(), "{when}: cell shard {i} drifted");
            }
            for (i, shard) in engine.breakdown_shards.iter().enumerate() {
                assert!(
                    shard.lock().weight_invariant_holds(),
                    "{when}: breakdown shard {i} drifted"
                );
            }
        };
        check(&engine, "after warm-up");

        // Mixed churn: one append, one retraction (row 1 backs a
        // support-2 cell, so something demotes).
        let mut batch = UpdateBatch::new();
        batch.add_row(&[("sex", "F"), ("age", "old"), ("region", "north")], "u0");
        batch.remove_tid(1);
        let stats = engine.apply_update(&batch).unwrap();
        assert_eq!((stats.rows_added, stats.rows_removed), (1, 1));
        check(&engine, "after apply_update invalidation");

        // And again after re-warming on the post-churn universe.
        let mut b = TransactionDbBuilder::new(db.schema().clone());
        for (t, (items, unit)) in db.iter().enumerate() {
            if t == 1 {
                continue;
            }
            let labels: Vec<Vec<String>> = {
                let mut per_attr = vec![Vec::new(); db.schema().len()];
                for &it in items {
                    let attr = db.dictionary().attr_of(it);
                    per_attr[attr as usize].push(db.dictionary().value_of(it).to_string());
                }
                per_attr
            };
            b.add_row(&labels, db.unit_name(unit)).unwrap();
        }
        b.add_row(&[vec!["F"], vec!["old"], vec!["north"]], "u0").unwrap();
        let grown = b.finish();
        let after_full = CubeBuilder::new()
            .min_support(2)
            .materialize(Materialize::AllFrequent)
            .build(&grown)
            .unwrap();
        for (coords, v) in after_full.cells() {
            assert_eq!(engine.query(coords).unwrap(), *v, "stale {coords:?}");
            engine.unit_breakdown(coords);
        }
        check(&engine, "after re-warming");
    }

    #[test]
    fn shard_count_is_clamped_and_reported() {
        let db = db();
        let snap: CubeSnapshot = CubeSnapshot::from_db(&db, &CubeBuilder::new()).unwrap();
        let engine = ConcurrentCubeEngine::with_config(snap, 0, 64);
        assert_eq!(engine.shard_count(), 1, "shards clamp to at least 1");
    }
}
