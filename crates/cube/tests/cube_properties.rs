//! Property tests for the cube builder against a brute-force model.
//!
//! The model computes, for random small populations, every cell's per-unit
//! histogram by direct row scans and evaluates the indexes with the
//! segindex crate — no mining, no bitmaps, no caching. Every materialized
//! cube cell must match the model; the closed cube must be a restriction of
//! the full cube; and the explorer must resolve arbitrary coordinates to
//! model values.

use proptest::prelude::*;
use scube_cube::{CellCoords, CubeBuilder, CubeExplorer, Materialize};
use scube_data::{Attribute, ItemId, Schema, TransactionDb, TransactionDbBuilder};
use scube_segindex::{IndexValues, UnitCounts};

/// A random population row: sex × age × region, assigned to one of 3 units.
type Row = (u8, u8, u8, u8);

fn rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec((0u8..2, 0u8..3, 0u8..2, 0u8..3), 1..60)
}

fn build_db(rows: &[Row]) -> TransactionDb {
    let schema =
        Schema::new(vec![Attribute::sa("sex"), Attribute::sa("age"), Attribute::ca("region")])
            .unwrap();
    let mut b = TransactionDbBuilder::new(schema);
    for &(s, a, r, u) in rows {
        b.add_row(
            &[vec![format!("s{s}")], vec![format!("a{a}")], vec![format!("r{r}")]],
            &format!("u{u}"),
        )
        .unwrap();
    }
    b.finish()
}

/// Model: evaluate a cell by scanning rows.
fn model_cell(db: &TransactionDb, coords: &CellCoords) -> IndexValues {
    let matches = |t: usize, items: &[ItemId]| -> bool {
        items.iter().all(|it| db.transaction(t).contains(it))
    };
    let n_units = db.num_units();
    let mut minority = vec![0u64; n_units];
    let mut total = vec![0u64; n_units];
    let union = coords.union();
    for t in 0..db.len() {
        let u = db.unit_of(t) as usize;
        if matches(t, &coords.ca) {
            total[u] += 1;
            if matches(t, &union) {
                minority[u] += 1;
            }
        }
    }
    let counts = UnitCounts::from_triples(
        (0..n_units as u32)
            .filter(|&u| total[u as usize] > 0)
            .map(|u| (u, minority[u as usize], total[u as usize])),
    )
    .unwrap();
    IndexValues::compute(&counts)
}

fn close(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => (a - b).abs() < 1e-9,
        (None, None) => true,
        _ => false,
    }
}

fn values_match(a: &IndexValues, b: &IndexValues) -> bool {
    a.minority == b.minority
        && a.total == b.total
        && a.num_units == b.num_units
        && close(a.dissimilarity, b.dissimilarity)
        && close(a.gini, b.gini)
        && close(a.information, b.information)
        && close(a.isolation, b.isolation)
        && close(a.interaction, b.interaction)
        && close(a.atkinson, b.atkinson)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_cube_matches_model(rows in rows(), minsup in 1u64..4) {
        let db = build_db(&rows);
        let cube = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        for (coords, values) in cube.cells() {
            let expected = model_cell(&db, coords);
            prop_assert!(
                values_match(values, &expected),
                "cell {} mismatch: cube {:?} vs model {:?}",
                cube.labels().describe(coords),
                values,
                expected
            );
        }
    }

    #[test]
    fn full_cube_is_complete(rows in rows(), minsup in 1u64..4) {
        // Every (A,B) whose union is frequent must be materialized: verify
        // through the per-transaction itemsets (each transaction's own
        // coordinates are frequent at minsup=1 by construction).
        let db = build_db(&rows);
        let cube = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        for t in 0..db.len() {
            let items = db.transaction(t).to_vec();
            let coords = CellCoords::from_itemset(&items, &db);
            // Support of the full transaction itemset:
            let support = (0..db.len())
                .filter(|&s| items.iter().all(|it| db.transaction(s).contains(it)))
                .count() as u64;
            if support >= minsup {
                prop_assert!(
                    cube.get(&coords).is_some(),
                    "missing cell {} (support {})",
                    cube.labels().describe(&coords),
                    support
                );
            }
        }
    }

    #[test]
    fn closed_cube_restriction(rows in rows(), minsup in 1u64..4) {
        let db = build_db(&rows);
        let full = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::AllFrequent)
            .build(&db)
            .unwrap();
        let closed = CubeBuilder::new()
            .min_support(minsup)
            .materialize(Materialize::ClosedOnly)
            .build(&db)
            .unwrap();
        prop_assert!(closed.len() <= full.len());
        for (coords, values) in closed.cells() {
            let in_full = full.get(coords);
            prop_assert!(in_full.is_some());
            prop_assert!(values_match(values, in_full.unwrap()));
        }
    }

    #[test]
    fn explorer_answers_any_cell(rows in rows()) {
        let db = build_db(&rows);
        let mut explorer: CubeExplorer = CubeExplorer::new(&db);
        // Probe the coordinates of each transaction plus roll-ups.
        for t in 0..db.len().min(10) {
            let items = db.transaction(t).to_vec();
            let coords = CellCoords::from_itemset(&items, &db);
            let expected = model_cell(&db, &coords);
            let got = explorer.values_at(&coords).unwrap();
            prop_assert!(values_match(&got, &expected));
            // SA-only and CA-only projections of the same transaction.
            for probe in [
                CellCoords::new(coords.sa.clone(), vec![]),
                CellCoords::new(vec![], coords.ca.clone()),
                CellCoords::apex(),
            ] {
                let expected = model_cell(&db, &probe);
                let got = explorer.values_at(&probe).unwrap();
                prop_assert!(values_match(&got, &expected));
            }
        }
    }

    #[test]
    fn parallel_equals_serial(rows in rows()) {
        let db = build_db(&rows);
        let serial = CubeBuilder::new()
            .materialize(Materialize::AllFrequent)
            .parallel(false)
            .build(&db)
            .unwrap();
        let parallel = CubeBuilder::new()
            .materialize(Materialize::AllFrequent)
            .parallel(true)
            .build(&db)
            .unwrap();
        prop_assert_eq!(serial.len(), parallel.len());
        for (coords, v) in serial.cells() {
            let p = parallel.get(coords).unwrap();
            prop_assert!(values_match(v, p));
        }
    }
}
